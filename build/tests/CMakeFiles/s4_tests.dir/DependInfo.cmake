
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/s4_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/s4_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/csv_database_test.cc" "tests/CMakeFiles/s4_tests.dir/csv_database_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/csv_database_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/s4_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/s4_tests.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/determinism_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/s4_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/edge_case_test.cc" "tests/CMakeFiles/s4_tests.dir/edge_case_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/edge_case_test.cc.o.d"
  "/root/repo/tests/enumerator_test.cc" "tests/CMakeFiles/s4_tests.dir/enumerator_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/enumerator_test.cc.o.d"
  "/root/repo/tests/evaluator_test.cc" "tests/CMakeFiles/s4_tests.dir/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/evaluator_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/s4_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/incremental_test.cc" "tests/CMakeFiles/s4_tests.dir/incremental_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/incremental_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/s4_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/join_tree_test.cc" "tests/CMakeFiles/s4_tests.dir/join_tree_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/join_tree_test.cc.o.d"
  "/root/repo/tests/multi_edge_test.cc" "tests/CMakeFiles/s4_tests.dir/multi_edge_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/multi_edge_test.cc.o.d"
  "/root/repo/tests/or_semantics_test.cc" "tests/CMakeFiles/s4_tests.dir/or_semantics_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/or_semantics_test.cc.o.d"
  "/root/repo/tests/pj_query_test.cc" "tests/CMakeFiles/s4_tests.dir/pj_query_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/pj_query_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/s4_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_output_test.cc" "tests/CMakeFiles/s4_tests.dir/query_output_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/query_output_test.cc.o.d"
  "/root/repo/tests/random_schema_test.cc" "tests/CMakeFiles/s4_tests.dir/random_schema_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/random_schema_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/s4_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/s4_system_test.cc" "tests/CMakeFiles/s4_tests.dir/s4_system_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/s4_system_test.cc.o.d"
  "/root/repo/tests/schema_graph_test.cc" "tests/CMakeFiles/s4_tests.dir/schema_graph_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/schema_graph_test.cc.o.d"
  "/root/repo/tests/score_test.cc" "tests/CMakeFiles/s4_tests.dir/score_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/score_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/s4_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/spelling_test.cc" "tests/CMakeFiles/s4_tests.dir/spelling_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/spelling_test.cc.o.d"
  "/root/repo/tests/spreadsheet_test.cc" "tests/CMakeFiles/s4_tests.dir/spreadsheet_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/spreadsheet_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/s4_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/strategy_test.cc" "tests/CMakeFiles/s4_tests.dir/strategy_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/strategy_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/s4_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/text_test.cc.o.d"
  "/root/repo/tests/thread_pool_test.cc" "tests/CMakeFiles/s4_tests.dir/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/s4_tests.dir/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/s4/CMakeFiles/s4_system.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/s4_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/enumerate/CMakeFiles/s4_enumerate.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/s4_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/s4_score.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/s4_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/s4_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/s4_index.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/s4_query.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/s4_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s4_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/s4_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
