# Empty compiler generated dependencies file for s4_tests.
# This may be replaced when dependencies are built.
