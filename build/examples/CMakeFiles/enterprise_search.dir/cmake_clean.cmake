file(REMOVE_RECURSE
  "CMakeFiles/enterprise_search.dir/enterprise_search.cpp.o"
  "CMakeFiles/enterprise_search.dir/enterprise_search.cpp.o.d"
  "enterprise_search"
  "enterprise_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
