# Empty compiler generated dependencies file for enterprise_search.
# This may be replaced when dependencies are built.
