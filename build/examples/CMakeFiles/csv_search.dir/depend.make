# Empty dependencies file for csv_search.
# This may be replaced when dependencies are built.
