file(REMOVE_RECURSE
  "CMakeFiles/incremental_typing.dir/incremental_typing.cpp.o"
  "CMakeFiles/incremental_typing.dir/incremental_typing.cpp.o.d"
  "incremental_typing"
  "incremental_typing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
