# Empty dependencies file for incremental_typing.
# This may be replaced when dependencies are built.
