# Empty dependencies file for movie_discovery.
# This may be replaced when dependencies are built.
