file(REMOVE_RECURSE
  "CMakeFiles/movie_discovery.dir/movie_discovery.cpp.o"
  "CMakeFiles/movie_discovery.dir/movie_discovery.cpp.o.d"
  "movie_discovery"
  "movie_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
