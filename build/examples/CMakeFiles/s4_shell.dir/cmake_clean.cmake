file(REMOVE_RECURSE
  "CMakeFiles/s4_shell.dir/s4_shell.cpp.o"
  "CMakeFiles/s4_shell.dir/s4_shell.cpp.o.d"
  "s4_shell"
  "s4_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
