# Empty compiler generated dependencies file for s4_shell.
# This may be replaced when dependencies are built.
