# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_enterprise_search "/root/repo/build/examples/enterprise_search")
set_tests_properties(example_enterprise_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_incremental_typing "/root/repo/build/examples/incremental_typing")
set_tests_properties(example_incremental_typing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_discovery "/root/repo/build/examples/movie_discovery")
set_tests_properties(example_movie_discovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_csv_search "/root/repo/build/examples/csv_search")
set_tests_properties(example_csv_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_s4_shell "sh" "-c" "printf 'load tpch\\nset 0 0 Rick\\nsearch 2\\nsql 1\\nquit\\n' | /root/repo/build/examples/s4_shell")
set_tests_properties(example_s4_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
