file(REMOVE_RECURSE
  "CMakeFiles/s4_query.dir/pj_query.cc.o"
  "CMakeFiles/s4_query.dir/pj_query.cc.o.d"
  "CMakeFiles/s4_query.dir/spreadsheet.cc.o"
  "CMakeFiles/s4_query.dir/spreadsheet.cc.o.d"
  "libs4_query.a"
  "libs4_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
