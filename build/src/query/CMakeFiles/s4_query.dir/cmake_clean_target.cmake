file(REMOVE_RECURSE
  "libs4_query.a"
)
