# Empty dependencies file for s4_query.
# This may be replaced when dependencies are built.
