
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/pj_query.cc" "src/query/CMakeFiles/s4_query.dir/pj_query.cc.o" "gcc" "src/query/CMakeFiles/s4_query.dir/pj_query.cc.o.d"
  "/root/repo/src/query/spreadsheet.cc" "src/query/CMakeFiles/s4_query.dir/spreadsheet.cc.o" "gcc" "src/query/CMakeFiles/s4_query.dir/spreadsheet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/s4_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/s4_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s4_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
