file(REMOVE_RECURSE
  "CMakeFiles/s4_schema.dir/join_tree.cc.o"
  "CMakeFiles/s4_schema.dir/join_tree.cc.o.d"
  "CMakeFiles/s4_schema.dir/schema_graph.cc.o"
  "CMakeFiles/s4_schema.dir/schema_graph.cc.o.d"
  "libs4_schema.a"
  "libs4_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
