file(REMOVE_RECURSE
  "libs4_schema.a"
)
