# Empty dependencies file for s4_schema.
# This may be replaced when dependencies are built.
