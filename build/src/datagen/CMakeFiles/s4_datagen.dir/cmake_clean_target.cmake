file(REMOVE_RECURSE
  "libs4_datagen.a"
)
