file(REMOVE_RECURSE
  "CMakeFiles/s4_datagen.dir/es_gen.cc.o"
  "CMakeFiles/s4_datagen.dir/es_gen.cc.o.d"
  "CMakeFiles/s4_datagen.dir/names.cc.o"
  "CMakeFiles/s4_datagen.dir/names.cc.o.d"
  "CMakeFiles/s4_datagen.dir/random_schema.cc.o"
  "CMakeFiles/s4_datagen.dir/random_schema.cc.o.d"
  "CMakeFiles/s4_datagen.dir/synthetic.cc.o"
  "CMakeFiles/s4_datagen.dir/synthetic.cc.o.d"
  "CMakeFiles/s4_datagen.dir/tpch_mini.cc.o"
  "CMakeFiles/s4_datagen.dir/tpch_mini.cc.o.d"
  "libs4_datagen.a"
  "libs4_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
