# Empty dependencies file for s4_datagen.
# This may be replaced when dependencies are built.
