
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/es_gen.cc" "src/datagen/CMakeFiles/s4_datagen.dir/es_gen.cc.o" "gcc" "src/datagen/CMakeFiles/s4_datagen.dir/es_gen.cc.o.d"
  "/root/repo/src/datagen/names.cc" "src/datagen/CMakeFiles/s4_datagen.dir/names.cc.o" "gcc" "src/datagen/CMakeFiles/s4_datagen.dir/names.cc.o.d"
  "/root/repo/src/datagen/random_schema.cc" "src/datagen/CMakeFiles/s4_datagen.dir/random_schema.cc.o" "gcc" "src/datagen/CMakeFiles/s4_datagen.dir/random_schema.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/s4_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/s4_datagen.dir/synthetic.cc.o.d"
  "/root/repo/src/datagen/tpch_mini.cc" "src/datagen/CMakeFiles/s4_datagen.dir/tpch_mini.cc.o" "gcc" "src/datagen/CMakeFiles/s4_datagen.dir/tpch_mini.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/s4_index.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/s4_query.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/s4_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s4_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/s4_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
