# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("schema")
subdirs("text")
subdirs("index")
subdirs("query")
subdirs("enumerate")
subdirs("score")
subdirs("cache")
subdirs("exec")
subdirs("strategy")
subdirs("s4")
subdirs("datagen")
