# Empty dependencies file for s4_common.
# This may be replaced when dependencies are built.
