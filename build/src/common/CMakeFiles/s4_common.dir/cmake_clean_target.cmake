file(REMOVE_RECURSE
  "libs4_common.a"
)
