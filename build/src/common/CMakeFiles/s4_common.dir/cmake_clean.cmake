file(REMOVE_RECURSE
  "CMakeFiles/s4_common.dir/rng.cc.o"
  "CMakeFiles/s4_common.dir/rng.cc.o.d"
  "CMakeFiles/s4_common.dir/status.cc.o"
  "CMakeFiles/s4_common.dir/status.cc.o.d"
  "CMakeFiles/s4_common.dir/string_util.cc.o"
  "CMakeFiles/s4_common.dir/string_util.cc.o.d"
  "CMakeFiles/s4_common.dir/table_printer.cc.o"
  "CMakeFiles/s4_common.dir/table_printer.cc.o.d"
  "CMakeFiles/s4_common.dir/thread_pool.cc.o"
  "CMakeFiles/s4_common.dir/thread_pool.cc.o.d"
  "libs4_common.a"
  "libs4_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
