file(REMOVE_RECURSE
  "libs4_index.a"
)
