# Empty dependencies file for s4_index.
# This may be replaced when dependencies are built.
