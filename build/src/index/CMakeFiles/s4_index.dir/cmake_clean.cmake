file(REMOVE_RECURSE
  "CMakeFiles/s4_index.dir/index_set.cc.o"
  "CMakeFiles/s4_index.dir/index_set.cc.o.d"
  "CMakeFiles/s4_index.dir/inverted_index.cc.o"
  "CMakeFiles/s4_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/s4_index.dir/kfk_snapshot.cc.o"
  "CMakeFiles/s4_index.dir/kfk_snapshot.cc.o.d"
  "libs4_index.a"
  "libs4_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
