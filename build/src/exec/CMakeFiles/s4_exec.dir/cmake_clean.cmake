file(REMOVE_RECURSE
  "CMakeFiles/s4_exec.dir/cost_model.cc.o"
  "CMakeFiles/s4_exec.dir/cost_model.cc.o.d"
  "CMakeFiles/s4_exec.dir/evaluator.cc.o"
  "CMakeFiles/s4_exec.dir/evaluator.cc.o.d"
  "CMakeFiles/s4_exec.dir/explain.cc.o"
  "CMakeFiles/s4_exec.dir/explain.cc.o.d"
  "CMakeFiles/s4_exec.dir/query_output.cc.o"
  "CMakeFiles/s4_exec.dir/query_output.cc.o.d"
  "libs4_exec.a"
  "libs4_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
