# Empty compiler generated dependencies file for s4_exec.
# This may be replaced when dependencies are built.
