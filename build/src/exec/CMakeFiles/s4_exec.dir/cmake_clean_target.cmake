file(REMOVE_RECURSE
  "libs4_exec.a"
)
