file(REMOVE_RECURSE
  "CMakeFiles/s4_score.dir/score_context.cc.o"
  "CMakeFiles/s4_score.dir/score_context.cc.o.d"
  "libs4_score.a"
  "libs4_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
