# Empty compiler generated dependencies file for s4_score.
# This may be replaced when dependencies are built.
