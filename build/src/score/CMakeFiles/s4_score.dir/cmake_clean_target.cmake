file(REMOVE_RECURSE
  "libs4_score.a"
)
