file(REMOVE_RECURSE
  "libs4_enumerate.a"
)
