file(REMOVE_RECURSE
  "CMakeFiles/s4_enumerate.dir/enumerator.cc.o"
  "CMakeFiles/s4_enumerate.dir/enumerator.cc.o.d"
  "libs4_enumerate.a"
  "libs4_enumerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_enumerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
