# Empty dependencies file for s4_enumerate.
# This may be replaced when dependencies are built.
