# Empty dependencies file for s4_system.
# This may be replaced when dependencies are built.
