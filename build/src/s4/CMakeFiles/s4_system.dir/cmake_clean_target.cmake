file(REMOVE_RECURSE
  "libs4_system.a"
)
