file(REMOVE_RECURSE
  "CMakeFiles/s4_system.dir/s4.cc.o"
  "CMakeFiles/s4_system.dir/s4.cc.o.d"
  "libs4_system.a"
  "libs4_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
