file(REMOVE_RECURSE
  "CMakeFiles/s4_storage.dir/csv.cc.o"
  "CMakeFiles/s4_storage.dir/csv.cc.o.d"
  "CMakeFiles/s4_storage.dir/csv_database.cc.o"
  "CMakeFiles/s4_storage.dir/csv_database.cc.o.d"
  "CMakeFiles/s4_storage.dir/database.cc.o"
  "CMakeFiles/s4_storage.dir/database.cc.o.d"
  "CMakeFiles/s4_storage.dir/serialize.cc.o"
  "CMakeFiles/s4_storage.dir/serialize.cc.o.d"
  "CMakeFiles/s4_storage.dir/table.cc.o"
  "CMakeFiles/s4_storage.dir/table.cc.o.d"
  "CMakeFiles/s4_storage.dir/value.cc.o"
  "CMakeFiles/s4_storage.dir/value.cc.o.d"
  "libs4_storage.a"
  "libs4_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
