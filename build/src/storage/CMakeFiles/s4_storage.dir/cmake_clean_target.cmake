file(REMOVE_RECURSE
  "libs4_storage.a"
)
