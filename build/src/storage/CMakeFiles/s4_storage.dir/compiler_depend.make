# Empty compiler generated dependencies file for s4_storage.
# This may be replaced when dependencies are built.
