file(REMOVE_RECURSE
  "libs4_strategy.a"
)
