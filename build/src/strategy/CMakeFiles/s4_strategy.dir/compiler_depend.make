# Empty compiler generated dependencies file for s4_strategy.
# This may be replaced when dependencies are built.
