file(REMOVE_RECURSE
  "CMakeFiles/s4_strategy.dir/fasttopk.cc.o"
  "CMakeFiles/s4_strategy.dir/fasttopk.cc.o.d"
  "CMakeFiles/s4_strategy.dir/incremental.cc.o"
  "CMakeFiles/s4_strategy.dir/incremental.cc.o.d"
  "CMakeFiles/s4_strategy.dir/or_semantics.cc.o"
  "CMakeFiles/s4_strategy.dir/or_semantics.cc.o.d"
  "CMakeFiles/s4_strategy.dir/strategy.cc.o"
  "CMakeFiles/s4_strategy.dir/strategy.cc.o.d"
  "libs4_strategy.a"
  "libs4_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
