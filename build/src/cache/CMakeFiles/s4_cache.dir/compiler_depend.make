# Empty compiler generated dependencies file for s4_cache.
# This may be replaced when dependencies are built.
