file(REMOVE_RECURSE
  "libs4_cache.a"
)
