file(REMOVE_RECURSE
  "CMakeFiles/s4_cache.dir/subquery_cache.cc.o"
  "CMakeFiles/s4_cache.dir/subquery_cache.cc.o.d"
  "libs4_cache.a"
  "libs4_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
