
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/s4_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/s4_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/term_dict.cc" "src/text/CMakeFiles/s4_text.dir/term_dict.cc.o" "gcc" "src/text/CMakeFiles/s4_text.dir/term_dict.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/s4_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/s4_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s4_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
