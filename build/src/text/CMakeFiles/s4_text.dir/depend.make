# Empty dependencies file for s4_text.
# This may be replaced when dependencies are built.
