file(REMOVE_RECURSE
  "libs4_text.a"
)
