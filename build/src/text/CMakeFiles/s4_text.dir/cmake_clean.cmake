file(REMOVE_RECURSE
  "CMakeFiles/s4_text.dir/edit_distance.cc.o"
  "CMakeFiles/s4_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/s4_text.dir/term_dict.cc.o"
  "CMakeFiles/s4_text.dir/term_dict.cc.o.d"
  "CMakeFiles/s4_text.dir/tokenizer.cc.o"
  "CMakeFiles/s4_text.dir/tokenizer.cc.o.d"
  "libs4_text.a"
  "libs4_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
