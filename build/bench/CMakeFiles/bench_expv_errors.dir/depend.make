# Empty dependencies file for bench_expv_errors.
# This may be replaced when dependencies are built.
