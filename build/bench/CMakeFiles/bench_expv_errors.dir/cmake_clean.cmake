file(REMOVE_RECURSE
  "CMakeFiles/bench_expv_errors.dir/bench_expv_errors.cc.o"
  "CMakeFiles/bench_expv_errors.dir/bench_expv_errors.cc.o.d"
  "bench_expv_errors"
  "bench_expv_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expv_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
