file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fig7_strategies.dir/bench_fig6_fig7_strategies.cc.o"
  "CMakeFiles/bench_fig6_fig7_strategies.dir/bench_fig6_fig7_strategies.cc.o.d"
  "bench_fig6_fig7_strategies"
  "bench_fig6_fig7_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fig7_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
