# Empty compiler generated dependencies file for bench_fig6_fig7_strategies.
# This may be replaced when dependencies are built.
