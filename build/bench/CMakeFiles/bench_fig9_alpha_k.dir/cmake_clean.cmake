file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_alpha_k.dir/bench_fig9_alpha_k.cc.o"
  "CMakeFiles/bench_fig9_alpha_k.dir/bench_fig9_alpha_k.cc.o.d"
  "bench_fig9_alpha_k"
  "bench_fig9_alpha_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_alpha_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
