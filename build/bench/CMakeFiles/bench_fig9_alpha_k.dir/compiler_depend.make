# Empty compiler generated dependencies file for bench_fig9_alpha_k.
# This may be replaced when dependencies are built.
