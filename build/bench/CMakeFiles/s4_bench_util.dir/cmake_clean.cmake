file(REMOVE_RECURSE
  "CMakeFiles/s4_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/s4_bench_util.dir/bench_util.cc.o.d"
  "libs4_bench_util.a"
  "libs4_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
