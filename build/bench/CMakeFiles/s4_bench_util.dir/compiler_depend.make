# Empty compiler generated dependencies file for s4_bench_util.
# This may be replaced when dependencies are built.
