file(REMOVE_RECURSE
  "libs4_bench_util.a"
)
