# Empty dependencies file for bench_user_study_mrr.
# This may be replaced when dependencies are built.
