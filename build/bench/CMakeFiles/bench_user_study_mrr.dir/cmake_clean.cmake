file(REMOVE_RECURSE
  "CMakeFiles/bench_user_study_mrr.dir/bench_user_study_mrr.cc.o"
  "CMakeFiles/bench_user_study_mrr.dir/bench_user_study_mrr.cc.o.d"
  "bench_user_study_mrr"
  "bench_user_study_mrr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_user_study_mrr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
