file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_operators.dir/bench_micro_operators.cc.o"
  "CMakeFiles/bench_micro_operators.dir/bench_micro_operators.cc.o.d"
  "bench_micro_operators"
  "bench_micro_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
