file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fig13_or_semantics.dir/bench_fig12_fig13_or_semantics.cc.o"
  "CMakeFiles/bench_fig12_fig13_or_semantics.dir/bench_fig12_fig13_or_semantics.cc.o.d"
  "bench_fig12_fig13_or_semantics"
  "bench_fig12_fig13_or_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fig13_or_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
