# Empty dependencies file for bench_fig12_fig13_or_semantics.
# This may be replaced when dependencies are built.
