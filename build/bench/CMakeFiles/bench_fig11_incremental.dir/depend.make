# Empty dependencies file for bench_fig11_incremental.
# This may be replaced when dependencies are built.
