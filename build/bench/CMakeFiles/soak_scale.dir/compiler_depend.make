# Empty compiler generated dependencies file for soak_scale.
# This may be replaced when dependencies are built.
