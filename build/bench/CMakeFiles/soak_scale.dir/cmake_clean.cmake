file(REMOVE_RECURSE
  "CMakeFiles/soak_scale.dir/soak_scale.cc.o"
  "CMakeFiles/soak_scale.dir/soak_scale.cc.o.d"
  "soak_scale"
  "soak_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
