file(REMOVE_RECURSE
  "CMakeFiles/bench_expvi_epsilon.dir/bench_expvi_epsilon.cc.o"
  "CMakeFiles/bench_expvi_epsilon.dir/bench_expvi_epsilon.cc.o.d"
  "bench_expvi_epsilon"
  "bench_expvi_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expvi_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
