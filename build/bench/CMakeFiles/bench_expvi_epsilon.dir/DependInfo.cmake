
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_expvi_epsilon.cc" "bench/CMakeFiles/bench_expvi_epsilon.dir/bench_expvi_epsilon.cc.o" "gcc" "bench/CMakeFiles/bench_expvi_epsilon.dir/bench_expvi_epsilon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/s4_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/s4/CMakeFiles/s4_system.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/s4_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/enumerate/CMakeFiles/s4_enumerate.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/s4_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/score/CMakeFiles/s4_score.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/s4_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/s4_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/s4_index.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/s4_query.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/s4_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s4_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/s4_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s4_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
