# Empty compiler generated dependencies file for bench_expvi_epsilon.
# This may be replaced when dependencies are built.
