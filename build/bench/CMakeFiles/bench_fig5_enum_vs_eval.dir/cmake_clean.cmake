file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_enum_vs_eval.dir/bench_fig5_enum_vs_eval.cc.o"
  "CMakeFiles/bench_fig5_enum_vs_eval.dir/bench_fig5_enum_vs_eval.cc.o.d"
  "bench_fig5_enum_vs_eval"
  "bench_fig5_enum_vs_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_enum_vs_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
