# Empty compiler generated dependencies file for bench_fig5_enum_vs_eval.
# This may be replaced when dependencies are built.
