#include "service/s4_service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/hash_util.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace s4 {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The slow-log floor lives in an atomic<uint64_t> (atomic<double> CAS
// loops are overkill for a monotone threshold); non-negative latencies
// bit-cast order-preservingly.
uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

const char* SlowLogStrategyName(S4System::Strategy s) {
  switch (s) {
    case S4System::Strategy::kNaive:
      return "naive";
    case S4System::Strategy::kBaseline:
      return "baseline";
    case S4System::Strategy::kFastTopK:
      return "fasttopk";
  }
  return "unknown";
}

// Registry counters bumped at service events (admission, completion).
// References resolved once; the registry keeps them stable.
struct ServiceCounters {
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Counter* completed;
  obs::Counter* deadline_misses;
  obs::Counter* cancelled;
  obs::Counter* failed;
  obs::Histogram* request_latency;
};

const ServiceCounters& Counters() {
  static const ServiceCounters c = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return ServiceCounters{
        &reg.GetCounter("s4_service_accepted_total"),
        &reg.GetCounter("s4_service_rejected_total"),
        &reg.GetCounter("s4_service_completed_total"),
        &reg.GetCounter("s4_service_deadline_misses_total"),
        &reg.GetCounter("s4_service_cancelled_total"),
        &reg.GetCounter("s4_service_failed_total"),
        &reg.GetHistogram("s4_request_latency_seconds"),
    };
  }();
  return c;
}

}  // namespace

S4Service::S4Service(const S4System& system, ServiceOptions options)
    // Non-owning alias pin: the caller guarantees `system` outlives the
    // service, the shared_ptr is just the common-constructor currency.
    : S4Service(std::shared_ptr<const S4System>(
                    std::shared_ptr<const S4System>(), &system),
                /*live=*/nullptr, options) {}

S4Service::S4Service(LiveS4System& live, ServiceOptions options)
    : S4Service(live.current(), &live, options) {}

S4Service::S4Service(std::shared_ptr<const S4System> root,
                     LiveS4System* live, ServiceOptions options)
    : root_system_(std::move(root)),
      live_(live),
      system_(root_system_.get()),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.eval_threads)),
      shared_cache_(options.shared_cache_bytes,
                    options.shared_cache_shards > 0
                        ? options.shared_cache_shards
                        : SubQueryCache::ShardsForThreads(
                              pool_->num_threads())) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.max_queue < 1) options_.max_queue = 1;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

S4Service::~S4Service() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::string S4Service::CachePrefix(
    const std::vector<std::vector<std::string>>& cells,
    const SearchOptions& options) const {
  // Everything that shapes a sub-PJ table's *contents* beyond its
  // canonical sub-query key must land in the fingerprint; anything extra
  // only fragments sharing, never breaks it. Cell separators keep
  // {"ab",""} distinct from {"a","b"}.
  std::string buf;
  for (const auto& row : cells) {
    for (const std::string& cell : row) {
      buf += cell;
      buf += '\x1f';
    }
    buf += '\x1e';
  }
  buf += StrFormat("|idf=%d|emb=%.17g|sp=%d|dz=%d",
                   options.score.use_idf ? 1 : 0,
                   options.score.exact_match_bonus,
                   options.score.spelling_edits,
                   options.drop_zero_rows ? 1 : 0);
  return StrFormat("g%llu|s%016llx|",
                   static_cast<unsigned long long>(
                       generation_.load(std::memory_order_relaxed)),
                   static_cast<unsigned long long>(FingerprintString(buf)));
}

Status S4Service::Admit(std::shared_ptr<Pending> pending) {
  S4_RETURN_IF_ERROR(ValidateSearchOptions(pending->request.options));
  if (pending->request.deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        StrFormat("deadline_seconds must be non-negative, got %f",
                  pending->request.deadline_seconds));
  }
  if (options_.shard_count > 0 &&
      (pending->request.options.shard_count != options_.shard_count ||
       pending->request.options.shard_index != options_.shard_index)) {
    return Status::FailedPrecondition(StrFormat(
        "shard-aware admission: this service owns slice %d of %d, request "
        "targets slice %d of %d",
        options_.shard_index, options_.shard_count,
        pending->request.options.shard_index,
        pending->request.options.shard_count));
  }
  pending->stop = std::make_shared<StopToken>();
  pending->admitted = std::chrono::steady_clock::now();
  // Deadline resolution: request > options > service default. Armed at
  // admission so queue wait counts against it.
  double deadline = pending->request.deadline_seconds;
  if (deadline <= 0.0) deadline = pending->request.options.deadline_seconds;
  if (deadline <= 0.0) deadline = options_.default_deadline_seconds;
  if (deadline > 0.0) pending->stop->SetDeadline(deadline);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("service is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Counters().rejected->Increment();
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%zu queued)", queue_.size()));
    }
    pending->seq = next_seq_++;
    queue_.push(std::move(pending));
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  Counters().accepted->Increment();
  cv_.notify_one();
  return Status::OK();
}

StatusOr<S4Service::Ticket> S4Service::Submit(ServiceRequest request) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  Ticket ticket;
  ticket.result = pending->promise.get_future();
  S4_RETURN_IF_ERROR(Admit(pending));
  ticket.stop = pending->stop;
  return ticket;
}

StatusOr<std::shared_ptr<StopToken>> S4Service::SubmitAsync(
    ServiceRequest request,
    std::function<void(StatusOr<SearchResult>)> done) {
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  S4_RETURN_IF_ERROR(Admit(pending));
  return pending->stop;
}

StatusOr<SearchResult> S4Service::Search(ServiceRequest request) {
  auto ticket = Submit(std::move(request));
  if (!ticket.ok()) return ticket.status();
  return ticket->result.get();
}

void S4Service::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      // On shutdown, drain the queue so every admitted future resolves.
      if (queue_.empty()) return;
      p = queue_.top();
      queue_.pop();
    }
    RunPending(*p);
  }
}

void S4Service::CountOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      Counters().completed->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      Counters().deadline_misses->Increment();
      break;
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      Counters().cancelled->Increment();
      break;
    default:
      failed_.fetch_add(1, std::memory_order_relaxed);
      Counters().failed->Increment();
      break;
  }
}

void S4Service::RunPending(Pending& p) {
  obs::Trace* trace = p.request.trace.get();
  const double queue_seconds = SecondsSince(p.admitted);
  if (trace != nullptr) {
    trace->AddSpan("service", "admission_queue_wait", p.admitted,
                   std::chrono::steady_clock::now());
  }
  StatusOr<SearchResult> result = [&]() -> StatusOr<SearchResult> {
    // A request abandoned (or expired) while queued is not worth
    // starting at all.
    if (p.stop->cancelled()) {
      if (trace != nullptr) {
        trace->AddInstant("service", "cancelled_while_queued");
      }
      return Status::Cancelled("request cancelled while queued");
    }
    if (p.stop->deadline_expired()) {
      if (trace != nullptr) {
        trace->AddInstant("service", "deadline_expired_while_queued");
      }
      return Status::DeadlineExceeded("deadline expired while queued");
    }
    SearchOptions opts = p.request.options;
    opts.pool = pool_.get();
    opts.stop = p.stop.get();
    opts.deadline_seconds = 0.0;  // the admission token already carries it
    opts.shared_cache = &shared_cache_;
    opts.shared_cache_prefix = CachePrefix(p.request.cells, opts);
    opts.trace = trace;
    // Live deployments: pin the current epoch for this one request. The
    // pin keeps the whole index snapshot alive through the search even
    // if writers publish (and readers elsewhere retire) newer epochs.
    const S4System* sys = system_;
    std::shared_ptr<const S4System> pinned;
    if (live_ != nullptr) {
      pinned = live_->current();
      sys = pinned.get();
    }
    obs::SpanTimer span(trace, "service", "search");
    return sys->Search(p.request.cells, opts, p.request.strategy);
  }();
  CountOutcome(result.status());
  const double elapsed = SecondsSince(p.admitted);
  latency_.Record(elapsed);
  Counters().request_latency->Observe(elapsed);
  if (result.ok()) {
    // The strategy filled the work counters; only the service knows the
    // end-to-end wall clock, so the timing envelope is stamped here.
    result->profile.total_seconds = elapsed;
    result->profile.queue_seconds = queue_seconds;
  }
  MaybeRecordSlowQuery(p, result, elapsed, queue_seconds);
  if (p.done) {
    p.done(std::move(result));
  } else {
    p.promise.set_value(std::move(result));
  }
}

void S4Service::MaybeRecordSlowQuery(const Pending& p,
                                     const StatusOr<SearchResult>& result,
                                     double elapsed, double queue_seconds) {
  if (options_.slow_log_size == 0) return;
  if (elapsed < options_.slow_log_threshold_seconds) return;
  // Lock-free reject: once the ring is full, the floor holds the
  // slowest-N cutoff; a request below it can never be inserted, so the
  // common fast-request case costs one relaxed load.
  if (elapsed <= BitsToDouble(
                     slow_log_floor_bits_.load(std::memory_order_relaxed))) {
    return;
  }
  SlowLogEntry entry;
  entry.unix_ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  if (p.request.trace != nullptr) {
    entry.request_id = p.request.trace->request_id();
    entry.trace_id = p.request.trace->trace_id();
  }
  entry.elapsed_seconds = elapsed;
  entry.queue_seconds = queue_seconds;
  entry.rows = static_cast<int32_t>(p.request.cells.size());
  entry.cols = p.request.cells.empty()
                   ? 0
                   : static_cast<int32_t>(p.request.cells.front().size());
  entry.k = p.request.options.k;
  entry.strategy = SlowLogStrategyName(p.request.strategy);
  entry.status = result.ok() ? "OK" : result.status().ToString();
  if (result.ok()) entry.profile = result->profile;

  std::lock_guard<std::mutex> lock(slow_log_mu_);
  // Re-check under the lock: the floor may have risen since the relaxed
  // load (two slow requests completing together).
  if (slow_log_.size() >= options_.slow_log_size) {
    auto slowest_n_floor = std::min_element(
        slow_log_.begin(), slow_log_.end(),
        [](const SlowLogEntry& a, const SlowLogEntry& b) {
          return a.elapsed_seconds < b.elapsed_seconds;
        });
    if (elapsed <= slowest_n_floor->elapsed_seconds) return;
    *slowest_n_floor = SlowLogEntry{};  // evict: overwrite in place
    entry.seq = ++slow_log_seq_;
    *slowest_n_floor = std::move(entry);
  } else {
    entry.seq = ++slow_log_seq_;
    slow_log_.push_back(std::move(entry));
  }
  if (slow_log_.size() >= options_.slow_log_size) {
    const double floor =
        std::min_element(slow_log_.begin(), slow_log_.end(),
                         [](const SlowLogEntry& a, const SlowLogEntry& b) {
                           return a.elapsed_seconds < b.elapsed_seconds;
                         })
            ->elapsed_seconds;
    slow_log_floor_bits_.store(DoubleToBits(floor),
                               std::memory_order_relaxed);
  }
}

std::vector<SlowLogEntry> S4Service::SlowLog() const {
  std::vector<SlowLogEntry> snapshot;
  {
    std::lock_guard<std::mutex> lock(slow_log_mu_);
    snapshot = slow_log_;
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const SlowLogEntry& a, const SlowLogEntry& b) {
              return a.elapsed_seconds > b.elapsed_seconds;
            });
  return snapshot;
}

std::string S4Service::SlowLogJson() const {
  const std::vector<SlowLogEntry> entries = SlowLog();
  std::string out = "{\"slow_log\":[";
  bool first = true;
  for (const SlowLogEntry& e : entries) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"seq\":%llu,\"unix_ts_us\":%lld,\"request_id\":%llu,"
        "\"trace_id\":%llu,\"elapsed_ms\":%.3f,\"queue_ms\":%.3f,"
        "\"rows\":%d,\"cols\":%d,\"k\":%d,\"strategy\":\"%s\","
        "\"status\":\"%s\",\"profile\":{"
        "\"enum_ms\":%.3f,\"eval_ms\":%.3f,"
        "\"candidates_enumerated\":%lld,\"candidates_evaluated\":%lld,"
        "\"rows_scanned\":%lld,\"cache_hits\":%lld,\"cache_misses\":%lld,"
        "\"approx_samples\":%lld}}",
        static_cast<unsigned long long>(e.seq),
        static_cast<long long>(e.unix_ts_us),
        static_cast<unsigned long long>(e.request_id),
        static_cast<unsigned long long>(e.trace_id),
        e.elapsed_seconds * 1e3, e.queue_seconds * 1e3, e.rows, e.cols, e.k,
        obs::JsonEscape(e.strategy).c_str(),
        obs::JsonEscape(e.status).c_str(), e.profile.enum_seconds * 1e3,
        e.profile.eval_seconds * 1e3,
        static_cast<long long>(e.profile.candidates_enumerated),
        static_cast<long long>(e.profile.candidates_evaluated),
        static_cast<long long>(e.profile.rows_scanned),
        static_cast<long long>(e.profile.cache_hits),
        static_cast<long long>(e.profile.cache_misses),
        static_cast<long long>(e.profile.approx_samples));
  }
  out += "]}";
  return out;
}

StatusOr<uint64_t> S4Service::OpenSession(SearchOptions options) {
  S4_RETURN_IF_ERROR(ValidateSearchOptions(options));
  // Sessions share the service pool; per-call fields (stop token, cache
  // prefix) are re-pointed by SessionSearch under the session lock.
  options.pool = pool_.get();
  options.shared_cache = &shared_cache_;
  // Live deployments: a session pins the epoch it opened against for its
  // whole life — its incremental state (Sec 5.4) indexes into that
  // epoch's candidate space, so hopping epochs mid-session would corrupt
  // the reuse bookkeeping. Re-open a session to pick up newer writes.
  std::shared_ptr<const S4System> pinned =
      live_ != nullptr ? live_->current() : nullptr;
  const S4System* sys = pinned != nullptr ? pinned.get() : system_;
  auto entry = std::make_unique<SessionEntry>(sys->NewSession(options));
  entry->pinned = std::move(pinned);
  entry->sys = sys;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const uint64_t id = next_session_id_++;
  sessions_.emplace(id, std::move(entry));
  return id;
}

StatusOr<SearchResult> S4Service::SessionSearch(
    uint64_t session_id, const std::vector<std::vector<std::string>>& cells,
    IncrementalMode mode) {
  SessionEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound(
          StrFormat("no session %llu",
                    static_cast<unsigned long long>(session_id)));
    }
    entry = it->second.get();
  }
  // One search at a time per session (the history is conversational
  // state); distinct sessions run concurrently. CloseSession never frees
  // an entry mid-search: it also takes this per-entry lock.
  std::lock_guard<std::mutex> lock(entry->mu);
  auto sheet = entry->sys->MakeSpreadsheet(cells);
  if (!sheet.ok()) return sheet.status();
  SearchOptions& so = entry->session.mutable_options();
  so.shared_cache_prefix = CachePrefix(cells, so);
  // A stop token supplied at OpenSession is honoured across every search
  // in the session (cooperative session-level cancellation, and a
  // deterministic expiry hook for tests); otherwise a per-search token
  // is armed from the session deadline.
  const StopToken* caller_stop = so.stop;
  StopToken token;
  if (caller_stop == nullptr && so.deadline_seconds > 0.0) {
    token.SetDeadline(so.deadline_seconds);
    so.stop = &token;
  }
  SearchResult result = entry->session.Search(*sheet, mode);
  so.stop = caller_stop;  // never leave the stack token dangling
  Status status = Status::OK();
  if (result.interrupted) {
    status = caller_stop != nullptr && caller_stop->cancelled()
                 ? Status::Cancelled("session search cancelled")
                 : Status::DeadlineExceeded(
                       "session search exceeded its deadline");
  }
  CountOutcome(status);
  if (!status.ok()) return status;
  return result;
}

Status S4Service::CloseSession(uint64_t session_id) {
  std::unique_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound(
          StrFormat("no session %llu",
                    static_cast<unsigned long long>(session_id)));
    }
    entry = std::move(it->second);
    sessions_.erase(it);
  }
  // Wait out any in-flight search before the entry is destroyed.
  std::lock_guard<std::mutex> lock(entry->mu);
  return Status::OK();
}

StatusOr<MutationResult> S4Service::Mutate(const std::vector<Mutation>& batch,
                                           const StopToken* stop,
                                           obs::Trace* trace) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "this service wraps an immutable S4System; construct it from a "
        "LiveS4System to enable mutations");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("service is shutting down");
    }
  }
  // Deliberately no generation_ bump: per-relation stamps in the sub-PJ
  // cache keys retire exactly the entries the batch touched.
  return live_->Apply(batch, stop, trace);
}

StatusOr<std::shared_ptr<StopToken>> S4Service::SubmitMutateAsync(
    std::vector<Mutation> batch,
    std::function<void(StatusOr<MutationResult>)> done,
    obs::Trace* trace) {
  if (live_ == nullptr) {
    return Status::FailedPrecondition(
        "this service wraps an immutable S4System; construct it from a "
        "LiveS4System to enable mutations");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("service is shutting down");
    }
  }
  auto stop = std::make_shared<StopToken>();
  // Writes ride the shared evaluation pool rather than the admission
  // queue: they serialize on the live system's write lock anyway, and a
  // full search queue must not delay (or reject) writes behind reads.
  pool_->Submit([this, batch = std::move(batch), done = std::move(done),
                 stop, trace]() mutable {
    done(live_->Apply(batch, stop.get(), trace));
  });
  return stop;
}

void S4Service::InvalidateSharedCache() {
  // New generation first: requests admitted from here on miss the old
  // key space even before the eager drop below completes.
  generation_.fetch_add(1, std::memory_order_relaxed);
  shared_cache_.Clear();
}

void S4Service::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void S4Service::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

ServiceStats S4Service::stats() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cache_generation = generation_.load(std::memory_order_relaxed);
  s.shared_cache = shared_cache_.stats();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.sessions_open = static_cast<int64_t>(sessions_.size());
  }

  // Refresh the instantaneous gauges in the global registry on every
  // collection: last-writer-wins values scraped from the one place that
  // can see the queue, the session map, the pool, and the shared cache
  // together. Lifetime pool totals are exported as gauges too — the
  // pool keeps raw atomics (no registry dependency), so Set() with the
  // current value is the faithful translation.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("s4_service_queue_depth").Set(static_cast<int64_t>(s.queue_depth));
  reg.GetGauge("s4_service_sessions_open").Set(s.sessions_open);
  const ThreadPool::Stats pool_stats = pool_->stats();
  reg.GetGauge("s4_pool_queue_depth").Set(pool_stats.queued);
  reg.GetGauge("s4_pool_tasks_executed").Set(pool_stats.executed);
  reg.GetGauge("s4_pool_steals").Set(pool_stats.steals);
  reg.GetGauge("s4_shared_cache_bytes")
      .Set(static_cast<int64_t>(shared_cache_.bytes_used()));
  if (live_ != nullptr) {
    reg.GetGauge("s4_live_epoch")
        .Set(static_cast<int64_t>(live_->epoch()));
  }
  return s;
}

LatencyHistogram::Snapshot S4Service::latency() const {
  return latency_.snapshot();
}

}  // namespace s4
