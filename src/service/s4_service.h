#ifndef S4_SERVICE_S4_SERVICE_H_
#define S4_SERVICE_S4_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/latency_histogram.h"
#include "common/stop_token.h"
#include "common/thread_pool.h"
#include "live/live_s4.h"
#include "live/mutation.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "s4/s4.h"

namespace s4 {

// Configuration of a long-lived S4Service instance.
struct ServiceOptions {
  // Dispatcher threads popping the admission queue and driving searches.
  // Each running request fans its Stage-II evaluation out on the shared
  // pool, so a few workers saturate the machine.
  int32_t num_workers = 2;
  // Size of the shared work-stealing evaluation pool; 0 = one worker per
  // hardware thread. One pool serves every request instead of a pool per
  // Search call.
  int32_t eval_threads = 0;
  // Admission-queue capacity: a Submit finding this many requests queued
  // is rejected with ResourceExhausted (backpressure, never unbounded
  // buffering).
  size_t max_queue = 64;
  // Byte budget of the global cross-query sub-PJ cache.
  size_t shared_cache_bytes = 500u << 20;
  // Shards of the shared cache; 0 = derived from eval_threads.
  int32_t shared_cache_shards = 0;
  // Deadline applied to requests that do not carry their own (0 = none).
  double default_deadline_seconds = 0.0;
  // Shard-aware admission (DESIGN.md "Distributed serving"): when
  // shard_count > 0 this service owns exactly one candidate-space slice
  // and rejects (FailedPrecondition) any request that does not
  // explicitly target it, so a mis-routed request fails loudly instead
  // of silently answering with a slice of the top-k. 0 (the default) =
  // not shard-aware: requests may carry any slice through their own
  // SearchOptions.
  int32_t shard_count = 0;
  int32_t shard_index = 0;
  // Slow-query log: keep the `slow_log_size` slowest completed requests
  // (0 = disabled, no capture cost on the completion path beyond one
  // relaxed atomic load). Hybrid capture rule: a request is considered
  // only when its end-to-end latency reaches the threshold, and once the
  // ring is full it must also beat the current slowest-N floor.
  size_t slow_log_size = 0;
  double slow_log_threshold_seconds = 0.0;
};

// One search request as admitted by the service.
struct ServiceRequest {
  // Raw spreadsheet cells (rows x columns; empty string = empty cell).
  std::vector<std::vector<std::string>> cells;
  SearchOptions options;
  S4System::Strategy strategy = S4System::Strategy::kFastTopK;
  // Higher runs first; FIFO among equal priorities.
  int32_t priority = 0;
  // Overrides options.deadline_seconds (and the service default) when
  // positive. Measured from admission, covering queue wait.
  double deadline_seconds = 0.0;
  // Per-request trace sink: when set, the service records queue-wait
  // and search spans into it (and points options.trace at it for the
  // strategy/evaluator spans). Shared so the caller can keep the trace
  // alive past completion (e.g. the server's trace store).
  std::shared_ptr<obs::Trace> trace;
};

// Monotonic service counters plus a snapshot of the shared-cache stats.
struct ServiceStats {
  int64_t accepted = 0;
  int64_t rejected = 0;         // backpressure rejections at admission
  int64_t completed = 0;        // finished with OK
  int64_t deadline_misses = 0;  // finished with DeadlineExceeded
  int64_t cancelled = 0;        // finished with Cancelled
  int64_t failed = 0;           // finished with any other error
  int64_t sessions_open = 0;
  uint64_t cache_generation = 0;
  size_t queue_depth = 0;
  CacheStats shared_cache;  // cross-query hits/misses/evictions/bytes
};

// One captured slow request (see ServiceOptions::slow_log_size). Holds
// everything needed to re-run and diagnose the query without the
// original connection: a summary of the canonical request, the outcome,
// and the full per-request resource profile.
struct SlowLogEntry {
  uint64_t seq = 0;           // capture order (monotonic)
  int64_t unix_ts_us = 0;     // wall-clock completion time
  uint64_t request_id = 0;    // trace request id (0 when untraced)
  uint64_t trace_id = 0;      // distributed trace id (0 when untraced)
  double elapsed_seconds = 0.0;  // admission -> completion
  double queue_seconds = 0.0;    // admission-queue wait
  int32_t rows = 0;              // query spreadsheet shape
  int32_t cols = 0;
  int32_t k = 0;
  std::string strategy;
  std::string status;  // "OK" or the error Status string
  obs::QueryProfile profile;
};

// Long-lived concurrent query service over one database (ROADMAP north
// star: one S4 deployment serving many users). Wraps an S4System with:
//
//  * one shared work-stealing ThreadPool sized to the machine — Search
//    calls no longer construct a pool each;
//  * a global cross-query SubQueryCache: sub-PJ output relations built
//    for one request are reused verbatim by later requests with the same
//    canonical signature (Sec 5.2's sharing argument lifted from
//    intra-query to inter-query scope), under one byte budget, with a
//    generation tag for invalidation;
//  * a bounded priority admission queue with reject-with-Status
//    backpressure;
//  * per-request deadlines and cooperative cancellation (StopToken
//    polled at strategy batch boundaries), so abandoned requests stop
//    burning evaluator work;
//  * a registry of incremental SearchSessions so spreadsheet-edit
//    streams (Sec 5.4) survive across requests.
//
// Thread-safe: any thread may Submit/Search/OpenSession/etc. The wrapped
// S4System (and its Database) must outlive the service.
class S4Service {
 public:
  // Handle of an admitted request: the future resolves to the search
  // result or to Cancelled / DeadlineExceeded / an execution error, and
  // the token lets the client abandon the request cooperatively.
  struct Ticket {
    std::future<StatusOr<SearchResult>> result;
    std::shared_ptr<StopToken> stop;
  };

  explicit S4Service(const S4System& system, ServiceOptions options = {});
  // Live deployment: searches run against the mutable system's current
  // epoch (pinned per request, so a search sees one consistent snapshot
  // no matter how many mutations land while it runs) and Mutate /
  // SubmitMutateAsync are enabled. The LiveS4System must outlive the
  // service.
  explicit S4Service(LiveS4System& live, ServiceOptions options = {});
  // Drains the queue (every admitted future resolves) and joins workers.
  ~S4Service();

  S4Service(const S4Service&) = delete;
  S4Service& operator=(const S4Service&) = delete;

  // Admission control: validates the request, then either enqueues it
  // (returning a Ticket) or rejects it immediately — InvalidArgument for
  // nonsensical options, ResourceExhausted when the queue is full.
  StatusOr<Ticket> Submit(ServiceRequest request);

  // Callback-style admission for event-driven callers (the network
  // layer): same validation/backpressure as Submit, but instead of a
  // future the completion is delivered by invoking `done` exactly once
  // on the worker thread that ran (or drained) the request. The caller
  // must therefore treat `done` as running on a foreign thread and
  // marshal back to its own executor (e.g. EventLoop::Post). Returns the
  // request's StopToken so the caller can cancel on client disconnect.
  StatusOr<std::shared_ptr<StopToken>> SubmitAsync(
      ServiceRequest request,
      std::function<void(StatusOr<SearchResult>)> done);

  // Blocking convenience wrapper: Submit + wait.
  StatusOr<SearchResult> Search(ServiceRequest request);

  // --- incremental session registry (Sec 5.4 across requests) --------
  // Sessions run on the caller's thread (they are conversational, not
  // queued) but share the service's evaluation pool and cross-query
  // cache. Searches within one session serialize on the session.
  StatusOr<uint64_t> OpenSession(SearchOptions options = {});
  StatusOr<SearchResult> SessionSearch(
      uint64_t session_id, const std::vector<std::vector<std::string>>& cells,
      IncrementalMode mode = IncrementalMode::kFastTopKInc);
  Status CloseSession(uint64_t session_id);

  // --- live mutation write path (live-constructed services only) ------
  // Applies one batch against the wrapped LiveS4System (see
  // src/live/mutation.h for batch-as-a-sequence semantics). Blocking;
  // writes serialize inside the live system. Returns FailedPrecondition
  // when the service wraps an immutable S4System. Mutations never bump
  // the shared-cache generation: invalidation is per-relation, via the
  // generation stamps baked into sub-PJ cache keys, so entries built
  // against untouched relations keep hitting.
  StatusOr<MutationResult> Mutate(const std::vector<Mutation>& batch,
                                  const StopToken* stop = nullptr,
                                  obs::Trace* trace = nullptr);

  // Callback-style write admission for event-driven callers (the network
  // layer): the batch runs on the shared evaluation pool and `done` is
  // invoked exactly once on a foreign thread (marshal back to your own
  // executor). The returned StopToken cancels cooperatively — the
  // applied prefix is still published. Fails fast (before scheduling)
  // for immutable deployments and during shutdown.
  StatusOr<std::shared_ptr<StopToken>> SubmitMutateAsync(
      std::vector<Mutation> batch,
      std::function<void(StatusOr<MutationResult>)> done,
      obs::Trace* trace = nullptr);

  // Invalidates every cross-query cache entry by bumping the key-space
  // generation (and eagerly dropping the bytes). The blunt "invalidate
  // everything" instrument, kept for out-of-band database reloads; the
  // live write path (Mutate) never needs it — its invalidation is
  // per-relation through the key stamps.
  void InvalidateSharedCache();

  // Ops/test hook: a paused service keeps admitting up to max_queue
  // requests but runs none until Resume (deterministic backpressure and
  // cancellation tests; drain-before-maintenance in deployments).
  void Pause();
  void Resume();

  ServiceStats stats() const;
  // End-to-end request latency (admission to completion), all requests.
  LatencyHistogram::Snapshot latency() const;

  bool slow_log_enabled() const { return options_.slow_log_size > 0; }
  // Snapshot of the slow-query ring, slowest first. Empty when disabled.
  std::vector<SlowLogEntry> SlowLog() const;
  // The same snapshot as a JSON document ({"slow_log":[...]}) — the
  // payload of the kSlowLogResponse frame and `net_server --slow-log`.
  std::string SlowLogJson() const;

  // The served system. Live deployments: epoch 0 — stable for schema /
  // database access (neither changes; there is no DDL), NOT for reading
  // index state. Searches pin the current epoch internally.
  const S4System& system() const { return *system_; }
  // Null for immutable deployments.
  LiveS4System* live() const { return live_; }
  ThreadPool& eval_pool() { return *pool_; }
  SubQueryCache& shared_cache() { return shared_cache_; }

 private:
  struct Pending {
    ServiceRequest request;
    std::shared_ptr<StopToken> stop;
    std::promise<StatusOr<SearchResult>> promise;
    // When set, completion goes through the callback instead of the
    // promise (SubmitAsync admissions).
    std::function<void(StatusOr<SearchResult>)> done;
    int64_t seq = 0;
    std::chrono::steady_clock::time_point admitted;
  };
  struct PendingOrder {
    bool operator()(const std::shared_ptr<Pending>& a,
                    const std::shared_ptr<Pending>& b) const {
      if (a->request.priority != b->request.priority) {
        return a->request.priority < b->request.priority;  // max-heap
      }
      return a->seq > b->seq;  // FIFO among equals
    }
  };
  struct SessionEntry {
    std::mutex mu;
    SearchSession session;
    // Live deployments: the epoch this session was opened against, kept
    // alive for the session's whole life (its incremental state indexes
    // into that epoch's candidate space). Null for immutable services.
    std::shared_ptr<const S4System> pinned;
    // The system the session searches (pinned epoch or the static one).
    const S4System* sys = nullptr;
    explicit SessionEntry(SearchSession s) : session(std::move(s)) {}
  };

  // Common constructor: `root` pins the system the service serves when
  // live (epoch 0 of a LiveS4System; non-owning alias for the static
  // overload), `live` is null for immutable deployments.
  S4Service(std::shared_ptr<const S4System> root, LiveS4System* live,
            ServiceOptions options);

  void WorkerLoop();
  // Validation + deadline arming + enqueue, shared by Submit and
  // SubmitAsync (the Pending must already carry its completion style).
  Status Admit(std::shared_ptr<Pending> pending);
  void RunPending(Pending& p);
  void CountOutcome(const Status& status);
  // Slow-log capture (completion path). The atomic floor makes the
  // common case — a fast request against a full ring — a single relaxed
  // load with no lock.
  void MaybeRecordSlowQuery(const Pending& p,
                            const StatusOr<SearchResult>& result,
                            double elapsed, double queue_seconds);
  // Canonical cross-query key namespace for a request: generation tag +
  // fingerprint of everything the sub-PJ tables depend on besides the
  // canonical sub-query key (spreadsheet cells and the scoring/eval
  // parameters that shape table contents).
  std::string CachePrefix(
      const std::vector<std::vector<std::string>>& cells,
      const SearchOptions& options) const;

  // Declared before system_: system_ aliases root_system_.get() when
  // live, so the pin must construct first and destroy last.
  std::shared_ptr<const S4System> root_system_;
  LiveS4System* live_ = nullptr;  // null = immutable deployment
  const S4System* system_;
  ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  SubQueryCache shared_cache_;
  std::atomic<uint64_t> generation_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<std::shared_ptr<Pending>,
                      std::vector<std::shared_ptr<Pending>>, PendingOrder>
      queue_;
  bool paused_ = false;
  bool shutdown_ = false;
  int64_t next_seq_ = 0;
  std::vector<std::thread> workers_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<SessionEntry>> sessions_;
  uint64_t next_session_id_ = 1;

  // Slow-query ring (unsorted; SlowLog() sorts the snapshot). The floor
  // is the smallest captured latency once the ring is full, bit-cast to
  // u64 so the reject fast path needs no lock; 0.0 while space remains.
  mutable std::mutex slow_log_mu_;
  std::vector<SlowLogEntry> slow_log_;
  std::atomic<uint64_t> slow_log_floor_bits_{0};
  uint64_t slow_log_seq_ = 0;

  LatencyHistogram latency_;
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> deadline_misses_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> failed_{0};
};

}  // namespace s4

#endif  // S4_SERVICE_S4_SERVICE_H_
