#ifndef S4_TEXT_TOKENIZER_H_
#define S4_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace s4 {

// Tokenization mode. kWord is the paper's default (Sec 6.1): lowercase
// alphanumeric tokens, discarding tokens with non-alphanumeric characters
// or longer than 15 characters. kNGram implements the Appendix A.2
// extension for fuzzy matching: character n-grams of the word tokens.
enum class TokenizerMode {
  kWord,
  kNGram,
};

struct TokenizerOptions {
  TokenizerMode mode = TokenizerMode::kWord;
  // Max token length; longer word tokens are discarded (paper: 15).
  size_t max_token_length = 15;
  // N-gram width for kNGram mode.
  size_t ngram_size = 3;
};

// Splits cell text into index/query terms. Both database cells and
// example-spreadsheet cells must be tokenized with the same instance so
// vocabularies align.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  const TokenizerOptions& options() const { return options_; }

  // Tokenizes `text` into terms (possibly with duplicates, in order).
  std::vector<std::string> Tokenize(std::string_view text) const;

  // Tokenizes and deduplicates, preserving first-occurrence order. Cell
  // similarity counts *distinct* matching terms, so queries use this.
  std::vector<std::string> TokenizeUnique(std::string_view text) const;

 private:
  std::vector<std::string> WordTokens(std::string_view text) const;

  TokenizerOptions options_;
};

}  // namespace s4

#endif  // S4_TEXT_TOKENIZER_H_
