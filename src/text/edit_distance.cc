#include "text/edit_distance.h"

#include <algorithm>
#include <cstdlib>

namespace s4 {

bool WithinEditDistance(std::string_view a, std::string_view b,
                        int32_t max_edits) {
  const int32_t n = static_cast<int32_t>(a.size());
  const int32_t m = static_cast<int32_t>(b.size());
  if (std::abs(n - m) > max_edits) return false;
  if (max_edits == 0) return a == b;

  // Banded Levenshtein: only cells within `max_edits` of the diagonal
  // can stay <= max_edits.
  constexpr int32_t kInf = 1 << 20;
  std::vector<int32_t> prev(static_cast<size_t>(m) + 1, kInf);
  std::vector<int32_t> cur(static_cast<size_t>(m) + 1, kInf);
  for (int32_t j = 0; j <= std::min(m, max_edits); ++j) prev[j] = j;
  for (int32_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const int32_t lo = std::max(1, i - max_edits);
    const int32_t hi = std::min(m, i + max_edits);
    if (i - max_edits <= 0) cur[0] = i;
    bool any = cur[0] <= max_edits;
    for (int32_t j = lo; j <= hi; ++j) {
      const int32_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      const int32_t del = prev[j] + 1;
      const int32_t ins = cur[j - 1] + 1;
      cur[j] = std::min({sub, del, ins});
      any = any || cur[j] <= max_edits;
    }
    if (!any) return false;
    std::swap(prev, cur);
  }
  return prev[m] <= max_edits;
}

std::vector<TermId> SimilarTerms(const TermDict& dict, std::string_view term,
                                 int32_t max_edits) {
  std::vector<TermId> out;
  if (max_edits <= 0) {
    TermId exact = dict.Lookup(term);
    if (exact != kInvalidTermId) out.push_back(exact);
    return out;
  }
  for (TermId id = 0; id < dict.size(); ++id) {
    if (WithinEditDistance(term, dict.term(id), max_edits)) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace s4
