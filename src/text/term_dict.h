#ifndef S4_TEXT_TERM_DICT_H_
#define S4_TEXT_TERM_DICT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace s4 {

// Interned term identifier; kInvalidTermId means "not in the corpus".
using TermId = int32_t;
inline constexpr TermId kInvalidTermId = -1;

// Bidirectional term <-> id mapping shared by all inverted indexes of a
// database. Interning terms once makes posting-list keys 4 bytes and
// lets spreadsheet terms that don't occur anywhere short-circuit to
// kInvalidTermId.
//
// The dictionary is append-only and supports cheap forking for live
// mutation epochs: Fork() layers an empty local dictionary over a frozen
// shared base, so a mutation batch that adds a handful of new terms does
// not copy the whole vocabulary. Ids keep their global numbering across
// layers (a fork's first local id is base->size()). Lookups walk the
// layer chain; to bound that walk, a fork deeper than kMaxForkDepth
// flattens the chain into a single layer.
class TermDict {
 public:
  TermDict() = default;
  TermDict(const TermDict&) = delete;
  TermDict& operator=(const TermDict&) = delete;
  TermDict(TermDict&&) = default;
  TermDict& operator=(TermDict&&) = default;

  // Chain depth at which Fork() flattens instead of layering.
  static constexpr int32_t kMaxForkDepth = 8;

  // A new dictionary layered over `base` (which must be frozen: no
  // Intern() calls on it afterwards). O(1) unless flattening.
  static TermDict Fork(std::shared_ptr<const TermDict> base);

  // Returns the id for `term`, adding it if absent.
  TermId Intern(std::string_view term);

  // Returns the id for `term` or kInvalidTermId.
  TermId Lookup(std::string_view term) const;

  const std::string& term(TermId id) const {
    return id < base_size_ ? base_->term(id) : terms_[id - base_size_];
  }
  int64_t size() const {
    return static_cast<int64_t>(base_size_) +
           static_cast<int64_t>(terms_.size());
  }

  // Approximate memory footprint in bytes (base layers included).
  size_t ByteSize() const;

 private:
  // Frozen parent layer; ids below base_size_ resolve through it.
  std::shared_ptr<const TermDict> base_;
  TermId base_size_ = 0;
  int32_t depth_ = 0;  // layers below this one

  std::unordered_map<std::string, TermId> ids_;  // local additions only
  std::vector<std::string> terms_;
};

}  // namespace s4

#endif  // S4_TEXT_TERM_DICT_H_
