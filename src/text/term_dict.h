#ifndef S4_TEXT_TERM_DICT_H_
#define S4_TEXT_TERM_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace s4 {

// Interned term identifier; kInvalidTermId means "not in the corpus".
using TermId = int32_t;
inline constexpr TermId kInvalidTermId = -1;

// Bidirectional term <-> id mapping shared by all inverted indexes of a
// database. Interning terms once makes posting-list keys 4 bytes and
// lets spreadsheet terms that don't occur anywhere short-circuit to
// kInvalidTermId.
class TermDict {
 public:
  TermDict() = default;
  TermDict(const TermDict&) = delete;
  TermDict& operator=(const TermDict&) = delete;
  TermDict(TermDict&&) = default;
  TermDict& operator=(TermDict&&) = default;

  // Returns the id for `term`, adding it if absent.
  TermId Intern(std::string_view term);

  // Returns the id for `term` or kInvalidTermId.
  TermId Lookup(std::string_view term) const;

  const std::string& term(TermId id) const { return terms_[id]; }
  int64_t size() const { return static_cast<int64_t>(terms_.size()); }

  // Approximate memory footprint in bytes.
  size_t ByteSize() const;

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace s4

#endif  // S4_TEXT_TERM_DICT_H_
