#ifndef S4_TEXT_EDIT_DISTANCE_H_
#define S4_TEXT_EDIT_DISTANCE_H_

#include <string_view>
#include <vector>

#include "text/term_dict.h"

namespace s4 {

// True iff the Levenshtein distance between `a` and `b` is <= max_edits.
// Banded DP: O(|a| * max_edits) time, early exit on length mismatch.
bool WithinEditDistance(std::string_view a, std::string_view b,
                        int32_t max_edits);

// All dictionary terms within `max_edits` of `term` (including an exact
// match if present). Linear scan over the dictionary with cheap length
// pre-filtering — the spelling-error expansion of Appendix A.2 runs this
// once per query term, and dictionaries are ~10^5-10^6 terms.
std::vector<TermId> SimilarTerms(const TermDict& dict, std::string_view term,
                                 int32_t max_edits);

}  // namespace s4

#endif  // S4_TEXT_EDIT_DISTANCE_H_
