#include "text/term_dict.h"

namespace s4 {

TermId TermDict::Intern(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId TermDict::Lookup(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTermId : it->second;
}

size_t TermDict::ByteSize() const {
  size_t bytes = 0;
  for (const std::string& t : terms_) {
    // Each term is stored twice (map key + vector) plus hash bucket
    // overhead; 2x string payload + ~48 bytes bookkeeping is a fair
    // approximation for size reporting.
    bytes += 2 * (sizeof(std::string) + t.capacity()) + 16;
  }
  return bytes;
}

}  // namespace s4
