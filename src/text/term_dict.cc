#include "text/term_dict.h"

namespace s4 {

TermDict TermDict::Fork(std::shared_ptr<const TermDict> base) {
  TermDict d;
  if (base == nullptr) return d;
  if (base->depth_ < kMaxForkDepth) {
    d.base_size_ = static_cast<TermId>(base->size());
    d.depth_ = base->depth_ + 1;
    d.base_ = std::move(base);
    return d;
  }
  // Flatten: copy the whole chain into one layer, preserving ids.
  const TermId n = static_cast<TermId>(base->size());
  d.terms_.reserve(static_cast<size_t>(n));
  d.ids_.reserve(static_cast<size_t>(n));
  for (TermId id = 0; id < n; ++id) {
    d.terms_.push_back(base->term(id));
    d.ids_.emplace(d.terms_.back(), id);
  }
  return d;
}

TermId TermDict::Intern(std::string_view term) {
  const TermId existing = Lookup(term);
  if (existing != kInvalidTermId) return existing;
  TermId id = static_cast<TermId>(size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId TermDict::Lookup(std::string_view term) const {
  for (const TermDict* d = this; d != nullptr; d = d->base_.get()) {
    auto it = d->ids_.find(std::string(term));
    if (it != d->ids_.end()) return it->second;
  }
  return kInvalidTermId;
}

size_t TermDict::ByteSize() const {
  size_t bytes = 0;
  for (const TermDict* d = this; d != nullptr; d = d->base_.get()) {
    for (const std::string& t : d->terms_) {
      // Each term is stored twice (map key + vector) plus hash bucket
      // overhead; 2x string payload + ~48 bytes bookkeeping is a fair
      // approximation for size reporting.
      bytes += 2 * (sizeof(std::string) + t.capacity()) + 16;
    }
  }
  return bytes;
}

}  // namespace s4
