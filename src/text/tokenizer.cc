#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace s4 {

std::vector<std::string> Tokenizer::WordTokens(std::string_view text) const {
  std::vector<std::string> out;
  std::string cur;
  bool discard = false;
  auto flush = [&]() {
    // The paper discards tokens containing non-alphanumeric characters
    // and tokens longer than 15 characters (Sec 6.1). A token is
    // "containing non-alphanumeric" when a non-separator, non-alnum
    // character (e.g. '@') touches it; whitespace and common punctuation
    // act as separators.
    if (!cur.empty() && !discard && cur.size() <= options_.max_token_length) {
      out.push_back(cur);
    }
    cur.clear();
    discard = false;
  };
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (std::isspace(c) || c == ',' || c == ';' || c == '.' ||
               c == '-' || c == '_' || c == '/' || c == '(' || c == ')' ||
               c == ':' || c == '\'' || c == '"') {
      flush();
    } else {
      // Embedded unusual character: poison the current token.
      discard = true;
      cur.push_back(static_cast<char>(c));
    }
  }
  flush();
  return out;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> words = WordTokens(text);
  if (options_.mode == TokenizerMode::kWord) return words;

  // kNGram: expand each word into its character n-grams (padding short
  // words to one gram). This is the Appendix A.2 fuzzy-matching index.
  std::vector<std::string> grams;
  const size_t n = options_.ngram_size;
  for (const std::string& w : words) {
    if (w.size() <= n) {
      grams.push_back(w);
      continue;
    }
    for (size_t i = 0; i + n <= w.size(); ++i) {
      grams.push_back(w.substr(i, n));
    }
  }
  return grams;
}

std::vector<std::string> Tokenizer::TokenizeUnique(
    std::string_view text) const {
  std::vector<std::string> tokens = Tokenize(text);
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& t : tokens) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace s4
