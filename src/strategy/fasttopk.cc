#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "approx/join_sampler.h"
#include "common/timer.h"
#include "common/topk_heap.h"
#include "exec/cost_model.h"
#include "obs/trace.h"
#include "strategy/strategy_internal.h"

namespace s4::internal {

namespace {

// Per-candidate state inside one batch.
struct BatchEntry {
  size_t rt_index;                      // into the runtime list
  std::vector<SubPJQuery> subs;         // enumerated once
  std::vector<std::string> keys;        // cache keys incl. row suffix
  std::unordered_set<std::string> key_set;
};

// Orders `group` so that consecutive queries share as many sub-PJ
// queries as possible (heuristic 1 of Sec 5.3.4): greedy chain that
// starts from the highest-upper-bound member and always appends the
// unplaced query sharing the most keys with the last placed one.
std::vector<size_t> SimilarityOrder(const std::vector<size_t>& group,
                                    const std::vector<BatchEntry>& entries) {
  if (group.size() <= 2) return group;
  std::vector<size_t> order;
  std::vector<bool> used(group.size(), false);
  order.push_back(group[0]);
  used[0] = true;
  for (size_t step = 1; step < group.size(); ++step) {
    const std::unordered_set<std::string>& last_keys =
        entries[order.back()].key_set;
    size_t best = group.size();
    int64_t best_shared = -1;
    for (size_t g = 0; g < group.size(); ++g) {
      if (used[g]) continue;
      int64_t shared = 0;
      for (const std::string& key : entries[group[g]].keys) {
        if (last_keys.count(key) > 0) ++shared;
      }
      if (shared > best_shared) {
        best_shared = shared;
        best = g;
      }
    }
    used[best] = true;
    order.push_back(group[best]);
  }
  return order;
}

class FastTopKRun {
 public:
  FastTopKRun(PreparedSearch& prep, std::vector<RuntimeCandidate> rts,
              const SearchOptions& options)
      : prep_(prep),
        rts_(std::move(rts)),
        options_(options),
        topk_(static_cast<size_t>(options.k)),
        cache_(options.cache_budget_bytes,
               SubQueryCache::ShardsForThreads(ResolveNumThreads(options))),
        pool_(options, rts_.size()) {
    // Cross-query sharing: misses in the per-run cache fall through to
    // the service's shared cache; insertions are republished there.
    if (options.shared_cache != nullptr) {
      cache_.AttachShared(options.shared_cache, options.shared_cache_prefix);
    }
  }

  SearchResult Run() {
    WallTimer timer;
    if (ApproxOn()) {
      // Built once per run; construction precomputes the per-binding
      // similarity tables (one posting scan per pair, like Stage I).
      approx::ApproxParams params;
      params.epsilon = options_.approx_epsilon;
      params.confidence = options_.approx_confidence;
      params.sample_budget = options_.sample_budget;
      params.rng_seed = options_.rng_seed;
      sampler_ = std::make_unique<approx::JoinSampler>(prep_.ctx, params);
    }
    const size_t n = rts_.size();
    size_t next = 0;
    int64_t batch_index = 0;
    while (next < n) {
      // Batch boundary: the natural stop-token poll point (Alg 3). The
      // evaluator's Stage-II 16-lane probe batches sit strictly inside
      // one candidate evaluation, so they never add or move a poll:
      // cancellation granularity stays exactly one candidate.
      if (ShouldAbort()) {
        result_.interrupted = true;
        break;
      }
      // Batch j covers candidates up to rank k*(1+eps)^j (Alg 3).
      const double bound =
          static_cast<double>(options_.k) *
          std::pow(1.0 + options_.epsilon, static_cast<double>(batch_index));
      size_t end = std::min(
          n, std::max(next + 1, static_cast<size_t>(std::ceil(bound))));
      {
        obs::SpanTimer span(options_.trace, "fasttopk", "batch");
        if (span.enabled()) {
          span.AddArg("index", std::to_string(batch_index));
          span.AddArg("size", std::to_string(end - next));
        }
        EvaluateBatch(next, end);
      }
      ++result_.stats.batches;
      next = end;
      ++batch_index;
      // Batch boundary: stream a progress snapshot (the distributed
      // kShardPartial payload) before the termination check so a
      // coordinator sees the tightest remaining upper bound we know.
      EmitProgress(options_, topk_, rts_, next, result_.stats);
      // Termination condition (7) after each batch. Strict: a remaining
      // candidate with ub == kth can still displace the boundary entry
      // under the canonical (score desc, signature asc) tie order. In
      // approximate mode, the epsilon-relaxed variant also fires: every
      // remaining candidate's Prop-2 bound is within (1 + eps) of the
      // k-th score, so none could improve it beyond the stated slack.
      if (next < n && topk_.Full()) {
        const double kth = topk_.KthScore();
        const bool exact_term = kth > rts_[next].ub;
        const bool approx_term =
            ApproxOn() &&
            rts_[next].ub <= kth * (1.0 + kSkipSlack * options_.approx_epsilon);
        if (exact_term || approx_term) {
          if (!exact_term) result_.approximate = true;
          if (options_.trace != nullptr) {
            options_.trace->AddInstant(
                "fasttopk", "early_termination",
                {{"evaluated_through", std::to_string(next)},
                 {"remaining", std::to_string(n - next)},
                 {"relaxed", exact_term ? "0" : "1"}});
          }
          break;
        }
      }
      if (options_.trace != nullptr) {
        options_.trace->AddInstant("fasttopk", "termination_check");
      }
    }
    for (auto& [score, sq] : topk_.TakeSortedDescending()) {
      (void)score;
      result_.topk.push_back(std::move(sq));
    }
    result_.stats.eval_seconds = timer.ElapsedSeconds();
    FinishStats(prep_, &cache_, &result_);
    return std::move(result_);
  }

 private:
  // Approximate mode is a FASTTOPK-only, plain-evaluation-only feature;
  // the drop-zero ablation is rejected at the validation boundary, and
  // guarded again here for callers that bypass it.
  bool ApproxOn() const {
    return options_.approx_epsilon > 0.0 && !options_.drop_zero_rows;
  }

  // Row-subset / prior-score candidates (incremental sessions) always
  // evaluate exactly; the sampler walks full rows only.
  bool Sampleable(const RuntimeCandidate& rt) const {
    return rt.es_rows.empty() && rt.prior_row_scores == nullptr;
  }

  // Stop-token poll with the deadline fallback: in approximate mode a
  // *deadline* firing switches the run into best-effort sampling for
  // every remaining candidate — a bounded-error anytime result instead
  // of a truncated one — while an explicit cancellation (client gone,
  // nobody wants the answer) still aborts immediately.
  bool ShouldAbort() {
    if (options_.stop == nullptr) return false;
    if (options_.stop->cancelled()) return true;
    if (!options_.stop->ShouldStop()) return false;
    if (!ApproxOn()) return true;
    if (!deadline_fallback_) {
      deadline_fallback_ = true;
      if (options_.trace != nullptr) {
        options_.trace->AddInstant("approx", "deadline_fallback_entered");
      }
    }
    return false;
  }

  // Fraction of the epsilon band actually spent on skip/termination
  // decisions. The contract allows dropping anything provably within
  // eps of the k-th score, but spending the whole band realizes the
  // worst case: every boundary candidate gets dropped. A quarter of
  // the band prunes nearly as much while keeping the realized error
  // comfortably inside the guarantee.
  static constexpr double kSkipSlack = 0.25;

  double SkipBound() const {
    // kth * (1 + slack * eps): with eps = 0 this is the exact
    // strict-skip threshold; KthScore() is -inf while the heap is not
    // full, so the bound never fires early.
    return topk_.KthScore() * (1.0 + kSkipSlack * options_.approx_epsilon);
  }

  ScoredQuery MakeApproxScored(const RuntimeCandidate& rt,
                               const approx::CandidateEstimate& est) const {
    ScoredQuery sq;
    sq.query = rt.cand->query;
    sq.score = est.interval.lo;
    sq.upper_bound = rt.ub;
    sq.row_score = est.row_score_lo;
    sq.column_score = rt.cand->column_score;
    sq.interval = est.interval;
    sq.approximate = !est.interval.exact();
    return sq;
  }

  // Resolves batch candidates [lo, hi) by sampling where possible,
  // marking resolved slots so the exact machinery only sees the
  // escalations. Estimates fan out to the pool (they are pure given the
  // immutable sampler); skip/offer decisions replay serially in rank
  // order against the live heap, so a fixed thread count is
  // deterministic and the heap evolution matches the serial path.
  void ResolveBySampling(size_t lo, size_t hi, std::vector<bool>* resolved) {
    std::vector<size_t> want;
    want.reserve(hi - lo);
    {
      // Prefilter against the frozen bound: skip thresholds only rise,
      // so anything at or below them now will still be skippable at
      // apply time — no estimate needed.
      const bool full = topk_.Full();
      const double bound = SkipBound();
      for (size_t i = lo; i < hi; ++i) {
        if (!Sampleable(rts_[i])) continue;
        if (full && rts_[i].ub <= bound) continue;
        want.push_back(i);
      }
    }
    std::vector<approx::CandidateEstimate> ests(want.size());
    auto estimate = [&](size_t j) {
      ests[j] = sampler_->Estimate(*rts_[want[j]].cand,
                                   /*best_effort=*/deadline_fallback_,
                                   options_.trace);
    };
    if (pool_.get() != nullptr && want.size() > 1) {
      pool_.get()->ParallelFor(want.size(), estimate);
    } else {
      for (size_t j = 0; j < want.size(); ++j) estimate(j);
    }

    size_t next_want = 0;
    for (size_t i = lo; i < hi; ++i) {
      if (!Sampleable(rts_[i])) continue;
      const approx::CandidateEstimate* est = nullptr;
      if (next_want < want.size() && want[next_want] == i) {
        est = &ests[next_want++];
      }
      // Exact strict skip first (identical to EvaluateOne), so the
      // epsilon-relaxed decisions below only ever see candidates the
      // exact path would have evaluated.
      if (topk_.Full() && rts_[i].ub < topk_.KthScore()) {
        ++result_.stats.skipped_by_condition;
        (*resolved)[i - lo] = true;
        continue;
      }
      if (topk_.Full() && rts_[i].ub <= SkipBound()) {
        ++result_.stats.approx_skipped;
        result_.approximate = true;
        (*resolved)[i - lo] = true;
        continue;
      }
      if (est == nullptr) continue;  // prefiltered but bound regressed: exact
      result_.stats.approx_samples += est->interval.sampled;
      if (est->escalate && !deadline_fallback_) {
        ++result_.stats.approx_escalated;
        continue;
      }
      if (topk_.Full() && est->interval.hi <= SkipBound()) {
        ++result_.stats.approx_skipped;
        result_.approximate = true;
        (*resolved)[i - lo] = true;
        continue;
      }
      if (est->interval.resolved() || deadline_fallback_) {
        ++result_.stats.approx_sampled;
        if (deadline_fallback_ && est->escalate) {
          ++result_.stats.approx_deadline_fallbacks;
        }
        if (est->interval.exact() && !est->row_scores.empty()) {
          result_.evaluated.push_back(EvaluatedRecord{
              rts_[i].cand->query.signature(), est->row_scores});
        } else {
          result_.approximate = true;
        }
        OfferCounted(&topk_, MakeApproxScored(rts_[i], *est),
                     &result_.stats);
        (*resolved)[i - lo] = true;
        continue;
      }
      // Unresolved interval outside fallback: escalate to exact.
      ++result_.stats.approx_escalated;
    }
  }

  void EvaluateOne(size_t rt_index, bool offer_to_cache) {
    // Skipping condition (heuristic 2, Sec 5.3.4): an upper bound below
    // the current k-th score cannot enter the top-k. Strict so an exact
    // tie (ub == kth) is still evaluated and resolved canonically.
    if (topk_.Full() && rts_[rt_index].ub < topk_.KthScore()) {
      ++result_.stats.skipped_by_condition;
      return;
    }
    ScoredQuery sq =
        EvaluateCandidate(prep_, rts_[rt_index], &cache_, offer_to_cache,
                          options_, &result_.stats, &result_.evaluated);
    OfferCounted(&topk_, std::move(sq), &result_.stats);
  }

  // Evaluates the given candidates (already in deterministic order —
  // similarity order for a critical group, entry order for a batch
  // remainder). Serial path: the legacy per-candidate loop, re-checking
  // the skipping condition after every evaluation. Parallel path: skip
  // decisions are frozen against the k-th score at entry (a group/batch
  // boundary — Prop 2 still guarantees a skipped candidate cannot enter
  // the top-k, so only the skip *count* can differ from serial), the
  // survivors fan out to the pool sharing the sharded cache, and the
  // outcomes merge back in order. Every decision point reads topk state
  // only between fan-outs, so a fixed thread count is deterministic.
  void EvaluateRts(const std::vector<size_t>& rt_indices,
                   bool offer_to_cache) {
    if (pool_.get() == nullptr || rt_indices.size() <= 1) {
      for (size_t rt : rt_indices) EvaluateOne(rt, offer_to_cache);
      return;
    }
    const bool full = topk_.Full();
    const double kth = topk_.KthScore();
    std::vector<size_t> live;
    live.reserve(rt_indices.size());
    for (size_t rt : rt_indices) {
      if (full && rts_[rt].ub < kth) {
        ++result_.stats.skipped_by_condition;
      } else {
        live.push_back(rt);
      }
    }
    if (live.empty()) return;
    std::vector<EvalOutcome> outcomes(live.size());
    pool_.get()->ParallelFor(live.size(), [&](size_t j) {
      outcomes[j] = EvaluateCandidateIsolated(prep_, rts_[live[j]], &cache_,
                                              offer_to_cache, options_);
    });
    for (EvalOutcome& o : outcomes) {
      MergeOutcome(std::move(o), &result_, &topk_);
    }
  }

  // BatchEval (Algorithm 4) over candidates [lo, hi) of the runtime list.
  void EvaluateBatch(size_t lo, size_t hi) {
    // Approximate mode: resolve what sampling can (interval skips and
    // interval offers) before the critical-sub machinery spins up, so
    // Q* selection, pinning, and similarity ordering only ever see the
    // escalated candidates that truly need exact evaluation.
    std::vector<bool> sampled_out(hi - lo, false);
    if (ApproxOn()) {
      obs::SpanTimer span(options_.trace, "approx", "resolve_batch");
      ResolveBySampling(lo, hi, &sampled_out);
    }
    std::vector<BatchEntry> entries;
    entries.reserve(hi - lo);
    const std::vector<uint64_t>& gens = prep_.ctx.index().relation_gens();
    for (size_t i = lo; i < hi; ++i) {
      if (sampled_out[i - lo]) continue;
      BatchEntry e;
      e.rt_index = i;
      e.subs = rts_[i].cand->query.EnumerateSubQueries();
      for (const SubPJQuery& s : e.subs) {
        // Gen-stamp matches the evaluator's probe keys: a mutation to
        // any relation of the sub-PJ changes its suffix, so stale cached
        // tables from earlier epochs can never be shared.
        e.keys.push_back(s.cache_key + RelationGenSuffix(s.tree, gens) +
                         rts_[i].suffix);
      }
      e.key_set.insert(e.keys.begin(), e.keys.end());
      entries.push_back(std::move(e));
    }

    std::vector<bool> done(entries.size(), false);
    size_t remaining = entries.size();
    Evaluator evaluator(prep_.ctx);

    while (remaining > 0) {
      // Critical-group boundary: poll the stop token so an abandoned
      // request stops before picking (and evaluating) the next Q*. A
      // deadline in approximate mode resolves the batch remainder by
      // best-effort sampling instead of dropping it.
      if (ShouldAbort()) {
        result_.interrupted = true;
        return;
      }
      if (deadline_fallback_) {
        // The deadline fired mid-batch: resolve every not-yet-evaluated
        // entry by best-effort sampling (one rank at a time — entries
        // are no longer a contiguous range). Row-subset candidates the
        // sampler cannot bracket still evaluate exactly; they are rare
        // and per-candidate, so the cancel path can abort them.
        std::vector<size_t> rest;
        for (size_t e = 0; e < entries.size(); ++e) {
          if (done[e]) continue;
          done[e] = true;
          const size_t rt = entries[e].rt_index;
          std::vector<bool> one(1, false);
          ResolveBySampling(rt, rt + 1, &one);
          if (!one[0]) rest.push_back(rt);
        }
        EvaluateRts(rest, /*offer_to_cache=*/false);
        remaining = 0;
        break;
      }
      cache_.Clear();

      // Pick the critical sub-PJ query Q*: highest cost among those
      // shared by >= 2 unevaluated queries whose output fits in B.
      std::unordered_map<std::string, std::vector<size_t>> sharers;
      for (size_t e = 0; e < entries.size(); ++e) {
        if (done[e]) continue;
        for (const std::string& key : entries[e].key_set) {
          sharers[key].push_back(e);
        }
      }
      const SubPJQuery* best_sub = nullptr;
      std::string best_key;
      int64_t best_cost = -1;
      std::vector<size_t>* best_group = nullptr;
      for (size_t e = 0; e < entries.size(); ++e) {
        if (done[e]) continue;
        for (size_t s = 0; s < entries[e].subs.size(); ++s) {
          const std::string& key = entries[e].keys[s];
          auto it = sharers.find(key);
          if (it == sharers.end() || it->second.size() < 2) continue;
          const SubPJQuery& sub = entries[e].subs[s];
          int64_t cost = EvaluationCost(sub.tree, sub.bindings, prep_.ctx);
          if (cost <= best_cost) continue;
          if (EstimateTableBytes(sub.tree, prep_.ctx) >
              options_.cache_budget_bytes) {
            continue;
          }
          best_cost = cost;
          best_sub = &sub;
          best_key = key;
          best_group = &it->second;
        }
      }

      if (best_sub == nullptr) {
        // No shareable sub-PJ left: evaluate the rest in entry order
        // (with the skipping condition) and finish the batch (Alg 4
        // line 5).
        std::vector<size_t> rest;
        for (size_t e = 0; e < entries.size(); ++e) {
          if (done[e]) continue;
          rest.push_back(entries[e].rt_index);
          done[e] = true;
        }
        EvaluateRts(rest, /*offer_to_cache=*/false);
        remaining = 0;
        break;
      }

      // Skipping-condition guard: if no query in Critical^{-1}(Q*) can
      // still enter the top-k, evaluating Q* itself is wasted work.
      bool group_live = false;
      for (size_t e : *best_group) {
        if (!topk_.Full() ||
            rts_[entries[e].rt_index].ub >= topk_.KthScore()) {
          group_live = true;
          break;
        }
      }
      if (!group_live) {
        for (size_t e : *best_group) {
          ++result_.stats.skipped_by_condition;
          done[e] = true;
          --remaining;
        }
        continue;
      }

      // Evaluate Q* and pin its output relation in M (Alg 4 line 7).
      EvalOptions eopts;
      eopts.es_rows = rts_[entries[(*best_group)[0]].rt_index].es_rows;
      eopts.drop_zero_rows = options_.drop_zero_rows;
      eopts.trace = options_.trace;
      std::shared_ptr<const SubQueryTable> table;
      {
        obs::SpanTimer critical_span(options_.trace, "fasttopk",
                                     "evaluate_critical_sub");
        if (critical_span.enabled()) {
          critical_span.AddArg("sharers",
                               std::to_string(best_group->size()));
        }
        table = evaluator.EvaluateSub(*best_sub, &cache_,
                                      &result_.stats.counters, eopts);
      }
      result_.stats.model_cost +=
          EvaluationCost(best_sub->tree, best_sub->bindings, prep_.ctx);
      cache_.Add(best_key, std::move(table), /*pinned=*/true);
      ++result_.stats.critical_subs_cached;

      // Evaluate Critical^{-1}(Q*) in similarity order, re-using M with
      // LRU offers of intermediate tables (heuristic 1).
      std::vector<size_t> order = SimilarityOrder(*best_group, entries);
      std::vector<size_t> order_rts;
      order_rts.reserve(order.size());
      for (size_t e : order) {
        order_rts.push_back(entries[e].rt_index);
        done[e] = true;
        --remaining;
      }
      EvaluateRts(order_rts, /*offer_to_cache=*/true);
      cache_.Unpin(best_key);
    }
  }

  PreparedSearch& prep_;
  std::vector<RuntimeCandidate> rts_;
  const SearchOptions& options_;
  SearchResult result_;
  TopKHeap<ScoredQuery> topk_;
  SubQueryCache cache_;
  PoolHandle pool_;  // get() is null on the serial legacy path
  // Anytime approximate mode: null unless approx_epsilon > 0.
  std::unique_ptr<approx::JoinSampler> sampler_;
  // Latched once the run's deadline fires: remaining candidates finish
  // in best-effort sampling mode instead of being dropped.
  bool deadline_fallback_ = false;
};

}  // namespace

SearchResult RunFastTopKCore(PreparedSearch& prep,
                             std::vector<RuntimeCandidate> rts,
                             const SearchOptions& options) {
  SortRuntime(&rts);
  FastTopKRun run(prep, std::move(rts), options);
  return run.Run();
}

}  // namespace s4::internal
