#ifndef S4_STRATEGY_INCREMENTAL_H_
#define S4_STRATEGY_INCREMENTAL_H_

#include <optional>
#include <unordered_map>

#include "strategy/strategy.h"

namespace s4 {

// Which incremental algorithm to run (Sec 5.4, Appendix A.1).
enum class IncrementalMode {
  kFastTopKInc,   // FASTTOPK-INC: improved bounds + partial eval + caching
  kBaselineInc,   // BASELINE-INC: improved bounds + partial eval, no cache
  kFastTopKNInc,  // FASTTOPK-NINC: treat every update as a fresh search
};

// Conversation state across spreadsheet edits: the last spreadsheet and
// the per-row containment scores of every query evaluated so far, keyed
// by query signature. Scores for unchanged rows are reused verbatim;
// they also yield the tighter upper bound of Eq. (11).
class SearchSession {
 public:
  SearchSession(const IndexSet& index, const SchemaGraph& graph,
                SearchOptions options)
      : index_(&index), graph_(&graph), options_(std::move(options)) {}

  const SearchOptions& options() const { return options_; }

  // Per-call plumbing mutations (the service layer re-points the shared
  // cache prefix / stop token / pool between searches of one session).
  SearchOptions& mutable_options() { return options_; }

  // Runs one search over `sheet`, reusing prior evaluation results where
  // the mode allows, and records the results for the next call.
  SearchResult Search(const ExampleSpreadsheet& sheet,
                      IncrementalMode mode = IncrementalMode::kFastTopKInc);

  // Forgets all prior state.
  void Reset();

  int64_t NumRememberedQueries() const {
    return static_cast<int64_t>(history_.size());
  }

 private:
  // Stored per-row scores of a previously evaluated query. `valid[t]`
  // marks rows whose stored score still reflects the current spreadsheet
  // (a row edited after the query was last evaluated is invalid until
  // the query is re-evaluated on it).
  struct HistoryEntry {
    std::vector<double> scores;
    std::vector<bool> valid;
  };

  void Remember(const ExampleSpreadsheet& sheet, const SearchResult& result,
                const std::vector<int32_t>& changed_rows);

  const IndexSet* index_;
  const SchemaGraph* graph_;
  SearchOptions options_;
  std::optional<ExampleSpreadsheet> last_sheet_;
  std::unordered_map<std::string, HistoryEntry> history_;
};

}  // namespace s4

#endif  // S4_STRATEGY_INCREMENTAL_H_
