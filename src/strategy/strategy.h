#ifndef S4_STRATEGY_STRATEGY_H_
#define S4_STRATEGY_STRATEGY_H_

#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "approx/score_interval.h"
#include "cache/subquery_cache.h"
#include "obs/profile.h"
#include "common/stop_token.h"
#include "enumerate/enumerator.h"
#include "exec/evaluator.h"
#include "index/index_set.h"
#include "query/spreadsheet.h"
#include "schema/schema_graph.h"
#include "score/score_context.h"

namespace s4 {

namespace obs {
class Trace;
}  // namespace obs

class ThreadPool;
struct SearchProgress;

// End-to-end search configuration (defaults follow Table 2).
struct SearchOptions {
  int32_t k = 10;
  ScoreParams score;                       // alpha = 0.8 default
  double epsilon = 0.6;                    // batch growth factor (Alg 3)
  size_t cache_budget_bytes = 500u << 20;  // B = 500 MiB
  EnumerationOptions enumeration;
  // Evaluation ablation: paper's drop-zero-rows Stage II shortcut.
  bool drop_zero_rows = false;
  // Worker threads for Stage-II candidate evaluation, the online
  // bottleneck (Fig 5): 0 = auto (std::thread::hardware_concurrency()),
  // 1 = the exact serial legacy path. Candidate evaluations are
  // independent given the shared sub-PJ cache, so any thread count
  // returns the same top-k set and scores (Thms 3-5); order-dependent
  // bookkeeping (skipping-condition hits, cache hit/miss counts, model
  // cost) may differ from the serial path but stays deterministic for a
  // fixed thread count. See DESIGN.md "Parallel evaluation model".
  int32_t num_threads = 0;

  // --- service-layer plumbing (DESIGN.md "Service layer") -------------
  // Shared evaluation pool: when set, strategies fan out on it instead
  // of constructing a pool per call (num_threads = 1 still forces the
  // serial path; num_threads = 0 resolves to the pool's size). Not owned.
  ThreadPool* pool = nullptr;
  // Cooperative cancellation/deadline, polled at strategy batch/group
  // boundaries; on observation the run returns its partial top-k with
  // SearchResult::interrupted set. Not owned.
  const StopToken* stop = nullptr;
  // Deadline for this search in seconds (0 = none). Honored by the
  // StatusOr entry points (S4System::Search over raw cells, S4Service),
  // which arm a StopToken when `stop` is not already provided.
  double deadline_seconds = 0.0;
  // Cross-query shared sub-PJ cache (service layer): attached behind the
  // per-run FASTTOPK cache under `shared_cache_prefix`, which must make
  // keys canonical across requests (epoch + spreadsheet/score-parameter
  // fingerprint). Not owned.
  SubQueryCache* shared_cache = nullptr;
  std::string shared_cache_prefix;
  // Per-search trace sink (DESIGN.md "Observability"): when set, the
  // run records Stage-I/Stage-II/cache spans into it. Null (the
  // default) keeps the hot path span-free — a single pointer test per
  // site. Not owned; must outlive the search.
  obs::Trace* trace = nullptr;

  // --- distributed serving (DESIGN.md "Distributed serving") ----------
  // Candidate-space sharding: the run keeps only the candidates whose
  // signature fingerprint maps to `shard_index` of `shard_count`
  // (ShardOfSignature), applied right after Stage-I enumeration. Every
  // shard sees the full database and schema graph; the slices are
  // disjoint and cover the candidate space, so per-shard top-k lists
  // are exact over their slices and merge losslessly. shard_count = 1
  // (the default) keeps everything.
  int32_t shard_count = 1;
  int32_t shard_index = 0;
  // --- anytime approximate search (DESIGN.md "Anytime approximate
  // search") ------------------------------------------------------------
  // Relative slack on the k-th score: > 0 enables the FASTTOPK sampling
  // estimator, which skips candidates whose score interval upper bound
  // is at most kth * (1 + approx_epsilon) and escalates straddling
  // candidates to exact evaluation. 0 (the default) disables the
  // machinery entirely — the run is bit-identical to the exact path.
  // Only FASTTOPK honors these knobs; NAIVE/BASELINE stay exact.
  double approx_epsilon = 0.0;
  // Per-candidate confidence of a sampling-resolved score interval
  // (see JoinSampler for the coverage bound). Must be in (0, 1].
  double approx_confidence = 0.95;
  // Max join-result rows walked per candidate before the sampler gives
  // up and escalates. Must be positive.
  int64_t sample_budget = 4096;
  // Base seed of the per-candidate rng streams (each candidate draws
  // from rng_seed ^ FingerprintString(signature), so estimates are
  // reproducible across thread counts, shard slicings, and runs).
  uint64_t rng_seed = 0x5344534453445344ULL;

  // Incremental progress sink: when set, strategies call it at batch /
  // block boundaries with the current top-k snapshot and the upper
  // bound of everything not yet evaluated. Runs on the search thread
  // between fan-outs; must not re-enter the search. A single pointer
  // test per boundary when unset.
  std::function<void(const SearchProgress&)> progress;
};

// Shard owning `signature` under candidate-space sharding: stable FNV-1a
// fingerprint of the signature modulo shard_count, so the strategy-side
// filter, the coordinator, and the tests agree on slice membership
// across processes and platforms.
int32_t ShardOfSignature(std::string_view signature, int32_t shard_count);

// Rejects nonsensical configurations (non-positive k, zero byte budget,
// non-positive epsilon, negative deadline, alpha outside [0, 1]) with
// InvalidArgument. Checked at the S4System / S4Service boundary so bad
// values fail loudly instead of relying on downstream behavior.
Status ValidateSearchOptions(const SearchOptions& options);

// One ranked answer.
struct ScoredQuery {
  PJQuery query;
  double score = 0.0;        // Eq. 5
  double upper_bound = 0.0;  // Prop 2
  double row_score = 0.0;    // Eq. 3
  double column_score = 0.0; // Eq. 4
  // Bracket on the exact score: degenerate [score, score] at confidence
  // 1 for exactly evaluated hits; a sampling interval (and
  // approximate = true) when the hit was resolved by the estimator.
  ScoreInterval interval;
  bool approximate = false;
};

// Metrics reported by every strategy; the benchmark harnesses print
// these as the paper's figures.
struct RunStats {
  int64_t queries_enumerated = 0;
  int64_t queries_evaluated = 0;
  // "PJ query-row evaluations" (Fig 7): evaluated queries times the
  // number of example-spreadsheet rows each was evaluated on.
  int64_t query_row_evals = 0;
  int64_t skipped_by_condition = 0;  // skipping-condition hits (Sec 5.3.4)
  int64_t batches = 0;               // FASTTOPK batches formed
  // Times the k-th best score (the termination/skipping bound) rose
  // when an evaluated candidate entered the top-k heap.
  int64_t bound_updates = 0;
  int64_t critical_subs_cached = 0;  // critical sub-PJ queries cached
  // Model cost actually incurred: sum of cost(Q, M) per Eq. (12)-(13).
  int64_t model_cost = 0;
  double enum_seconds = 0.0;  // enumeration + upper-bound computation
  double eval_seconds = 0.0;  // evaluation (the online bottleneck)
  // Anytime approximate mode (approx_epsilon > 0): candidates resolved
  // by the sampling estimator (skipped or offered on their interval),
  // candidates whose interval straddled and escalated to exact
  // evaluation, join-result rows walked, and candidates finished in
  // best-effort sampling mode after the deadline fired.
  int64_t approx_sampled = 0;
  int64_t approx_skipped = 0;
  int64_t approx_escalated = 0;
  int64_t approx_samples = 0;
  int64_t approx_deadline_fallbacks = 0;
  EvalCounters counters;
  CacheStats cache;

  void Add(const RunStats& o);
};

// Per-evaluated-query record kept for incremental sessions (Sec 5.4):
// the per-example-row containment scores score(t | Q) that can be reused
// verbatim for unchanged rows after the user edits the spreadsheet.
struct EvaluatedRecord {
  std::string signature;
  std::vector<double> row_scores;
};

struct SearchResult {
  std::vector<ScoredQuery> topk;  // descending score
  RunStats stats;
  // Per-request resource accounting, filled from `stats` in the shared
  // FinishStats epilogue — the same accumulators that bulk-publish the
  // `s4_*` registry counters, so profile and counters reconcile by
  // construction. The service layer stamps total/queue wall times; the
  // coordinator appends the per-shard fan-out breakdown.
  obs::QueryProfile profile;
  std::vector<EvaluatedRecord> evaluated;
  // True when the run observed SearchOptions::stop and wound down early:
  // `topk` holds the best-of-what-was-evaluated, not the proven top-k.
  bool interrupted = false;
  // True when any candidate was resolved by the sampling estimator
  // instead of exact evaluation: the top-k is correct up to the
  // per-entry intervals and the epsilon-relaxed skipping rule.
  bool approximate = false;
};

// One snapshot streamed out of a running strategy at a batch / block
// boundary (the scatter-gather partial-frame payload): the current
// best-of-evaluated top-k plus the best possible score of everything
// not yet evaluated. `remaining_upper_bound` is non-increasing across
// snapshots of one run, so a stale value observed by a remote merger is
// always a safe overestimate.
struct SearchProgress {
  std::vector<ScoredQuery> topk;  // descending score
  double remaining_upper_bound = std::numeric_limits<double>::infinity();
  // Candidates enumerated for this run (the slice size under sharding).
  // Known from the first snapshot on — enumeration completes before any
  // evaluation — so even an early-stopped shard reports its slice size.
  int64_t enumerated = 0;
  int64_t evaluated = 0;
  int64_t batches = 0;
};

// Enumeration + upper-bound computation, shared by all strategies (the
// cheap phase of Fig 5). Candidates come back sorted by descending upper
// bound with deterministic tie-breaking.
struct PreparedSearch {
  ScoreContext ctx;
  std::vector<CandidateQuery> candidates;
  EnumerationStats enum_stats;
  double enum_seconds = 0.0;

  PreparedSearch(const IndexSet& index, const SchemaGraph& graph,
                 const ExampleSpreadsheet& sheet,
                 const SearchOptions& options);
};

// NAIVE: evaluates every candidate, no upper-bound pruning, no caching.
SearchResult RunNaive(PreparedSearch& prep, const SearchOptions& options);

// BASELINE (Algorithm 2): evaluates candidates in descending upper-bound
// order and stops at termination condition (7); provably evaluates
// exactly the minimal evaluation set Q_min (Thm 1).
SearchResult RunBaseline(PreparedSearch& prep, const SearchOptions& options);

// FASTTOPK (Algorithms 3-4): batch formation, critical sub-PJ caching,
// similarity-ordered group evaluation with LRU cache offers, and the
// skipping condition.
SearchResult RunFastTopK(PreparedSearch& prep, const SearchOptions& options);

// Convenience one-shot drivers (prepare + run).
SearchResult SearchNaive(const IndexSet&, const SchemaGraph&,
                         const ExampleSpreadsheet&, const SearchOptions&);
SearchResult SearchBaseline(const IndexSet&, const SchemaGraph&,
                            const ExampleSpreadsheet&, const SearchOptions&);
SearchResult SearchFastTopK(const IndexSet&, const SchemaGraph&,
                            const ExampleSpreadsheet&, const SearchOptions&);

}  // namespace s4

#endif  // S4_STRATEGY_STRATEGY_H_
