#ifndef S4_STRATEGY_STRATEGY_INTERNAL_H_
#define S4_STRATEGY_STRATEGY_INTERNAL_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/topk_heap.h"
#include "strategy/strategy.h"

namespace s4::internal {

// Runtime view of one candidate inside a strategy run. The incremental
// strategies override the upper bound, restrict evaluation to the
// changed spreadsheet rows, and supply prior per-row scores for the
// unchanged rows; plain runs leave those fields empty.
struct RuntimeCandidate {
  const CandidateQuery* cand = nullptr;
  double ub = 0.0;
  std::vector<int32_t> es_rows;            // empty = evaluate all rows
  std::string suffix;                      // cache-key row-subset tag
  const std::vector<double>* prior_row_scores = nullptr;
};

// Builds the runtime list for a plain (non-incremental) run: one entry
// per candidate, sorted by descending upper bound with deterministic
// signature tie-breaking.
std::vector<RuntimeCandidate> MakePlainRuntime(
    const std::vector<CandidateQuery>& candidates);

// Sorts by (ub desc, signature asc).
void SortRuntime(std::vector<RuntimeCandidate>* rts);

// Evaluates one candidate (type-a operator on a full PJ query): runs the
// hash-join plan on the candidate's row subset, merges prior row scores,
// and produces the final Eq. 5 score plus the session record.
ScoredQuery EvaluateCandidate(PreparedSearch& prep,
                              const RuntimeCandidate& rt,
                              SubQueryCache* cache, bool offer_to_cache,
                              const SearchOptions& options, RunStats* stats,
                              std::vector<EvaluatedRecord>* records);

// Shared epilogue: fold per-run cache stats and enumeration stats into
// `result->stats`, derive the per-request QueryProfile from the same
// numbers, and bulk-publish the run into the metrics registry.
void FinishStats(const PreparedSearch& prep, const SubQueryCache* cache,
                 SearchResult* result);

// SearchOptions::num_threads resolved: <= 0 means auto (the injected
// pool's size when one is set, else one worker per hardware thread).
int32_t ResolveNumThreads(const SearchOptions& options);

// True once the run's stop token (if any) fired; polled at batch/group
// boundaries so the evaluation loops stay synchronization-free.
inline bool StopRequested(const SearchOptions& options) {
  return options.stop != nullptr && options.stop->ShouldStop();
}

// Owns-or-borrows the Stage-II evaluation pool: borrows
// SearchOptions::pool when injected (the service's machine-sized shared
// pool), else constructs one for this call (the legacy per-call path).
// get() is null on the serial path (resolved threads <= 1 or nothing to
// fan out).
class PoolHandle {
 public:
  PoolHandle(const SearchOptions& options, size_t work_items) {
    if (work_items <= 1 || ResolveNumThreads(options) <= 1) return;
    if (options.pool != nullptr) {
      pool_ = options.pool;
    } else {
      owned_ = std::make_unique<ThreadPool>(ResolveNumThreads(options));
      pool_ = owned_.get();
    }
  }

  ThreadPool* get() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
};

// Everything one candidate evaluation produces, isolated for off-thread
// execution: the scored query plus per-candidate stats/record deltas.
// Workers never touch shared accumulators; outcomes are merged at join
// points in deterministic candidate order (no hot-path atomics), which
// keeps topk tie-breaking and stats reproducible at any thread count.
struct EvalOutcome {
  ScoredQuery sq;
  RunStats stats;
  std::vector<EvaluatedRecord> records;
};

// EvaluateCandidate writing into a fresh EvalOutcome (thread-safe given
// a sharded cache: all other inputs are read-only during a run).
EvalOutcome EvaluateCandidateIsolated(PreparedSearch& prep,
                                      const RuntimeCandidate& rt,
                                      SubQueryCache* cache,
                                      bool offer_to_cache,
                                      const SearchOptions& options);

// Offers a scored query to the heap, counting the offer as a bound
// update in `stats` when it raised the k-th best score (the
// termination/skipping bound of condition (7)).
inline void OfferCounted(TopKHeap<ScoredQuery>* topk, ScoredQuery sq,
                         RunStats* stats) {
  const bool was_full = topk->Full();
  const double before = topk->KthScore();
  const double score = sq.score;
  // The signature is the canonical tie-break key: boundary ties resolve
  // the same way regardless of evaluation order or shard slicing.
  std::string key = sq.query.signature();
  topk->Offer(score, std::move(sq), std::move(key));
  if (topk->Full() && (!was_full || topk->KthScore() > before)) {
    ++stats->bound_updates;
  }
}

// Folds one outcome into the run result and heap. Must be called in
// deterministic candidate order.
void MergeOutcome(EvalOutcome&& outcome, SearchResult* result,
                  TopKHeap<ScoredQuery>* topk);

// Streams one progress snapshot to SearchOptions::progress (when set):
// the current top-k plus the upper bound of everything at or past
// `next_rank` in the (ub desc)-sorted runtime list — -inf once the list
// is exhausted. A single pointer test per boundary when no sink is
// installed.
inline void EmitProgress(const SearchOptions& options,
                         const TopKHeap<ScoredQuery>& topk,
                         const std::vector<RuntimeCandidate>& rts,
                         size_t next_rank, const RunStats& stats) {
  if (!options.progress) return;
  SearchProgress p;
  p.remaining_upper_bound =
      next_rank < rts.size() ? rts[next_rank].ub
                             : -std::numeric_limits<double>::infinity();
  p.enumerated = static_cast<int64_t>(rts.size());
  p.evaluated = stats.queries_evaluated;
  p.batches = stats.batches;
  for (auto& [score, sq] : topk.SnapshotSortedDescending()) {
    (void)score;
    p.topk.push_back(std::move(sq));
  }
  options.progress(p);
}

// FASTTOPK core over an arbitrary runtime list (used by both the plain
// and the incremental drivers).
SearchResult RunFastTopKCore(PreparedSearch& prep,
                             std::vector<RuntimeCandidate> rts,
                             const SearchOptions& options);

// BASELINE core (Algorithm 2) over an arbitrary runtime list.
SearchResult RunBaselineCore(PreparedSearch& prep,
                             std::vector<RuntimeCandidate> rts,
                             const SearchOptions& options);

}  // namespace s4::internal

#endif  // S4_STRATEGY_STRATEGY_INTERNAL_H_
