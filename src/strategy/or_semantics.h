#ifndef S4_STRATEGY_OR_SEMANTICS_H_
#define S4_STRATEGY_OR_SEMANTICS_H_

#include "strategy/strategy.h"

namespace s4 {

// OR-column-mapping search (Appendix A.3): instead of requiring every
// spreadsheet column to be mapped (AND semantics), any non-empty subset
// of columns may be mapped. Implemented as the paper's "simple
// extension": run FASTTOPK once per non-empty column subset (2^c - 1
// spreadsheets, with c small in practice) and aggregate the top-k lists
// by score. Strategy selection mirrors the AND path.
enum class OrStrategy {
  kNaive,     // per-subset NAIVE (reference)
  kFastTopK,  // per-subset FASTTOPK (the paper's "simple extension")
  // The paper's "more direct way": enumerate the extended candidate set
  // Q_C+ once (candidates may leave columns unmapped) and run a single
  // FASTTOPK pass over it.
  kDirect,
};

SearchResult SearchOrSemantics(const IndexSet& index,
                               const SchemaGraph& graph,
                               const ExampleSpreadsheet& sheet,
                               const SearchOptions& options,
                               OrStrategy strategy = OrStrategy::kFastTopK);

}  // namespace s4

#endif  // S4_STRATEGY_OR_SEMANTICS_H_
