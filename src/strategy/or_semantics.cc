#include "strategy/or_semantics.h"

#include <unordered_map>

#include "common/topk_heap.h"

namespace s4 {

SearchResult SearchOrSemantics(const IndexSet& index,
                               const SchemaGraph& graph,
                               const ExampleSpreadsheet& sheet,
                               const SearchOptions& options,
                               OrStrategy strategy) {
  const int32_t c = sheet.NumColumns();
  if (strategy == OrStrategy::kDirect) {
    SearchOptions direct_options = options;
    direct_options.enumeration.or_semantics = true;
    return SearchFastTopK(index, graph, sheet, direct_options);
  }
  SearchResult out;
  TopKHeap<ScoredQuery> topk(static_cast<size_t>(options.k));
  // Queries can only repeat across subsets if their signatures match
  // (same tree and same mapped columns); keep the best-scored copy.
  std::unordered_map<std::string, double> seen;

  for (uint32_t mask = 1; mask < (1u << c); ++mask) {
    SearchOptions sub_options = options;
    sub_options.enumeration.active_columns.clear();
    for (int32_t i = 0; i < c; ++i) {
      if (mask & (1u << i)) {
        sub_options.enumeration.active_columns.push_back(i);
      }
    }
    // Each subset search inherits num_threads; parallelism lives inside
    // the per-subset Stage-II evaluation, not across subsets.
    SearchResult r = strategy == OrStrategy::kNaive
                         ? SearchNaive(index, graph, sheet, sub_options)
                         : SearchFastTopK(index, graph, sheet, sub_options);
    for (ScoredQuery& sq : r.topk) {
      auto it = seen.find(sq.query.signature());
      if (it != seen.end() && it->second >= sq.score) continue;
      seen[sq.query.signature()] = sq.score;
      std::string key = sq.query.signature();
      topk.Offer(sq.score, std::move(sq), std::move(key));
    }
    out.stats.Add(r.stats);
    out.approximate |= r.approximate;
    out.interrupted |= r.interrupted;
  }
  for (auto& [score, sq] : topk.TakeSortedDescending()) {
    (void)score;
    out.topk.push_back(std::move(sq));
  }
  return out;
}

}  // namespace s4
