#include "strategy/strategy.h"

#include <algorithm>

#include "common/hash_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "common/topk_heap.h"
#include "exec/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "strategy/strategy_internal.h"

namespace s4 {

Status ValidateSearchOptions(const SearchOptions& options) {
  if (options.k <= 0) {
    return Status::InvalidArgument(
        StrFormat("k must be positive, got %d", options.k));
  }
  if (options.cache_budget_bytes == 0) {
    return Status::InvalidArgument("cache_budget_bytes must be positive");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument(
        StrFormat("epsilon must be positive, got %f", options.epsilon));
  }
  if (options.deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        StrFormat("deadline_seconds must be non-negative, got %f",
                  options.deadline_seconds));
  }
  if (options.score.alpha < 0.0 || options.score.alpha > 1.0) {
    return Status::InvalidArgument(
        StrFormat("alpha must be in [0, 1], got %f", options.score.alpha));
  }
  if (options.approx_epsilon < 0.0) {
    return Status::InvalidArgument(
        StrFormat("approx_epsilon must be non-negative, got %f",
                  options.approx_epsilon));
  }
  if (!(options.approx_confidence > 0.0) || options.approx_confidence > 1.0) {
    return Status::InvalidArgument(
        StrFormat("approx_confidence must be in (0, 1], got %f",
                  options.approx_confidence));
  }
  if (options.sample_budget <= 0) {
    return Status::InvalidArgument(
        StrFormat("sample_budget must be positive, got %lld",
                  static_cast<long long>(options.sample_budget)));
  }
  if (options.approx_epsilon > 0.0 && options.drop_zero_rows) {
    // The sampler mirrors the evaluator's keep-zero-rows inner-join
    // semantics; the drop-zero ablation would make its lower bounds
    // unsound.
    return Status::InvalidArgument(
        "approx_epsilon > 0 is incompatible with drop_zero_rows");
  }
  if (options.shard_count < 1) {
    return Status::InvalidArgument(
        StrFormat("shard_count must be >= 1, got %d", options.shard_count));
  }
  if (options.shard_index < 0 || options.shard_index >= options.shard_count) {
    return Status::InvalidArgument(
        StrFormat("shard_index must be in [0, %d), got %d",
                  options.shard_count, options.shard_index));
  }
  return Status::OK();
}

int32_t ShardOfSignature(std::string_view signature, int32_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<int32_t>(
      FingerprintString(signature) %
      static_cast<uint64_t>(shard_count));
}

void RunStats::Add(const RunStats& o) {
  queries_enumerated += o.queries_enumerated;
  queries_evaluated += o.queries_evaluated;
  query_row_evals += o.query_row_evals;
  skipped_by_condition += o.skipped_by_condition;
  batches += o.batches;
  bound_updates += o.bound_updates;
  critical_subs_cached += o.critical_subs_cached;
  model_cost += o.model_cost;
  enum_seconds += o.enum_seconds;
  eval_seconds += o.eval_seconds;
  approx_sampled += o.approx_sampled;
  approx_skipped += o.approx_skipped;
  approx_escalated += o.approx_escalated;
  approx_samples += o.approx_samples;
  approx_deadline_fallbacks += o.approx_deadline_fallbacks;
  counters.Add(o.counters);
  cache.hits += o.cache.hits;
  cache.misses += o.cache.misses;
  cache.insertions += o.cache.insertions;
  cache.evictions += o.cache.evictions;
  cache.rejected_too_large += o.cache.rejected_too_large;
  cache.peak_bytes = std::max(cache.peak_bytes, o.cache.peak_bytes);
}

PreparedSearch::PreparedSearch(const IndexSet& index,
                               const SchemaGraph& graph,
                               const ExampleSpreadsheet& sheet,
                               const SearchOptions& options)
    : ctx(index, sheet, options.score) {
  WallTimer timer;
  obs::SpanTimer span(options.trace, "stage1", "enumerate");
  EnumerationResult result =
      EnumerateCandidates(graph, ctx, options.enumeration);
  candidates = std::move(result.candidates);
  enum_stats = result.stats;
  if (options.shard_count > 1) {
    // Candidate-space sharding: keep only this shard's slice. Done
    // before the sort so queries_enumerated reports the slice size and
    // per-shard counts sum to the single-node total.
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&options](const CandidateQuery& c) {
                         return ShardOfSignature(c.query.signature(),
                                                 options.shard_count) !=
                                options.shard_index;
                       }),
        candidates.end());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateQuery& a, const CandidateQuery& b) {
              if (a.upper_bound != b.upper_bound) {
                return a.upper_bound > b.upper_bound;
              }
              return a.query.signature() < b.query.signature();
            });
  enum_seconds = timer.ElapsedSeconds();
  if (span.enabled()) {
    span.AddArg("candidates", std::to_string(candidates.size()));
  }
}

namespace internal {

std::vector<RuntimeCandidate> MakePlainRuntime(
    const std::vector<CandidateQuery>& candidates) {
  std::vector<RuntimeCandidate> rts;
  rts.reserve(candidates.size());
  for (const CandidateQuery& c : candidates) {
    RuntimeCandidate rt;
    rt.cand = &c;
    rt.ub = c.upper_bound;
    rts.push_back(std::move(rt));
  }
  return rts;
}

void SortRuntime(std::vector<RuntimeCandidate>* rts) {
  std::sort(rts->begin(), rts->end(),
            [](const RuntimeCandidate& a, const RuntimeCandidate& b) {
              if (a.ub != b.ub) return a.ub > b.ub;
              return a.cand->query.signature() < b.cand->query.signature();
            });
}

// One candidate evaluation is the atomic unit every driver schedules
// around: stop-token polls and frozen-skip decisions happen only at the
// drivers' batch / critical-group boundaries, never inside RowScores.
// The evaluator's Stage-II batched probe loop keeps the serial emit
// order and counter values, so upper bounds, skip conditions, and
// early-termination tests see bit-identical inputs on every strategy.
ScoredQuery EvaluateCandidate(PreparedSearch& prep,
                              const RuntimeCandidate& rt,
                              SubQueryCache* cache, bool offer_to_cache,
                              const SearchOptions& options, RunStats* stats,
                              std::vector<EvaluatedRecord>* records) {
  const CandidateQuery& cand = *rt.cand;
  obs::SpanTimer span(options.trace, "stage2", "evaluate_candidate");
  if (span.enabled()) {
    span.AddArg("query", cand.query.signature());
  }
  Evaluator evaluator(prep.ctx);
  EvalOptions eopts;
  eopts.es_rows = rt.es_rows;
  eopts.offer_to_cache = offer_to_cache;
  eopts.drop_zero_rows = options.drop_zero_rows;
  eopts.trace = options.trace;

  if (cache != nullptr) {
    stats->model_cost += EvaluationCostWithCache(
        cand.query, cand.query.EnumerateSubQueries(), *cache, prep.ctx,
        rt.suffix);
  } else {
    stats->model_cost += EvaluationCost(cand.query, prep.ctx);
  }

  std::vector<double> row_scores =
      evaluator.RowScores(cand.query, cache, &stats->counters, eopts);

  // Merge prior scores for rows outside the evaluated subset.
  if (rt.prior_row_scores != nullptr && !rt.es_rows.empty()) {
    std::vector<bool> evaluated(row_scores.size(), false);
    for (int32_t t : rt.es_rows) evaluated[t] = true;
    for (size_t t = 0; t < row_scores.size(); ++t) {
      if (!evaluated[t] && t < rt.prior_row_scores->size()) {
        row_scores[t] = (*rt.prior_row_scores)[t];
      }
    }
  }

  ++stats->queries_evaluated;
  stats->query_row_evals += rt.es_rows.empty()
                                ? prep.ctx.NumEsRows()
                                : static_cast<int64_t>(rt.es_rows.size());

  ScoredQuery sq;
  sq.query = cand.query;
  sq.upper_bound = rt.ub;
  sq.column_score = cand.column_score;
  for (double v : row_scores) sq.row_score += v;
  sq.score = CombineScore(sq.row_score, sq.column_score,
                          options.score.alpha, cand.query.tree().size());
  // Exact hits carry a degenerate certain interval so downstream
  // consumers (wire, coordinator merge) read one uniform field.
  sq.interval.lo = sq.interval.hi = sq.score;
  sq.interval.confidence = 1.0;
  if (records != nullptr) {
    records->push_back(
        EvaluatedRecord{cand.query.signature(), std::move(row_scores)});
  }
  return sq;
}

void FinishStats(const PreparedSearch& prep, const SubQueryCache* cache,
                 SearchResult* result) {
  RunStats* stats = &result->stats;
  stats->queries_enumerated =
      static_cast<int64_t>(prep.candidates.size());
  stats->enum_seconds = prep.enum_seconds;
  if (cache != nullptr) stats->cache = cache->stats();

  // Derive the per-request profile from the very accumulators that
  // feed the registry publish below: the two views cannot drift.
  obs::QueryProfile& p = result->profile;
  p.enum_seconds = stats->enum_seconds;
  p.eval_seconds = stats->eval_seconds;
  p.candidates_enumerated = stats->queries_enumerated;
  p.candidates_evaluated = stats->queries_evaluated;
  p.query_row_evals = stats->query_row_evals;
  p.skipped_by_condition = stats->skipped_by_condition;
  p.batches = stats->batches;
  p.bound_updates = stats->bound_updates;
  p.rows_scanned = stats->counters.rows_scanned;
  p.hash_lookups = stats->counters.hash_lookups;
  p.hash_inserts = stats->counters.hash_inserts;
  p.postings_scanned = stats->counters.postings_scanned;
  p.cache_hits = stats->cache.hits;
  p.cache_misses = stats->cache.misses;
  p.cache_insertions = stats->cache.insertions;
  p.cache_evictions = stats->cache.evictions;
  p.cache_peak_bytes = stats->cache.peak_bytes;
  p.approx_sampled = stats->approx_sampled;
  p.approx_skipped = stats->approx_skipped;
  p.approx_escalated = stats->approx_escalated;
  p.approx_samples = stats->approx_samples;
  p.approx_deadline_fallbacks = stats->approx_deadline_fallbacks;

  // Bulk-publish the finished run into the process-wide registry: one
  // batch of striped adds per search, never per candidate, so the hot
  // path stays free of shared-line traffic. Counter references are
  // resolved once and cached (the registry never moves them).
  struct RunCounters {
    obs::Counter* searches;
    obs::Counter* enumerated;
    obs::Counter* evaluated;
    obs::Counter* row_evals;
    obs::Counter* skipped;
    obs::Counter* batches;
    obs::Counter* bound_updates;
    obs::Counter* critical_subs;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* cache_insertions;
    obs::Counter* cache_evictions;
    obs::Counter* approx_sampled;
    obs::Counter* approx_skipped;
    obs::Counter* approx_escalated;
    obs::Counter* approx_samples;
    obs::Counter* approx_deadline_fallbacks;
    obs::Histogram* enum_seconds;
    obs::Histogram* eval_seconds;
  };
  static const RunCounters c = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return RunCounters{
        &reg.GetCounter("s4_searches_total"),
        &reg.GetCounter("s4_candidates_enumerated_total"),
        &reg.GetCounter("s4_candidates_evaluated_total"),
        &reg.GetCounter("s4_query_row_evals_total"),
        &reg.GetCounter("s4_skipped_by_condition_total"),
        &reg.GetCounter("s4_batches_total"),
        &reg.GetCounter("s4_bound_updates_total"),
        &reg.GetCounter("s4_critical_subs_cached_total"),
        &reg.GetCounter("s4_cache_probe_hits_total"),
        &reg.GetCounter("s4_cache_probe_misses_total"),
        &reg.GetCounter("s4_cache_insertions_total"),
        &reg.GetCounter("s4_cache_evictions_total"),
        &reg.GetCounter("s4_approx_candidates_sampled_total"),
        &reg.GetCounter("s4_approx_skipped_total"),
        &reg.GetCounter("s4_approx_escalated_total"),
        &reg.GetCounter("s4_approx_samples_total"),
        &reg.GetCounter("s4_approx_deadline_fallbacks_total"),
        &reg.GetHistogram("s4_enum_seconds"),
        &reg.GetHistogram("s4_eval_seconds"),
    };
  }();
  c.searches->Increment();
  c.enumerated->Add(stats->queries_enumerated);
  c.evaluated->Add(stats->queries_evaluated);
  c.row_evals->Add(stats->query_row_evals);
  c.skipped->Add(stats->skipped_by_condition);
  c.batches->Add(stats->batches);
  c.bound_updates->Add(stats->bound_updates);
  c.critical_subs->Add(stats->critical_subs_cached);
  c.cache_hits->Add(stats->cache.hits);
  c.cache_misses->Add(stats->cache.misses);
  c.cache_insertions->Add(stats->cache.insertions);
  c.cache_evictions->Add(stats->cache.evictions);
  c.approx_sampled->Add(stats->approx_sampled);
  c.approx_skipped->Add(stats->approx_skipped);
  c.approx_escalated->Add(stats->approx_escalated);
  c.approx_samples->Add(stats->approx_samples);
  c.approx_deadline_fallbacks->Add(stats->approx_deadline_fallbacks);
  c.enum_seconds->Observe(stats->enum_seconds);
  c.eval_seconds->Observe(stats->eval_seconds);
}

int32_t ResolveNumThreads(const SearchOptions& options) {
  if (options.num_threads > 0) return options.num_threads;
  if (options.pool != nullptr) return options.pool->num_threads();
  return ThreadPool::DefaultThreads();
}

EvalOutcome EvaluateCandidateIsolated(PreparedSearch& prep,
                                      const RuntimeCandidate& rt,
                                      SubQueryCache* cache,
                                      bool offer_to_cache,
                                      const SearchOptions& options) {
  EvalOutcome out;
  out.sq = EvaluateCandidate(prep, rt, cache, offer_to_cache, options,
                             &out.stats, &out.records);
  return out;
}

void MergeOutcome(EvalOutcome&& outcome, SearchResult* result,
                  TopKHeap<ScoredQuery>* topk) {
  result->stats.Add(outcome.stats);
  for (EvaluatedRecord& rec : outcome.records) {
    result->evaluated.push_back(std::move(rec));
  }
  OfferCounted(topk, std::move(outcome.sq), &result->stats);
}

SearchResult RunBaselineCore(PreparedSearch& prep,
                             std::vector<RuntimeCandidate> rts,
                             const SearchOptions& options) {
  SortRuntime(&rts);
  SearchResult result;
  WallTimer timer;
  TopKHeap<ScoredQuery> topk(static_cast<size_t>(options.k));
  // Termination condition (7): the k-th best known score strictly
  // dominates the best possible score of everything not yet evaluated
  // (strict so an exact ub == kth tie is still evaluated and resolved
  // under the canonical signature order).
  auto stop_after = [&](size_t rank) {
    return rank + 1 < rts.size() && topk.Full() &&
           topk.KthScore() > rts[rank + 1].ub;
  };
  PoolHandle pool(options, rts.size());
  if (pool.get() == nullptr) {
    for (size_t i = 0; i < rts.size(); ++i) {
      if (StopRequested(options)) {
        result.interrupted = true;
        break;
      }
      ScoredQuery sq =
          EvaluateCandidate(prep, rts[i], /*cache=*/nullptr,
                            /*offer_to_cache=*/false, options, &result.stats,
                            &result.evaluated);
      OfferCounted(&topk, std::move(sq), &result.stats);
      EmitProgress(options, topk, rts, i + 1, result.stats);
      if (stop_after(i)) break;
    }
  } else {
    // Speculative lookahead: evaluate a block of candidates in parallel,
    // then replay the outcomes in rank order applying condition (7)
    // exactly as the serial scan would. Outcomes past the stop point are
    // dropped unmerged, so the top-k, session records, and stats —
    // including the Thm-1 minimal evaluation count — are identical to
    // the serial path at any thread count; the only speculative waste is
    // at most one block beyond the stopping rank.
    const size_t block = 2 * static_cast<size_t>(ResolveNumThreads(options));
    bool stop = false;
    for (size_t lo = 0; lo < rts.size() && !stop; lo += block) {
      if (StopRequested(options)) {
        result.interrupted = true;
        break;
      }
      const size_t hi = std::min(rts.size(), lo + block);
      std::vector<EvalOutcome> outcomes(hi - lo);
      pool.get()->ParallelFor(hi - lo, [&](size_t j) {
        outcomes[j] = EvaluateCandidateIsolated(
            prep, rts[lo + j], /*cache=*/nullptr,
            /*offer_to_cache=*/false, options);
      });
      for (size_t j = 0; j < outcomes.size() && !stop; ++j) {
        MergeOutcome(std::move(outcomes[j]), &result, &topk);
        EmitProgress(options, topk, rts, lo + j + 1, result.stats);
        stop = stop_after(lo + j);
      }
    }
  }
  for (auto& [score, sq] : topk.TakeSortedDescending()) {
    (void)score;
    result.topk.push_back(std::move(sq));
  }
  result.stats.eval_seconds = timer.ElapsedSeconds();
  FinishStats(prep, nullptr, &result);
  return result;
}

}  // namespace internal

SearchResult RunNaive(PreparedSearch& prep, const SearchOptions& options) {
  SearchResult result;
  WallTimer timer;
  TopKHeap<ScoredQuery> topk(static_cast<size_t>(options.k));
  std::vector<internal::RuntimeCandidate> rts =
      internal::MakePlainRuntime(prep.candidates);
  internal::PoolHandle pool(options, rts.size());
  if (pool.get() == nullptr) {
    for (size_t i = 0; i < rts.size(); ++i) {
      if (internal::StopRequested(options)) {
        result.interrupted = true;
        break;
      }
      ScoredQuery sq =
          internal::EvaluateCandidate(prep, rts[i], /*cache=*/nullptr,
                                      /*offer_to_cache=*/false, options,
                                      &result.stats, &result.evaluated);
      internal::OfferCounted(&topk, std::move(sq), &result.stats);
      internal::EmitProgress(options, topk, rts, i + 1, result.stats);
    }
  } else {
    // Cache-less evaluations are fully independent: fan blocks out to
    // the pool (block boundaries double as stop-token poll points) and
    // merge in candidate order, which reproduces the serial result
    // bit-for-bit (heap tie-breaking included).
    const size_t block =
        8 * static_cast<size_t>(internal::ResolveNumThreads(options));
    for (size_t lo = 0; lo < rts.size(); lo += block) {
      if (internal::StopRequested(options)) {
        result.interrupted = true;
        break;
      }
      const size_t hi = std::min(rts.size(), lo + block);
      std::vector<internal::EvalOutcome> outcomes(hi - lo);
      pool.get()->ParallelFor(hi - lo, [&](size_t j) {
        outcomes[j] = internal::EvaluateCandidateIsolated(
            prep, rts[lo + j], /*cache=*/nullptr, /*offer_to_cache=*/false,
            options);
      });
      for (internal::EvalOutcome& o : outcomes) {
        internal::MergeOutcome(std::move(o), &result, &topk);
      }
      internal::EmitProgress(options, topk, rts, hi, result.stats);
    }
  }
  for (auto& [score, sq] : topk.TakeSortedDescending()) {
    (void)score;
    result.topk.push_back(std::move(sq));
  }
  result.stats.eval_seconds = timer.ElapsedSeconds();
  internal::FinishStats(prep, nullptr, &result);
  return result;
}

SearchResult RunBaseline(PreparedSearch& prep, const SearchOptions& options) {
  return internal::RunBaselineCore(
      prep, internal::MakePlainRuntime(prep.candidates), options);
}

SearchResult RunFastTopK(PreparedSearch& prep, const SearchOptions& options) {
  return internal::RunFastTopKCore(
      prep, internal::MakePlainRuntime(prep.candidates), options);
}

SearchResult SearchNaive(const IndexSet& index, const SchemaGraph& graph,
                         const ExampleSpreadsheet& sheet,
                         const SearchOptions& options) {
  PreparedSearch prep(index, graph, sheet, options);
  return RunNaive(prep, options);
}

SearchResult SearchBaseline(const IndexSet& index, const SchemaGraph& graph,
                            const ExampleSpreadsheet& sheet,
                            const SearchOptions& options) {
  PreparedSearch prep(index, graph, sheet, options);
  return RunBaseline(prep, options);
}

SearchResult SearchFastTopK(const IndexSet& index, const SchemaGraph& graph,
                            const ExampleSpreadsheet& sheet,
                            const SearchOptions& options) {
  PreparedSearch prep(index, graph, sheet, options);
  return RunFastTopK(prep, options);
}

}  // namespace s4
