#include "strategy/incremental.h"

#include <algorithm>
#include <unordered_set>

#include "index/column_ids.h"
#include "strategy/strategy_internal.h"

namespace s4 {

using internal::MakePlainRuntime;
using internal::RunBaselineCore;
using internal::RunFastTopKCore;
using internal::RuntimeCandidate;

SearchResult SearchSession::Search(const ExampleSpreadsheet& sheet,
                                   IncrementalMode mode) {
  // Column add/delete (or no prior state) restarts from scratch
  // (Sec 5.4); FASTTOPK-NINC always does.
  bool fresh = mode == IncrementalMode::kFastTopKNInc ||
               !last_sheet_.has_value() ||
               last_sheet_->NumColumns() != sheet.NumColumns() ||
               sheet.NumRows() < last_sheet_->NumRows();

  PreparedSearch prep(*index_, *graph_, sheet, options_);

  std::vector<int32_t> changed;
  if (!fresh) {
    changed = sheet.ChangedRows(*last_sheet_);
    if (changed.size() == static_cast<size_t>(sheet.NumRows())) fresh = true;
  } else {
    for (int32_t t = 0; t < sheet.NumRows(); ++t) changed.push_back(t);
  }

  std::vector<RuntimeCandidate> rts;
  if (fresh) {
    rts = MakePlainRuntime(prep.candidates);
  } else {
    std::unordered_set<int32_t> changed_set(changed.begin(), changed.end());
    const double alpha = options_.score.alpha;
    const ColumnIds& cols = index_->column_ids();
    rts.reserve(prep.candidates.size());
    for (const CandidateQuery& cand : prep.candidates) {
      RuntimeCandidate rt;
      rt.cand = &cand;
      rt.ub = cand.upper_bound;
      auto it = history_.find(cand.query.signature());
      if (it != history_.end()) {
        const HistoryEntry& entry = it->second;
        // Rows needing evaluation: edited rows plus rows whose stored
        // score is stale or missing. The evaluator's Stage-II batched
        // accumulation indexes its per-batch score buffer through this
        // es_rows subset (it only takes the contiguous fast path for
        // the full identity row set), so the re-evaluated rows come
        // back bit-identical to a from-scratch run and merge cleanly
        // with the reused prior scores.
        std::vector<int32_t> eval_rows;
        std::vector<int32_t> reuse_rows;
        for (int32_t t = 0; t < sheet.NumRows(); ++t) {
          const bool reusable =
              changed_set.count(t) == 0 &&
              t < static_cast<int32_t>(entry.valid.size()) && entry.valid[t];
          (reusable ? reuse_rows : eval_rows).push_back(t);
        }
        if (!reuse_rows.empty()) {
          // Tighter upper bound (Eq. 11): exact contribution of the
          // reusable rows plus a column-wise bound on the rest.
          double row_old = 0.0;
          for (int32_t t : reuse_rows) row_old += entry.scores[t];
          double col_old = 0.0;
          double col_rest = 0.0;
          for (const ProjectionBinding& b : cand.query.bindings()) {
            const int32_t gid = cols.Gid(ColumnRef{
                cand.query.tree().node(b.node).table, b.column});
            const std::vector<double>* cm =
                prep.ctx.CellMax(b.es_column, gid);
            if (cm == nullptr) continue;
            for (int32_t t : reuse_rows) col_old += (*cm)[t];
            for (int32_t t : eval_rows) col_rest += (*cm)[t];
          }
          const double penalty = SizePenalty(cand.query.tree().size());
          const double old_part =
              (alpha * row_old + (1.0 - alpha) * col_old) / penalty;
          rt.ub = std::min(cand.upper_bound, old_part + col_rest / penalty);
          if (!eval_rows.empty()) {
            rt.es_rows = std::move(eval_rows);
            rt.suffix = EsRowsCacheSuffix(rt.es_rows);
          }
          rt.prior_row_scores = &entry.scores;
        }
      }
      rts.push_back(std::move(rt));
    }
  }

  // The shared cores carry SearchOptions::num_threads, so incremental
  // re-searches parallelize (and stay equivalent) exactly like plain runs.
  SearchResult result = (mode == IncrementalMode::kBaselineInc)
                            ? RunBaselineCore(prep, std::move(rts), options_)
                            : RunFastTopKCore(prep, std::move(rts), options_);
  Remember(sheet, result, changed);
  return result;
}

void SearchSession::Remember(const ExampleSpreadsheet& sheet,
                             const SearchResult& result,
                             const std::vector<int32_t>& changed_rows) {
  const size_t num_rows = static_cast<size_t>(sheet.NumRows());
  // Stored rows edited in this round go stale unless re-evaluated below.
  for (auto& [sig, entry] : history_) {
    (void)sig;
    entry.valid.resize(num_rows, false);
    entry.scores.resize(num_rows, 0.0);
    for (int32_t t : changed_rows) entry.valid[t] = false;
  }
  for (const EvaluatedRecord& rec : result.evaluated) {
    HistoryEntry& entry = history_[rec.signature];
    entry.scores = rec.row_scores;
    entry.scores.resize(num_rows, 0.0);
    entry.valid.assign(num_rows, true);
  }
  last_sheet_ = sheet;
}

void SearchSession::Reset() {
  history_.clear();
  last_sheet_.reset();
}

}  // namespace s4
