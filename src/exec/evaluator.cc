#include "exec/evaluator.h"

#include <algorithm>

#include "common/string_util.h"
#include "index/column_ids.h"
#include "obs/trace.h"

namespace s4 {

std::string EsRowsCacheSuffix(const std::vector<int32_t>& es_rows) {
  if (es_rows.empty()) return std::string();
  std::string out = "|r";
  for (int32_t r : es_rows) out += StrFormat(",%d", r);
  return out;
}

// Per-call immutable state threaded through the recursion.
struct Evaluator::Ctx {
  const JoinTree* tree;
  const std::vector<ProjectionBinding>* bindings;
  SubQueryCache* cache;
  EvalCounters* counters;
  const EvalOptions* options;
  std::vector<int32_t> es_rows;  // resolved: never empty
  std::string rows_suffix;
};

void Evaluator::ComputeOwnSims(const Ctx& c, TreeNodeId v,
                               SubQueryTable* own) {
  const ResolvedSpreadsheet& rs = ctx_->resolved();
  const IndexSet& index = ctx_->index();
  const bool bonus = ctx_->params().exact_match_bonus != 0.0;
  own->num_es_rows = rs.num_rows;
  std::unordered_map<int32_t, int32_t> matchcnt;
  bool fresh = false;

  for (const ProjectionBinding& b : *c.bindings) {
    if (b.node != v) continue;
    const int32_t gid = index.column_ids().Gid(
        ColumnRef{c.tree->node(v).table, b.column});
    const std::vector<uint16_t>* lengths =
        bonus ? index.CellLengths(gid) : nullptr;
    for (int32_t t : c.es_rows) {
      const auto& groups = rs.cell_term_groups[t][b.es_column];
      if (groups.empty()) continue;
      if (bonus) matchcnt.clear();
      std::unordered_map<int32_t, double> group_best;
      for (const std::vector<TermId>& group : groups) {
        // Union semantics within a term's spelling expansions (App A.2).
        const bool single = group.size() == 1;
        if (!single) group_best.clear();
        for (TermId w : group) {
          const std::vector<Posting>* plist = index.row_index().Find(w, gid);
          if (plist == nullptr) continue;
          c.counters->postings_scanned +=
              static_cast<int64_t>(plist->size());
          const double weight = ctx_->TermWeight(w, gid);
          if (single) {
            for (const Posting& p : *plist) {
              own->UpsertScored(p.row, &fresh)[t] += weight;
              if (bonus) ++matchcnt[p.row];
            }
          } else {
            for (const Posting& p : *plist) {
              double& best = group_best[p.row];
              best = std::max(best, weight);
            }
          }
        }
        if (!single) {
          for (const auto& [row, weight] : group_best) {
            own->UpsertScored(row, &fresh)[t] += weight;
            if (bonus) ++matchcnt[row];
          }
        }
      }
      if (bonus && lengths != nullptr) {
        const int32_t cell_terms = rs.cell_num_terms[t][b.es_column];
        for (const auto& [row, cnt] : matchcnt) {
          if (cnt == cell_terms &&
              static_cast<int32_t>((*lengths)[row]) == cell_terms) {
            own->UpsertScored(row, &fresh)[t] +=
                ctx_->params().exact_match_bonus;
          }
        }
      }
    }
  }
}

std::shared_ptr<const SubQueryTable> Evaluator::EvalNode(
    const Ctx& c, TreeNodeId v, const LinkSpec& link) {
  const JoinTree& tree = *c.tree;
  const KfkSnapshot& snap = ctx_->index().snapshot();

  // Reuse the full rooted subtree at v if cached (type-i hit).
  std::string key;
  if (c.cache != nullptr) {
    key = SubtreeCacheKey(tree, *c.bindings, v, link) + c.rows_suffix;
    std::shared_ptr<const SubQueryTable> hit = c.cache->Get(key);
    if (c.options->trace != nullptr) {
      c.options->trace->AddInstant(
          "cache", "cache_probe",
          {{"kind", "subtree"}, {"hit", hit != nullptr ? "1" : "0"}});
    }
    if (hit != nullptr) {
      ++c.counters->cache_hits;
      return hit;
    }
    ++c.counters->cache_misses;
  }

  const std::vector<TreeNodeId> children = tree.ChildrenOf(v);

  // Reuse a type-ii table (subtree of one child + this node, keyed by
  // this node's PK). It already folds this node's own similarities, so
  // only the remaining children need joining.
  std::shared_ptr<const SubQueryTable> base;
  TreeNodeId covered_child = kNoNode;
  if (c.cache != nullptr) {
    for (TreeNodeId child : children) {
      std::string key2 =
          SubtreeWithParentCacheKey(tree, *c.bindings, child) + c.rows_suffix;
      std::shared_ptr<const SubQueryTable> hit = c.cache->Get(key2);
      if (c.options->trace != nullptr) {
        c.options->trace->AddInstant(
            "cache", "cache_probe",
            {{"kind", "subtree_with_parent"},
             {"hit", hit != nullptr ? "1" : "0"}});
      }
      if (hit != nullptr) {
        ++c.counters->cache_hits;
        base = std::move(hit);
        covered_child = child;
        break;
      }
    }
  }

  obs::SpanTimer build_span(c.options->trace, "cache", "build_table");

  // Recursively evaluate the remaining children bottom-up.
  std::vector<std::pair<TreeNodeId, std::shared_ptr<const SubQueryTable>>>
      child_tables;
  for (TreeNodeId child : children) {
    if (child == covered_child) continue;
    child_tables.emplace_back(
        child, EvalNode(c, child, LinkSpecFor(tree, child)));
  }

  // Stage I: this node's own cell similarities (folded into `base`
  // already when a type-ii table is reused).
  SubQueryTable own;
  if (base == nullptr) ComputeOwnSims(c, v, &own);

  const TableId table_id = tree.node(v).table;
  const std::vector<int64_t>& pks = snap.Pk(table_id);
  const int32_t num_es_rows = ctx_->resolved().num_rows;

  auto out = std::make_shared<SubQueryTable>();
  out->num_es_rows = num_es_rows;

  std::vector<double> sims;

  // Row loop (Stage II): either scan the snapshot or, when a type-ii
  // table supplies the joining rows, iterate its keys through the
  // snapshot's flat pk->row index.
  std::vector<int64_t> base_rows;
  if (base != nullptr) {
    base_rows.reserve(static_cast<size_t>(base->NumKeys()));
    base->ForEachKey([&](int64_t pk) {
      base_rows.push_back(snap.RowOfPk(table_id, pk));
    });
    c.counters->hash_lookups += static_cast<int64_t>(base_rows.size());
  }
  const int64_t limit = base != nullptr
                            ? static_cast<int64_t>(base_rows.size())
                            : snap.NumRows(table_id);
  c.counters->rows_scanned += limit;

  for (int64_t idx = 0; idx < limit; ++idx) {
    const int64_t r = base != nullptr ? base_rows[idx] : idx;
    if (r < 0) continue;

    // Seed similarities: the node's own sims or the type-ii fold.
    bool nonzero = false;
    bool exists = false;
    const double* seed = base != nullptr ? base->Find(pks[r], &exists)
                                         : own.Find(r, &exists);
    if (base != nullptr && !exists) continue;
    if (seed != nullptr) {
      sims.assign(seed, seed + num_es_rows);
      for (int32_t t : c.es_rows) nonzero = nonzero || sims[t] > 0.0;
    } else {
      sims.assign(num_es_rows, 0.0);
    }

    // Join with every remaining child subtree.
    bool joined = true;
    for (const auto& [child, ctab] : child_tables) {
      const JoinTree::Node& cn = tree.node(child);
      int64_t probe;
      if (cn.parent_holds_fk) {
        // This node's FK references the child relation.
        if (!snap.FkValid(cn.edge_to_parent, r)) {
          joined = false;
          break;
        }
        probe = snap.Fk(cn.edge_to_parent)[r];
      } else {
        probe = pks[r];
      }
      ++c.counters->hash_lookups;
      bool child_exists = false;
      const double* cs = ctab->Find(probe, &child_exists);
      if (!child_exists) {
        joined = false;
        break;
      }
      if (cs != nullptr) {
        for (int32_t t : c.es_rows) {
          if (cs[t] > 0.0) {
            sims[t] += cs[t];
            nonzero = true;
          }
        }
      }
    }
    if (!joined) continue;

    // Stage II-B: emit into the output hash table under the link key.
    int64_t out_key;
    if (link.kind == LinkSpec::Kind::kByPk) {
      out_key = pks[r];
    } else {
      if (!snap.FkValid(link.edge, r)) continue;
      out_key = snap.Fk(link.edge)[r];
    }
    if (nonzero) {
      bool fresh = false;
      double* row = out->UpsertScored(out_key, &fresh);
      if (fresh) {
        std::copy(sims.begin(), sims.end(), row);
      } else {
        for (int32_t t : c.es_rows) {
          row[t] = std::max(row[t], sims[t]);
        }
      }
      ++c.counters->hash_inserts;
    } else if (!c.options->drop_zero_rows) {
      if (out->InsertZero(out_key)) ++c.counters->hash_inserts;
    }
  }

  // Cached (and returned) tables are charged exactly what they use.
  out->ShrinkToFit();
  if (c.cache != nullptr && c.options->offer_to_cache) {
    c.cache->Add(key, out);
  }
  return out;
}

std::shared_ptr<const SubQueryTable> Evaluator::EvalSubtree(
    const JoinTree& tree, const std::vector<ProjectionBinding>& bindings,
    TreeNodeId v, const LinkSpec& link, SubQueryCache* cache,
    EvalCounters* counters, const EvalOptions& options) {
  Ctx c;
  c.tree = &tree;
  c.bindings = &bindings;
  c.cache = cache;
  c.counters = counters;
  c.options = &options;
  c.es_rows = options.es_rows;
  if (c.es_rows.empty()) {
    for (int32_t t = 0; t < ctx_->resolved().num_rows; ++t) {
      c.es_rows.push_back(t);
    }
  } else {
    c.rows_suffix = EsRowsCacheSuffix(c.es_rows);
  }
  return EvalNode(c, v, link);
}

std::vector<double> Evaluator::RowScores(const PJQuery& query,
                                         SubQueryCache* cache,
                                         EvalCounters* counters,
                                         const EvalOptions& options) {
  std::shared_ptr<const SubQueryTable> root_table =
      EvalSubtree(query.tree(), query.bindings(), query.tree().root(),
                  LinkSpec{LinkSpec::Kind::kByPk, -1}, cache, counters,
                  options);
  std::vector<double> scores(ctx_->resolved().num_rows, 0.0);
  std::vector<int32_t> rows = options.es_rows;
  if (rows.empty()) {
    for (int32_t t = 0; t < ctx_->resolved().num_rows; ++t) rows.push_back(t);
  }
  root_table->ForEachScored([&](int64_t key, const double* sims) {
    (void)key;
    for (int32_t t : rows) scores[t] = std::max(scores[t], sims[t]);
  });
  return scores;
}

std::shared_ptr<const SubQueryTable> Evaluator::EvaluateSub(
    const SubPJQuery& sub, SubQueryCache* cache, EvalCounters* counters,
    const EvalOptions& options) {
  return EvalSubtree(sub.tree, sub.bindings, sub.tree.root(), sub.link,
                     cache, counters, options);
}

}  // namespace s4
