#include "exec/evaluator.h"

#include <algorithm>

#include "common/string_util.h"
#include "index/column_ids.h"
#include "obs/trace.h"

namespace s4 {

std::string EsRowsCacheSuffix(const std::vector<int32_t>& es_rows) {
  if (es_rows.empty()) return std::string();
  std::string out = "|r";
  for (int32_t r : es_rows) out += StrFormat(",%d", r);
  return out;
}

// Per-call immutable state threaded through the recursion.
struct Evaluator::Ctx {
  const JoinTree* tree;
  const std::vector<ProjectionBinding>* bindings;
  SubQueryCache* cache;
  EvalCounters* counters;
  const EvalOptions* options;
  std::vector<int32_t> es_rows;  // resolved: never empty
  std::string rows_suffix;
  // IndexSet::relation_gens() of the epoch under evaluation; empty for
  // offline builds (gen suffixes collapse to ""). Not owned.
  const std::vector<uint64_t>* gens;
};

void Evaluator::ComputeOwnSims(const Ctx& c, TreeNodeId v,
                               SubQueryTable* own) {
  const ResolvedSpreadsheet& rs = ctx_->resolved();
  const IndexSet& index = ctx_->index();
  const bool bonus = ctx_->params().exact_match_bonus != 0.0;
  own->num_es_rows = rs.num_rows;
  std::unordered_map<int32_t, int32_t> matchcnt;
  bool fresh = false;

  for (const ProjectionBinding& b : *c.bindings) {
    if (b.node != v) continue;
    const int32_t gid = index.column_ids().Gid(
        ColumnRef{c.tree->node(v).table, b.column});
    const std::vector<uint16_t>* lengths =
        bonus ? index.CellLengths(gid) : nullptr;
    for (int32_t t : c.es_rows) {
      const auto& groups = rs.cell_term_groups[t][b.es_column];
      if (groups.empty()) continue;
      if (bonus) matchcnt.clear();
      std::unordered_map<int32_t, double> group_best;
      for (const std::vector<TermId>& group : groups) {
        // Union semantics within a term's spelling expansions (App A.2).
        const bool single = group.size() == 1;
        if (!single) group_best.clear();
        for (TermId w : group) {
          const std::vector<Posting>* plist = index.row_index().Find(w, gid);
          if (plist == nullptr) continue;
          c.counters->postings_scanned +=
              static_cast<int64_t>(plist->size());
          const double weight = ctx_->TermWeight(w, gid);
          if (single) {
            // Build-side software pipelining: warm the slot lines of the
            // upsert a few postings ahead, so the table's cache misses
            // overlap the arena writes. Upsert order is unchanged.
            constexpr size_t kAhead = 8;
            const Posting* pd = plist->data();
            const size_t np = plist->size();
            for (size_t pi = 0; pi < np; ++pi) {
              if (pi + kAhead < np) own->PrefetchUpsert(pd[pi + kAhead].row);
              own->UpsertScored(pd[pi].row, &fresh)[t] += weight;
              if (bonus) ++matchcnt[pd[pi].row];
            }
          } else {
            for (const Posting& p : *plist) {
              double& best = group_best[p.row];
              best = std::max(best, weight);
            }
          }
        }
        if (!single) {
          for (const auto& [row, weight] : group_best) {
            own->UpsertScored(row, &fresh)[t] += weight;
            if (bonus) ++matchcnt[row];
          }
        }
      }
      if (bonus && lengths != nullptr) {
        const int32_t cell_terms = rs.cell_num_terms[t][b.es_column];
        for (const auto& [row, cnt] : matchcnt) {
          if (cnt == cell_terms &&
              static_cast<int32_t>((*lengths)[row]) == cell_terms) {
            own->UpsertScored(row, &fresh)[t] +=
                ctx_->params().exact_match_bonus;
          }
        }
      }
    }
  }
}

std::shared_ptr<const SubQueryTable> Evaluator::EvalNode(
    const Ctx& c, TreeNodeId v, const LinkSpec& link) {
  const JoinTree& tree = *c.tree;
  const KfkSnapshot& snap = ctx_->index().snapshot();

  // Reuse the full rooted subtree at v if cached (type-i hit).
  std::string key;
  if (c.cache != nullptr) {
    key = SubtreeCacheKey(tree, *c.bindings, v, link) +
          RelationGenSuffix(tree, v, /*include_parent=*/false, *c.gens) +
          c.rows_suffix;
    std::shared_ptr<const SubQueryTable> hit = c.cache->Get(key);
    if (c.options->trace != nullptr) {
      c.options->trace->AddInstant(
          "cache", "cache_probe",
          {{"kind", "subtree"}, {"hit", hit != nullptr ? "1" : "0"}});
    }
    if (hit != nullptr) {
      ++c.counters->cache_hits;
      return hit;
    }
    ++c.counters->cache_misses;
  }

  const std::vector<TreeNodeId> children = tree.ChildrenOf(v);

  // Reuse a type-ii table (subtree of one child + this node, keyed by
  // this node's PK). It already folds this node's own similarities, so
  // only the remaining children need joining.
  std::shared_ptr<const SubQueryTable> base;
  TreeNodeId covered_child = kNoNode;
  if (c.cache != nullptr) {
    for (TreeNodeId child : children) {
      std::string key2 =
          SubtreeWithParentCacheKey(tree, *c.bindings, child) +
          RelationGenSuffix(tree, child, /*include_parent=*/true, *c.gens) +
          c.rows_suffix;
      std::shared_ptr<const SubQueryTable> hit = c.cache->Get(key2);
      if (c.options->trace != nullptr) {
        c.options->trace->AddInstant(
            "cache", "cache_probe",
            {{"kind", "subtree_with_parent"},
             {"hit", hit != nullptr ? "1" : "0"}});
      }
      if (hit != nullptr) {
        ++c.counters->cache_hits;
        base = std::move(hit);
        covered_child = child;
        break;
      }
    }
  }

  obs::SpanTimer build_span(c.options->trace, "cache", "build_table");

  // Recursively evaluate the remaining children bottom-up.
  std::vector<std::pair<TreeNodeId, std::shared_ptr<const SubQueryTable>>>
      child_tables;
  for (TreeNodeId child : children) {
    if (child == covered_child) continue;
    child_tables.emplace_back(
        child, EvalNode(c, child, LinkSpecFor(tree, child)));
  }

  // Stage I: this node's own cell similarities (folded into `base`
  // already when a type-ii table is reused).
  SubQueryTable own;
  if (base == nullptr) ComputeOwnSims(c, v, &own);

  const TableId table_id = tree.node(v).table;
  const std::vector<int64_t>& pks = snap.Pk(table_id);
  const int32_t num_es_rows = ctx_->resolved().num_rows;

  auto out = std::make_shared<SubQueryTable>();
  out->num_es_rows = num_es_rows;

  // Row loop (Stage II), restructured around memory-level parallelism:
  // rows advance in kProbeBatch-wide lanes instead of one dependent
  // cache miss at a time. Per batch: seeds stream from the type-ii
  // table's slot walk (or batched probes of the own-sims table), each
  // remaining child subtree is probed for all live lanes at once through
  // the hash-ahead/prefetch FindBatch, and similarities accumulate into
  // one contiguous per-batch buffer before being emitted in row order.
  // Lane death (invalid FK, non-joining key) short-circuits that lane's
  // later children exactly like the serial `break`, so every counter —
  // and, because the per-row arithmetic order (seed copy, child
  // additions in child order, ordered max-merge emit) is unchanged,
  // every score bit — matches the one-row-at-a-time loop.
  static constexpr size_t kProbeBatch = FlatMap64::kBatchWidth;

  // When a type-ii table supplies the joining rows, walk its entries
  // once (key + seed row together) and resolve the pk->row ids with
  // batched, prefetched probes of the snapshot's flat index.
  std::vector<int64_t> base_rows;
  std::vector<const double*> base_seeds;
  if (base != nullptr) {
    const size_t nb = static_cast<size_t>(base->NumKeys());
    std::vector<int64_t> base_pks;
    base_pks.reserve(nb);
    base_seeds.reserve(nb);
    base->ForEachEntry([&](int64_t pk, const double* row) {
      base_pks.push_back(pk);
      base_seeds.push_back(row);
    });
    base_rows.resize(base_pks.size());
    snap.RowOfPkBatch(table_id, base_pks.data(), base_pks.size(),
                      base_rows.data());
    c.counters->hash_lookups += static_cast<int64_t>(base_rows.size());
  }
  const int64_t limit = base != nullptr
                            ? static_cast<int64_t>(base_rows.size())
                            : snap.NumRows(table_id);
  c.counters->rows_scanned += limit;

  // Full-row runs (the common plain-search case) accumulate over the
  // whole contiguous arena row, which keeps the inner loops index-free
  // and auto-vectorizable; row-subset runs iterate es_rows as before.
  bool full_rows = static_cast<int32_t>(c.es_rows.size()) == num_es_rows;
  if (full_rows) {
    for (int32_t t = 0; t < num_es_rows; ++t) {
      if (c.es_rows[static_cast<size_t>(t)] != t) {
        full_rows = false;
        break;
      }
    }
  }

  const size_t stride = static_cast<size_t>(num_es_rows);
  std::vector<double> batch_sims(kProbeBatch * stride);
  int64_t lane_row[kProbeBatch];          // dense row id per lane
  bool alive[kProbeBatch];                // lane still joining
  const double* seed_rows[kProbeBatch];
  bool seed_exists[kProbeBatch];
  int64_t own_keys[kProbeBatch];
  int64_t probe_keys[kProbeBatch];        // packed live-lane probes
  size_t packed_lane[kProbeBatch];
  const double* child_rows[kProbeBatch];
  bool child_exists[kProbeBatch];
  int64_t out_keys[kProbeBatch];
  bool emit[kProbeBatch];

  for (int64_t lo = 0; lo < limit; lo += static_cast<int64_t>(kProbeBatch)) {
    const size_t lanes = static_cast<size_t>(
        std::min<int64_t>(static_cast<int64_t>(kProbeBatch), limit - lo));

    // Lane setup: dense row id + seed pointer, mirroring the serial
    // r < 0 skip. Seeds for the no-base path come from batched probes
    // of the own-sims table (keyed by dense row id); a missing row is
    // an all-zero seed, like the serial nullptr result.
    if (base != nullptr) {
      for (size_t l = 0; l < lanes; ++l) {
        const int64_t r = base_rows[static_cast<size_t>(lo) + l];
        lane_row[l] = r;
        alive[l] = r >= 0;
        seed_rows[l] = base_seeds[static_cast<size_t>(lo) + l];
      }
    } else {
      for (size_t l = 0; l < lanes; ++l) {
        lane_row[l] = lo + static_cast<int64_t>(l);
        alive[l] = true;
        own_keys[l] = lane_row[l];
      }
      own.FindBatch(own_keys, lanes, seed_rows, seed_exists);
    }

    // Seed the contiguous batch buffer.
    for (size_t l = 0; l < lanes; ++l) {
      if (!alive[l]) continue;
      double* dst = batch_sims.data() + l * stride;
      const double* seed = seed_rows[l];
      if (seed != nullptr) {
        std::copy(seed, seed + stride, dst);
      } else {
        std::fill(dst, dst + stride, 0.0);
      }
    }

    // Join with every remaining child subtree: pack the live lanes'
    // probe keys, batch-probe the child table, then stream the hits
    // into the batch buffer. The adds are unconditional — a 0.0 addend
    // is a bitwise no-op on these non-negative scores — so the
    // accumulation loop carries no data-dependent branches.
    for (const auto& [child, ctab] : child_tables) {
      const JoinTree::Node& cn = tree.node(child);
      size_t packed = 0;
      if (cn.parent_holds_fk) {
        // This node's FK references the child relation.
        const std::vector<int64_t>& fks = snap.Fk(cn.edge_to_parent);
        const std::vector<bool>& fk_valid =
            snap.FkValidColumn(cn.edge_to_parent);
        for (size_t l = 0; l < lanes; ++l) {
          if (!alive[l]) continue;
          if (!fk_valid[static_cast<size_t>(lane_row[l])]) {
            alive[l] = false;
            continue;
          }
          probe_keys[packed] = fks[static_cast<size_t>(lane_row[l])];
          packed_lane[packed++] = l;
        }
      } else {
        for (size_t l = 0; l < lanes; ++l) {
          if (!alive[l]) continue;
          probe_keys[packed] = pks[static_cast<size_t>(lane_row[l])];
          packed_lane[packed++] = l;
        }
      }
      if (packed == 0) continue;
      c.counters->hash_lookups += static_cast<int64_t>(packed);
      ctab->FindBatch(probe_keys, packed, child_rows, child_exists);
      for (size_t p = 0; p < packed; ++p) {
        const size_t l = packed_lane[p];
        if (!child_exists[p]) {
          alive[l] = false;
          continue;
        }
        const double* cs = child_rows[p];
        if (cs == nullptr) continue;
        double* dst = batch_sims.data() + l * stride;
        if (full_rows) {
          for (size_t t = 0; t < stride; ++t) dst[t] += cs[t];
        } else {
          for (int32_t t : c.es_rows) dst[t] += cs[t];
        }
      }
    }

    // Stage II-B: emit surviving lanes under their link keys. Pass 1
    // resolves the keys and warms the output table's slot lines; pass 2
    // upserts in row order, so insertion order — and with it robin-hood
    // layout, arena row ids, and growth points — matches serial.
    const std::vector<int64_t>* link_fks = nullptr;
    const std::vector<bool>* link_fk_valid = nullptr;
    if (link.kind == LinkSpec::Kind::kByFk) {
      link_fks = &snap.Fk(link.edge);
      link_fk_valid = &snap.FkValidColumn(link.edge);
    }
    for (size_t l = 0; l < lanes; ++l) {
      emit[l] = false;
      if (!alive[l]) continue;
      const int64_t r = lane_row[l];
      if (link.kind == LinkSpec::Kind::kByPk) {
        out_keys[l] = pks[static_cast<size_t>(r)];
      } else {
        if (!(*link_fk_valid)[static_cast<size_t>(r)]) continue;
        out_keys[l] = (*link_fks)[static_cast<size_t>(r)];
      }
      emit[l] = true;
      out->PrefetchUpsert(out_keys[l]);
    }
    for (size_t l = 0; l < lanes; ++l) {
      if (!emit[l]) continue;
      const double* sims = batch_sims.data() + l * stride;
      // All contributions are >= 0, so a positive final value appears
      // exactly when some seed or child contribution was positive —
      // the same predicate the serial loop tracked incrementally.
      bool nonzero = false;
      if (full_rows) {
        for (size_t t = 0; t < stride; ++t) {
          if (sims[t] > 0.0) {
            nonzero = true;
            break;
          }
        }
      } else {
        for (int32_t t : c.es_rows) {
          if (sims[t] > 0.0) {
            nonzero = true;
            break;
          }
        }
      }
      if (nonzero) {
        bool fresh = false;
        double* row = out->UpsertScored(out_keys[l], &fresh);
        if (fresh) {
          std::copy(sims, sims + stride, row);
        } else if (full_rows) {
          for (size_t t = 0; t < stride; ++t) {
            row[t] = std::max(row[t], sims[t]);
          }
        } else {
          for (int32_t t : c.es_rows) {
            row[t] = std::max(row[t], sims[t]);
          }
        }
        ++c.counters->hash_inserts;
      } else if (!c.options->drop_zero_rows) {
        if (out->InsertZero(out_keys[l])) ++c.counters->hash_inserts;
      }
    }
  }

  // Cached (and returned) tables are charged exactly what they use.
  out->ShrinkToFit();
  if (c.cache != nullptr && c.options->offer_to_cache) {
    c.cache->Add(key, out);
  }
  return out;
}

std::shared_ptr<const SubQueryTable> Evaluator::EvalSubtree(
    const JoinTree& tree, const std::vector<ProjectionBinding>& bindings,
    TreeNodeId v, const LinkSpec& link, SubQueryCache* cache,
    EvalCounters* counters, const EvalOptions& options) {
  Ctx c;
  c.tree = &tree;
  c.bindings = &bindings;
  c.cache = cache;
  c.counters = counters;
  c.options = &options;
  c.gens = &ctx_->index().relation_gens();
  c.es_rows = options.es_rows;
  if (c.es_rows.empty()) {
    for (int32_t t = 0; t < ctx_->resolved().num_rows; ++t) {
      c.es_rows.push_back(t);
    }
  } else {
    c.rows_suffix = EsRowsCacheSuffix(c.es_rows);
  }
  return EvalNode(c, v, link);
}

std::vector<double> Evaluator::RowScores(const PJQuery& query,
                                         SubQueryCache* cache,
                                         EvalCounters* counters,
                                         const EvalOptions& options) {
  std::shared_ptr<const SubQueryTable> root_table =
      EvalSubtree(query.tree(), query.bindings(), query.tree().root(),
                  LinkSpec{LinkSpec::Kind::kByPk, -1}, cache, counters,
                  options);
  std::vector<double> scores(ctx_->resolved().num_rows, 0.0);
  std::vector<int32_t> rows = options.es_rows;
  if (rows.empty()) {
    for (int32_t t = 0; t < ctx_->resolved().num_rows; ++t) rows.push_back(t);
  }
  root_table->ForEachScored([&](int64_t key, const double* sims) {
    (void)key;
    for (int32_t t : rows) scores[t] = std::max(scores[t], sims[t]);
  });
  return scores;
}

std::shared_ptr<const SubQueryTable> Evaluator::EvaluateSub(
    const SubPJQuery& sub, SubQueryCache* cache, EvalCounters* counters,
    const EvalOptions& options) {
  return EvalSubtree(sub.tree, sub.bindings, sub.tree.root(), sub.link,
                     cache, counters, options);
}

}  // namespace s4
