#include "exec/explain.h"

#include <functional>

#include "common/hash_util.h"
#include "common/string_util.h"
#include "exec/cost_model.h"
#include "index/column_ids.h"

namespace s4 {

std::string ExplainPlan(const PJQuery& query, const ScoreContext& ctx) {
  const JoinTree& tree = query.tree();
  const Database& db = ctx.index().db();
  const KfkSnapshot& snap = ctx.index().snapshot();
  const ColumnIds& cols = ctx.index().column_ids();

  std::string out = StrFormat(
      "PJ query plan (|J|=%d, penalty=%.3f, model cost=%lld)\n",
      tree.size(), SizePenalty(tree.size()),
      static_cast<long long>(EvaluationCost(query, ctx)));

  int step = 0;
  std::function<void(TreeNodeId, int)> visit = [&](TreeNodeId v,
                                                   int depth) {
    // Post-order: children first, matching Stage II evaluation order.
    for (TreeNodeId c : tree.ChildrenOf(v)) visit(c, depth + 1);

    const JoinTree::Node& n = tree.node(v);
    const Table& table = db.table(n.table);
    const std::string indent(static_cast<size_t>(depth) * 2, ' ');

    out += StrFormat("%s(%d) %s  [%lld rows, degree %d, hash ops %lld]\n",
                     indent.c_str(), ++step, table.name().c_str(),
                     static_cast<long long>(snap.NumRows(n.table)),
                     tree.Degree(v),
                     static_cast<long long>(snap.NumRows(n.table) *
                                            tree.Degree(v)));
    for (const ProjectionBinding& b : query.BindingsOf(v)) {
      const int32_t gid = cols.Gid(ColumnRef{n.table, b.column});
      out += StrFormat(
          "%s    stage I : scan inv(T[%c], %s.%s), %lld postings\n",
          indent.c_str(),
          b.es_column < 26 ? static_cast<char>('A' + b.es_column) : '?',
          table.name().c_str(), table.column(b.column).name.c_str(),
          static_cast<long long>(ctx.PostingCost(b.es_column, gid)));
    }
    std::string stage2 = "scan snapshot";
    for (TreeNodeId c : tree.ChildrenOf(v)) {
      const JoinTree::Node& cn = tree.node(c);
      stage2 += StrFormat(
          ", probe %s by %s", db.table(cn.table).name().c_str(),
          cn.parent_holds_fk
              ? db.foreign_keys()[cn.edge_to_parent].label.c_str()
              : "pk");
    }
    const LinkSpec link = LinkSpecFor(tree, v);
    stage2 += ", build table keyed by " +
              (link.kind == LinkSpec::Kind::kByPk
                   ? std::string("pk")
                   : "fk(" + db.foreign_keys()[link.edge].label + ")");
    out += indent + "    stage II: " + stage2 + "\n";
    out += StrFormat(
        "%s    sub-PJ  : cache key %016llx\n", indent.c_str(),
        static_cast<unsigned long long>(FingerprintString(
            SubtreeCacheKey(tree, query.bindings(), v, link))));
  };
  visit(tree.root(), 0);
  return out;
}

}  // namespace s4
