#ifndef S4_EXEC_COST_MODEL_H_
#define S4_EXEC_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/subquery_cache.h"
#include "query/pj_query.h"
#include "score/score_context.h"

namespace s4 {

// cost(Q) of evaluating a (sub-)PJ query without any cache (Eq. 12):
//   sum_R |R| * d_J(R)   (hash lookups/inserts over the snapshot)
// + sum_i sum_{w in T[i]} |inv(w, J[phi(i)])|   (posting scans).
int64_t EvaluationCost(const JoinTree& tree,
                       const std::vector<ProjectionBinding>& bindings,
                       const ScoreContext& ctx);

inline int64_t EvaluationCost(const PJQuery& q, const ScoreContext& ctx) {
  return EvaluationCost(q.tree(), q.bindings(), ctx);
}

// Size estimate |A(Q')| of the materialized output relation of a sub-PJ
// query, in bytes: rows of the root relation times the per-entry
// footprint (key + per-ES-row scores + bucket overhead). Used by the
// scheduler to respect the cache budget B (Sec 5.3.2).
size_t EstimateTableBytes(const JoinTree& tree, const ScoreContext& ctx);

// cost(Q, M) of evaluating Q reusing the cached output relations of its
// maximal cached sub-PJ queries (Eq. 13): cost(Q) minus their costs.
// `subs` must be Q's EnumerateSubQueries() result; `rows_suffix` is the
// ES-row-subset tag appended to cache keys (empty for full evaluation).
int64_t EvaluationCostWithCache(const PJQuery& q,
                                const std::vector<SubPJQuery>& subs,
                                const SubQueryCache& cache,
                                const ScoreContext& ctx,
                                const std::string& rows_suffix = {});

}  // namespace s4

#endif  // S4_EXEC_COST_MODEL_H_
