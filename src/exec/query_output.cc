#include "exec/query_output.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "index/column_ids.h"

namespace s4 {

namespace {

// Enumerates join assignments (one row per tree node) depth-first.
class OutputExecutor {
 public:
  OutputExecutor(const PJQuery& query, const ScoreContext& ctx,
                 const OutputOptions& options, QueryOutput* out)
      : query_(query),
        ctx_(ctx),
        options_(options),
        out_(out),
        db_(ctx.index().db()),
        snap_(ctx.index().snapshot()),
        rows_(query.tree().size(), -1) {}

  void Run() {
    const int32_t num_es_rows = ctx_.NumEsRows();
    out_->best_row.assign(num_es_rows, -1);
    Descend(0);
  }

 private:
  // Rows of `edge`'s source table referencing primary key `pk`.
  const std::vector<int32_t>& ReverseRows(SchemaEdgeId edge, int64_t pk) {
    auto& per_edge = reverse_[edge];
    if (per_edge.empty()) {
      const std::vector<int64_t>& fks = snap_.Fk(edge);
      for (size_t r = 0; r < fks.size(); ++r) {
        if (snap_.FkValid(edge, static_cast<int64_t>(r))) {
          per_edge[fks[r]].push_back(static_cast<int32_t>(r));
        }
      }
      if (per_edge.empty()) per_edge[-1] = {};  // mark built
    }
    auto it = per_edge.find(pk);
    return it == per_edge.end() ? empty_ : it->second;
  }

  void Descend(TreeNodeId v) {
    if (done_) return;
    const JoinTree& tree = query_.tree();
    if (v == tree.size()) {
      Emit();
      return;
    }
    const JoinTree::Node& n = tree.node(v);
    const TableId table = n.table;
    if (n.parent == kNoNode) {
      // Root: scan all rows.
      const int64_t rows = snap_.NumRows(table);
      for (int64_t r = 0; r < rows && !done_; ++r) {
        rows_[v] = r;
        Descend(v + 1);
      }
      return;
    }
    const int64_t parent_row = rows_[n.parent];
    if (n.parent_holds_fk) {
      // Parent's FK determines a single joining row.
      if (!snap_.FkValid(n.edge_to_parent, parent_row)) return;
      const int64_t pk = snap_.Fk(n.edge_to_parent)[parent_row];
      const int64_t r = db_.table(table).FindByPk(pk);
      if (r < 0) return;
      rows_[v] = r;
      Descend(v + 1);
    } else {
      const int64_t parent_pk =
          snap_.Pk(tree.node(n.parent).table)[parent_row];
      for (int32_t r : ReverseRows(n.edge_to_parent, parent_pk)) {
        if (done_) return;
        rows_[v] = r;
        Descend(v + 1);
      }
    }
  }

  void Emit() {
    if (++out_->total_rows_seen > options_.max_explored) {
      out_->truncated = true;
      done_ = true;
      return;
    }
    OutputRow row;
    row.cells.reserve(query_.bindings().size());
    for (const ProjectionBinding& b : query_.bindings()) {
      const Table& t = db_.table(query_.tree().node(b.node).table);
      const int64_t r = rows_[b.node];
      row.cells.push_back(t.IsNull(r, b.column) ? std::string()
                                                : t.GetText(r, b.column));
    }
    // Row-row similarity per example tuple (Eq. 2), via tokenization of
    // the projected cells (preview path; index-free and exact).
    const ResolvedSpreadsheet& rs = ctx_.resolved();
    row.similarity.assign(rs.num_rows, 0.0);
    const Tokenizer& tokenizer = ctx_.index().tokenizer();
    std::vector<std::unordered_set<std::string>> cell_tokens;
    cell_tokens.reserve(row.cells.size());
    for (const std::string& cell : row.cells) {
      std::vector<std::string> tokens = tokenizer.Tokenize(cell);
      cell_tokens.emplace_back(tokens.begin(), tokens.end());
    }
    const TermDict& dict = ctx_.index().dict();
    bool any_match = false;
    for (int32_t t = 0; t < rs.num_rows; ++t) {
      double sim = 0.0;
      for (size_t bi = 0; bi < query_.bindings().size(); ++bi) {
        const ProjectionBinding& b = query_.bindings()[bi];
        for (const std::vector<TermId>& group :
             rs.cell_term_groups[t][b.es_column]) {
          // A term counts once if any of its expansions appears.
          for (TermId w : group) {
            if (cell_tokens[bi].count(dict.term(w)) > 0) {
              sim += 1.0;
              break;
            }
          }
        }
      }
      row.similarity[t] = sim;
      if (sim > 0.0) any_match = true;
      const int32_t best = out_->best_row[t];
      const bool better =
          best < 0 || sim > out_->rows[best].similarity[t];
      if (sim > 0.0 && better) {
        pending_best_.push_back(t);
      }
    }

    const bool keep_for_listing =
        static_cast<int64_t>(out_->rows.size()) < options_.max_rows &&
        (!options_.only_matching || any_match);
    const bool keep_for_best = !pending_best_.empty();
    if (keep_for_listing || keep_for_best) {
      if (!keep_for_listing &&
          static_cast<int64_t>(out_->rows.size()) >= options_.max_rows) {
        out_->truncated = true;
      }
      out_->rows.push_back(std::move(row));
      for (int32_t t : pending_best_) {
        out_->best_row[t] = static_cast<int32_t>(out_->rows.size() - 1);
      }
    } else if (static_cast<int64_t>(out_->rows.size()) >=
               options_.max_rows) {
      out_->truncated = true;
    }
    pending_best_.clear();
  }

  const PJQuery& query_;
  const ScoreContext& ctx_;
  const OutputOptions& options_;
  QueryOutput* out_;
  const Database& db_;
  const KfkSnapshot& snap_;
  std::vector<int64_t> rows_;
  std::unordered_map<SchemaEdgeId,
                     std::unordered_map<int64_t, std::vector<int32_t>>>
      reverse_;
  std::vector<int32_t> empty_;
  std::vector<int32_t> pending_best_;
  bool done_ = false;
};

}  // namespace

StatusOr<QueryOutput> ExecuteQuery(const PJQuery& query,
                                   const ScoreContext& ctx,
                                   const OutputOptions& options) {
  if (query.bindings().empty()) {
    return Status::InvalidArgument("query has no projection");
  }
  QueryOutput out;
  const Database& db = ctx.index().db();
  for (const ProjectionBinding& b : query.bindings()) {
    const Table& t = db.table(query.tree().node(b.node).table);
    out.headers.push_back(StrFormat(
        "%c:%s.%s", b.es_column < 26 ? static_cast<char>('A' + b.es_column)
                                     : '?',
        t.name().c_str(), t.column(b.column).name.c_str()));
  }
  OutputExecutor executor(query, ctx, options, &out);
  executor.Run();
  return out;
}

std::string QueryOutput::ToString() const {
  std::vector<std::string> header = headers;
  header.push_back("contains");
  TablePrinter tp(header);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> line = rows[i].cells;
    std::string marks;
    for (size_t t = 0; t < best_row.size(); ++t) {
      if (best_row[t] == static_cast<int32_t>(i)) {
        if (!marks.empty()) marks += ",";
        marks += StrFormat("t%zu(%.0f)", t, rows[i].similarity[t]);
      }
    }
    line.push_back(marks);
    tp.AddRow(std::move(line));
  }
  std::string out = tp.ToString();
  if (truncated) {
    out += StrFormat("... truncated after %lld join rows\n",
                     static_cast<long long>(total_rows_seen));
  }
  return out;
}

}  // namespace s4
