#ifndef S4_EXEC_EVALUATOR_H_
#define S4_EXEC_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/subquery_cache.h"
#include "common/status.h"
#include "query/pj_query.h"
#include "score/score_context.h"

namespace s4 {

namespace obs {
class Trace;
}  // namespace obs

// Operator-level counters of one or more evaluations; these back both the
// experiment metrics (query-row evaluations, Fig 7) and validation of the
// cost model (Eq. 12).
struct EvalCounters {
  int64_t rows_scanned = 0;        // relation rows visited in Stage II
  int64_t hash_lookups = 0;        // child hash-table probes
  int64_t hash_inserts = 0;        // output hash-table inserts
  int64_t postings_scanned = 0;    // row-level posting entries read
  int64_t cache_hits = 0;          // sub-PJ tables reused from M
  int64_t cache_misses = 0;

  void Add(const EvalCounters& o) {
    rows_scanned += o.rows_scanned;
    hash_lookups += o.hash_lookups;
    hash_inserts += o.hash_inserts;
    postings_scanned += o.postings_scanned;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
  }
};

struct EvalOptions {
  // Spreadsheet rows to evaluate; empty = all rows. The incremental
  // strategies (Sec 5.4) re-evaluate only updated rows.
  std::vector<int32_t> es_rows;
  // If true, intermediate node tables computed during evaluation are
  // offered to the cache under LRU replacement (heuristic 1, Sec 5.3.4).
  bool offer_to_cache = false;
  // Paper's Stage-II shortcut: drop all-zero-similarity rows from hash
  // tables. Slightly under-scores queries whose matches straddle
  // branches with unscored join rows; kept as an ablation option.
  bool drop_zero_rows = false;
  // Per-search trace sink: when set, cache probes and node-table builds
  // record spans into it. Null keeps evaluation span-free. Not owned.
  obs::Trace* trace = nullptr;
};

// Evaluates PJ queries against the in-memory indexes with the bottom-up
// hash-join plan of Appendix B.1, reusing cached sub-PJ output relations
// per Appendix B.2. Stateless across calls except for the ScoreContext
// it reads.
class Evaluator {
 public:
  explicit Evaluator(const ScoreContext& ctx) : ctx_(&ctx) {}

  // Computes score(t | Q) for every spreadsheet row t (Eq. 1-2): the
  // row-containment components whose sum is score_row (Eq. 3). Rows not
  // selected by `options.es_rows` get 0. `cache` may be nullptr.
  std::vector<double> RowScores(const PJQuery& query, SubQueryCache* cache,
                                EvalCounters* counters,
                                const EvalOptions& options = {});

  // Evaluates a sub-PJ query to its keyed output table (type-a operator
  // Evaluate for sub-PJ queries). The result is NOT added to the cache;
  // the scheduler decides that (type-b operator Add).
  std::shared_ptr<const SubQueryTable> EvaluateSub(const SubPJQuery& sub,
                                             SubQueryCache* cache,
                                             EvalCounters* counters,
                                             const EvalOptions& options = {});

  // Exposed for testing: evaluates the subtree of (tree, bindings)
  // rooted at `v`, keyed by `link`.
  std::shared_ptr<const SubQueryTable> EvalSubtree(
      const JoinTree& tree, const std::vector<ProjectionBinding>& bindings,
      TreeNodeId v, const LinkSpec& link, SubQueryCache* cache,
      EvalCounters* counters, const EvalOptions& options);

 private:
  struct Ctx;  // per-call state bundle

  std::shared_ptr<const SubQueryTable> EvalNode(const Ctx& c, TreeNodeId v,
                                          const LinkSpec& link);

  // Stage I: per-row similarity rows of node v's own bindings, built
  // directly into an arena-backed table keyed by dense row id.
  void ComputeOwnSims(const Ctx& c, TreeNodeId v, SubQueryTable* own);

  const ScoreContext* ctx_;
};

// Suffix appended to cache keys when evaluating a proper subset of the
// spreadsheet rows, so partial-row tables never collide with full ones.
std::string EsRowsCacheSuffix(const std::vector<int32_t>& es_rows);

}  // namespace s4

#endif  // S4_EXEC_EVALUATOR_H_
