#include "exec/cost_model.h"

#include <algorithm>

#include "index/column_ids.h"

namespace s4 {

int64_t EvaluationCost(const JoinTree& tree,
                       const std::vector<ProjectionBinding>& bindings,
                       const ScoreContext& ctx) {
  const KfkSnapshot& snap = ctx.index().snapshot();
  int64_t cost = 0;
  for (TreeNodeId v = 0; v < tree.size(); ++v) {
    cost += snap.NumRows(tree.node(v).table) *
            static_cast<int64_t>(tree.Degree(v));
  }
  // A single-relation query still scans its rows once.
  if (tree.size() == 1) cost += snap.NumRows(tree.node(0).table);
  for (const ProjectionBinding& b : bindings) {
    const int32_t gid = ctx.index().column_ids().Gid(
        ColumnRef{tree.node(b.node).table, b.column});
    cost += ctx.PostingCost(b.es_column, gid);
  }
  return cost;
}

size_t EstimateTableBytes(const JoinTree& tree, const ScoreContext& ctx) {
  const size_t root_rows = static_cast<size_t>(
      ctx.index().snapshot().NumRows(tree.node(tree.root()).table));
  // Mirrors SubQueryTable::ByteSize(): one flat-table slot per emitted
  // key at the capacity the table would grow to (kSlotBytes covers the
  // key, payload, and 1-byte probe-tag arrays), plus one
  // num_es_rows-strided arena row per scored key.
  return FlatMap64::CapacityFor(root_rows) * FlatMap64::kSlotBytes +
         root_rows * sizeof(double) * static_cast<size_t>(ctx.NumEsRows()) +
         sizeof(SubQueryTable);
}

int64_t EvaluationCostWithCache(const PJQuery& q,
                                const std::vector<SubPJQuery>& subs,
                                const SubQueryCache& cache,
                                const ScoreContext& ctx,
                                const std::string& rows_suffix) {
  const int64_t base = EvaluationCost(q, ctx);
  const std::vector<uint64_t>& gens = ctx.index().relation_gens();

  // Greedily discount maximal cached sub-PJ queries: consider larger
  // subtrees first and never double-count overlapping node sets.
  std::vector<const SubPJQuery*> sorted;
  sorted.reserve(subs.size());
  for (const SubPJQuery& s : subs) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const SubPJQuery* a, const SubPJQuery* b) {
              return a->tree.size() > b->tree.size();
            });

  std::vector<bool> covered(q.tree().size(), false);
  int64_t savings = 0;
  for (const SubPJQuery* s : sorted) {
    if (!cache.Contains(s->cache_key + RelationGenSuffix(s->tree, gens) +
                        rows_suffix)) {
      continue;
    }
    std::vector<TreeNodeId> nodes = q.tree().DescendantsOf(s->anchor);
    if (s->kind == SubPJQuery::Kind::kSubtreeWithParent) {
      nodes.push_back(q.tree().node(s->anchor).parent);
    }
    bool overlaps = false;
    for (TreeNodeId n : nodes) overlaps = overlaps || covered[n];
    if (overlaps) continue;
    for (TreeNodeId n : nodes) covered[n] = true;
    savings += EvaluationCost(s->tree, s->bindings, ctx);
  }
  return std::max<int64_t>(0, base - savings);
}

}  // namespace s4
