#ifndef S4_EXEC_QUERY_OUTPUT_H_
#define S4_EXEC_QUERY_OUTPUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/pj_query.h"
#include "score/score_context.h"

namespace s4 {

// Options for materializing a PJ query's output relation.
struct OutputOptions {
  // Maximum output rows returned.
  int64_t max_rows = 50;
  // Cap on join assignments explored (safety valve for huge joins).
  int64_t max_explored = 200000;
  // Keep only rows with a positive similarity to some example tuple
  // (paper Fig 2(b) shows the full output; previews usually want hits).
  bool only_matching = false;
};

// One row of A(Q), projected onto the mapped spreadsheet columns.
struct OutputRow {
  // Cell text per binding (aligned with PJQuery::bindings()).
  std::vector<std::string> cells;
  // Row-row similarity to each example tuple (Eq. 2).
  std::vector<double> similarity;
};

// A materialized (possibly truncated) output relation of a PJ query,
// the Fig 2(b) view: rows, plus which output row best contains each
// example tuple.
struct QueryOutput {
  std::vector<std::string> headers;   // "A:Customer.CustName", ...
  std::vector<OutputRow> rows;
  bool truncated = false;
  int64_t total_rows_seen = 0;
  // Per example tuple t: index into `rows` of its best-matching row, or
  // -1 if no explored row has positive similarity. The similarity of
  // that row equals score(t | Q) when the join was fully explored.
  std::vector<int32_t> best_row;

  // Renders an aligned table; rows that are the best match of some
  // example tuple are marked with "<- t0", "<- t1", ...
  std::string ToString() const;
};

// Executes Q against the database behind `ctx` and projects per Def 2.
// The execution enumerates join assignments depth-first over the join
// tree using the (key,fk) snapshot (with reverse-FK lookups built on
// demand), so it is intended for result previews, examples and tests —
// the top-k pipeline itself never materializes A(Q).
StatusOr<QueryOutput> ExecuteQuery(const PJQuery& query,
                                   const ScoreContext& ctx,
                                   const OutputOptions& options = {});

}  // namespace s4

#endif  // S4_EXEC_QUERY_OUTPUT_H_
