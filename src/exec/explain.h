#ifndef S4_EXEC_EXPLAIN_H_
#define S4_EXEC_EXPLAIN_H_

#include <string>

#include "query/pj_query.h"
#include "score/score_context.h"

namespace s4 {

// Renders the hash-join execution plan of a PJ query in the spirit of
// the paper's Figure 14: the rooted join tree in post-order (the order
// Stage II evaluates it), and per relation instance
//   * the Stage I posting scans (one per mapped spreadsheet column,
//     with their scan costs from the cost model),
//   * the Stage II operation (scan + hash lookups into children, build
//     hash table keyed by the link attribute),
//   * the cost-model contribution |R| * d_J(R),
//   * the sub-PJ cache key prefix of the rooted subtree (what the
//     caching-evaluation scheduler can reuse at this node).
std::string ExplainPlan(const PJQuery& query, const ScoreContext& ctx);

}  // namespace s4

#endif  // S4_EXEC_EXPLAIN_H_
