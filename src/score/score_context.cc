#include "score/score_context.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace s4 {

ScoreContext::ScoreContext(const IndexSet& index,
                           const ExampleSpreadsheet& sheet,
                           ScoreParams params)
    : index_(&index),
      params_(params),
      resolved_(ResolvedSpreadsheet::Resolve(sheet, index.dict(),
                                             params.spelling_edits)) {
  candidates_.resize(resolved_.num_columns);

  // Candidate projection columns C_i = union of inv(w) over the column's
  // terms (Sec 4.1.1). The column-level index only holds text columns,
  // so no extra filtering is needed.
  for (int32_t i = 0; i < resolved_.num_columns; ++i) {
    std::set<int32_t> gids;
    for (TermId w : resolved_.column_terms[i]) {
      const std::vector<int32_t>* cols = index.column_index().Find(w);
      if (cols != nullptr) gids.insert(cols->begin(), cols->end());
    }
    candidates_[i].assign(gids.begin(), gids.end());
  }

  // Algorithm 1 per candidate pair: scan the row-level posting lists of
  // the cell terms and keep the per-row aggregate to extract the max.
  const std::vector<uint16_t>* lengths = nullptr;
  std::unordered_map<int32_t, std::pair<double, int32_t>> acc;
  for (int32_t i = 0; i < resolved_.num_columns; ++i) {
    for (int32_t gid : candidates_[i]) {
      PairStats stats;
      stats.cellmax.assign(resolved_.num_rows, 0.0);
      lengths = params_.exact_match_bonus != 0.0 ? index.CellLengths(gid)
                                                 : nullptr;
      for (int32_t t = 0; t < resolved_.num_rows; ++t) {
        const auto& groups = resolved_.cell_term_groups[t][i];
        if (groups.empty()) continue;
        acc.clear();
        std::unordered_map<int32_t, double> group_best;
        for (const std::vector<TermId>& group : groups) {
          // Union semantics across a term's expansions (App A.2): a row
          // matching any variant counts the original term once, at the
          // best variant weight.
          const bool single = group.size() == 1;
          if (!single) group_best.clear();
          for (TermId w : group) {
            const std::vector<Posting>* plist =
                index.row_index().Find(w, gid);
            if (plist == nullptr) continue;
            stats.posting_cost += static_cast<int64_t>(plist->size());
            const double weight = TermWeight(w, gid);
            if (single) {
              for (const Posting& p : *plist) {
                auto& entry = acc[p.row];
                entry.first += weight;
                entry.second += 1;
              }
            } else {
              for (const Posting& p : *plist) {
                double& best = group_best[p.row];
                best = std::max(best, weight);
              }
            }
          }
          if (!single) {
            for (const auto& [row, weight] : group_best) {
              auto& entry = acc[row];
              entry.first += weight;
              entry.second += 1;
            }
          }
        }
        double best = 0.0;
        const int32_t cell_terms = resolved_.cell_num_terms[t][i];
        for (const auto& [row, entry] : acc) {
          double sim = entry.first;
          if (lengths != nullptr && entry.second == cell_terms &&
              static_cast<int32_t>((*lengths)[row]) == cell_terms) {
            sim += params_.exact_match_bonus;
          }
          best = std::max(best, sim);
        }
        stats.cellmax[t] = best;
      }
      for (double v : stats.cellmax) stats.column_score += v;
      pair_stats_.emplace(Key(i, gid), std::move(stats));
    }
  }
}

const std::vector<double>* ScoreContext::CellMax(int32_t es_col,
                                                 int32_t gid) const {
  auto it = pair_stats_.find(Key(es_col, gid));
  return it == pair_stats_.end() ? nullptr : &it->second.cellmax;
}

double ScoreContext::ColumnScore(int32_t es_col, int32_t gid) const {
  auto it = pair_stats_.find(Key(es_col, gid));
  return it == pair_stats_.end() ? 0.0 : it->second.column_score;
}

int64_t ScoreContext::PostingCost(int32_t es_col, int32_t gid) const {
  auto it = pair_stats_.find(Key(es_col, gid));
  return it == pair_stats_.end() ? 0 : it->second.posting_cost;
}

double ScoreContext::TermWeight(TermId term, int32_t gid) const {
  if (!params_.use_idf) return 1.0;
  int64_t df = index_->row_index().PostingLength(term, gid);
  if (df <= 0) return 1.0;
  const ColumnRef& ref = index_->column_ids().FromGid(gid);
  // Row count from the epoch's snapshot, not the master database: under
  // live mutation the master may already be ahead of this frozen epoch.
  const int64_t n = index_->snapshot().NumRows(ref.table_id);
  return std::log(1.0 + static_cast<double>(n) / static_cast<double>(df));
}

}  // namespace s4
