#ifndef S4_SCORE_SCORE_CONTEXT_H_
#define S4_SCORE_SCORE_CONTEXT_H_

#include <unordered_map>
#include <vector>

#include "index/index_set.h"
#include "query/spreadsheet.h"
#include "score/score_model.h"

namespace s4 {

// Per-search scoring state shared by enumeration, upper-bound
// computation, and evaluation (Algorithm 1). For every spreadsheet
// column i and every candidate database column R[j] (those sharing at
// least one term with T[i], found via the column-level inverted index),
// it precomputes:
//   * cellmax[t] = max_{r in R} score_cell(t[i] | r[j])  for each row t,
//     whose sum over t is the column containment contribution of mapping
//     i -> R[j] (Eq. 4);
//   * the posting-scan cost sum_{w in T[i]} |inv(w, R[j])| used by the
//     evaluation cost model (Eq. 12).
// All quantities honor the optional A.2 extensions (idf term weights,
// exact-match bonus) configured in ScoreParams.
class ScoreContext {
 public:
  ScoreContext(const IndexSet& index, const ExampleSpreadsheet& sheet,
               ScoreParams params);

  const IndexSet& index() const { return *index_; }
  const ResolvedSpreadsheet& resolved() const { return resolved_; }
  const ScoreParams& params() const { return params_; }
  int32_t NumEsRows() const { return resolved_.num_rows; }
  int32_t NumEsColumns() const { return resolved_.num_columns; }

  // Candidate projection columns C_i for spreadsheet column `es_col`
  // (global column ids, ascending). Only text columns qualify.
  const std::vector<int32_t>& CandidateColumns(int32_t es_col) const {
    return candidates_[es_col];
  }

  // Per-ES-row max cell similarity for the mapping es_col -> gid, or
  // nullptr if gid is not a candidate for es_col.
  const std::vector<double>* CellMax(int32_t es_col, int32_t gid) const;

  // Column containment contribution of mapping es_col -> gid
  // (sum over rows of CellMax); 0 if not a candidate.
  double ColumnScore(int32_t es_col, int32_t gid) const;

  // sum_{w in T[es_col]} |inv(w, gid)| for the cost model.
  int64_t PostingCost(int32_t es_col, int32_t gid) const;

  // Weight of a matched term in a given column: 1, or ln(1 + N/df)
  // under the idf extension.
  double TermWeight(TermId term, int32_t gid) const;

 private:
  struct PairStats {
    std::vector<double> cellmax;  // per ES row
    double column_score = 0.0;
    int64_t posting_cost = 0;
  };
  static uint64_t Key(int32_t es_col, int32_t gid) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(es_col)) << 32) |
           static_cast<uint32_t>(gid);
  }

  const IndexSet* index_;
  ScoreParams params_;
  ResolvedSpreadsheet resolved_;
  std::vector<std::vector<int32_t>> candidates_;
  std::unordered_map<uint64_t, PairStats> pair_stats_;
};

}  // namespace s4

#endif  // S4_SCORE_SCORE_CONTEXT_H_
