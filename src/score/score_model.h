#ifndef S4_SCORE_SCORE_MODEL_H_
#define S4_SCORE_SCORE_MODEL_H_

#include <cmath>
#include <cstdint>

namespace s4 {

// Parameters of the relevance scoring model (Sec 2.3).
struct ScoreParams {
  // Weight of the row containment score; (1 - alpha) weighs the column
  // containment score (Eq. 5). Table 2 default: 0.8.
  double alpha = 0.8;

  // --- Appendix A.2 extensions (off by default = paper's base model) ---
  // Weighs each matched term by ln(1 + N/df) instead of 1.
  bool use_idf = false;
  // Added to a cell similarity when the example cell exactly matches the
  // database cell (same distinct token set).
  double exact_match_bonus = 0.0;
  // Expand each spreadsheet term to all corpus terms within this
  // Levenshtein distance and match their posting-list union (Appendix
  // A.2 spelling-error handling). 0 = exact terms only.
  int32_t spelling_edits = 0;

  bool UsesExtensions() const {
    return use_idf || exact_match_bonus != 0.0 || spelling_edits > 0;
  }
};

// Join-tree size penalty 1 + ln(1 + ln|J|) (Eq. 5). |J| >= 1.
inline double SizePenalty(int32_t tree_size) {
  return 1.0 + std::log(1.0 + std::log(static_cast<double>(tree_size)));
}

// Final relevance score (Eq. 5).
inline double CombineScore(double score_row, double score_col, double alpha,
                           int32_t tree_size) {
  return (alpha * score_row + (1.0 - alpha) * score_col) /
         SizePenalty(tree_size);
}

// Upper bound of the final score given only score_col (Prop 2).
inline double UpperBoundFromColumnScore(double score_col,
                                        int32_t tree_size) {
  return score_col / SizePenalty(tree_size);
}

}  // namespace s4

#endif  // S4_SCORE_SCORE_MODEL_H_
