#ifndef S4_OBS_TRACE_H_
#define S4_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace s4::obs {

// One trace process's worth of completed events, detachable from the
// Trace that recorded it: the unit a shard ships back to the
// coordinator on kShardDone. `origin_unix_us` is the wall-clock time
// (microseconds since the Unix epoch) of the recording Trace's steady
// epoch, so the importer can normalize the two machines' clocks by
// shifting every timestamp by the origin delta. Plain data — tests
// fabricate segments with hand-picked origins to pin the stitch math.
struct TraceSegment {
  struct Arg {
    std::string key;
    std::string value;
  };
  struct Event {
    std::string category;
    std::string name;
    int64_t ts_us = 0;   // relative to the recording trace's epoch
    int64_t dur_us = 0;  // <0 for instant events
    uint32_t tid = 0;
    uint64_t span_id = 0;    // 0 = unassigned
    uint64_t parent_id = 0;  // 0 = root within the segment
    std::vector<Arg> args;
  };

  int64_t origin_unix_us = 0;
  uint64_t trace_id = 0;
  std::vector<Event> events;
};

// Per-search trace: an append-only list of timestamped spans recorded
// by whichever threads touch the request (event loop, service worker,
// eval pool). Recording takes a short mutex — acceptable because a
// trace is only attached when explicitly requested; the designed-for
// fast path is a null Trace*, which SpanTimer turns into a single
// pointer test (no clock read, no allocation).
class Trace {
 public:
  using Clock = std::chrono::steady_clock;
  using Arg = TraceSegment::Arg;

  explicit Trace(std::string name = "search");
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void set_request_id(uint64_t id) { request_id_ = id; }
  uint64_t request_id() const { return request_id_; }
  const std::string& name() const { return name_; }

  // Fleet-wide trace identity, propagated to shards in the shard
  // search request so every segment of one distributed request carries
  // the same id. 0 (the default) means standalone.
  void set_trace_id(uint64_t id) { trace_id_ = id; }
  uint64_t trace_id() const { return trace_id_; }

  // Wall-clock instant (µs since the Unix epoch) of this trace's
  // steady-clock epoch — the cross-machine normalization anchor.
  int64_t origin_unix_us() const { return origin_unix_us_; }

  // Hands out process-unique span ids so a parent id can be known
  // before the span completes (the coordinator ships its scatter span
  // id to shards while the scatter is still open).
  uint64_t ReserveSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Records a completed span (Chrome "X" event). `category` must be a
  // string literal (stored by pointer). `span_id` 0 auto-assigns;
  // `parent_id` 0 means top-level.
  void AddSpan(const char* category, std::string name,
               Clock::time_point start, Clock::time_point end,
               std::vector<Arg> args = {}, uint64_t span_id = 0,
               uint64_t parent_id = 0);

  // Records a zero-duration instant event (Chrome "i" event).
  void AddInstant(const char* category, std::string name,
                  std::vector<Arg> args = {});

  // Detaches a copy of everything recorded so far, tagged with this
  // trace's wall origin and trace id.
  TraceSegment ExportSegment() const;

  // Stitches a remote segment into this trace under process id `pid`
  // (`label` names it in the exported timeline; the local events are
  // pid 1). Every timestamp is shifted by the segments' wall-clock
  // origin delta so remote spans land on this trace's timeline; span
  // ids are remapped into a per-pid range, and segment-root events
  // (parent_id 0) are re-parented under `parent_span_id` — the
  // coordinator passes its scatter span so shard work nests correctly.
  void ImportSegment(const TraceSegment& segment, uint32_t pid,
                     std::string label, uint64_t parent_span_id);

  size_t NumSpans() const;
  // True if any recorded event's name equals `name` (test helper).
  bool HasSpan(const std::string& name) const;
  // Number of events imported under process id `pid` (test helper).
  size_t NumSpansForPid(uint32_t pid) const;

  // Chrome trace event format — {"traceEvents":[...]} — loadable in
  // Perfetto and chrome://tracing. Timestamps are normalized so the
  // earliest event starts at ts=0. Imported segments appear as their
  // own processes (process_name metadata from the import label); span
  // id / parent id travel in each event's args as "id" / "parent".
  std::string ToChromeJson() const;

 private:
  struct Event {
    std::string category;
    std::string name;
    int64_t ts_us;   // relative to epoch_ (may be negative; see export)
    int64_t dur_us;  // <0 for instant events
    uint32_t tid;
    uint32_t pid;
    uint64_t span_id;
    uint64_t parent_id;
    std::vector<Arg> args;
  };

  const std::string name_;
  const Clock::time_point epoch_;
  const int64_t origin_unix_us_;
  uint64_t request_id_ = 0;
  uint64_t trace_id_ = 0;
  std::atomic<uint64_t> next_span_id_{1};

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<uint32_t, std::string> pid_labels_;
};

// RAII span: times the enclosing scope and records it into `trace` on
// destruction. With a null trace every member function is a single
// branch — no clock read, no string, no lock. With a live trace the
// span's id is reserved up front so it can parent other work (local or
// remote) before the span closes.
class SpanTimer {
 public:
  SpanTimer(Trace* trace, const char* category, const char* name)
      : trace_(trace), category_(category), name_(name) {
    if (trace_ != nullptr) {
      start_ = Trace::Clock::now();
      span_id_ = trace_->ReserveSpanId();
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    if (trace_ != nullptr) {
      trace_->AddSpan(category_, name_, start_, Trace::Clock::now(),
                      std::move(args_), span_id_, parent_id_);
    }
  }

  bool enabled() const { return trace_ != nullptr; }

  // The reserved span id (0 when disabled), valid from construction.
  uint64_t span_id() const { return span_id_; }
  void set_parent(uint64_t parent_id) { parent_id_ = parent_id; }

  // Attach a key/value to the span; callers should build `value` only
  // when enabled() to keep the disabled path allocation-free.
  void AddArg(std::string key, std::string value) {
    if (trace_ != nullptr) {
      args_.push_back({std::move(key), std::move(value)});
    }
  }

 private:
  Trace* const trace_;
  const char* const category_;
  const char* const name_;
  Trace::Clock::time_point start_{};
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  std::vector<Trace::Arg> args_;
};

}  // namespace s4::obs

#endif  // S4_OBS_TRACE_H_
