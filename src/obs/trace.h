#ifndef S4_OBS_TRACE_H_
#define S4_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace s4::obs {

// Per-search trace: an append-only list of timestamped spans recorded
// by whichever threads touch the request (event loop, service worker,
// eval pool). Recording takes a short mutex — acceptable because a
// trace is only attached when explicitly requested; the designed-for
// fast path is a null Trace*, which SpanTimer turns into a single
// pointer test (no clock read, no allocation).
class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  struct Arg {
    std::string key;
    std::string value;
  };

  explicit Trace(std::string name = "search");
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  void set_request_id(uint64_t id) { request_id_ = id; }
  uint64_t request_id() const { return request_id_; }
  const std::string& name() const { return name_; }

  // Records a completed span (Chrome "X" event). `category` must be a
  // string literal (stored by pointer).
  void AddSpan(const char* category, std::string name,
               Clock::time_point start, Clock::time_point end,
               std::vector<Arg> args = {});

  // Records a zero-duration instant event (Chrome "i" event).
  void AddInstant(const char* category, std::string name,
                  std::vector<Arg> args = {});

  size_t NumSpans() const;
  // True if any recorded event's name equals `name` (test helper).
  bool HasSpan(const std::string& name) const;

  // Chrome trace event format — {"traceEvents":[...]} — loadable in
  // Perfetto and chrome://tracing. Timestamps are normalized so the
  // earliest event starts at ts=0.
  std::string ToChromeJson() const;

 private:
  struct Event {
    const char* category;
    std::string name;
    int64_t ts_us;   // relative to epoch_ (may be negative; see export)
    int64_t dur_us;  // <0 for instant events
    uint32_t tid;
    std::vector<Arg> args;
  };

  const std::string name_;
  const Clock::time_point epoch_;
  uint64_t request_id_ = 0;

  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// RAII span: times the enclosing scope and records it into `trace` on
// destruction. With a null trace every member function is a single
// branch — no clock read, no string, no lock.
class SpanTimer {
 public:
  SpanTimer(Trace* trace, const char* category, const char* name)
      : trace_(trace), category_(category), name_(name) {
    if (trace_ != nullptr) start_ = Trace::Clock::now();
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    if (trace_ != nullptr) {
      trace_->AddSpan(category_, name_, start_, Trace::Clock::now(),
                      std::move(args_));
    }
  }

  bool enabled() const { return trace_ != nullptr; }

  // Attach a key/value to the span; callers should build `value` only
  // when enabled() to keep the disabled path allocation-free.
  void AddArg(std::string key, std::string value) {
    if (trace_ != nullptr) {
      args_.push_back({std::move(key), std::move(value)});
    }
  }

 private:
  Trace* const trace_;
  const char* const category_;
  const char* const name_;
  Trace::Clock::time_point start_{};
  std::vector<Trace::Arg> args_;
};

}  // namespace s4::obs

#endif  // S4_OBS_TRACE_H_
