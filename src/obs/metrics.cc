#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace s4::obs {

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

const char* KindName(MetricsSnapshot::Kind kind) {
  switch (kind) {
    case MetricsSnapshot::Kind::kCounter:
      return "counter";
    case MetricsSnapshot::Kind::kGauge:
      return "gauge";
    case MetricsSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, const std::string& n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

int64_t MetricsSnapshot::Value(const std::string& name) const {
  const Entry* e = Find(name);
  return e == nullptr ? 0 : e->value;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  out.reserve(entries.size() * 64);
  for (const Entry& e : entries) {
    const char* type =
        e.kind == Kind::kCounter
            ? "counter"
            : (e.kind == Kind::kGauge ? "gauge" : "summary");
    AppendF(&out, "# TYPE %s %s\n", e.name.c_str(), type);
    if (e.kind == Kind::kHistogram) {
      const LatencyHistogram::Snapshot& h = e.histogram;
      AppendF(&out, "%s{quantile=\"0.5\"} %.9g\n", e.name.c_str(),
              h.PercentileSeconds(0.5));
      AppendF(&out, "%s{quantile=\"0.95\"} %.9g\n", e.name.c_str(),
              h.PercentileSeconds(0.95));
      AppendF(&out, "%s{quantile=\"0.99\"} %.9g\n", e.name.c_str(),
              h.PercentileSeconds(0.99));
      AppendF(&out, "%s{quantile=\"0.999\"} %.9g\n", e.name.c_str(),
              h.PercentileSeconds(0.999));
      AppendF(&out, "%s_count %" PRId64 "\n", e.name.c_str(), h.total);
      AppendF(&out, "%s_sum %.9g\n", e.name.c_str(), h.sum_seconds);
      AppendF(&out, "%s_max %.9g\n", e.name.c_str(), h.max_seconds);
    } else {
      AppendF(&out, "%s %" PRId64 "\n", e.name.c_str(), e.value);
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) out += ',';
    first = false;
    AppendF(&out, "{\"name\":\"%s\",\"kind\":\"%s\"",
            JsonEscape(e.name).c_str(), KindName(e.kind));
    if (e.kind == Kind::kHistogram) {
      const LatencyHistogram::Snapshot& h = e.histogram;
      AppendF(&out,
              ",\"count\":%" PRId64
              ",\"sum\":%.9g,\"max\":%.9g,\"p50\":%.9g,\"p99\":%.9g}",
              h.total, h.sum_seconds, h.max_seconds, h.PercentileSeconds(0.5),
              h.PercentileSeconds(0.99));
    } else {
      AppendF(&out, ",\"value\":%" PRId64 "}", e.value);
    }
  }
  out += "]}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.entries.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kCounter;
    e.value = c->Value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kGauge;
    e.value = g->Value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = MetricsSnapshot::Kind::kHistogram;
    e.histogram = h->Snapshot();
    e.value = e.histogram.total;
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.name < b.name; });
  return snap;
}

}  // namespace s4::obs
