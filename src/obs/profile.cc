#include "obs/profile.h"

#include <cinttypes>
#include <cstdio>

namespace s4::obs {

void QueryProfile::Accumulate(const QueryProfile& o) {
  enum_seconds += o.enum_seconds;
  eval_seconds += o.eval_seconds;
  candidates_enumerated += o.candidates_enumerated;
  candidates_evaluated += o.candidates_evaluated;
  query_row_evals += o.query_row_evals;
  skipped_by_condition += o.skipped_by_condition;
  batches += o.batches;
  bound_updates += o.bound_updates;
  rows_scanned += o.rows_scanned;
  hash_lookups += o.hash_lookups;
  hash_inserts += o.hash_inserts;
  postings_scanned += o.postings_scanned;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  cache_insertions += o.cache_insertions;
  cache_evictions += o.cache_evictions;
  if (o.cache_peak_bytes > cache_peak_bytes) {
    cache_peak_bytes = o.cache_peak_bytes;
  }
  approx_sampled += o.approx_sampled;
  approx_skipped += o.approx_skipped;
  approx_escalated += o.approx_escalated;
  approx_samples += o.approx_samples;
  approx_deadline_fallbacks += o.approx_deadline_fallbacks;
}

namespace {

void Line(std::string* out, const char* label, int64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-26s %12" PRId64 "\n", label, value);
  *out += buf;
}

void TimeLine(std::string* out, const char* label, double seconds) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  %-26s %9.3f ms\n", label,
                1e3 * seconds);
  *out += buf;
}

}  // namespace

std::string FormatProfile(const QueryProfile& p,
                          const std::vector<ProfileHit>& hits) {
  std::string out;
  out.reserve(1024);
  char buf[256];

  out += "query profile\n";
  TimeLine(&out, "total wall", p.total_seconds);
  TimeLine(&out, "queued (admission)", p.queue_seconds);
  TimeLine(&out, "stage I (enumerate)", p.enum_seconds);
  TimeLine(&out, "stage II (evaluate)", p.eval_seconds);

  out += "work\n";
  Line(&out, "candidates enumerated", p.candidates_enumerated);
  Line(&out, "candidates evaluated", p.candidates_evaluated);
  Line(&out, "query-row evals", p.query_row_evals);
  Line(&out, "skipped by condition", p.skipped_by_condition);
  Line(&out, "batches", p.batches);
  Line(&out, "bound updates", p.bound_updates);
  Line(&out, "rows scanned", p.rows_scanned);
  Line(&out, "hash probes", p.hash_lookups);
  Line(&out, "hash inserts", p.hash_inserts);
  Line(&out, "postings scanned", p.postings_scanned);

  out += "cache\n";
  Line(&out, "hits", p.cache_hits);
  Line(&out, "misses", p.cache_misses);
  Line(&out, "insertions", p.cache_insertions);
  Line(&out, "evictions", p.cache_evictions);
  Line(&out, "peak bytes", static_cast<int64_t>(p.cache_peak_bytes));

  if (p.approx_sampled + p.approx_skipped + p.approx_escalated +
          p.approx_samples + p.approx_deadline_fallbacks >
      0) {
    out += "sampler\n";
    Line(&out, "candidates sampled", p.approx_sampled);
    Line(&out, "skipped on interval", p.approx_skipped);
    Line(&out, "escalated to exact", p.approx_escalated);
    Line(&out, "join rows walked", p.approx_samples);
    Line(&out, "deadline fallbacks", p.approx_deadline_fallbacks);
  }

  if (!p.shards.empty()) {
    out += "shards\n";
    for (const ShardProfile& s : p.shards) {
      std::snprintf(buf, sizeof(buf),
                    "  shard %-3d %9.3f ms  enum=%" PRId64 " eval=%" PRId64
                    " partials=%" PRId64 "%s%s\n",
                    s.shard_index, 1e3 * s.wall_seconds, s.enumerated,
                    s.evaluated, s.partials, s.lost ? " [lost]" : "",
                    s.approximate ? " [approx]" : "");
      out += buf;
    }
  }

  if (!hits.empty()) {
    out += "hits\n";
    int rank = 1;
    for (const ProfileHit& h : hits) {
      if (h.approximate) {
        // Error bars: the sampling bracket the score is certified to
        // lie in, at the per-candidate confidence the caller asked for.
        std::snprintf(buf, sizeof(buf),
                      "  %2d. score=%.4f in [%.4f, %.4f] @ %.0f%% conf  ",
                      rank++, h.score, h.interval_lo, h.interval_hi,
                      1e2 * h.interval_confidence);
      } else {
        std::snprintf(buf, sizeof(buf), "  %2d. score=%.4f  ", rank++,
                      h.score);
      }
      out += buf;
      out += h.label;
      out += '\n';
    }
  }
  return out;
}

}  // namespace s4::obs
