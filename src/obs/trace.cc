#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "obs/metrics.h"

namespace s4::obs {

namespace {

int64_t MicrosBetween(Trace::Clock::time_point from,
                      Trace::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

int64_t UnixNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Remapped id of a remote span under process id `pid`: imported ids
// live in a per-pid range disjoint from the local sequential ids, so a
// stitched timeline never aliases coordinator and shard spans.
uint64_t RemapSpanId(uint32_t pid, uint64_t id) {
  return (static_cast<uint64_t>(pid) << 32) | (id & 0xffffffffull);
}

}  // namespace

Trace::Trace(std::string name)
    : name_(std::move(name)),
      epoch_(Clock::now()),
      origin_unix_us_(UnixNowMicros()) {}

void Trace::AddSpan(const char* category, std::string name,
                    Clock::time_point start, Clock::time_point end,
                    std::vector<Arg> args, uint64_t span_id,
                    uint64_t parent_id) {
  Event e;
  e.category = category;
  e.name = std::move(name);
  e.ts_us = MicrosBetween(epoch_, start);
  e.dur_us = std::max<int64_t>(0, MicrosBetween(start, end));
  e.tid = ThreadIndex();
  e.pid = 1;
  e.span_id = span_id != 0 ? span_id : ReserveSpanId();
  e.parent_id = parent_id;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Trace::AddInstant(const char* category, std::string name,
                       std::vector<Arg> args) {
  Event e;
  e.category = category;
  e.name = std::move(name);
  e.ts_us = MicrosBetween(epoch_, Clock::now());
  e.dur_us = -1;
  e.tid = ThreadIndex();
  e.pid = 1;
  e.span_id = 0;
  e.parent_id = 0;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

TraceSegment Trace::ExportSegment() const {
  TraceSegment seg;
  seg.origin_unix_us = origin_unix_us_;
  seg.trace_id = trace_id_;
  std::lock_guard<std::mutex> lock(mu_);
  seg.events.reserve(events_.size());
  for (const Event& e : events_) {
    TraceSegment::Event out;
    out.category = e.category;
    out.name = e.name;
    out.ts_us = e.ts_us;
    out.dur_us = e.dur_us;
    out.tid = e.tid;
    out.span_id = e.span_id;
    out.parent_id = e.parent_id;
    out.args = e.args;
    seg.events.push_back(std::move(out));
  }
  return seg;
}

void Trace::ImportSegment(const TraceSegment& segment, uint32_t pid,
                          std::string label, uint64_t parent_span_id) {
  // Clock-offset normalization: a remote ts is relative to the remote
  // epoch, whose wall-clock instant the segment carries. Shifting by
  // the origin delta lands the event on this trace's timeline (up to
  // the machines' wall-clock skew, which NTP keeps far below the
  // millisecond spans we draw).
  const int64_t shift = segment.origin_unix_us - origin_unix_us_;
  std::lock_guard<std::mutex> lock(mu_);
  pid_labels_[pid] = std::move(label);
  events_.reserve(events_.size() + segment.events.size());
  for (const TraceSegment::Event& in : segment.events) {
    Event e;
    e.category = in.category;
    e.name = in.name;
    e.ts_us = in.ts_us + shift;
    e.dur_us = in.dur_us;
    e.tid = in.tid;
    e.pid = pid;
    e.span_id = in.span_id != 0 ? RemapSpanId(pid, in.span_id) : 0;
    // Segment roots hang under the caller-supplied parent (the
    // coordinator's scatter span); everything else keeps its remote
    // parent, remapped into the same per-pid range.
    e.parent_id = in.parent_id != 0 ? RemapSpanId(pid, in.parent_id)
                                    : parent_span_id;
    e.args = in.args;
    events_.push_back(std::move(e));
  }
}

size_t Trace::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

bool Trace::HasSpan(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Event& e : events_) {
    if (e.name == name) return true;
  }
  return false;
}

size_t Trace::NumSpansForPid(uint32_t pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Event& e : events_) {
    if (e.pid == pid) ++n;
  }
  return n;
}

std::string Trace::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Normalize so the earliest event lands at ts=0: spans measured
  // before the Trace object existed (e.g. frame decode) have negative
  // relative timestamps, which some viewers clip.
  int64_t min_ts = 0;
  for (const Event& e : events_) min_ts = std::min(min_ts, e.ts_us);

  std::string out;
  out.reserve(events_.size() * 160 + 256);
  out += "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  // Name the local process and every imported one so the stitched
  // timeline reads as one request across the fleet.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                "\"args\":{\"name\":\"%s\"}}",
                JsonEscape(name_).c_str());
  out += buf;
  first = false;
  for (const auto& [pid, label] : pid_labels_) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, JsonEscape(label).c_str());
    out += buf;
  }
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",";
    if (e.dur_us < 0) {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":%" PRId64
                    ",\"pid\":%u,\"tid\":%u",
                    e.ts_us - min_ts, e.pid, e.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
                    ",\"pid\":%u,\"tid\":%u",
                    e.ts_us - min_ts, e.dur_us, e.pid, e.tid);
    }
    out += buf;
    if (!e.args.empty() || e.span_id != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (e.span_id != 0) {
        std::snprintf(buf, sizeof(buf),
                      "\"id\":\"%" PRIu64 "\",\"parent\":\"%" PRIu64 "\"",
                      e.span_id, e.parent_id);
        out += buf;
        first_arg = false;
      }
      for (const Arg& a : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += "\"" + JsonEscape(a.key) + "\":\"" + JsonEscape(a.value) +
               "\"";
      }
      out += '}';
    }
    out += '}';
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"trace\":\"%s\",\"request_id\":\"%" PRIu64
                "\",\"trace_id\":\"%" PRIu64 "\"}}",
                JsonEscape(name_).c_str(), request_id_, trace_id_);
  out += buf;
  return out;
}

}  // namespace s4::obs
