#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "obs/metrics.h"

namespace s4::obs {

namespace {

int64_t MicrosBetween(Trace::Clock::time_point from,
                      Trace::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

Trace::Trace(std::string name)
    : name_(std::move(name)), epoch_(Clock::now()) {}

void Trace::AddSpan(const char* category, std::string name,
                    Clock::time_point start, Clock::time_point end,
                    std::vector<Arg> args) {
  Event e;
  e.category = category;
  e.name = std::move(name);
  e.ts_us = MicrosBetween(epoch_, start);
  e.dur_us = std::max<int64_t>(0, MicrosBetween(start, end));
  e.tid = ThreadIndex();
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Trace::AddInstant(const char* category, std::string name,
                       std::vector<Arg> args) {
  Event e;
  e.category = category;
  e.name = std::move(name);
  e.ts_us = MicrosBetween(epoch_, Clock::now());
  e.dur_us = -1;
  e.tid = ThreadIndex();
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

size_t Trace::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

bool Trace::HasSpan(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Event& e : events_) {
    if (e.name == name) return true;
  }
  return false;
}

std::string Trace::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Normalize so the earliest event lands at ts=0: spans measured
  // before the Trace object existed (e.g. frame decode) have negative
  // relative timestamps, which some viewers clip.
  int64_t min_ts = 0;
  for (const Event& e : events_) min_ts = std::min(min_ts, e.ts_us);

  std::string out;
  out.reserve(events_.size() * 128 + 64);
  out += "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",";
    if (e.dur_us < 0) {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"i\",\"s\":\"t\",\"ts\":%" PRId64
                    ",\"pid\":1,\"tid\":%u",
                    e.ts_us - min_ts, e.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"X\",\"ts\":%" PRId64 ",\"dur\":%" PRId64
                    ",\"pid\":1,\"tid\":%u",
                    e.ts_us - min_ts, e.dur_us, e.tid);
    }
    out += buf;
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const Arg& a : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += "\"" + JsonEscape(a.key) + "\":\"" + JsonEscape(a.value) +
               "\"";
      }
      out += '}';
    }
    out += '}';
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"trace\":\"%s\",\"request_id\":\"%" PRIu64 "\"}}",
                JsonEscape(name_).c_str(), request_id_);
  out += buf;
  return out;
}

}  // namespace s4::obs
