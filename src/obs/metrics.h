#ifndef S4_OBS_METRICS_H_
#define S4_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/latency_histogram.h"

namespace s4::obs {

// Stable small index for the calling thread, assigned once per thread
// from a process-wide sequence. Used to pick a counter stripe and as
// the `tid` of trace events.
uint32_t ThreadIndex();

// Minimal JSON string escaping (quotes, backslashes, control chars) for
// the snapshot and trace serializers.
std::string JsonEscape(const std::string& s);

// Monotonic counter, striped across cache lines so concurrent Add()
// from many threads is one relaxed fetch_add with no shared-line
// ping-pong. Value() folds the stripes; like the cache stats, readers
// get a momentarily-consistent sum, never a torn value.
class Counter {
 public:
  static constexpr uint32_t kStripes = 16;  // power of two

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    slots_[ThreadIndex() & (kStripes - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> v{0};
  };
  std::array<Slot, kStripes> slots_{};
};

// Last-writer-wins instantaneous value (queue depth, open sessions,
// bytes in cache). Single atomic: gauges are written at bounded rates
// (admission, connection churn), not per-candidate.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Distribution metric on top of the lock-free LatencyHistogram.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double seconds) { h_.Record(seconds); }
  LatencyHistogram::Snapshot Snapshot() const { return h_.snapshot(); }

 private:
  LatencyHistogram h_;
};

// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    int64_t value = 0;                     // counters and gauges
    LatencyHistogram::Snapshot histogram;  // histograms only
  };
  std::vector<Entry> entries;

  const Entry* Find(const std::string& name) const;
  // Counter/gauge value by name; 0 when absent.
  int64_t Value(const std::string& name) const;

  // Prometheus text exposition: `# TYPE` line plus one sample per
  // counter/gauge; histograms export summary quantiles (0.5/0.95/0.99/
  // 0.999) and _count/_sum/_max samples, all in seconds.
  std::string ToPrometheusText() const;
  // {"metrics":[{"name":...,"kind":...,"value":...},...]} — histograms
  // carry count/sum/max/p50/p99 instead of a single value.
  std::string ToJson() const;
};

// Process-wide registry. Metric objects are created on first use and
// never destroyed or moved, so callers may cache the returned
// references and hit them lock-free; the registry mutex guards only
// registration and Snapshot().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace s4::obs

#endif  // S4_OBS_METRICS_H_
