#ifndef S4_OBS_PROFILE_H_
#define S4_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace s4::obs {

// Per-shard slice of a distributed request, filled by the coordinator
// from the exchange bookkeeping it already keeps: which slice, how long
// the exchange took end to end, how much Stage-I/II work the shard
// reported, and whether the slice degraded (lost) or went approximate.
struct ShardProfile {
  int32_t shard_index = 0;
  double wall_seconds = 0.0;  // coordinator-side exchange wall time
  int64_t enumerated = 0;     // shard slice size (Stage-I output)
  int64_t evaluated = 0;      // shard Stage-II evaluations
  int64_t partials = 0;       // streamed kShardPartial frames merged
  bool lost = false;          // slice unreachable after retries
  bool approximate = false;   // shard answered with sampled intervals
};

// Per-request resource accounting: where one search spent its time and
// what it burned, accumulated from the per-run RunStats/sampler
// counters that already exist (DESIGN.md "Observability"). The struct
// is plain numbers so it can live below every layer (obs depends only
// on common), ride the wire as a flat section, and reconcile with the
// `s4_*` registry counters by construction — both are filled from the
// same per-run accumulators in one place.
struct QueryProfile {
  // Stage timings (seconds). total/queue are service-level wall times
  // (admission to completion / time spent queued); enum/eval are the
  // strategy's Stage-I/Stage-II splits.
  double total_seconds = 0.0;
  double queue_seconds = 0.0;
  double enum_seconds = 0.0;
  double eval_seconds = 0.0;
  // Stage work.
  int64_t candidates_enumerated = 0;
  int64_t candidates_evaluated = 0;
  int64_t query_row_evals = 0;
  int64_t skipped_by_condition = 0;
  int64_t batches = 0;
  int64_t bound_updates = 0;
  // Stage-II execution counters (hash probes, scans).
  int64_t rows_scanned = 0;
  int64_t hash_lookups = 0;
  int64_t hash_inserts = 0;
  int64_t postings_scanned = 0;
  // Sub-PJ cache traffic.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_insertions = 0;
  int64_t cache_evictions = 0;
  uint64_t cache_peak_bytes = 0;
  // Sampling estimator outcomes (anytime approximate search).
  int64_t approx_sampled = 0;
  int64_t approx_skipped = 0;
  int64_t approx_escalated = 0;
  int64_t approx_samples = 0;
  int64_t approx_deadline_fallbacks = 0;
  // Distributed fan-out breakdown, coordinator-filled; empty for
  // single-node requests.
  std::vector<ShardProfile> shards;

  // Accumulates another profile's work counters into this one (the
  // coordinator folds shard profiles into the fleet-wide totals).
  // Timings other than enum/eval are not summed — wall clocks of
  // concurrent shards do not add.
  void Accumulate(const QueryProfile& o);
};

// One ranked hit's score bracket for the explain report: degenerate
// [score, score] @ 1.0 for exact hits, the sampling interval when the
// hit was resolved by the estimator.
struct ProfileHit {
  double score = 0.0;
  double interval_lo = 0.0;
  double interval_hi = 0.0;
  double interval_confidence = 1.0;
  bool approximate = false;
  std::string label;  // SQL text or signature
};

// Human-readable explain report of a finished request: stage timing
// table, work/cache/sampler counters, per-shard fan-out lines, and —
// when `hits` is non-empty — per-hit score brackets (error bars) for
// approximate results.
std::string FormatProfile(const QueryProfile& profile,
                          const std::vector<ProfileHit>& hits = {});

}  // namespace s4::obs

#endif  // S4_OBS_PROFILE_H_
