#include "net/stats_endpoint.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <utility>

#include "net/socket_util.h"

namespace s4::net {

Status StatsTextServer::Start(const std::string& bind_address, uint16_t port,
                              Renderer render) {
  if (thread_.joinable()) {
    return Status::FailedPrecondition("stats endpoint already started");
  }
  auto listener = Listen(bind_address, port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto local = LocalPort(listen_fd_.get());
  if (!local.ok()) return local.status();
  port_ = *local;
  render_ = std::move(render);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void StatsTextServer::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  listen_fd_.Reset();
}

void StatsTextServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int pr = poll(&pfd, 1, 100);
    if (pr <= 0) continue;  // timeout/EINTR; re-check the stop flag
    const int raw = accept4(listen_fd_.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (raw < 0) continue;
    UniqueFd fd(raw);
    // Drain whatever request line the scraper sent; we answer the same
    // way regardless. A short poll keeps a silent client from pinning
    // the single serving thread.
    pollfd rfd{fd.get(), POLLIN, 0};
    if (poll(&rfd, 1, 200) > 0) {
      char sink[1024];
      (void)!read(fd.get(), sink, sizeof(sink));
    }
    const std::string body = render_ ? render_() : std::string();
    char header[128];
    const int n = std::snprintf(header, sizeof(header),
                                "HTTP/1.0 200 OK\r\n"
                                "Content-Type: text/plain; version=0.0.4\r\n"
                                "Content-Length: %zu\r\n\r\n",
                                body.size());
    std::string reply(header, static_cast<size_t>(n));
    reply += body;
    (void)SendAll(fd.get(), reply.data(), reply.size(),
                  /*timeout_seconds=*/2.0);
  }
}

}  // namespace s4::net
