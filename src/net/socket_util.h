#ifndef S4_NET_SOCKET_UTIL_H_
#define S4_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

#include "common/fd.h"
#include "common/status.h"

namespace s4::net {

// Creates a non-blocking loopback/any listener on `port` (0 = kernel
// picks a free port; read it back with LocalPort). SO_REUSEADDR is set
// so test servers can rebind immediately after a restart.
StatusOr<UniqueFd> Listen(const std::string& bind_address, uint16_t port,
                          int backlog = 128);

// The port a bound socket actually listens on.
StatusOr<uint16_t> LocalPort(int fd);

// Blocking connect with a wall-clock timeout (the fd is returned in
// blocking mode). DeadlineExceeded on timeout, Internal on refusal.
StatusOr<UniqueFd> ConnectWithTimeout(const std::string& host, uint16_t port,
                                      double timeout_seconds);

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);

// Blocking helpers for the client side: send/receive exactly `len`
// bytes before `deadline_unix` (steady-clock seconds; <= 0 = no
// deadline), surfacing DeadlineExceeded / Internal ("connection closed
// by peer") as typed Status. Both tolerate EINTR and partial transfers.
Status SendAll(int fd, const char* data, size_t len, double timeout_seconds);
Status RecvAll(int fd, char* data, size_t len, double timeout_seconds);

}  // namespace s4::net

#endif  // S4_NET_SOCKET_UTIL_H_
