#ifndef S4_NET_CLIENT_H_
#define S4_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/fd.h"
#include "common/status.h"
#include "net/wire.h"

namespace s4::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 5.0;
  // Client-side cap on one whole round trip (send + wait + receive);
  // <= 0 disables it. Independent of the server-side deadline carried in
  // the request, which governs the search itself.
  double request_timeout_seconds = 30.0;
  // Idle connections kept for reuse (each concurrent call checks one
  // out, so this bounds pooled sockets, not concurrency).
  size_t max_pool_connections = 4;
};

// Blocking client for S4Server. Thread-safe: concurrent Search calls
// each check a connection out of the pool (or dial a fresh one), so they
// never share a socket. Server Error frames come back as the typed
// Status they carry (Status::IsRetryable via net::IsRetryable tells the
// caller whether a verbatim retry makes sense — only ResourceExhausted
// does); transport failures surface as Internal and client-side
// timeouts as DeadlineExceeded.
//
// A pooled connection may have been idle-closed by the server between
// uses; a transport failure on a pooled socket is therefore retried once
// on a freshly dialed connection before being reported.
class S4Client {
 public:
  explicit S4Client(ClientOptions options);
  ~S4Client() = default;

  S4Client(const S4Client&) = delete;
  S4Client& operator=(const S4Client&) = delete;

  // `request_id_out`, when non-null, receives the wire id this search
  // ran under — the handle FetchTrace uses to retrieve its trace later.
  StatusOr<NetSearchResponse> Search(const NetSearchRequest& request,
                                     uint64_t* request_id_out = nullptr);
  // Live write path: applies the batch on the server (batch-as-a-sequence
  // semantics; see src/live/mutation.h). A batch that stopped early still
  // returns OK with the applied prefix in the response — inspect
  // `applied` / `error`. An error Status means nothing was applied
  // (admission rejection, immutable server, malformed frame).
  StatusOr<NetMutateResponse> Mutate(const std::vector<Mutation>& mutations,
                                     uint64_t* request_id_out = nullptr);
  Status Ping();

  // Prometheus text dump of the server's metrics registry.
  StatusOr<std::string> Stats();
  // Chrome-trace JSON for a completed traced search. NotFound when the
  // server isn't tracing or the id fell out of its trace history.
  StatusOr<std::string> FetchTrace(uint64_t request_id);
  // JSON dump of the server's slow-query log ({"slow_log":[...]}).
  // NotFound when the server runs without a slow log.
  StatusOr<std::string> FetchSlowLog();

 private:
  struct RawReply {
    FrameType type = FrameType::kPong;
    std::string payload;
  };

  // Sends `frame` and reads the response frame for `request_id`,
  // handling pool checkout/return and the one stale-connection retry.
  StatusOr<RawReply> RoundTrip(const std::string& frame,
                               uint64_t request_id);
  // One attempt on one socket. `reusable` is set when the connection is
  // still in a known-good framing state afterwards.
  StatusOr<RawReply> RoundTripOn(int fd, const std::string& frame,
                                 uint64_t request_id, bool* reusable);

  StatusOr<UniqueFd> Checkout(bool* pooled);
  void Return(UniqueFd fd);

  ClientOptions options_;
  std::atomic<uint64_t> next_request_id_{1};
  std::mutex pool_mu_;
  std::vector<UniqueFd> pool_;
};

}  // namespace s4::net

#endif  // S4_NET_CLIENT_H_
