#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "net/connection.h"

namespace s4::net {

namespace {

// The epoll wait doubles as the idle-sweep tick, so it is capped: a
// sweep runs at least this often even on a silent loop.
constexpr int kMaxWaitMs = 200;

}  // namespace

void SearchDispatcher::DispatchShardSearch(
    const std::shared_ptr<Connection>& conn, uint64_t request_id,
    NetShardSearchRequest req) {
  (void)req;
  conn->CompleteRequest(
      request_id,
      EncodeErrorFrame(Status::FailedPrecondition(
                           "shard search is not supported by this server"),
                       request_id),
      /*is_error=*/true, /*server_seconds=*/0.0);
}

void SearchDispatcher::DispatchMutate(const std::shared_ptr<Connection>& conn,
                                      uint64_t request_id,
                                      NetMutateRequest req) {
  (void)req;
  conn->CompleteRequest(
      request_id,
      EncodeErrorFrame(Status::FailedPrecondition(
                           "mutations are not supported by this server"),
                       request_id),
      /*is_error=*/true, /*server_seconds=*/0.0);
}

EventLoop::EventLoop(SearchDispatcher* dispatcher,
                     NetServerCounters* counters, const ServerTuning& tuning)
    : dispatcher_(dispatcher), counters_(counters), tuning_(tuning) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  epoll_.Reset(epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    return Status::Internal(
        StrFormat("epoll_create1: %s", strerror(errno)));
  }
  wakeup_.Reset(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_.valid()) {
    return Status::Internal(StrFormat("eventfd: %s", strerror(errno)));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr tag = the wakeup eventfd
  if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &ev) < 0) {
    return Status::Internal(
        StrFormat("epoll_ctl(wakeup): %s", strerror(errno)));
  }
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::OK();
}

void EventLoop::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  Post([] {});  // wake
  thread_.join();
  // Tear down any connections that survived to shutdown on the (now
  // joined) loop's behalf.
  for (auto& [fd, conn] : connections_) conn->Close();
  connections_.clear();
  num_connections_.store(0, std::memory_order_relaxed);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(fn));
    if (wakeup_.valid()) {
      uint64_t one = 1;
      // A full eventfd counter still wakes the loop; ignore the result.
      [[maybe_unused]] ssize_t n =
          write(wakeup_.get(), &one, sizeof(one));
    }
  }
}

void EventLoop::AdoptSocket(UniqueFd fd) {
  // The lambda must be copyable (std::function), so pass the raw fd
  // through and re-wrap on the loop thread.
  const int raw = fd.Release();
  Post([this, raw] {
    auto conn = std::make_shared<Connection>(UniqueFd(raw), this);
    if (conn->closed()) return;  // registration failed
    connections_[conn->fd()] = conn;
    num_connections_.store(connections_.size(), std::memory_order_relaxed);
  });
}

void EventLoop::CloseAllConnections() {
  Post([this] {
    for (auto& [fd, conn] : connections_) conn->Close();
    connections_.clear();
    num_connections_.store(0, std::memory_order_relaxed);
  });
}

Status EventLoop::WatchConnection(Connection* conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.ptr = conn;
  // ADD first (new connection), fall back to MOD for re-arms.
  if (epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, conn->fd(), &ev) == 0) {
    return Status::OK();
  }
  if (errno == EEXIST &&
      epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd(), &ev) == 0) {
    return Status::OK();
  }
  return Status::Internal(StrFormat("epoll_ctl: %s", strerror(errno)));
}

void EventLoop::RemoveConnection(int fd) {
  epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  connections_.erase(fd);
  num_connections_.store(connections_.size(), std::memory_order_relaxed);
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  for (auto& fn : tasks) fn();
}

void EventLoop::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  // Collect first: RemoveConnection mutates the map. This sweep also
  // reaps connections a posted task closed (completion write failures),
  // which have no epoll event to trigger removal.
  std::vector<std::shared_ptr<Connection>> expired;
  for (auto& [fd, conn] : connections_) {
    if (conn->closed()) {
      expired.push_back(conn);
    } else if (conn->IdleExpired(now)) {
      counters_->idle_closes.fetch_add(1, std::memory_order_relaxed);
      expired.push_back(conn);
    }
  }
  for (auto& conn : expired) {
    conn->Close();
    RemoveConnection(conn->fd());
  }
}

void EventLoop::ThreadMain() {
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n =
        epoll_wait(epoll_.get(), events.data(),
                   static_cast<int>(events.size()), kMaxWaitMs);
    if (n < 0 && errno != EINTR) break;
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        woken = true;
        uint64_t drain;
        while (read(wakeup_.get(), &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto* conn = static_cast<Connection*>(events[i].data.ptr);
      // The map may have dropped this connection in an earlier iteration
      // of this very batch (it cannot: each fd appears once per
      // epoll_wait, and connections never close each other) — so the
      // pointer is valid here.
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        // Let the read path observe EOF/error and clean up uniformly.
        conn->OnReadable();
      } else {
        if (ev & EPOLLIN) conn->OnReadable();
        if ((ev & EPOLLOUT) && !conn->closed()) conn->OnWritable();
      }
      if (conn->closed()) RemoveConnection(conn->fd());
    }
    (void)woken;
    RunPostedTasks();
    SweepIdle();
  }
  // Drain remaining tasks so posted completions (no-ops by now) free
  // their captures deterministically.
  RunPostedTasks();
}

}  // namespace s4::net
