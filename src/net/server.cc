#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "net/socket_util.h"
#include "net/wire.h"

namespace s4::net {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

NetSearchResponse BuildResponse(const SearchResult& result,
                                double server_seconds, const Database& db) {
  NetSearchResponse resp;
  resp.topk.reserve(result.topk.size());
  for (const ScoredQuery& sq : result.topk) {
    NetTopkEntry e;
    e.signature = sq.query.signature();
    e.sql = sq.query.ToSql(db);
    e.score = sq.score;
    e.upper_bound = sq.upper_bound;
    e.row_score = sq.row_score;
    e.column_score = sq.column_score;
    resp.topk.push_back(std::move(e));
  }
  resp.interrupted = result.interrupted;
  const RunStats& s = result.stats;
  resp.queries_enumerated = s.queries_enumerated;
  resp.queries_evaluated = s.queries_evaluated;
  resp.query_row_evals = s.query_row_evals;
  resp.skipped_by_condition = s.skipped_by_condition;
  resp.model_cost = s.model_cost;
  resp.enum_seconds = s.enum_seconds;
  resp.eval_seconds = s.eval_seconds;
  resp.cache_hits = s.cache.hits;
  resp.cache_misses = s.cache.misses;
  resp.cache_evictions = s.cache.evictions;
  resp.cache_peak_bytes = s.cache.peak_bytes;
  resp.server_seconds = server_seconds;
  return resp;
}

}  // namespace

S4Server::S4Server(S4Service* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.num_event_loops < 1) options_.num_event_loops = 1;
}

S4Server::~S4Server() { Stop(); }

Status S4Server::Start() {
  if (acceptor_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  auto listener = Listen(options_.bind_address, options_.port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;

  ServerTuning tuning;
  tuning.max_frame_bytes = options_.max_frame_bytes;
  tuning.idle_timeout_seconds = options_.idle_timeout_seconds;
  loops_.reserve(static_cast<size_t>(options_.num_event_loops));
  for (int32_t i = 0; i < options_.num_event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this, &counters_, tuning);
    S4_RETURN_IF_ERROR(loop->Start());
    loops_.push_back(std::move(loop));
  }
  acceptor_ = std::thread([this] { AcceptorMain(); });
  return Status::OK();
}

void S4Server::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_.Reset();
  // Close every connection first: that cancels in-flight StopTokens, so
  // running searches wind down at their next batch boundary instead of
  // holding the drain below for a full search.
  for (auto& loop : loops_) loop->CloseAllConnections();
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_dispatches_ == 0; });
  }
  // Every completion has been posted; the loops run their queues before
  // joining, so nothing posts to a dead loop.
  for (auto& loop : loops_) loop->Stop();
}

size_t S4Server::num_connections() const {
  size_t n = 0;
  for (const auto& loop : loops_) n += loop->num_connections();
  return n;
}

LatencyHistogram::Snapshot S4Server::latency() const {
  LatencyHistogram::Snapshot merged;
  for (const auto& loop : loops_) {
    merged.Merge(loop->latency().snapshot());
  }
  return merged;
}

void S4Server::AcceptorMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int pr = poll(&pfd, 1, 100);
    if (pr <= 0) continue;  // timeout/EINTR; re-check the stop flag
    for (;;) {
      const int raw =
          accept4(listen_fd_.get(), nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) break;  // EAGAIN: emptied the backlog
      UniqueFd fd(raw);
      (void)SetNoDelay(fd.get());
      loops_[next_loop_]->AdoptSocket(std::move(fd));
      next_loop_ = (next_loop_ + 1) % loops_.size();
    }
  }
}

void S4Server::DispatchSearch(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, NetSearchRequest req) {
  const auto start = std::chrono::steady_clock::now();
  ServiceRequest sreq;
  sreq.options = req.ToSearchOptions();
  sreq.strategy = req.ToStrategy();
  sreq.priority = req.priority;
  sreq.deadline_seconds = req.deadline_seconds;
  sreq.cells = std::move(req.cells);

  std::weak_ptr<Connection> wconn = conn;
  EventLoop* loop = conn->loop();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_dispatches_;
  }
  auto done = [this, wconn, loop, request_id,
               start](StatusOr<SearchResult> result) {
    const double server_seconds = SecondsSince(start);
    std::string frame;
    bool is_error = false;
    if (result.ok()) {
      frame = EncodeSearchResponseFrame(
          BuildResponse(*result, server_seconds, service_->system().db()),
          request_id);
    } else {
      frame = EncodeErrorFrame(result.status(), request_id);
      is_error = true;
    }
    // This runs on a service worker thread; only the owning loop may
    // touch the connection. The weak_ptr keeps a disconnected peer from
    // resurrecting: the completion just evaporates.
    loop->Post([wconn, request_id, frame = std::move(frame), is_error,
                server_seconds]() mutable {
      if (auto c = wconn.lock(); c && !c->closed()) {
        c->CompleteRequest(request_id, std::move(frame), is_error,
                           server_seconds);
      }
    });
    {
      // Notify under the lock: the moment the count hits zero, Stop()'s
      // waiter may return and destroy the cv, so the broadcast must not
      // outlive the critical section.
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
  };
  auto stop = service_->SubmitAsync(std::move(sreq), std::move(done));
  if (!stop.ok()) {
    // Rejected at admission (backpressure, validation, shutdown): the
    // callback will never run. Answer right here on the loop thread —
    // ResourceExhausted carries the retryable flag on the wire.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
    conn->CompleteRequest(request_id,
                          EncodeErrorFrame(stop.status(), request_id),
                          /*is_error=*/true, SecondsSince(start));
    return;
  }
  conn->RegisterInflight(request_id, *stop);
}

}  // namespace s4::net
