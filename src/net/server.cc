#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/string_util.h"
#include "net/socket_util.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace s4::net {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

NetSearchResponse BuildResponse(const SearchResult& result,
                                double server_seconds, const Database& db,
                                bool want_profile) {
  NetSearchResponse resp;
  resp.topk.reserve(result.topk.size());
  for (const ScoredQuery& sq : result.topk) {
    NetTopkEntry e;
    e.signature = sq.query.signature();
    e.sql = sq.query.ToSql(db);
    e.score = sq.score;
    e.upper_bound = sq.upper_bound;
    e.row_score = sq.row_score;
    e.column_score = sq.column_score;
    e.approximate = sq.approximate;
    e.interval_lo = sq.interval.lo;
    e.interval_hi = sq.interval.hi;
    e.interval_confidence = sq.interval.confidence;
    e.support = sq.interval.support;
    e.sampled = sq.interval.sampled;
    resp.topk.push_back(std::move(e));
  }
  resp.interrupted = result.interrupted;
  resp.approximate = result.approximate;
  const RunStats& s = result.stats;
  resp.queries_enumerated = s.queries_enumerated;
  resp.queries_evaluated = s.queries_evaluated;
  resp.query_row_evals = s.query_row_evals;
  resp.skipped_by_condition = s.skipped_by_condition;
  resp.model_cost = s.model_cost;
  resp.enum_seconds = s.enum_seconds;
  resp.eval_seconds = s.eval_seconds;
  resp.cache_hits = s.cache.hits;
  resp.cache_misses = s.cache.misses;
  resp.cache_evictions = s.cache.evictions;
  resp.cache_peak_bytes = s.cache.peak_bytes;
  resp.server_seconds = server_seconds;
  if (want_profile) {
    // The service stamped the timing envelope (total/queue wall) on the
    // profile before completing; work counters came from FinishStats.
    resp.has_profile = true;
    resp.profile = result.profile;
  }
  return resp;
}

const char* StrategyName(S4System::Strategy s) {
  switch (s) {
    case S4System::Strategy::kNaive:
      return "naive";
    case S4System::Strategy::kBaseline:
      return "baseline";
    case S4System::Strategy::kFastTopK:
      return "fasttopk";
  }
  return "unknown";
}

}  // namespace

S4Server::S4Server(S4Service* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.num_event_loops < 1) options_.num_event_loops = 1;
}

S4Server::~S4Server() { Stop(); }

Status S4Server::Start() {
  if (acceptor_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  auto listener = Listen(options_.bind_address, options_.port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(*listener);
  auto port = LocalPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;

  ServerTuning tuning;
  tuning.max_frame_bytes = options_.max_frame_bytes;
  tuning.idle_timeout_seconds = options_.idle_timeout_seconds;
  loops_.reserve(static_cast<size_t>(options_.num_event_loops));
  for (int32_t i = 0; i < options_.num_event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this, &counters_, tuning);
    S4_RETURN_IF_ERROR(loop->Start());
    loops_.push_back(std::move(loop));
  }
  acceptor_ = std::thread([this] { AcceptorMain(); });
  return Status::OK();
}

void S4Server::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_.Reset();
  // Close every connection first: that cancels in-flight StopTokens, so
  // running searches wind down at their next batch boundary instead of
  // holding the drain below for a full search.
  for (auto& loop : loops_) loop->CloseAllConnections();
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_dispatches_ == 0; });
  }
  // Every completion has been posted; the loops run their queues before
  // joining, so nothing posts to a dead loop.
  for (auto& loop : loops_) loop->Stop();
}

size_t S4Server::num_connections() const {
  size_t n = 0;
  for (const auto& loop : loops_) n += loop->num_connections();
  return n;
}

LatencyHistogram::Snapshot S4Server::latency() const {
  LatencyHistogram::Snapshot merged;
  for (const auto& loop : loops_) {
    merged.Merge(loop->latency().snapshot());
  }
  return merged;
}

void S4Server::AcceptorMain() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int pr = poll(&pfd, 1, 100);
    if (pr <= 0) continue;  // timeout/EINTR; re-check the stop flag
    for (;;) {
      const int raw =
          accept4(listen_fd_.get(), nullptr, nullptr,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) break;  // EAGAIN: emptied the backlog
      UniqueFd fd(raw);
      (void)SetNoDelay(fd.get());
      loops_[next_loop_]->AdoptSocket(std::move(fd));
      next_loop_ = (next_loop_ + 1) % loops_.size();
    }
  }
}

void S4Server::DispatchSearch(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, NetSearchRequest req) {
  const auto start = std::chrono::steady_clock::now();
  ServiceRequest sreq;
  sreq.options = req.ToSearchOptions();
  sreq.strategy = req.ToStrategy();
  sreq.priority = req.priority;
  sreq.deadline_seconds = req.deadline_seconds;
  sreq.cells = std::move(req.cells);
  if (options_.enable_tracing) {
    sreq.trace = std::make_shared<obs::Trace>("search");
    sreq.trace->set_request_id(request_id);
    // The frame was decoded before the trace existed; reconstruct its
    // span ending now. It lands before the trace epoch — export-time
    // normalization shifts everything so the earliest event is ts=0.
    sreq.trace->AddSpan(
        "net", "frame_decode",
        start - std::chrono::duration_cast<obs::Trace::Clock::duration>(
                    std::chrono::duration<double>(req.decode_seconds)),
        start);
  }
  const S4System::Strategy strategy = sreq.strategy;
  const bool want_profile = req.want_profile;
  std::shared_ptr<obs::Trace> trace = sreq.trace;

  std::weak_ptr<Connection> wconn = conn;
  EventLoop* loop = conn->loop();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_dispatches_;
  }
  auto done = [this, wconn, loop, request_id, start, strategy, want_profile,
               trace](StatusOr<SearchResult> result) {
    const double server_seconds = SecondsSince(start);
    std::string frame;
    bool is_error = false;
    {
      obs::SpanTimer encode_span(trace.get(), "net", "frame_encode");
      if (result.ok()) {
        frame = EncodeSearchResponseFrame(
            BuildResponse(*result, server_seconds, service_->system().db(),
                          want_profile),
            request_id);
      } else {
        frame = EncodeErrorFrame(result.status(), request_id);
        is_error = true;
      }
    }
    if (options_.verbose) {
      if (result.ok()) {
        const RunStats& s = result->stats;
        const int64_t probes = s.cache.hits + s.cache.misses;
        std::fprintf(
            stderr,
            "[net_server] request_id=%llu strategy=%s evaluated=%lld "
            "cache_hit_rate=%.3f wall_seconds=%.6f\n",
            static_cast<unsigned long long>(request_id),
            StrategyName(strategy),
            static_cast<long long>(s.queries_evaluated),
            probes > 0 ? static_cast<double>(s.cache.hits) / probes : 0.0,
            server_seconds);
      } else {
        std::fprintf(stderr,
                     "[net_server] request_id=%llu strategy=%s error=%s "
                     "wall_seconds=%.6f\n",
                     static_cast<unsigned long long>(request_id),
                     StrategyName(strategy),
                     result.status().ToString().c_str(), server_seconds);
      }
    }
    if (trace) StoreTrace(request_id, trace);
    // This runs on a service worker thread; only the owning loop may
    // touch the connection. The weak_ptr keeps a disconnected peer from
    // resurrecting: the completion just evaporates.
    loop->Post([wconn, request_id, frame = std::move(frame), is_error,
                server_seconds]() mutable {
      if (auto c = wconn.lock(); c && !c->closed()) {
        c->CompleteRequest(request_id, std::move(frame), is_error,
                           server_seconds);
      }
    });
    {
      // Notify under the lock: the moment the count hits zero, Stop()'s
      // waiter may return and destroy the cv, so the broadcast must not
      // outlive the critical section.
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
  };
  auto stop = service_->SubmitAsync(std::move(sreq), std::move(done));
  if (!stop.ok()) {
    // Rejected at admission (backpressure, validation, shutdown): the
    // callback will never run. Answer right here on the loop thread —
    // ResourceExhausted carries the retryable flag on the wire.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
    conn->CompleteRequest(request_id,
                          EncodeErrorFrame(stop.status(), request_id),
                          /*is_error=*/true, SecondsSince(start));
    return;
  }
  conn->RegisterInflight(request_id, *stop);
}

void S4Server::DispatchShardSearch(const std::shared_ptr<Connection>& conn,
                                   uint64_t request_id,
                                   NetShardSearchRequest req) {
  const auto start = std::chrono::steady_clock::now();
  ServiceRequest sreq;
  sreq.options = req.base.ToSearchOptions();
  sreq.options.shard_count = req.shard_count;
  sreq.options.shard_index = req.shard_index;
  sreq.strategy = req.base.ToStrategy();
  sreq.priority = req.base.priority;
  sreq.deadline_seconds = req.base.deadline_seconds;
  sreq.cells = std::move(req.base.cells);
  // A coordinator asking for a stitched timeline (want_trace) gets a
  // per-request trace regardless of this server's own tracing flag —
  // the segment rides back on kShardDone either way.
  const bool want_trace = req.want_trace;
  if (options_.enable_tracing || want_trace) {
    sreq.trace = std::make_shared<obs::Trace>("shard_search");
    sreq.trace->set_request_id(request_id);
    if (want_trace) sreq.trace->set_trace_id(req.trace_id);
    sreq.trace->AddSpan(
        "net", "frame_decode",
        start - std::chrono::duration_cast<obs::Trace::Clock::duration>(
                    std::chrono::duration<double>(req.base.decode_seconds)),
        start);
  }
  const bool want_profile = req.base.want_profile;
  std::shared_ptr<obs::Trace> trace = sreq.trace;

  std::weak_ptr<Connection> wconn = conn;
  EventLoop* loop = conn->loop();

  // Last remaining-upper-bound snapshot the strategy reported, shared
  // between the progress sink (service worker thread) and the done
  // callback. Starts at +inf: "nothing proven yet" is the only safe
  // claim before the first snapshot.
  struct ShardProgressState {
    std::atomic<uint64_t> snapshots{0};
    std::atomic<uint64_t> remaining_ub_bits{
        std::bit_cast<uint64_t>(std::numeric_limits<double>::infinity())};
  };
  auto state = std::make_shared<ShardProgressState>();
  if (req.partial_every > 0) {
    const uint32_t every = req.partial_every;
    sreq.options.progress = [this, wconn, loop, request_id, every,
                             state](const SearchProgress& p) {
      state->remaining_ub_bits.store(
          std::bit_cast<uint64_t>(p.remaining_upper_bound),
          std::memory_order_relaxed);
      const uint64_t n =
          state->snapshots.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n % every != 0) return;
      NetShardPartial partial;
      partial.remaining_upper_bound = p.remaining_upper_bound;
      partial.enumerated = p.enumerated;
      partial.evaluated = p.evaluated;
      partial.batches = p.batches;
      partial.topk.reserve(p.topk.size());
      for (const ScoredQuery& sq : p.topk) {
        NetTopkEntry e;
        e.signature = sq.query.signature();
        // No SQL in partials: the merge needs identity + scores only;
        // the rendered SELECT rides the final kShardDone.
        e.score = sq.score;
        e.upper_bound = sq.upper_bound;
        e.row_score = sq.row_score;
        e.column_score = sq.column_score;
        e.approximate = sq.approximate;
        e.interval_lo = sq.interval.lo;
        e.interval_hi = sq.interval.hi;
        e.interval_confidence = sq.interval.confidence;
        e.support = sq.interval.support;
        e.sampled = sq.interval.sampled;
        partial.topk.push_back(std::move(e));
      }
      counters_.shard_partials_sent.fetch_add(1, std::memory_order_relaxed);
      std::string frame = EncodeShardPartialFrame(partial, request_id);
      // Streamed from the search thread; FIFO posting to the owning loop
      // keeps partials ordered before the final done frame.
      loop->Post([wconn, frame = std::move(frame)]() mutable {
        if (auto c = wconn.lock(); c && !c->closed()) {
          c->SendFrame(std::move(frame));
        }
      });
    };
  }

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_dispatches_;
  }
  auto done = [this, wconn, loop, request_id, start, state, want_trace,
               want_profile, trace](StatusOr<SearchResult> result) {
    const double server_seconds = SecondsSince(start);
    std::string frame;
    bool is_error = false;
    {
      obs::SpanTimer encode_span(trace.get(), "net", "frame_encode");
      if (result.ok()) {
        NetShardDone done_msg;
        done_msg.response = BuildResponse(
            *result, server_seconds, service_->system().db(), want_profile);
        done_msg.remaining_upper_bound = std::bit_cast<double>(
            state->remaining_ub_bits.load(std::memory_order_relaxed));
        if (want_trace && trace != nullptr) {
          // Detach everything recorded so far (the encode span above is
          // still open and stays local). The wire encoder enforces the
          // segment caps; the coordinator re-checks them on decode.
          done_msg.has_segment = true;
          done_msg.segment = trace->ExportSegment();
        }
        frame = EncodeShardDoneFrame(done_msg, request_id);
      } else {
        frame = EncodeErrorFrame(result.status(), request_id);
        is_error = true;
      }
    }
    if (trace) StoreTrace(request_id, trace);
    loop->Post([wconn, request_id, frame = std::move(frame), is_error,
                server_seconds]() mutable {
      if (auto c = wconn.lock(); c && !c->closed()) {
        c->CompleteRequest(request_id, std::move(frame), is_error,
                           server_seconds);
      }
    });
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
  };
  auto stop = service_->SubmitAsync(std::move(sreq), std::move(done));
  if (!stop.ok()) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
    conn->CompleteRequest(request_id,
                          EncodeErrorFrame(stop.status(), request_id),
                          /*is_error=*/true, SecondsSince(start));
    return;
  }
  conn->RegisterInflight(request_id, *stop);
}

void S4Server::DispatchMutate(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, NetMutateRequest req) {
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<obs::Trace> trace;
  if (options_.enable_tracing) {
    trace = std::make_shared<obs::Trace>("mutate");
    trace->set_request_id(request_id);
    trace->AddSpan(
        "net", "frame_decode",
        start - std::chrono::duration_cast<obs::Trace::Clock::duration>(
                    std::chrono::duration<double>(req.decode_seconds)),
        start);
  }

  std::weak_ptr<Connection> wconn = conn;
  EventLoop* loop = conn->loop();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_dispatches_;
  }
  auto done = [this, wconn, loop, request_id, start,
               trace](StatusOr<MutationResult> result) {
    const double server_seconds = SecondsSince(start);
    std::string frame;
    bool is_error = false;
    {
      obs::SpanTimer encode_span(trace.get(), "net", "frame_encode");
      if (result.ok()) {
        NetMutateResponse resp;
        resp.applied = result->applied;
        resp.epoch = result->epoch;
        resp.interrupted = result->interrupted;
        resp.error = result->error;
        resp.touched.assign(result->touched.begin(), result->touched.end());
        resp.server_seconds = server_seconds;
        frame = EncodeMutateResponseFrame(resp, request_id);
      } else {
        frame = EncodeErrorFrame(result.status(), request_id);
        is_error = true;
      }
    }
    if (options_.verbose) {
      if (result.ok()) {
        std::fprintf(stderr,
                     "[net_server] request_id=%llu mutate applied=%lld "
                     "epoch=%llu wall_seconds=%.6f\n",
                     static_cast<unsigned long long>(request_id),
                     static_cast<long long>(result->applied),
                     static_cast<unsigned long long>(result->epoch),
                     server_seconds);
      } else {
        std::fprintf(stderr,
                     "[net_server] request_id=%llu mutate error=%s "
                     "wall_seconds=%.6f\n",
                     static_cast<unsigned long long>(request_id),
                     result.status().ToString().c_str(), server_seconds);
      }
    }
    if (trace) StoreTrace(request_id, trace);
    loop->Post([wconn, request_id, frame = std::move(frame), is_error,
                server_seconds]() mutable {
      if (auto c = wconn.lock(); c && !c->closed()) {
        c->CompleteRequest(request_id, std::move(frame), is_error,
                           server_seconds);
      }
    });
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
  };
  auto stop = service_->SubmitMutateAsync(std::move(req.mutations),
                                          std::move(done), trace.get());
  if (!stop.ok()) {
    // Rejected before scheduling (immutable deployment, shutdown): the
    // callback will never run; answer on the loop thread.
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_dispatches_;
      inflight_cv_.notify_all();
    }
    conn->CompleteRequest(request_id,
                          EncodeErrorFrame(stop.status(), request_id),
                          /*is_error=*/true, SecondsSince(start));
    return;
  }
  conn->RegisterInflight(request_id, *stop);
}

void S4Server::StoreTrace(uint64_t request_id,
                          std::shared_ptr<obs::Trace> trace) {
  std::lock_guard<std::mutex> lock(traces_mu_);
  auto it = traces_.find(request_id);
  if (it != traces_.end()) {
    // Reused id: replace the trace but keep its position in the ring.
    it->second = std::move(trace);
    return;
  }
  traces_.emplace(request_id, std::move(trace));
  trace_order_.push_back(request_id);
  while (trace_order_.size() > options_.trace_history) {
    traces_.erase(trace_order_.front());
    trace_order_.pop_front();
  }
}

std::string S4Server::CollectStatsText() {
  // Service stats collection refreshes the s4_service_* / s4_pool_* /
  // s4_shared_cache_bytes gauges as a side effect.
  (void)service_->stats();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const NetServerCounters& c = counters_;
  reg.GetGauge("s4_net_open_connections")
      .Set(static_cast<int64_t>(num_connections()));
  reg.GetGauge("s4_net_connections_accepted")
      .Set(c.connections_accepted.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_connections_closed")
      .Set(c.connections_closed.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_frames_received")
      .Set(c.frames_received.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_responses_sent")
      .Set(c.responses_sent.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_errors_sent")
      .Set(c.errors_sent.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_protocol_errors")
      .Set(c.protocol_errors.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_disconnect_cancels")
      .Set(c.disconnect_cancels.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_idle_closes")
      .Set(c.idle_closes.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_bytes_received")
      .Set(c.bytes_received.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_bytes_sent")
      .Set(c.bytes_sent.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_stats_requests")
      .Set(c.stats_requests.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_trace_requests")
      .Set(c.trace_requests.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_shard_requests")
      .Set(c.shard_requests.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_shard_partials_sent")
      .Set(c.shard_partials_sent.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_shard_stops")
      .Set(c.shard_stops.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_mutate_requests")
      .Set(c.mutate_requests.load(std::memory_order_relaxed));
  reg.GetGauge("s4_net_slow_log_requests")
      .Set(c.slow_log_requests.load(std::memory_order_relaxed));
  for (size_t i = 0; i < loops_.size(); ++i) {
    reg.GetGauge(StrFormat("s4_net_loop%zu_connections", i))
        .Set(static_cast<int64_t>(loops_[i]->num_connections()));
  }
  return reg.Snapshot().ToPrometheusText();
}

StatusOr<std::string> S4Server::CollectTraceJson(uint64_t request_id) {
  if (!options_.enable_tracing) {
    return Status::NotFound("tracing is not enabled on this server");
  }
  std::shared_ptr<obs::Trace> trace;
  {
    std::lock_guard<std::mutex> lock(traces_mu_);
    auto it = traces_.find(request_id);
    if (it != traces_.end()) trace = it->second;
  }
  if (!trace) {
    return Status::NotFound(StrFormat(
        "no trace for request_id %llu (not traced yet, or evicted from "
        "the %zu-entry history)",
        static_cast<unsigned long long>(request_id),
        options_.trace_history));
  }
  return trace->ToChromeJson();
}

StatusOr<std::string> S4Server::CollectSlowLogJson() {
  if (!service_->slow_log_enabled()) {
    return Status::NotFound(
        "the slow-query log is not enabled (ServiceOptions::slow_log_size "
        "is 0)");
  }
  return service_->SlowLogJson();
}

}  // namespace s4::net
