#include "net/wire.h"

#include <algorithm>
#include <bit>

#include "common/string_util.h"

namespace s4::net {

namespace {

// Decode-side sanity caps, all far above anything a legitimate request
// carries but small enough that a hostile frame cannot make the decoder
// allocate unbounded vectors before the byte-level bounds checks bite.
constexpr uint32_t kMaxRows = 4096;
constexpr uint32_t kMaxCols = 4096;
constexpr uint64_t kMaxCells = 1u << 20;
constexpr uint32_t kMaxTopk = 1u << 20;

void PutLE(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::string FinishFrame(FrameType type, uint64_t request_id,
                        std::string payload) {
  FrameHeader h;
  h.type = type;
  h.request_id = request_id;
  h.payload_len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendFrameHeader(h, &frame);
  frame += payload;
  return frame;
}

Status Truncated(const char* what) {
  return Status::InvalidArgument(
      StrFormat("truncated %s payload", what));
}

}  // namespace

// --- primitives --------------------------------------------------------

bool WireReader::Take(size_t n, const char** out) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::ReadU8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadI32(int32_t* v) {
  uint32_t u;
  if (!ReadU32(&u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool WireReader::ReadI64(int64_t* v) {
  uint64_t u;
  if (!ReadU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::ReadDouble(double* v) {
  uint64_t u;
  if (!ReadU64(&u)) return false;
  *v = std::bit_cast<double>(u);
  return true;
}

bool WireReader::ReadString(std::string* v) {
  uint32_t len;
  if (!ReadU32(&len)) return false;
  const char* p;
  if (!Take(len, &p)) return false;  // validates len <= remaining
  v->assign(p, len);
  return true;
}

void WireWriter::PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
void WireWriter::PutU32(uint32_t v) { PutLE(&buf_, v, 4); }
void WireWriter::PutU64(uint64_t v) { PutLE(&buf_, v, 8); }
void WireWriter::PutI32(int32_t v) { PutLE(&buf_, static_cast<uint32_t>(v), 4); }
void WireWriter::PutI64(int64_t v) { PutLE(&buf_, static_cast<uint64_t>(v), 8); }
void WireWriter::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void WireWriter::PutString(std::string_view v) {
  PutU32(static_cast<uint32_t>(v.size()));
  buf_.append(v.data(), v.size());
}

// --- frame header ------------------------------------------------------

void AppendFrameHeader(const FrameHeader& h, std::string* out) {
  PutLE(out, kMagic, 4);
  out->push_back(static_cast<char>(h.version));
  out->push_back(static_cast<char>(h.type));
  PutLE(out, 0, 2);  // reserved
  PutLE(out, h.request_id, 8);
  PutLE(out, h.payload_len, 4);
}

Status DecodeFrameHeader(std::string_view buf, FrameHeader* h) {
  if (buf.size() < kHeaderBytes) {
    return Status::InvalidArgument("short frame header");
  }
  WireReader r(buf.substr(0, kHeaderBytes));
  uint32_t magic;
  uint8_t version, type;
  uint8_t reserved0, reserved1;
  r.ReadU32(&magic);
  r.ReadU8(&version);
  r.ReadU8(&type);
  r.ReadU8(&reserved0);
  r.ReadU8(&reserved1);
  uint64_t request_id;
  uint32_t payload_len;
  r.ReadU64(&request_id);
  r.ReadU32(&payload_len);
  if (magic != kMagic) {
    return Status::InvalidArgument("bad frame magic (not an S4 wire peer)");
  }
  h->version = version;
  h->request_id = request_id;
  h->payload_len = payload_len;
  if (version != kProtocolVersion) {
    return Status::FailedPrecondition(
        StrFormat("protocol version mismatch: peer speaks v%u, this side v%u",
                  version, kProtocolVersion));
  }
  if (!IsValidFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("unknown frame type %u", type));
  }
  h->type = static_cast<FrameType>(type);
  return Status::OK();
}

// --- NetSearchRequest ---------------------------------------------------

NetSearchRequest NetSearchRequest::From(
    std::vector<std::vector<std::string>> cells, const SearchOptions& options,
    S4System::Strategy strategy, int32_t priority, double deadline_seconds) {
  NetSearchRequest req;
  req.cells = std::move(cells);
  switch (strategy) {
    case S4System::Strategy::kNaive:
      req.strategy = kWireStrategyNaive;
      break;
    case S4System::Strategy::kBaseline:
      req.strategy = kWireStrategyBaseline;
      break;
    case S4System::Strategy::kFastTopK:
      req.strategy = kWireStrategyFastTopK;
      break;
  }
  req.priority = priority;
  req.deadline_seconds = deadline_seconds;
  req.k = options.k;
  req.alpha = options.score.alpha;
  req.epsilon = options.epsilon;
  req.use_idf = options.score.use_idf;
  req.exact_match_bonus = options.score.exact_match_bonus;
  req.spelling_edits = options.score.spelling_edits;
  req.drop_zero_rows = options.drop_zero_rows;
  req.num_threads = options.num_threads;
  req.max_tree_size = options.enumeration.max_tree_size;
  req.cache_budget_bytes = options.cache_budget_bytes;
  req.approx_epsilon = options.approx_epsilon;
  req.approx_confidence = options.approx_confidence;
  req.sample_budget = options.sample_budget;
  req.rng_seed = options.rng_seed;
  return req;
}

SearchOptions NetSearchRequest::ToSearchOptions() const {
  SearchOptions options;
  options.k = k;
  options.score.alpha = alpha;
  options.epsilon = epsilon;
  options.score.use_idf = use_idf;
  options.score.exact_match_bonus = exact_match_bonus;
  options.score.spelling_edits = spelling_edits;
  options.drop_zero_rows = drop_zero_rows;
  options.num_threads = num_threads;
  options.enumeration.max_tree_size = max_tree_size;
  options.cache_budget_bytes = cache_budget_bytes;
  options.approx_epsilon = approx_epsilon;
  options.approx_confidence = approx_confidence;
  options.sample_budget = sample_budget;
  options.rng_seed = rng_seed;
  return options;
}

S4System::Strategy NetSearchRequest::ToStrategy() const {
  switch (strategy) {
    case kWireStrategyNaive:
      return S4System::Strategy::kNaive;
    case kWireStrategyBaseline:
      return S4System::Strategy::kBaseline;
    default:
      return S4System::Strategy::kFastTopK;
  }
}

namespace {

// The search-request payload layout, shared verbatim by kSearchRequest
// and the trailing section of kShardSearchRequest so the two cannot
// drift apart.
void AppendSearchRequestPayload(const NetSearchRequest& req, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(req.cells.size()));
  const uint32_t cols =
      req.cells.empty() ? 0 : static_cast<uint32_t>(req.cells[0].size());
  w->PutU32(cols);
  for (const auto& row : req.cells) {
    for (uint32_t c = 0; c < cols; ++c) {
      w->PutString(c < row.size() ? std::string_view(row[c])
                                  : std::string_view());
    }
  }
  w->PutU8(req.strategy);
  w->PutI32(req.priority);
  w->PutDouble(req.deadline_seconds);
  w->PutI32(req.k);
  w->PutDouble(req.alpha);
  w->PutDouble(req.epsilon);
  w->PutU8(req.use_idf ? 1 : 0);
  w->PutDouble(req.exact_match_bonus);
  w->PutI32(req.spelling_edits);
  w->PutU8(req.drop_zero_rows ? 1 : 0);
  w->PutI32(req.num_threads);
  w->PutI32(req.max_tree_size);
  w->PutU64(req.cache_budget_bytes);
  w->PutDouble(req.approx_epsilon);
  w->PutDouble(req.approx_confidence);
  w->PutI64(req.sample_budget);
  w->PutU64(req.rng_seed);
  w->PutU8(req.want_profile ? 1 : 0);
}

Status ReadSearchRequestPayload(WireReader& r, NetSearchRequest* req) {
  uint32_t rows, cols;
  if (!r.ReadU32(&rows) || !r.ReadU32(&cols)) return Truncated("request");
  if (rows > kMaxRows || cols > kMaxCols ||
      static_cast<uint64_t>(rows) * cols > kMaxCells) {
    return Status::InvalidArgument(
        StrFormat("request spreadsheet %u x %u exceeds wire limits", rows,
                  cols));
  }
  req->cells.assign(rows, std::vector<std::string>(cols));
  for (uint32_t t = 0; t < rows; ++t) {
    for (uint32_t c = 0; c < cols; ++c) {
      if (!r.ReadString(&req->cells[t][c])) return Truncated("request cell");
    }
  }
  uint8_t use_idf = 0, drop_zero = 0;
  if (!r.ReadU8(&req->strategy) || !r.ReadI32(&req->priority) ||
      !r.ReadDouble(&req->deadline_seconds) || !r.ReadI32(&req->k) ||
      !r.ReadDouble(&req->alpha) || !r.ReadDouble(&req->epsilon) ||
      !r.ReadU8(&use_idf) || !r.ReadDouble(&req->exact_match_bonus) ||
      !r.ReadI32(&req->spelling_edits) || !r.ReadU8(&drop_zero) ||
      !r.ReadI32(&req->num_threads) || !r.ReadI32(&req->max_tree_size) ||
      !r.ReadU64(&req->cache_budget_bytes) ||
      !r.ReadDouble(&req->approx_epsilon) ||
      !r.ReadDouble(&req->approx_confidence) ||
      !r.ReadI64(&req->sample_budget) || !r.ReadU64(&req->rng_seed)) {
    return Truncated("request options");
  }
  uint8_t want_profile = 0;
  if (!r.ReadU8(&want_profile)) return Truncated("request options");
  req->want_profile = want_profile != 0;
  req->use_idf = use_idf != 0;
  req->drop_zero_rows = drop_zero != 0;
  if (req->strategy > kWireStrategyFastTopK) {
    return Status::InvalidArgument(
        StrFormat("unknown strategy %u", req->strategy));
  }
  // Mirror the ValidateSearchOptions invariants at the decode boundary
  // so a hostile frame cannot carry NaN/out-of-range approx knobs into
  // the service (the doubles travel as raw bits, so anything encodes).
  if (!(req->approx_epsilon >= 0.0) ||
      req->approx_epsilon > kMaxWireApproxEpsilon) {
    return Status::InvalidArgument("request approx_epsilon out of range");
  }
  if (!(req->approx_confidence > 0.0) || req->approx_confidence > 1.0) {
    return Status::InvalidArgument("request approx_confidence out of range");
  }
  if (req->sample_budget < 1 || req->sample_budget > kMaxWireSampleBudget) {
    return Status::InvalidArgument("request sample_budget out of range");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSearchRequestFrame(const NetSearchRequest& req,
                                     uint64_t request_id) {
  WireWriter w;
  AppendSearchRequestPayload(req, &w);
  return FinishFrame(FrameType::kSearchRequest, request_id, w.Take());
}

Status DecodeSearchRequest(std::string_view payload, NetSearchRequest* req) {
  WireReader r(payload);
  S4_RETURN_IF_ERROR(ReadSearchRequestPayload(r, req));
  if (!r.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after request payload");
  }
  return Status::OK();
}

// --- NetSearchResponse --------------------------------------------------

namespace {

void AppendTopkEntries(const std::vector<NetTopkEntry>& topk, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(topk.size()));
  for (const NetTopkEntry& e : topk) {
    w->PutString(e.signature);
    w->PutString(e.sql);
    w->PutDouble(e.score);
    w->PutDouble(e.upper_bound);
    w->PutDouble(e.row_score);
    w->PutDouble(e.column_score);
    w->PutU8(e.approximate ? 1 : 0);
    w->PutDouble(e.interval_lo);
    w->PutDouble(e.interval_hi);
    w->PutDouble(e.interval_confidence);
    w->PutI64(e.support);
    w->PutI64(e.sampled);
  }
}

Status ReadTopkEntries(WireReader& r, std::vector<NetTopkEntry>* topk,
                       const char* what) {
  uint32_t n;
  if (!r.ReadU32(&n)) return Truncated(what);
  if (n > kMaxTopk) {
    return Status::InvalidArgument(
        StrFormat("top-k count %u exceeds wire limits", n));
  }
  topk->clear();
  topk->reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n; ++i) {
    NetTopkEntry e;
    uint8_t approximate = 0;
    if (!r.ReadString(&e.signature) || !r.ReadString(&e.sql) ||
        !r.ReadDouble(&e.score) || !r.ReadDouble(&e.upper_bound) ||
        !r.ReadDouble(&e.row_score) || !r.ReadDouble(&e.column_score) ||
        !r.ReadU8(&approximate) || !r.ReadDouble(&e.interval_lo) ||
        !r.ReadDouble(&e.interval_hi) ||
        !r.ReadDouble(&e.interval_confidence) || !r.ReadI64(&e.support) ||
        !r.ReadI64(&e.sampled)) {
      return Truncated(what);
    }
    e.approximate = approximate != 0;
    topk->push_back(std::move(e));
  }
  return Status::OK();
}

// The flat QueryProfile section (v3): fixed scalar fields in declaration
// order, then the per-shard breakdown. Appended to search responses
// behind a has-flag when the request asked for profiling.
void AppendProfile(const obs::QueryProfile& p, WireWriter* w) {
  w->PutDouble(p.total_seconds);
  w->PutDouble(p.queue_seconds);
  w->PutDouble(p.enum_seconds);
  w->PutDouble(p.eval_seconds);
  w->PutI64(p.candidates_enumerated);
  w->PutI64(p.candidates_evaluated);
  w->PutI64(p.query_row_evals);
  w->PutI64(p.skipped_by_condition);
  w->PutI64(p.batches);
  w->PutI64(p.bound_updates);
  w->PutI64(p.rows_scanned);
  w->PutI64(p.hash_lookups);
  w->PutI64(p.hash_inserts);
  w->PutI64(p.postings_scanned);
  w->PutI64(p.cache_hits);
  w->PutI64(p.cache_misses);
  w->PutI64(p.cache_insertions);
  w->PutI64(p.cache_evictions);
  w->PutU64(p.cache_peak_bytes);
  w->PutI64(p.approx_sampled);
  w->PutI64(p.approx_skipped);
  w->PutI64(p.approx_escalated);
  w->PutI64(p.approx_samples);
  w->PutI64(p.approx_deadline_fallbacks);
  const uint32_t shards = static_cast<uint32_t>(
      std::min<size_t>(p.shards.size(), kMaxWireProfileShards));
  w->PutU32(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    const obs::ShardProfile& s = p.shards[i];
    w->PutI32(s.shard_index);
    w->PutDouble(s.wall_seconds);
    w->PutI64(s.enumerated);
    w->PutI64(s.evaluated);
    w->PutI64(s.partials);
    w->PutU8(s.lost ? 1 : 0);
    w->PutU8(s.approximate ? 1 : 0);
  }
}

Status ReadProfile(WireReader& r, obs::QueryProfile* p) {
  if (!r.ReadDouble(&p->total_seconds) || !r.ReadDouble(&p->queue_seconds) ||
      !r.ReadDouble(&p->enum_seconds) || !r.ReadDouble(&p->eval_seconds) ||
      !r.ReadI64(&p->candidates_enumerated) ||
      !r.ReadI64(&p->candidates_evaluated) ||
      !r.ReadI64(&p->query_row_evals) ||
      !r.ReadI64(&p->skipped_by_condition) || !r.ReadI64(&p->batches) ||
      !r.ReadI64(&p->bound_updates) || !r.ReadI64(&p->rows_scanned) ||
      !r.ReadI64(&p->hash_lookups) || !r.ReadI64(&p->hash_inserts) ||
      !r.ReadI64(&p->postings_scanned) || !r.ReadI64(&p->cache_hits) ||
      !r.ReadI64(&p->cache_misses) || !r.ReadI64(&p->cache_insertions) ||
      !r.ReadI64(&p->cache_evictions) || !r.ReadU64(&p->cache_peak_bytes) ||
      !r.ReadI64(&p->approx_sampled) || !r.ReadI64(&p->approx_skipped) ||
      !r.ReadI64(&p->approx_escalated) || !r.ReadI64(&p->approx_samples) ||
      !r.ReadI64(&p->approx_deadline_fallbacks)) {
    return Truncated("profile");
  }
  uint32_t shards;
  if (!r.ReadU32(&shards)) return Truncated("profile");
  if (shards > kMaxWireProfileShards) {
    return Status::InvalidArgument(
        StrFormat("profile shard count %u exceeds wire limits", shards));
  }
  p->shards.clear();
  p->shards.reserve(shards);
  for (uint32_t i = 0; i < shards; ++i) {
    obs::ShardProfile s;
    uint8_t lost = 0, approximate = 0;
    if (!r.ReadI32(&s.shard_index) || !r.ReadDouble(&s.wall_seconds) ||
        !r.ReadI64(&s.enumerated) || !r.ReadI64(&s.evaluated) ||
        !r.ReadI64(&s.partials) || !r.ReadU8(&lost) ||
        !r.ReadU8(&approximate)) {
      return Truncated("profile shard");
    }
    s.lost = lost != 0;
    s.approximate = approximate != 0;
    p->shards.push_back(s);
  }
  return Status::OK();
}

// The search-response payload layout, shared by kSearchResponse and the
// leading section of kShardDone.
void AppendSearchResponsePayload(const NetSearchResponse& resp,
                                 WireWriter* w) {
  w->PutU8(resp.interrupted ? 1 : 0);
  w->PutU8(resp.approximate ? 1 : 0);
  AppendTopkEntries(resp.topk, w);
  w->PutI64(resp.queries_enumerated);
  w->PutI64(resp.queries_evaluated);
  w->PutI64(resp.query_row_evals);
  w->PutI64(resp.skipped_by_condition);
  w->PutI64(resp.model_cost);
  w->PutDouble(resp.enum_seconds);
  w->PutDouble(resp.eval_seconds);
  w->PutI64(resp.cache_hits);
  w->PutI64(resp.cache_misses);
  w->PutI64(resp.cache_evictions);
  w->PutU64(resp.cache_peak_bytes);
  w->PutDouble(resp.server_seconds);
  w->PutU8(resp.has_profile ? 1 : 0);
  if (resp.has_profile) AppendProfile(resp.profile, w);
}

Status ReadSearchResponsePayload(WireReader& r, NetSearchResponse* resp) {
  uint8_t interrupted, approximate;
  if (!r.ReadU8(&interrupted) || !r.ReadU8(&approximate)) {
    return Truncated("response");
  }
  resp->interrupted = interrupted != 0;
  resp->approximate = approximate != 0;
  S4_RETURN_IF_ERROR(ReadTopkEntries(r, &resp->topk, "response entry"));
  if (!r.ReadI64(&resp->queries_enumerated) ||
      !r.ReadI64(&resp->queries_evaluated) ||
      !r.ReadI64(&resp->query_row_evals) ||
      !r.ReadI64(&resp->skipped_by_condition) ||
      !r.ReadI64(&resp->model_cost) || !r.ReadDouble(&resp->enum_seconds) ||
      !r.ReadDouble(&resp->eval_seconds) || !r.ReadI64(&resp->cache_hits) ||
      !r.ReadI64(&resp->cache_misses) ||
      !r.ReadI64(&resp->cache_evictions) ||
      !r.ReadU64(&resp->cache_peak_bytes) ||
      !r.ReadDouble(&resp->server_seconds)) {
    return Truncated("response stats");
  }
  uint8_t has_profile = 0;
  if (!r.ReadU8(&has_profile)) return Truncated("response stats");
  if (has_profile > 1) {
    return Status::InvalidArgument("response has_profile flag out of range");
  }
  resp->has_profile = has_profile != 0;
  resp->profile = obs::QueryProfile{};
  if (resp->has_profile) {
    S4_RETURN_IF_ERROR(ReadProfile(r, &resp->profile));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSearchResponseFrame(const NetSearchResponse& resp,
                                      uint64_t request_id) {
  WireWriter w;
  AppendSearchResponsePayload(resp, &w);
  return FinishFrame(FrameType::kSearchResponse, request_id, w.Take());
}

Status DecodeSearchResponse(std::string_view payload,
                            NetSearchResponse* resp) {
  WireReader r(payload);
  S4_RETURN_IF_ERROR(ReadSearchResponsePayload(r, resp));
  if (!r.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after response payload");
  }
  return Status::OK();
}

// --- shard exchange -----------------------------------------------------

std::string EncodeShardSearchRequestFrame(const NetShardSearchRequest& req,
                                          uint64_t request_id) {
  WireWriter w;
  w.PutI32(req.shard_count);
  w.PutI32(req.shard_index);
  w.PutU32(req.partial_every);
  w.PutU8(req.want_trace ? 1 : 0);
  w.PutU64(req.trace_id);
  w.PutU64(req.parent_span_id);
  w.PutI64(req.origin_unix_us);
  AppendSearchRequestPayload(req.base, &w);
  return FinishFrame(FrameType::kShardSearchRequest, request_id, w.Take());
}

Status DecodeShardSearchRequest(std::string_view payload,
                                NetShardSearchRequest* req) {
  WireReader r(payload);
  if (!r.ReadI32(&req->shard_count) || !r.ReadI32(&req->shard_index) ||
      !r.ReadU32(&req->partial_every)) {
    return Truncated("shard request");
  }
  if (req->shard_count < 1 || req->shard_count > kMaxWireShards) {
    return Status::InvalidArgument(
        StrFormat("shard_count %d outside [1, %d]", req->shard_count,
                  kMaxWireShards));
  }
  if (req->shard_index < 0 || req->shard_index >= req->shard_count) {
    return Status::InvalidArgument(
        StrFormat("shard_index %d outside [0, %d)", req->shard_index,
                  req->shard_count));
  }
  uint8_t want_trace = 0;
  if (!r.ReadU8(&want_trace) || !r.ReadU64(&req->trace_id) ||
      !r.ReadU64(&req->parent_span_id) || !r.ReadI64(&req->origin_unix_us)) {
    return Truncated("shard request");
  }
  if (want_trace > 1) {
    return Status::InvalidArgument(
        "shard request want_trace flag out of range");
  }
  req->want_trace = want_trace != 0;
  S4_RETURN_IF_ERROR(ReadSearchRequestPayload(r, &req->base));
  if (!r.Exhausted()) {
    return Status::InvalidArgument(
        "trailing bytes after shard request payload");
  }
  return Status::OK();
}

std::string EncodeShardPartialFrame(const NetShardPartial& partial,
                                    uint64_t request_id) {
  WireWriter w;
  AppendTopkEntries(partial.topk, &w);
  w.PutDouble(partial.remaining_upper_bound);
  w.PutI64(partial.enumerated);
  w.PutI64(partial.evaluated);
  w.PutI64(partial.batches);
  return FinishFrame(FrameType::kShardPartial, request_id, w.Take());
}

Status DecodeShardPartial(std::string_view payload,
                          NetShardPartial* partial) {
  WireReader r(payload);
  S4_RETURN_IF_ERROR(ReadTopkEntries(r, &partial->topk, "shard partial"));
  if (!r.ReadDouble(&partial->remaining_upper_bound) ||
      !r.ReadI64(&partial->enumerated) || !r.ReadI64(&partial->evaluated) ||
      !r.ReadI64(&partial->batches)) {
    return Truncated("shard partial");
  }
  if (!r.Exhausted()) {
    return Status::InvalidArgument(
        "trailing bytes after shard partial payload");
  }
  return Status::OK();
}

namespace {

// The trace segment a shard ships back on kShardDone (v3). Bounded on
// the encode side too: a shard with a pathologically chatty trace
// truncates to the cap instead of emitting a frame its own peer must
// reject.
void AppendTraceSegment(const obs::TraceSegment& seg, WireWriter* w) {
  w->PutI64(seg.origin_unix_us);
  w->PutU64(seg.trace_id);
  const uint32_t n = static_cast<uint32_t>(
      std::min<size_t>(seg.events.size(), kMaxWireTraceEvents));
  w->PutU32(n);
  for (uint32_t i = 0; i < n; ++i) {
    const obs::TraceSegment::Event& e = seg.events[i];
    w->PutString(e.category);
    w->PutString(e.name);
    w->PutI64(e.ts_us);
    w->PutI64(e.dur_us);
    w->PutU32(e.tid);
    w->PutU64(e.span_id);
    w->PutU64(e.parent_id);
    const uint32_t nargs = static_cast<uint32_t>(
        std::min<size_t>(e.args.size(), kMaxWireTraceArgs));
    w->PutU32(nargs);
    for (uint32_t j = 0; j < nargs; ++j) {
      w->PutString(e.args[j].key);
      w->PutString(e.args[j].value);
    }
  }
}

Status ReadTraceSegment(WireReader& r, obs::TraceSegment* seg) {
  uint32_t n;
  if (!r.ReadI64(&seg->origin_unix_us) || !r.ReadU64(&seg->trace_id) ||
      !r.ReadU32(&n)) {
    return Truncated("trace segment");
  }
  if (n > kMaxWireTraceEvents) {
    return Status::InvalidArgument(
        StrFormat("trace segment event count %u exceeds wire limits", n));
  }
  seg->events.clear();
  seg->events.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n; ++i) {
    obs::TraceSegment::Event e;
    uint32_t nargs;
    if (!r.ReadString(&e.category) || !r.ReadString(&e.name) ||
        !r.ReadI64(&e.ts_us) || !r.ReadI64(&e.dur_us) || !r.ReadU32(&e.tid) ||
        !r.ReadU64(&e.span_id) || !r.ReadU64(&e.parent_id) ||
        !r.ReadU32(&nargs)) {
      return Truncated("trace segment event");
    }
    if (nargs > kMaxWireTraceArgs) {
      return Status::InvalidArgument(
          StrFormat("trace event arg count %u exceeds wire limits", nargs));
    }
    e.args.reserve(nargs);
    for (uint32_t j = 0; j < nargs; ++j) {
      obs::TraceSegment::Arg a;
      if (!r.ReadString(&a.key) || !r.ReadString(&a.value)) {
        return Truncated("trace segment arg");
      }
      e.args.push_back(std::move(a));
    }
    seg->events.push_back(std::move(e));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeShardDoneFrame(const NetShardDone& done,
                                 uint64_t request_id) {
  WireWriter w;
  AppendSearchResponsePayload(done.response, &w);
  w.PutDouble(done.remaining_upper_bound);
  w.PutU8(done.has_segment ? 1 : 0);
  if (done.has_segment) AppendTraceSegment(done.segment, &w);
  return FinishFrame(FrameType::kShardDone, request_id, w.Take());
}

Status DecodeShardDone(std::string_view payload, NetShardDone* done) {
  WireReader r(payload);
  S4_RETURN_IF_ERROR(ReadSearchResponsePayload(r, &done->response));
  if (!r.ReadDouble(&done->remaining_upper_bound)) {
    return Truncated("shard done");
  }
  uint8_t has_segment = 0;
  if (!r.ReadU8(&has_segment)) return Truncated("shard done");
  if (has_segment > 1) {
    return Status::InvalidArgument(
        "shard done has_segment flag out of range");
  }
  done->has_segment = has_segment != 0;
  done->segment = obs::TraceSegment{};
  if (done->has_segment) {
    S4_RETURN_IF_ERROR(ReadTraceSegment(r, &done->segment));
  }
  if (!r.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after shard done payload");
  }
  return Status::OK();
}

std::string EncodeShardStopFrame(uint64_t target_request_id,
                                 uint64_t request_id) {
  WireWriter w;
  w.PutU64(target_request_id);
  return FinishFrame(FrameType::kShardStop, request_id, w.Take());
}

Status DecodeShardStop(std::string_view payload,
                       uint64_t* target_request_id) {
  WireReader r(payload);
  if (!r.ReadU64(target_request_id)) {
    return Truncated("shard stop");
  }
  if (!r.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after shard stop payload");
  }
  return Status::OK();
}

// --- error / ping -------------------------------------------------------

std::string EncodeErrorFrame(const Status& status, uint64_t request_id) {
  WireWriter w;
  w.PutU8(WireCodeFor(status.code()));
  w.PutU8(IsRetryable(status.code()) ? 1 : 0);
  w.PutString(status.message());
  return FinishFrame(FrameType::kError, request_id, w.Take());
}

Status DecodeError(std::string_view payload, NetError* err) {
  WireReader r(payload);
  uint8_t retryable;
  if (!r.ReadU8(&err->code) || !r.ReadU8(&retryable) ||
      !r.ReadString(&err->message)) {
    return Truncated("error");
  }
  err->retryable = retryable != 0;
  if (!r.Exhausted()) {
    return Status::InvalidArgument("trailing bytes after error payload");
  }
  return Status::OK();
}

std::string EncodePingFrame(uint64_t request_id) {
  return FinishFrame(FrameType::kPing, request_id, std::string());
}

std::string EncodePongFrame(uint64_t request_id) {
  return FinishFrame(FrameType::kPong, request_id, std::string());
}

std::string EncodeStatsRequestFrame(uint64_t request_id) {
  return FinishFrame(FrameType::kStatsRequest, request_id, std::string());
}

std::string EncodeStatsResponseFrame(std::string_view text,
                                     uint64_t request_id) {
  return FinishFrame(FrameType::kStatsResponse, request_id,
                     std::string(text));
}

std::string EncodeTraceRequestFrame(uint64_t target_request_id,
                                    uint64_t request_id) {
  WireWriter w;
  w.PutU64(target_request_id);
  return FinishFrame(FrameType::kTraceRequest, request_id, w.Take());
}

std::string EncodeTraceResponseFrame(std::string_view json,
                                     uint64_t request_id) {
  return FinishFrame(FrameType::kTraceResponse, request_id,
                     std::string(json));
}

Status DecodeTraceRequest(std::string_view payload,
                          uint64_t* target_request_id) {
  WireReader r(payload);
  if (!r.ReadU64(target_request_id)) {
    return Truncated("trace request");
  }
  if (!r.Exhausted()) {
    return Status::InvalidArgument(
        "trailing bytes after trace request payload");
  }
  return Status::OK();
}

std::string EncodeSlowLogRequestFrame(uint64_t request_id) {
  return FinishFrame(FrameType::kSlowLogRequest, request_id, std::string());
}

std::string EncodeSlowLogResponseFrame(std::string_view json,
                                       uint64_t request_id) {
  return FinishFrame(FrameType::kSlowLogResponse, request_id,
                     std::string(json));
}

Status DecodeSlowLogRequest(std::string_view payload) {
  if (!payload.empty()) {
    return Status::InvalidArgument(
        "trailing bytes after slow-log request payload");
  }
  return Status::OK();
}

// --- live mutation write path -------------------------------------------

namespace {

// One Value on the wire: u8 kind tag, then the payload for that kind
// (nothing for NULL, i64 for Int, length-prefixed string for Text).
void AppendValue(const Value& v, WireWriter* w) {
  if (v.is_null()) {
    w->PutU8(kWireValueNull);
  } else if (v.is_int()) {
    w->PutU8(kWireValueInt);
    w->PutI64(v.AsInt());
  } else {
    w->PutU8(kWireValueText);
    w->PutString(v.AsText());
  }
}

Status ReadValue(WireReader& r, Value* v) {
  uint8_t kind;
  if (!r.ReadU8(&kind)) return Truncated("mutate request");
  switch (kind) {
    case kWireValueNull:
      *v = Value::Null();
      return Status::OK();
    case kWireValueInt: {
      int64_t i;
      if (!r.ReadI64(&i)) return Truncated("mutate request");
      *v = Value::Int(i);
      return Status::OK();
    }
    case kWireValueText: {
      std::string s;
      if (!r.ReadString(&s)) return Truncated("mutate request");
      *v = Value::Text(std::move(s));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("mutate request: bad value kind");
  }
}

}  // namespace

std::string EncodeMutateRequestFrame(const NetMutateRequest& req,
                                     uint64_t request_id) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(req.mutations.size()));
  for (const Mutation& m : req.mutations) {
    w.PutU8(static_cast<uint8_t>(m.op));
    w.PutString(m.table);
    switch (m.op) {
      case Mutation::Op::kInsertRow:
        w.PutU32(static_cast<uint32_t>(m.values.size()));
        for (const Value& v : m.values) AppendValue(v, &w);
        break;
      case Mutation::Op::kDeleteRow:
        w.PutI64(m.pk);
        break;
      case Mutation::Op::kUpdateCell:
        w.PutI64(m.pk);
        w.PutString(m.column);
        AppendValue(m.value, &w);
        break;
    }
  }
  return FinishFrame(FrameType::kMutateRequest, request_id, w.Take());
}

Status DecodeMutateRequest(std::string_view payload, NetMutateRequest* req) {
  WireReader r(payload);
  uint32_t count;
  if (!r.ReadU32(&count)) return Truncated("mutate request");
  if (count > kMaxWireMutations) {
    return Status::InvalidArgument("mutate request: too many operations");
  }
  req->mutations.clear();
  req->mutations.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Mutation m;
    uint8_t op;
    if (!r.ReadU8(&op) || !r.ReadString(&m.table)) {
      return Truncated("mutate request");
    }
    if (op > static_cast<uint8_t>(Mutation::Op::kUpdateCell)) {
      return Status::InvalidArgument("mutate request: bad op");
    }
    m.op = static_cast<Mutation::Op>(op);
    switch (m.op) {
      case Mutation::Op::kInsertRow: {
        uint32_t nvals;
        if (!r.ReadU32(&nvals)) return Truncated("mutate request");
        if (nvals > kMaxWireMutationValues) {
          return Status::InvalidArgument("mutate request: too many values");
        }
        m.values.reserve(nvals);
        for (uint32_t j = 0; j < nvals; ++j) {
          Value v;
          S4_RETURN_IF_ERROR(ReadValue(r, &v));
          m.values.push_back(std::move(v));
        }
        break;
      }
      case Mutation::Op::kDeleteRow:
        if (!r.ReadI64(&m.pk)) return Truncated("mutate request");
        break;
      case Mutation::Op::kUpdateCell:
        if (!r.ReadI64(&m.pk) || !r.ReadString(&m.column)) {
          return Truncated("mutate request");
        }
        S4_RETURN_IF_ERROR(ReadValue(r, &m.value));
        break;
    }
    req->mutations.push_back(std::move(m));
  }
  if (!r.Exhausted()) {
    return Status::InvalidArgument(
        "trailing bytes after mutate request payload");
  }
  return Status::OK();
}

std::string EncodeMutateResponseFrame(const NetMutateResponse& resp,
                                      uint64_t request_id) {
  WireWriter w;
  w.PutI64(resp.applied);
  w.PutU64(resp.epoch);
  w.PutU8(resp.interrupted ? 1 : 0);
  w.PutString(resp.error);
  w.PutU32(static_cast<uint32_t>(resp.touched.size()));
  for (int32_t t : resp.touched) w.PutI32(t);
  w.PutDouble(resp.server_seconds);
  return FinishFrame(FrameType::kMutateResponse, request_id, w.Take());
}

Status DecodeMutateResponse(std::string_view payload,
                            NetMutateResponse* resp) {
  WireReader r(payload);
  uint8_t interrupted;
  uint32_t touched_count;
  if (!r.ReadI64(&resp->applied) || !r.ReadU64(&resp->epoch) ||
      !r.ReadU8(&interrupted) || !r.ReadString(&resp->error) ||
      !r.ReadU32(&touched_count)) {
    return Truncated("mutate response");
  }
  resp->interrupted = interrupted != 0;
  // Touched tables are capped like mutations: a batch cannot touch more
  // relations than it has operations.
  if (touched_count > kMaxWireMutations) {
    return Status::InvalidArgument("mutate response: too many tables");
  }
  resp->touched.clear();
  resp->touched.reserve(touched_count);
  for (uint32_t i = 0; i < touched_count; ++i) {
    int32_t t;
    if (!r.ReadI32(&t)) return Truncated("mutate response");
    resp->touched.push_back(t);
  }
  if (!r.ReadDouble(&resp->server_seconds)) {
    return Truncated("mutate response");
  }
  if (!r.Exhausted()) {
    return Status::InvalidArgument(
        "trailing bytes after mutate response payload");
  }
  return Status::OK();
}

}  // namespace s4::net
