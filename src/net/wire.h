#ifndef S4_NET_WIRE_H_
#define S4_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "live/mutation.h"
#include "net/protocol.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "s4/s4.h"
#include "strategy/strategy.h"

namespace s4::net {

// --- frame header ------------------------------------------------------

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

// Appends the 20-byte header for `h` to `out` (magic included).
void AppendFrameHeader(const FrameHeader& h, std::string* out);

// Parses a header from the first kHeaderBytes of `buf`. Returns
// InvalidArgument on short input, bad magic, or an unknown frame type;
// FailedPrecondition on a version mismatch (the caller can still answer,
// the framing is intact). `h` is filled as far as parsing got, so the
// version/request_id of a rejected header are available for the error
// reply.
Status DecodeFrameHeader(std::string_view buf, FrameHeader* h);

// --- messages ----------------------------------------------------------

// A search request as it travels on the wire: raw spreadsheet cells plus
// the SearchOptions subset a remote caller may set. Everything else
// (pool, stop token, shared cache) is service-side plumbing that never
// crosses the network.
struct NetSearchRequest {
  std::vector<std::vector<std::string>> cells;
  uint8_t strategy = kWireStrategyFastTopK;
  int32_t priority = 0;
  // Armed server-side at frame arrival, so it covers queue wait but not
  // client-side network time.
  double deadline_seconds = 0.0;

  int32_t k = 10;
  double alpha = 0.8;
  double epsilon = 0.6;
  bool use_idf = false;
  double exact_match_bonus = 0.0;
  int32_t spelling_edits = 0;
  bool drop_zero_rows = false;
  int32_t num_threads = 0;
  int32_t max_tree_size = 5;
  uint64_t cache_budget_bytes = 500u << 20;
  // Anytime approximate search knobs (v2 fields; SearchOptions mirror).
  // Decode enforces the same invariants as ValidateSearchOptions, so a
  // hostile frame cannot smuggle NaN/negative knobs past the boundary.
  double approx_epsilon = 0.0;
  double approx_confidence = 0.95;
  int64_t sample_budget = 4096;
  uint64_t rng_seed = 0x5344534453445344ULL;
  // v3: ask the server to attach its QueryProfile to the response.
  bool want_profile = false;

  // NOT on the wire: seconds the server spent decoding this frame,
  // recorded by the connection so the dispatcher can attach a
  // frame_decode span to the request's trace.
  double decode_seconds = 0.0;

  // Builds the wire request from cells + in-process SearchOptions.
  static NetSearchRequest From(std::vector<std::vector<std::string>> cells,
                               const SearchOptions& options,
                               S4System::Strategy strategy,
                               int32_t priority = 0,
                               double deadline_seconds = 0.0);
  // Expands the wire subset back into SearchOptions (fields not on the
  // wire keep their defaults).
  SearchOptions ToSearchOptions() const;
  S4System::Strategy ToStrategy() const;
};

// One ranked answer on the wire. Scores travel as raw IEEE-754 bits, so
// a networked client sees bit-identical values to an in-process caller.
struct NetTopkEntry {
  std::string signature;  // canonical PJQuery identity
  std::string sql;        // rendered SELECT (display; identity is above)
  double score = 0.0;
  double upper_bound = 0.0;
  double row_score = 0.0;
  double column_score = 0.0;
  // Sampling-estimator provenance (v2 fields): the score bracket and
  // whether this hit was resolved approximately. Exact hits travel the
  // degenerate [score, score] interval at confidence 1.
  bool approximate = false;
  double interval_lo = 0.0;
  double interval_hi = 0.0;
  double interval_confidence = 1.0;
  int64_t support = 0;
  int64_t sampled = 0;
};

struct NetSearchResponse {
  std::vector<NetTopkEntry> topk;
  bool interrupted = false;
  // True when any entry was resolved by the sampling estimator or the
  // run terminated under the epsilon-relaxed bound (v2 field).
  bool approximate = false;

  // RunStats subset (timings + the Fig 5-7 work counters + cache stats).
  int64_t queries_enumerated = 0;
  int64_t queries_evaluated = 0;
  int64_t query_row_evals = 0;
  int64_t skipped_by_condition = 0;
  int64_t model_cost = 0;
  double enum_seconds = 0.0;
  double eval_seconds = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  uint64_t cache_peak_bytes = 0;

  // Server-side wall time, frame arrival -> completion (includes queue
  // wait; excludes network transfer either way).
  double server_seconds = 0.0;

  // v3: per-request resource accounting, present only when the request
  // set want_profile (an optional tail section gated by a has-flag on
  // the wire; when absent `profile` keeps its zero defaults).
  bool has_profile = false;
  obs::QueryProfile profile;
};

struct NetError {
  uint8_t code = 0;
  bool retryable = false;
  std::string message;

  Status ToStatus() const { return StatusFromWire(code, message); }
};

// --- scatter-gather shard exchange -------------------------------------

// A coordinator-to-shard search: the plain search request plus the
// candidate-space slice this shard must own for the exchange and the
// partial-streaming cadence.
struct NetShardSearchRequest {
  NetSearchRequest base;
  int32_t shard_count = 1;
  int32_t shard_index = 0;
  // Stream a kShardPartial every this many strategy progress snapshots;
  // 0 = no partials, just the final kShardDone.
  uint32_t partial_every = 1;
  // v3 trace context (DESIGN.md "Observability"): when want_trace is
  // set the shard records a per-request trace tagged with the
  // coordinator's trace id and returns the completed segment on
  // kShardDone, where the coordinator stitches it under
  // `parent_span_id` (its scatter span) using `origin_unix_us` — the
  // coordinator trace's wall-clock origin — to normalize the two
  // machines' clocks.
  bool want_trace = false;
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  int64_t origin_unix_us = 0;
};

// One streamed snapshot of a shard's in-flight search: its current
// top-k plus the upper bound of everything it has not yet evaluated
// (non-increasing over the exchange, so a stale value is always a safe
// overestimate for the coordinator's termination check).
struct NetShardPartial {
  std::vector<NetTopkEntry> topk;
  double remaining_upper_bound = 0.0;
  // Slice size, known from the first snapshot on; lets the coordinator
  // report exact coverage even for shards it early-stops (whose final
  // kShardDone never arrives).
  int64_t enumerated = 0;
  int64_t evaluated = 0;
  int64_t batches = 0;
};

// The final frame of a shard exchange: the full response plus the
// last-known remaining upper bound (meaningful when the shard was
// early-stopped; -inf once the slice was exhausted).
struct NetShardDone {
  NetSearchResponse response;
  double remaining_upper_bound = 0.0;
  // v3: the shard's completed trace segment, present when the request
  // carried want_trace. Bounded at encode *and* decode by
  // kMaxWireTraceEvents / kMaxWireTraceArgs.
  bool has_segment = false;
  obs::TraceSegment segment;
};

// --- live mutation write path ------------------------------------------

// A mutation batch as it travels on the wire. Operations reuse the
// in-process Mutation struct (tables/columns by name, rows by pk);
// values carry a one-byte kind tag (kWireValueNull/Int/Text).
struct NetMutateRequest {
  std::vector<Mutation> mutations;

  // NOT on the wire: decode time, recorded by the connection (same
  // convention as NetSearchRequest).
  double decode_seconds = 0.0;
};

// Mirrors MutationResult plus the server-side wall time.
struct NetMutateResponse {
  int64_t applied = 0;
  uint64_t epoch = 0;
  bool interrupted = false;
  std::string error;
  std::vector<int32_t> touched;  // TableIds, ascending
  double server_seconds = 0.0;
};

// --- frame encode (header + payload in one buffer) ---------------------

std::string EncodeSearchRequestFrame(const NetSearchRequest& req,
                                     uint64_t request_id);
std::string EncodeSearchResponseFrame(const NetSearchResponse& resp,
                                      uint64_t request_id);
std::string EncodeErrorFrame(const Status& status, uint64_t request_id);
std::string EncodePingFrame(uint64_t request_id);
std::string EncodePongFrame(uint64_t request_id);
// Stats/trace surface: requests carry no payload except the trace
// target (the id of a *previously completed* search, in the payload —
// the header's request_id still identifies this exchange); responses
// carry raw text bytes (Prometheus dump / Chrome-trace JSON).
std::string EncodeStatsRequestFrame(uint64_t request_id);
std::string EncodeStatsResponseFrame(std::string_view text,
                                     uint64_t request_id);
std::string EncodeTraceRequestFrame(uint64_t target_request_id,
                                    uint64_t request_id);
std::string EncodeTraceResponseFrame(std::string_view json,
                                     uint64_t request_id);
// Shard exchange frames. The stop frame names the exchange to cancel in
// its payload (like the trace target) so it can travel on the same
// connection under its own header request_id.
std::string EncodeShardSearchRequestFrame(const NetShardSearchRequest& req,
                                          uint64_t request_id);
std::string EncodeShardPartialFrame(const NetShardPartial& partial,
                                    uint64_t request_id);
std::string EncodeShardDoneFrame(const NetShardDone& done,
                                 uint64_t request_id);
std::string EncodeShardStopFrame(uint64_t target_request_id,
                                 uint64_t request_id);
std::string EncodeMutateRequestFrame(const NetMutateRequest& req,
                                     uint64_t request_id);
std::string EncodeMutateResponseFrame(const NetMutateResponse& resp,
                                      uint64_t request_id);
// Slow-query log fetch (v3): empty request payload, JSON text response
// (same raw-text convention as the stats/trace surface).
std::string EncodeSlowLogRequestFrame(uint64_t request_id);
std::string EncodeSlowLogResponseFrame(std::string_view json,
                                       uint64_t request_id);

// --- payload decode (bounds-checked; never reads past `payload`) -------

Status DecodeSearchRequest(std::string_view payload, NetSearchRequest* req);
Status DecodeSearchResponse(std::string_view payload,
                            NetSearchResponse* resp);
Status DecodeError(std::string_view payload, NetError* err);
Status DecodeTraceRequest(std::string_view payload,
                          uint64_t* target_request_id);
Status DecodeShardSearchRequest(std::string_view payload,
                                NetShardSearchRequest* req);
Status DecodeShardPartial(std::string_view payload, NetShardPartial* partial);
Status DecodeShardDone(std::string_view payload, NetShardDone* done);
Status DecodeShardStop(std::string_view payload,
                       uint64_t* target_request_id);
Status DecodeMutateRequest(std::string_view payload, NetMutateRequest* req);
Status DecodeMutateResponse(std::string_view payload,
                            NetMutateResponse* resp);
// kSlowLogRequest carries no payload; decode just enforces emptiness.
Status DecodeSlowLogRequest(std::string_view payload);

// --- primitive reader (exposed for tests / fuzzing) ---------------------

// Sequential little-endian reader over a payload. All Read* methods are
// bounds-checked: on exhaustion they return false and the reader stays
// failed. Strings are u32-length-prefixed and the length is validated
// against the remaining bytes before any allocation, so a hostile
// length can never cause an oversized reserve.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI32(int32_t* v);
  bool ReadI64(int64_t* v);
  bool ReadDouble(double* v);
  bool ReadString(std::string* v);

  bool failed() const { return failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  // True iff every byte was consumed and nothing failed.
  bool Exhausted() const { return !failed_ && pos_ == data_.size(); }

 private:
  bool Take(size_t n, const char** out);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// Sequential little-endian writer (appends to an owned buffer).
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  void PutString(std::string_view v);

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

}  // namespace s4::net

#endif  // S4_NET_WIRE_H_
