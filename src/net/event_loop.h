#ifndef S4_NET_EVENT_LOOP_H_
#define S4_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fd.h"
#include "common/latency_histogram.h"
#include "common/status.h"
#include "net/wire.h"

namespace s4::net {

class Connection;

// Per-server atomic counters, shared by every loop and connection (all
// relaxed: they are reporting, not synchronization).
struct NetServerCounters {
  std::atomic<int64_t> connections_accepted{0};
  std::atomic<int64_t> connections_closed{0};
  std::atomic<int64_t> frames_received{0};
  std::atomic<int64_t> responses_sent{0};
  std::atomic<int64_t> errors_sent{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> disconnect_cancels{0};
  std::atomic<int64_t> idle_closes{0};
  std::atomic<int64_t> bytes_received{0};
  std::atomic<int64_t> bytes_sent{0};
  std::atomic<int64_t> stats_requests{0};
  std::atomic<int64_t> trace_requests{0};
  // Scatter-gather shard exchanges (coordinator-facing side of a shard).
  std::atomic<int64_t> shard_requests{0};
  std::atomic<int64_t> shard_partials_sent{0};
  std::atomic<int64_t> shard_stops{0};
  // Live mutation write path.
  std::atomic<int64_t> mutate_requests{0};
  // Slow-query log fetches (kSlowLogRequest frames).
  std::atomic<int64_t> slow_log_requests{0};
};

// Frame limits + timeouts a connection enforces (one copy per server,
// read-only after construction).
struct ServerTuning {
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // A connection is closed when no bytes move for this long while a
  // partial frame is pending (slow-loris) or while it is completely idle
  // with nothing in flight. In-flight requests keep a connection alive
  // regardless.
  double idle_timeout_seconds = 60.0;
};

// Implemented by S4Server: turns a decoded SearchRequest into service
// work. Called on the loop thread owning `conn`; the implementation must
// deliver the eventual response by Post()ing back to that loop.
class SearchDispatcher {
 public:
  virtual ~SearchDispatcher() = default;
  virtual void DispatchSearch(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, NetSearchRequest req) = 0;

  // Scatter-gather shard exchange: like DispatchSearch, but the
  // implementation streams kShardPartial frames at strategy batch
  // boundaries before the final kShardDone. The default rejects the
  // frame so plain dispatchers stay one-method.
  virtual void DispatchShardSearch(const std::shared_ptr<Connection>& conn,
                                   uint64_t request_id,
                                   NetShardSearchRequest req);

  // Live mutation write path: applies the batch and answers with a
  // kMutateResponse (or kError). The default rejects the frame so
  // read-only dispatchers (and immutable deployments) stay unchanged.
  virtual void DispatchMutate(const std::shared_ptr<Connection>& conn,
                              uint64_t request_id, NetMutateRequest req);

  // Observability surface, answered synchronously on the loop thread
  // (both are snapshot reads, not searches). Defaults keep test
  // dispatchers one-method.
  virtual std::string CollectStatsText() { return std::string(); }
  virtual StatusOr<std::string> CollectTraceJson(uint64_t request_id) {
    (void)request_id;
    return Status::NotFound("tracing is not enabled on this server");
  }
  // Slow-query log dump ({"slow_log":[...]} JSON), answered
  // synchronously like the stats/trace reads above.
  virtual StatusOr<std::string> CollectSlowLogJson() {
    return Status::NotFound("the slow-query log is not enabled");
  }
};

// One epoll thread owning a set of connections. All connection I/O and
// frame parsing happens on this thread — the data path takes no locks.
// The only synchronized surface is Post(), the task queue other threads
// (acceptor, service workers) use to hand a connection work, woken
// through an eventfd.
class EventLoop {
 public:
  EventLoop(SearchDispatcher* dispatcher, NetServerCounters* counters,
            const ServerTuning& tuning);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Creates the epoll/eventfd pair and spawns the loop thread.
  Status Start();
  // Stops the thread (pending posted tasks are executed first) and
  // closes every connection still registered.
  void Stop();

  // Thread-safe: runs `fn` on the loop thread (immediately queued, run
  // on the next wakeup). Safe to call from service worker threads.
  void Post(std::function<void()> fn);

  // Thread-safe: hands a freshly accepted socket to this loop.
  void AdoptSocket(UniqueFd fd);

  // Thread-safe: closes every connection (cancelling in-flight work).
  void CloseAllConnections();

  size_t num_connections() const {
    return num_connections_.load(std::memory_order_relaxed);
  }

  // Request latencies of connections owned by this loop; merge the
  // snapshots across loops for server-wide percentiles.
  LatencyHistogram& latency() { return latency_; }

  SearchDispatcher* dispatcher() const { return dispatcher_; }
  NetServerCounters* counters() const { return counters_; }
  const ServerTuning& tuning() const { return tuning_; }

  // Loop-thread only (Connection back-calls).
  Status WatchConnection(Connection* conn, bool want_write);
  void RemoveConnection(int fd);

 private:
  void ThreadMain();
  void RunPostedTasks();
  void SweepIdle();

  SearchDispatcher* dispatcher_;
  NetServerCounters* counters_;
  ServerTuning tuning_;

  UniqueFd epoll_;
  UniqueFd wakeup_;  // eventfd
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> num_connections_{0};

  std::mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_;

  // Loop-thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  LatencyHistogram latency_;
};

}  // namespace s4::net

#endif  // S4_NET_EVENT_LOOP_H_
