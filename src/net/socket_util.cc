#include "net/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <chrono>

#include "common/string_util.h"
#include "common/timer.h"

namespace s4::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, strerror(errno)));
}

// Remaining poll budget in milliseconds; >= 1 while time is left so a
// sub-millisecond remainder still polls instead of busy-spinning.
int RemainingMs(const WallTimer& timer, double timeout_seconds) {
  if (timeout_seconds <= 0.0) return -1;  // no deadline
  const double left = timeout_seconds - timer.ElapsedSeconds();
  if (left <= 0.0) return 0;
  return static_cast<int>(left * 1e3) + 1;
}

}  // namespace

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

StatusOr<UniqueFd> Listen(const std::string& bind_address, uint16_t port,
                          int backlog) {
  UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad bind address \"%s\"", bind_address.c_str()));
  }
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (listen(fd.get(), backlog) < 0) return Errno("listen");
  S4_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

StatusOr<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

StatusOr<UniqueFd> ConnectWithTimeout(const std::string& host, uint16_t port,
                                      double timeout_seconds) {
  UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad host address \"%s\" (numeric IPv4 only)",
                  host.c_str()));
  }
  // Connect non-blocking so the timeout is enforceable, then flip back
  // to blocking: the client library's send/recv paths use poll anyway.
  S4_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  if (connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) return Errno("connect");
    WallTimer timer;
    pollfd pfd{fd.get(), POLLOUT, 0};
    for (;;) {
      const int ms = RemainingMs(timer, timeout_seconds);
      if (ms == 0) {
        return Status::DeadlineExceeded(
            StrFormat("connect to %s:%u timed out after %.3fs", host.c_str(),
                      port, timeout_seconds));
      }
      const int n = poll(&pfd, 1, ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("poll(connect)");
      }
      if (n > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Internal(StrFormat("connect to %s:%u: %s", host.c_str(),
                                        port, strerror(err)));
    }
  }
  const int flags = fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return Errno("fcntl(blocking)");
  }
  (void)SetNoDelay(fd.get());
  return fd;
}

Status SendAll(int fd, const char* data, size_t len, double timeout_seconds) {
  WallTimer timer;
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int ms = RemainingMs(timer, timeout_seconds);
      if (ms == 0) {
        return Status::DeadlineExceeded("send timed out");
      }
      pollfd pfd{fd, POLLOUT, 0};
      if (poll(&pfd, 1, ms) < 0 && errno != EINTR) return Errno("poll(send)");
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t len, double timeout_seconds) {
  WallTimer timer;
  size_t got = 0;
  while (got < len) {
    const int ms = RemainingMs(timer, timeout_seconds);
    if (ms == 0) return Status::DeadlineExceeded("recv timed out");
    pollfd pfd{fd, POLLIN, 0};
    const int pn = poll(&pfd, 1, ms);
    if (pn < 0) {
      if (errno == EINTR) continue;
      return Errno("poll(recv)");
    }
    if (pn == 0) continue;  // loop re-checks the deadline
    const ssize_t n = recv(fd, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Internal("connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Errno("recv");
  }
  return Status::OK();
}

}  // namespace s4::net
