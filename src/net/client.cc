#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/string_util.h"
#include "net/socket_util.h"

namespace s4::net {

namespace {

double Remaining(std::chrono::steady_clock::time_point start,
                 double budget_seconds) {
  if (budget_seconds <= 0.0) return 0.0;  // 0 = no deadline downstream
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Never fall to <= 0 with a budget set: 0 means "no deadline" to the
  // socket helpers. An exhausted budget becomes an immediate timeout.
  return std::max(budget_seconds - elapsed, 1e-4);
}

}  // namespace

S4Client::S4Client(ClientOptions options) : options_(std::move(options)) {}

StatusOr<UniqueFd> S4Client::Checkout(bool* pooled) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      UniqueFd fd = std::move(pool_.back());
      pool_.pop_back();
      *pooled = true;
      return fd;
    }
  }
  *pooled = false;
  return ConnectWithTimeout(options_.host, options_.port,
                            options_.connect_timeout_seconds);
}

void S4Client::Return(UniqueFd fd) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_.size() < options_.max_pool_connections) {
    pool_.push_back(std::move(fd));
  }
  // Otherwise fd closes here: the pool is full.
}

StatusOr<S4Client::RawReply> S4Client::RoundTripOn(int fd,
                                                   const std::string& frame,
                                                   uint64_t request_id,
                                                   bool* reusable) {
  *reusable = false;
  const auto start = std::chrono::steady_clock::now();
  const double budget = options_.request_timeout_seconds;
  S4_RETURN_IF_ERROR(SendAll(fd, frame.data(), frame.size(),
                             Remaining(start, budget)));
  char header[kHeaderBytes];
  S4_RETURN_IF_ERROR(
      RecvAll(fd, header, kHeaderBytes, Remaining(start, budget)));
  FrameHeader h;
  S4_RETURN_IF_ERROR(
      DecodeFrameHeader(std::string_view(header, kHeaderBytes), &h));
  if (h.payload_len > kDefaultMaxFrameBytes) {
    return Status::Internal(
        StrFormat("server sent an oversized frame (%u bytes)",
                  h.payload_len));
  }
  RawReply reply;
  reply.type = h.type;
  reply.payload.resize(h.payload_len);
  if (h.payload_len > 0) {
    S4_RETURN_IF_ERROR(RecvAll(fd, reply.payload.data(), h.payload_len,
                               Remaining(start, budget)));
  }
  if (h.request_id != request_id) {
    // The stream is out of sync (a previous call abandoned a response
    // mid-read, or the server is confused); the socket must not be
    // reused either way.
    return Status::Internal(
        StrFormat("response for request %llu while waiting for %llu",
                  static_cast<unsigned long long>(h.request_id),
                  static_cast<unsigned long long>(request_id)));
  }
  *reusable = true;
  return reply;
}

StatusOr<S4Client::RawReply> S4Client::RoundTrip(const std::string& frame,
                                                 uint64_t request_id) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool pooled = false;
    auto fd = Checkout(&pooled);
    if (!fd.ok()) return fd.status();
    bool reusable = false;
    auto reply = RoundTripOn(fd->get(), frame, request_id, &reusable);
    if (reply.ok()) {
      if (reusable) Return(std::move(*fd));
      return reply;
    }
    // A pooled socket may have been idle-closed by the server since its
    // last use; a transport failure there (Internal, not a timeout) is
    // retried once on a fresh connection. Fresh-connection failures are
    // real.
    if (pooled && attempt == 0 &&
        reply.status().code() == StatusCode::kInternal) {
      continue;
    }
    return reply.status();
  }
  return Status::Internal("unreachable");  // loop always returns
}

StatusOr<NetSearchResponse> S4Client::Search(
    const NetSearchRequest& request, uint64_t* request_id_out) {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (request_id_out != nullptr) *request_id_out = id;
  auto reply = RoundTrip(EncodeSearchRequestFrame(request, id), id);
  if (!reply.ok()) return reply.status();
  switch (reply->type) {
    case FrameType::kSearchResponse: {
      NetSearchResponse resp;
      S4_RETURN_IF_ERROR(DecodeSearchResponse(reply->payload, &resp));
      return resp;
    }
    case FrameType::kError: {
      NetError err;
      S4_RETURN_IF_ERROR(DecodeError(reply->payload, &err));
      return err.ToStatus();
    }
    default:
      return Status::Internal(
          StrFormat("unexpected frame type %u in reply",
                    static_cast<unsigned>(reply->type)));
  }
}

StatusOr<NetMutateResponse> S4Client::Mutate(
    const std::vector<Mutation>& mutations, uint64_t* request_id_out) {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  if (request_id_out != nullptr) *request_id_out = id;
  NetMutateRequest req;
  req.mutations = mutations;
  auto reply = RoundTrip(EncodeMutateRequestFrame(req, id), id);
  if (!reply.ok()) return reply.status();
  switch (reply->type) {
    case FrameType::kMutateResponse: {
      NetMutateResponse resp;
      S4_RETURN_IF_ERROR(DecodeMutateResponse(reply->payload, &resp));
      return resp;
    }
    case FrameType::kError: {
      NetError err;
      S4_RETURN_IF_ERROR(DecodeError(reply->payload, &err));
      return err.ToStatus();
    }
    default:
      return Status::Internal(
          StrFormat("unexpected frame type %u in mutate reply",
                    static_cast<unsigned>(reply->type)));
  }
}

Status S4Client::Ping() {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto reply = RoundTrip(EncodePingFrame(id), id);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) {
    NetError err;
    S4_RETURN_IF_ERROR(DecodeError(reply->payload, &err));
    return err.ToStatus();
  }
  if (reply->type != FrameType::kPong) {
    return Status::Internal(
        StrFormat("unexpected frame type %u in ping reply",
                  static_cast<unsigned>(reply->type)));
  }
  return Status::OK();
}

StatusOr<std::string> S4Client::Stats() {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto reply = RoundTrip(EncodeStatsRequestFrame(id), id);
  if (!reply.ok()) return reply.status();
  switch (reply->type) {
    case FrameType::kStatsResponse:
      return std::move(reply->payload);
    case FrameType::kError: {
      NetError err;
      S4_RETURN_IF_ERROR(DecodeError(reply->payload, &err));
      return err.ToStatus();
    }
    default:
      return Status::Internal(
          StrFormat("unexpected frame type %u in stats reply",
                    static_cast<unsigned>(reply->type)));
  }
}

StatusOr<std::string> S4Client::FetchTrace(uint64_t request_id) {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto reply = RoundTrip(EncodeTraceRequestFrame(request_id, id), id);
  if (!reply.ok()) return reply.status();
  switch (reply->type) {
    case FrameType::kTraceResponse:
      return std::move(reply->payload);
    case FrameType::kError: {
      NetError err;
      S4_RETURN_IF_ERROR(DecodeError(reply->payload, &err));
      return err.ToStatus();
    }
    default:
      return Status::Internal(
          StrFormat("unexpected frame type %u in trace reply",
                    static_cast<unsigned>(reply->type)));
  }
}

StatusOr<std::string> S4Client::FetchSlowLog() {
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  auto reply = RoundTrip(EncodeSlowLogRequestFrame(id), id);
  if (!reply.ok()) return reply.status();
  switch (reply->type) {
    case FrameType::kSlowLogResponse:
      return std::move(reply->payload);
    case FrameType::kError: {
      NetError err;
      S4_RETURN_IF_ERROR(DecodeError(reply->payload, &err));
      return err.ToStatus();
    }
    default:
      return Status::Internal(
          StrFormat("unexpected frame type %u in slow-log reply",
                    static_cast<unsigned>(reply->type)));
  }
}

}  // namespace s4::net
