#ifndef S4_NET_CONNECTION_H_
#define S4_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/fd.h"
#include "common/stop_token.h"
#include "net/event_loop.h"
#include "net/wire.h"

namespace s4::net {

// One accepted TCP connection, owned by exactly one EventLoop and only
// ever touched on that loop's thread (service completions re-enter via
// EventLoop::Post). Responsibilities:
//
//   * frame reassembly from the byte stream, with header validation
//     (magic / version / type / size) before any payload buffering;
//   * per-request bookkeeping: the StopToken of every in-flight search,
//     cancelled en masse when the peer disconnects mid-request;
//   * a write buffer with EPOLLOUT fallback for partial writes;
//   * idle/slow-loris accounting (no byte progress while a partial
//     frame or an empty pipeline sits for too long => closed by the
//     loop's sweep).
//
// Protocol-level failures degrade by severity: a malformed payload in a
// well-framed message earns an Error frame and the connection lives on;
// a framing violation (bad magic, oversized length, unknown type,
// version mismatch) earns at most one Error frame and the connection is
// closed, because the stream can no longer be trusted.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(UniqueFd fd, EventLoop* loop);
  ~Connection();

  int fd() const { return fd_.get(); }
  bool closed() const { return closed_; }
  EventLoop* loop() const { return loop_; }

  // --- loop-thread entry points ---------------------------------------
  void OnReadable();
  void OnWritable();
  // Closes now: cancels in-flight tokens and marks the connection dead.
  // The loop removes it from the epoll set and its map.
  void Close();
  // True when the idle rules say this connection should be closed at
  // sweep time `now`.
  bool IdleExpired(std::chrono::steady_clock::time_point now) const;

  // Queues `frame` for writing (immediate attempt, EPOLLOUT fallback).
  void SendFrame(std::string frame);

  // Completion path (posted by the dispatcher): sends the response for
  // `request_id` and retires its in-flight entry.
  void CompleteRequest(uint64_t request_id, std::string frame,
                       bool is_error, double server_seconds);

  // Dispatcher bookkeeping.
  void RegisterInflight(uint64_t request_id,
                        std::shared_ptr<StopToken> stop);
  size_t inflight() const { return inflight_.size(); }

  // Cancels the in-flight request's stop token without retiring the
  // entry (the dispatcher still completes it, typically with a partial
  // kShardDone). Unknown ids are ignored: an early-stop racing the
  // completion is normal, not a protocol violation. Returns whether a
  // token was found.
  bool CancelRequest(uint64_t request_id);

 private:
  // Parses complete frames out of inbuf_; returns false when the
  // connection must close (framing violation or peer gone).
  bool DrainFrames();
  void HandleFrame(const FrameHeader& h, std::string_view payload);
  // Sends an error frame and optionally marks the connection to close
  // once the write buffer flushes.
  void SendError(uint64_t request_id, const Status& status,
                 bool close_after);
  void FlushWrites();
  void CancelInflight();

  UniqueFd fd_;
  EventLoop* loop_;
  std::string inbuf_;
  std::string outbuf_;
  size_t out_pos_ = 0;
  bool want_write_ = false;
  bool closed_ = false;
  bool close_after_flush_ = false;
  std::chrono::steady_clock::time_point last_progress_;
  std::unordered_map<uint64_t, std::shared_ptr<StopToken>> inflight_;
};

}  // namespace s4::net

#endif  // S4_NET_CONNECTION_H_
