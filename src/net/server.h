#ifndef S4_NET_SERVER_H_
#define S4_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fd.h"
#include "common/latency_histogram.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "obs/trace.h"
#include "service/s4_service.h"

namespace s4::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // 0 = kernel-assigned; read the real one back with port().
  uint16_t port = 0;
  // Event-loop threads sharing the accepted connections round-robin.
  int32_t num_event_loops = 2;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  double idle_timeout_seconds = 60.0;
  // Observability (DESIGN.md "Observability"): when true, every search
  // request gets a per-request Trace whose Chrome-trace JSON is
  // retrievable over the wire (kTraceRequest) while it stays in the
  // bounded history below.
  bool enable_tracing = false;
  // Completed traces retained for kTraceRequest lookups (FIFO evicted).
  size_t trace_history = 128;
  // One-line per-request summary on stderr at completion.
  bool verbose = false;
};

// TCP front-end for an S4Service: one acceptor thread plus
// `num_event_loops` epoll threads, each owning its connections outright
// (the data path takes no locks; cross-thread handoff goes through
// EventLoop::Post). A decoded SearchRequest is dispatched into the
// service's admission queue from the loop thread — the deadline is armed
// at admission, i.e. effectively at frame arrival — and the completion
// callback marshals the response back to the owning loop. A client
// disconnect cancels its in-flight requests through their StopTokens.
//
// The wrapped service must outlive the server. Stop() (also run by the
// destructor) refuses new connections, closes existing ones, then waits
// for in-flight dispatches to drain before the loops are joined, so no
// completion ever posts to a dead loop.
class S4Server : public SearchDispatcher {
 public:
  explicit S4Server(S4Service* service, ServerOptions options = {});
  ~S4Server() override;

  S4Server(const S4Server&) = delete;
  S4Server& operator=(const S4Server&) = delete;

  Status Start();
  void Stop();

  // The port actually bound (differs from options when it was 0).
  uint16_t port() const { return port_; }

  const NetServerCounters& counters() const { return counters_; }
  size_t num_connections() const;
  // Server-side request latency (frame arrival -> response queued),
  // merged across event loops.
  LatencyHistogram::Snapshot latency() const;

  // SearchDispatcher (called on a loop thread).
  void DispatchSearch(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id, NetSearchRequest req) override;
  // Scatter-gather shard exchange: dispatches like DispatchSearch but
  // installs a strategy progress sink that streams kShardPartial frames
  // (throttled to the request's cadence) back through the owning loop,
  // and answers with kShardDone instead of kSearchResponse.
  void DispatchShardSearch(const std::shared_ptr<Connection>& conn,
                           uint64_t request_id,
                           NetShardSearchRequest req) override;
  // Live mutation write path: hands the batch to the service (which
  // rejects it on immutable deployments) and answers kMutateResponse.
  // Even a batch that stopped early (per-op failure, cancellation)
  // travels as a kMutateResponse — the applied prefix and its epoch are
  // the answer; kError is reserved for admission-level rejection.
  void DispatchMutate(const std::shared_ptr<Connection>& conn,
                      uint64_t request_id, NetMutateRequest req) override;
  // Refreshes the net/service gauges and returns a Prometheus text dump
  // of the global registry. Also the renderer behind a --stats-port
  // scrape endpoint.
  std::string CollectStatsText() override;
  // Chrome-trace JSON of a completed traced request still in history.
  StatusOr<std::string> CollectTraceJson(uint64_t request_id) override;
  // JSON dump of the service's slow-query ring; NotFound when disabled.
  StatusOr<std::string> CollectSlowLogJson() override;

 private:
  void AcceptorMain();
  void StoreTrace(uint64_t request_id, std::shared_ptr<obs::Trace> trace);

  S4Service* service_;
  ServerOptions options_;
  NetServerCounters counters_;
  std::vector<std::unique_ptr<EventLoop>> loops_;

  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  size_t next_loop_ = 0;  // acceptor-thread only

  // Dispatches whose completion callback has not yet run; Stop() waits
  // for zero before tearing the loops down.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int64_t inflight_dispatches_ = 0;

  // Bounded history of completed traces keyed by wire request_id
  // (last-writer-wins on a client reusing an id).
  mutable std::mutex traces_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<obs::Trace>> traces_;
  std::deque<uint64_t> trace_order_;
};

}  // namespace s4::net

#endif  // S4_NET_SERVER_H_
