#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"

namespace s4::net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

uint32_t PeekU32LE(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

Connection::Connection(UniqueFd fd, EventLoop* loop)
    : fd_(std::move(fd)), loop_(loop) {
  last_progress_ = std::chrono::steady_clock::now();
  loop_->counters()->connections_accepted.fetch_add(
      1, std::memory_order_relaxed);
  if (!loop_->WatchConnection(this, /*want_write=*/false).ok()) {
    Close();
  }
}

Connection::~Connection() {
  // The loop calls Close() before dropping its reference; this is a
  // belt-and-braces path for teardown during shutdown.
  if (!closed_) Close();
}

void Connection::OnReadable() {
  if (closed_) return;
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      inbuf_.append(chunk, static_cast<size_t>(n));
      loop_->counters()->bytes_received.fetch_add(
          n, std::memory_order_relaxed);
      last_progress_ = std::chrono::steady_clock::now();
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed. Anything still in flight is abandoned work.
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close();
    return;
  }
  if (!DrainFrames()) Close();
}

void Connection::OnWritable() {
  if (closed_) return;
  FlushWrites();
}

bool Connection::DrainFrames() {
  while (!closed_ && !close_after_flush_ && inbuf_.size() >= kHeaderBytes) {
    // Magic first: a stream that fails this is not speaking the protocol
    // at all, so no reply can be expected to parse — cut it.
    if (PeekU32LE(inbuf_.data()) != kMagic) {
      loop_->counters()->protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      return false;
    }
    FrameHeader h;
    const Status hs = DecodeFrameHeader(
        std::string_view(inbuf_).substr(0, kHeaderBytes), &h);
    if (!hs.ok()) {
      // Version mismatch or unknown type: the framing itself is intact,
      // so one explanatory Error frame is deliverable before closing.
      loop_->counters()->protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      SendError(h.request_id, hs, /*close_after=*/true);
      return true;
    }
    if (h.payload_len > loop_->tuning().max_frame_bytes) {
      loop_->counters()->protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      SendError(h.request_id,
                Status::InvalidArgument(StrFormat(
                    "frame payload of %u bytes exceeds the %u-byte limit",
                    h.payload_len, loop_->tuning().max_frame_bytes)),
                /*close_after=*/true);
      return true;
    }
    const size_t total = kHeaderBytes + h.payload_len;
    if (inbuf_.size() < total) break;  // partial frame; wait for bytes
    loop_->counters()->frames_received.fetch_add(
        1, std::memory_order_relaxed);
    HandleFrame(h, std::string_view(inbuf_).substr(kHeaderBytes,
                                                   h.payload_len));
    inbuf_.erase(0, total);
  }
  return true;
}

void Connection::HandleFrame(const FrameHeader& h,
                             std::string_view payload) {
  switch (h.type) {
    case FrameType::kPing:
      SendFrame(EncodePongFrame(h.request_id));
      return;
    case FrameType::kSearchRequest: {
      NetSearchRequest req;
      WallTimer decode_timer;
      const Status ds = DecodeSearchRequest(payload, &req);
      req.decode_seconds = decode_timer.ElapsedSeconds();
      if (!ds.ok()) {
        // Well-framed but malformed payload: the stream is still in
        // sync, so answer and keep the connection.
        SendError(h.request_id, ds, /*close_after=*/false);
        return;
      }
      loop_->dispatcher()->DispatchSearch(shared_from_this(), h.request_id,
                                          std::move(req));
      return;
    }
    case FrameType::kShardSearchRequest: {
      loop_->counters()->shard_requests.fetch_add(1,
                                                  std::memory_order_relaxed);
      NetShardSearchRequest req;
      WallTimer decode_timer;
      const Status ds = DecodeShardSearchRequest(payload, &req);
      req.base.decode_seconds = decode_timer.ElapsedSeconds();
      if (!ds.ok()) {
        SendError(h.request_id, ds, /*close_after=*/false);
        return;
      }
      loop_->dispatcher()->DispatchShardSearch(shared_from_this(),
                                               h.request_id, std::move(req));
      return;
    }
    case FrameType::kShardStop: {
      // Early-stop from a coordinator: cancel the named exchange's stop
      // token; the dispatch in flight completes with its partial top-k.
      // No reply frame — the kShardDone it triggers is the answer.
      uint64_t target = 0;
      const Status ds = DecodeShardStop(payload, &target);
      if (!ds.ok()) {
        SendError(h.request_id, ds, /*close_after=*/false);
        return;
      }
      if (CancelRequest(target)) {
        loop_->counters()->shard_stops.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      return;
    }
    case FrameType::kMutateRequest: {
      loop_->counters()->mutate_requests.fetch_add(1,
                                                   std::memory_order_relaxed);
      NetMutateRequest req;
      WallTimer decode_timer;
      const Status ds = DecodeMutateRequest(payload, &req);
      req.decode_seconds = decode_timer.ElapsedSeconds();
      if (!ds.ok()) {
        SendError(h.request_id, ds, /*close_after=*/false);
        return;
      }
      loop_->dispatcher()->DispatchMutate(shared_from_this(), h.request_id,
                                          std::move(req));
      return;
    }
    case FrameType::kStatsRequest: {
      loop_->counters()->stats_requests.fetch_add(1,
                                                  std::memory_order_relaxed);
      SendFrame(EncodeStatsResponseFrame(
          loop_->dispatcher()->CollectStatsText(), h.request_id));
      loop_->counters()->responses_sent.fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    case FrameType::kTraceRequest: {
      loop_->counters()->trace_requests.fetch_add(1,
                                                  std::memory_order_relaxed);
      uint64_t target = 0;
      const Status ds = DecodeTraceRequest(payload, &target);
      if (!ds.ok()) {
        SendError(h.request_id, ds, /*close_after=*/false);
        return;
      }
      StatusOr<std::string> json =
          loop_->dispatcher()->CollectTraceJson(target);
      if (!json.ok()) {
        // NotFound (unknown/evicted id, tracing off) is a per-request
        // miss, not a protocol violation: answer and keep the stream.
        SendError(h.request_id, json.status(), /*close_after=*/false);
        return;
      }
      SendFrame(EncodeTraceResponseFrame(*json, h.request_id));
      loop_->counters()->responses_sent.fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    case FrameType::kSlowLogRequest: {
      loop_->counters()->slow_log_requests.fetch_add(
          1, std::memory_order_relaxed);
      const Status ds = DecodeSlowLogRequest(payload);
      if (!ds.ok()) {
        SendError(h.request_id, ds, /*close_after=*/false);
        return;
      }
      StatusOr<std::string> json =
          loop_->dispatcher()->CollectSlowLogJson();
      if (!json.ok()) {
        // NotFound (slow log disabled) is a per-request miss, not a
        // protocol violation: answer and keep the stream.
        SendError(h.request_id, json.status(), /*close_after=*/false);
        return;
      }
      SendFrame(EncodeSlowLogResponseFrame(*json, h.request_id));
      loop_->counters()->responses_sent.fetch_add(1,
                                                  std::memory_order_relaxed);
      return;
    }
    default:
      // Server-to-client frame types arriving at the server mean the
      // peer is confused; nothing after this can be trusted.
      loop_->counters()->protocol_errors.fetch_add(
          1, std::memory_order_relaxed);
      SendError(h.request_id,
                Status::InvalidArgument(StrFormat(
                    "unexpected frame type %u from client",
                    static_cast<unsigned>(h.type))),
                /*close_after=*/true);
      return;
  }
}

void Connection::SendError(uint64_t request_id, const Status& status,
                           bool close_after) {
  loop_->counters()->errors_sent.fetch_add(1, std::memory_order_relaxed);
  if (close_after) close_after_flush_ = true;
  SendFrame(EncodeErrorFrame(status, request_id));
}

void Connection::SendFrame(std::string frame) {
  if (closed_) return;
  outbuf_.append(frame);
  FlushWrites();
}

void Connection::CompleteRequest(uint64_t request_id, std::string frame,
                                 bool is_error, double server_seconds) {
  if (closed_) return;
  inflight_.erase(request_id);
  loop_->latency().Record(server_seconds);
  auto* counters = loop_->counters();
  if (is_error) {
    counters->errors_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters->responses_sent.fetch_add(1, std::memory_order_relaxed);
  }
  SendFrame(std::move(frame));
}

void Connection::RegisterInflight(uint64_t request_id,
                                  std::shared_ptr<StopToken> stop) {
  inflight_[request_id] = std::move(stop);
}

bool Connection::CancelRequest(uint64_t request_id) {
  auto it = inflight_.find(request_id);
  if (it == inflight_.end() || it->second == nullptr) return false;
  it->second->Cancel();
  return true;
}

void Connection::FlushWrites() {
  while (out_pos_ < outbuf_.size()) {
    const ssize_t n = send(fd_.get(), outbuf_.data() + out_pos_,
                           outbuf_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      loop_->counters()->bytes_sent.fetch_add(n, std::memory_order_relaxed);
      last_progress_ = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write_) {
        want_write_ = true;
        if (!loop_->WatchConnection(this, /*want_write=*/true).ok()) {
          Close();
        }
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return;
  }
  outbuf_.clear();
  out_pos_ = 0;
  if (want_write_) {
    want_write_ = false;
    if (!loop_->WatchConnection(this, /*want_write=*/false).ok()) {
      Close();
      return;
    }
  }
  if (close_after_flush_) Close();
}

void Connection::CancelInflight() {
  if (inflight_.empty()) return;
  loop_->counters()->disconnect_cancels.fetch_add(
      static_cast<int64_t>(inflight_.size()), std::memory_order_relaxed);
  for (auto& [id, stop] : inflight_) {
    if (stop) stop->Cancel();
  }
  inflight_.clear();
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  CancelInflight();
  loop_->counters()->connections_closed.fetch_add(
      1, std::memory_order_relaxed);
  // The fd stays open until destruction: the loop still needs it to
  // EPOLL_CTL_DEL and erase the map entry.
}

bool Connection::IdleExpired(
    std::chrono::steady_clock::time_point now) const {
  const double timeout = loop_->tuning().idle_timeout_seconds;
  if (timeout <= 0.0) return false;
  // In-flight work keeps the connection alive: the peer is legitimately
  // waiting on us, not the other way round.
  if (!inflight_.empty()) return false;
  const double stalled =
      std::chrono::duration<double>(now - last_progress_).count();
  return stalled > timeout;
}

}  // namespace s4::net
