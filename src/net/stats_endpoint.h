#ifndef S4_NET_STATS_ENDPOINT_H_
#define S4_NET_STATS_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/fd.h"
#include "common/status.h"

namespace s4::net {

// Minimal plain-text scrape endpoint: one blocking accept thread that
// answers every connection with an HTTP/1.0 200 response whose body is
// whatever `render` returns (e.g. a Prometheus dump from the metrics
// registry), then closes. It deliberately ignores the request bytes —
// `curl host:port/metrics` and a Prometheus scraper both work — and is
// not a general HTTP server: no keep-alive, no routing, no TLS.
class StatsTextServer {
 public:
  using Renderer = std::function<std::string()>;

  StatsTextServer() = default;
  ~StatsTextServer() { Stop(); }

  StatsTextServer(const StatsTextServer&) = delete;
  StatsTextServer& operator=(const StatsTextServer&) = delete;

  // Binds and starts the accept thread. `port` 0 lets the kernel pick;
  // read it back with port().
  Status Start(const std::string& bind_address, uint16_t port,
               Renderer render);
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void Serve();

  Renderer render_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace s4::net

#endif  // S4_NET_STATS_ENDPOINT_H_
