#ifndef S4_NET_PROTOCOL_H_
#define S4_NET_PROTOCOL_H_

#include <cstdint>

#include "common/status.h"

namespace s4::net {

// --- S4 wire protocol v3 ----------------------------------------------
//
// Every frame on the wire is a fixed 20-byte header followed by a
// type-specific payload, all integers little-endian:
//
//   offset  size  field
//        0     4  magic        0x53345750 ("S4WP")
//        4     1  version      kProtocolVersion
//        5     1  type         FrameType
//        6     2  reserved     must be 0
//        8     8  request_id   echoed verbatim in the response frame
//       16     4  payload_len  bytes following the header
//
// The magic is checked first: a stream that does not start every frame
// with it is garbage (or a different protocol) and the connection is cut
// without a response — nothing later in such a stream can be trusted.
// A version mismatch or an unknown type is answered with an Error frame
// (the peer speaks *a* version of this protocol, so an explanation is
// deliverable) before the connection closes.

inline constexpr uint32_t kMagic = 0x53345750u;  // "S4WP"
// v2 appended the anytime-approximate fields: four search-request knobs
// (approx_epsilon, approx_confidence, sample_budget, rng_seed), the
// per-entry score-interval block, and the response-level approximate
// flag. v3 appended the profiling surface: a want_profile request flag,
// an optional QueryProfile section on search responses, trace context
// (trace_id, parent span, wall origin) on shard requests, an optional
// trace segment on kShardDone, and the kSlowLogRequest/Response pair.
// Both sides must agree — the header version check rejects older peers
// with FailedPrecondition before any payload is parsed.
inline constexpr uint8_t kProtocolVersion = 3;
inline constexpr size_t kHeaderBytes = 20;

// Frames larger than this are rejected with InvalidArgument and the
// connection closed: the server never buffers an attacker-sized frame.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : uint8_t {
  kSearchRequest = 1,   // client -> server
  kSearchResponse = 2,  // server -> client (success)
  kError = 3,           // server -> client (Status + retryable flag)
  kPing = 4,            // client -> server (pool health check)
  kPong = 5,            // server -> client
  kStatsRequest = 6,    // client -> server (empty payload)
  kStatsResponse = 7,   // server -> client (Prometheus text dump)
  kTraceRequest = 8,    // client -> server (u64 target request_id)
  kTraceResponse = 9,   // server -> client (Chrome-trace JSON)
  // Scatter-gather shard exchange (DESIGN.md "Distributed serving"): a
  // coordinator sends one kShardSearchRequest, the shard streams zero or
  // more kShardPartial frames (current top-k + remaining upper bound)
  // and finishes with exactly one kShardDone (or kError). kShardStop
  // flows coordinator -> shard mid-exchange once the merged k-th score
  // proves the shard can no longer contribute.
  kShardSearchRequest = 10,  // coordinator -> shard
  kShardPartial = 11,        // shard -> coordinator (streamed)
  kShardDone = 12,           // shard -> coordinator (final)
  kShardStop = 13,           // coordinator -> shard (u64 target request_id)
  // Live mutation write path (src/live/): a batch of insert/delete/
  // update operations applied in order; the response reports the applied
  // prefix and the epoch it was published as. Sent client -> server and
  // coordinator -> shard (the coordinator broadcasts writes to every
  // shard, which all hold the full database).
  kMutateRequest = 14,   // client -> server
  kMutateResponse = 15,  // server -> client
  // Slow-query log fetch: the server answers with the JSON dump of its
  // slowest-request ring (empty request payload, like kStatsRequest).
  kSlowLogRequest = 16,   // client -> server (empty payload)
  kSlowLogResponse = 17,  // server -> client (JSON text)
};

inline bool IsValidFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kSearchRequest) &&
         t <= static_cast<uint8_t>(FrameType::kSlowLogResponse);
}

// Decode-side cap on NetShardSearchRequest::shard_count: far above any
// deployment this code targets, small enough that a hostile frame cannot
// claim an absurd topology.
inline constexpr int32_t kMaxWireShards = 1024;

// Decode-side caps for mutate frames: operations per batch and values
// per inserted row (i.e. columns). Same philosophy as kMaxWireShards —
// generous for real traffic, hostile frames cannot force absurd
// allocations before the byte-level bounds checks bite.
inline constexpr uint32_t kMaxWireMutations = 4096;
inline constexpr uint32_t kMaxWireMutationValues = 4096;

// Decode-side caps on the anytime-approximate request knobs. Epsilon is
// a relative slack on the k-th score — anything above a few is already
// absurd, 1e6 is pure hostility; the budget cap keeps a hostile frame
// from pinning a worker on one candidate for minutes.
inline constexpr double kMaxWireApproxEpsilon = 1e6;
inline constexpr int64_t kMaxWireSampleBudget = int64_t{1} << 32;

// Decode-side caps on the trace segment a shard returns on kShardDone:
// events per segment and args per event. A real per-request trace is a
// few hundred events; a hostile frame cannot force absurd allocations.
inline constexpr uint32_t kMaxWireTraceEvents = 4096;
inline constexpr uint32_t kMaxWireTraceArgs = 16;

// Decode-side cap on the per-shard breakdown inside a wire
// QueryProfile (mirrors the fan-out bound).
inline constexpr uint32_t kMaxWireProfileShards =
    static_cast<uint32_t>(kMaxWireShards);

// Value kind tags inside mutate frames.
inline constexpr uint8_t kWireValueNull = 0;
inline constexpr uint8_t kWireValueInt = 1;
inline constexpr uint8_t kWireValueText = 2;

// S4System::Strategy on the wire (decoupled from the enum's in-memory
// numbering so either side can re-order its enum without a wire break).
inline constexpr uint8_t kWireStrategyNaive = 0;
inline constexpr uint8_t kWireStrategyBaseline = 1;
inline constexpr uint8_t kWireStrategyFastTopK = 2;

// --- Status <-> wire error code mapping -------------------------------
//
// The Error frame carries the StatusCode as a stable small integer plus
// a retryable hint, so S4Client can hand typed Status values back to
// callers (the "error-mapping table" of DESIGN.md).

inline uint8_t WireCodeFor(StatusCode code) {
  return static_cast<uint8_t>(code);
}

inline StatusCode StatusCodeFromWire(uint8_t code) {
  switch (code) {
    case static_cast<uint8_t>(StatusCode::kInvalidArgument):
      return StatusCode::kInvalidArgument;
    case static_cast<uint8_t>(StatusCode::kNotFound):
      return StatusCode::kNotFound;
    case static_cast<uint8_t>(StatusCode::kAlreadyExists):
      return StatusCode::kAlreadyExists;
    case static_cast<uint8_t>(StatusCode::kOutOfRange):
      return StatusCode::kOutOfRange;
    case static_cast<uint8_t>(StatusCode::kFailedPrecondition):
      return StatusCode::kFailedPrecondition;
    case static_cast<uint8_t>(StatusCode::kResourceExhausted):
      return StatusCode::kResourceExhausted;
    case static_cast<uint8_t>(StatusCode::kCancelled):
      return StatusCode::kCancelled;
    case static_cast<uint8_t>(StatusCode::kDeadlineExceeded):
      return StatusCode::kDeadlineExceeded;
    default:
      // Unknown / kOk in an error frame: a peer bug; surface as Internal
      // rather than inventing success.
      return StatusCode::kInternal;
  }
}

// Whether a request failing with `code` may be retried verbatim.
// ResourceExhausted is the admission queue saying "later"; everything
// else either cannot succeed unchanged (InvalidArgument,
// FailedPrecondition, ...) or already consumed its budget
// (DeadlineExceeded, Cancelled).
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kResourceExhausted;
}

inline Status StatusFromWire(uint8_t code, std::string message) {
  const StatusCode sc = StatusCodeFromWire(code);
  switch (sc) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    default:
      return Status::Internal(std::move(message));
  }
}

}  // namespace s4::net

#endif  // S4_NET_PROTOCOL_H_
