#ifndef S4_QUERY_SPREADSHEET_H_
#define S4_QUERY_SPREADSHEET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "text/term_dict.h"
#include "text/tokenizer.h"

namespace s4 {

// An example spreadsheet T (Def 1): an m x n grid of cells, each either
// empty or containing text. Rows are example tuples the user believes
// should appear (approximately) in the desired query's output.
class ExampleSpreadsheet {
 public:
  struct Cell {
    std::string raw;                  // as typed by the user
    std::vector<std::string> terms;   // unique tokens of `raw`
    bool empty() const { return terms.empty(); }
  };

  // Builds a spreadsheet from raw cell strings (rows x columns,
  // rectangular); cells are tokenized with `tokenizer`.
  static StatusOr<ExampleSpreadsheet> FromCells(
      const std::vector<std::vector<std::string>>& cells,
      const Tokenizer& tokenizer);

  int32_t NumRows() const { return static_cast<int32_t>(cells_.size()); }
  int32_t NumColumns() const { return num_columns_; }
  const Cell& cell(int32_t row, int32_t col) const {
    return cells_[row][col];
  }

  // Distinct terms appearing anywhere in column `col` (first-seen order).
  const std::vector<std::string>& ColumnTerms(int32_t col) const {
    return column_terms_[col];
  }

  // Total number of term occurrences across all cells.
  int64_t TotalTerms() const;

  // Def 1 requires every row and every column to contain at least one
  // term. Callers decide whether to enforce (the incremental path allows
  // transiently incomplete spreadsheets while the user is typing).
  Status Validate() const;

  // Returns a copy with cell (row, col) replaced by `text` (retokenized).
  ExampleSpreadsheet WithCell(int32_t row, int32_t col,
                              const std::string& text,
                              const Tokenizer& tokenizer) const;

  // Row indexes whose cells differ from `other` (other must have the
  // same column count; rows beyond other's row count are all "changed").
  std::vector<int32_t> ChangedRows(const ExampleSpreadsheet& other) const;

  std::string ToString() const;

 private:
  int32_t num_columns_ = 0;
  std::vector<std::vector<Cell>> cells_;
  std::vector<std::vector<std::string>> column_terms_;

  void RebuildColumnTerms();
};

// The spreadsheet's terms resolved against a database term dictionary.
// Terms absent from the corpus map to kInvalidTermId (they can never
// match and contribute zero everywhere, but still count as user terms).
struct ResolvedSpreadsheet {
  // [row][col] -> unique term ids of the cell (invalid ids dropped).
  // With spelling expansion these include all similar terms.
  std::vector<std::vector<std::vector<TermId>>> cell_terms;
  // [row][col] -> one group per *original* cell term: the dictionary
  // terms it resolves to (itself, or its edit-distance expansions per
  // Appendix A.2). Matching is union semantics within a group: a row
  // matching any group member counts the original term once.
  std::vector<std::vector<std::vector<std::vector<TermId>>>>
      cell_term_groups;
  // [row][col] -> distinct term count of the raw cell, *including* terms
  // unknown to the corpus (needed by the exact-match bonus).
  std::vector<std::vector<int32_t>> cell_num_terms;
  // [col] -> unique known term ids of the column.
  std::vector<std::vector<TermId>> column_terms;
  int32_t num_rows = 0;
  int32_t num_columns = 0;

  // `spelling_edits` > 0 expands every cell term to all dictionary
  // terms within that Levenshtein distance (Appendix A.2 spelling-error
  // handling); 0 = exact term lookup.
  static ResolvedSpreadsheet Resolve(const ExampleSpreadsheet& sheet,
                                     const TermDict& dict,
                                     int32_t spelling_edits = 0);
};

}  // namespace s4

#endif  // S4_QUERY_SPREADSHEET_H_
