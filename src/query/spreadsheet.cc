#include "query/spreadsheet.h"

#include <unordered_set>

#include "common/string_util.h"
#include "text/edit_distance.h"

namespace s4 {

StatusOr<ExampleSpreadsheet> ExampleSpreadsheet::FromCells(
    const std::vector<std::vector<std::string>>& cells,
    const Tokenizer& tokenizer) {
  if (cells.empty()) {
    return Status::InvalidArgument("spreadsheet needs at least one row");
  }
  ExampleSpreadsheet sheet;
  sheet.num_columns_ = static_cast<int32_t>(cells[0].size());
  if (sheet.num_columns_ == 0) {
    return Status::InvalidArgument("spreadsheet needs at least one column");
  }
  for (const auto& row : cells) {
    if (static_cast<int32_t>(row.size()) != sheet.num_columns_) {
      return Status::InvalidArgument("spreadsheet rows must be rectangular");
    }
    std::vector<Cell> cell_row;
    cell_row.reserve(row.size());
    for (const std::string& raw : row) {
      Cell c;
      c.raw = raw;
      c.terms = tokenizer.TokenizeUnique(raw);
      cell_row.push_back(std::move(c));
    }
    sheet.cells_.push_back(std::move(cell_row));
  }
  sheet.RebuildColumnTerms();
  return sheet;
}

void ExampleSpreadsheet::RebuildColumnTerms() {
  column_terms_.assign(num_columns_, {});
  for (int32_t col = 0; col < num_columns_; ++col) {
    std::unordered_set<std::string> seen;
    for (int32_t row = 0; row < NumRows(); ++row) {
      for (const std::string& t : cells_[row][col].terms) {
        if (seen.insert(t).second) column_terms_[col].push_back(t);
      }
    }
  }
}

int64_t ExampleSpreadsheet::TotalTerms() const {
  int64_t n = 0;
  for (const auto& row : cells_) {
    for (const Cell& c : row) n += static_cast<int64_t>(c.terms.size());
  }
  return n;
}

Status ExampleSpreadsheet::Validate() const {
  for (int32_t row = 0; row < NumRows(); ++row) {
    bool has_term = false;
    for (int32_t col = 0; col < num_columns_; ++col) {
      if (!cells_[row][col].empty()) has_term = true;
    }
    if (!has_term) {
      return Status::InvalidArgument(StrFormat("row %d has no terms", row));
    }
  }
  for (int32_t col = 0; col < num_columns_; ++col) {
    if (column_terms_[col].empty()) {
      return Status::InvalidArgument(
          StrFormat("column %d has no terms", col));
    }
  }
  return Status::OK();
}

ExampleSpreadsheet ExampleSpreadsheet::WithCell(
    int32_t row, int32_t col, const std::string& text,
    const Tokenizer& tokenizer) const {
  ExampleSpreadsheet out = *this;
  Cell c;
  c.raw = text;
  c.terms = tokenizer.TokenizeUnique(text);
  out.cells_[row][col] = std::move(c);
  out.RebuildColumnTerms();
  return out;
}

std::vector<int32_t> ExampleSpreadsheet::ChangedRows(
    const ExampleSpreadsheet& other) const {
  std::vector<int32_t> changed;
  for (int32_t row = 0; row < NumRows(); ++row) {
    if (row >= other.NumRows()) {
      changed.push_back(row);
      continue;
    }
    for (int32_t col = 0; col < num_columns_; ++col) {
      if (col >= other.NumColumns() ||
          cells_[row][col].raw != other.cells_[row][col].raw) {
        changed.push_back(row);
        break;
      }
    }
  }
  return changed;
}

std::string ExampleSpreadsheet::ToString() const {
  std::string out;
  for (const auto& row : cells_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c].raw;
    }
    out += "\n";
  }
  return out;
}

ResolvedSpreadsheet ResolvedSpreadsheet::Resolve(
    const ExampleSpreadsheet& sheet, const TermDict& dict,
    int32_t spelling_edits) {
  ResolvedSpreadsheet r;
  r.num_rows = sheet.NumRows();
  r.num_columns = sheet.NumColumns();
  r.cell_terms.resize(r.num_rows);
  r.cell_term_groups.resize(r.num_rows);
  r.cell_num_terms.resize(r.num_rows);

  // Expansions are computed once per distinct raw term.
  std::unordered_map<std::string, std::vector<TermId>> expansion;
  auto expand = [&](const std::string& t) -> const std::vector<TermId>& {
    auto it = expansion.find(t);
    if (it != expansion.end()) return it->second;
    std::vector<TermId> ids;
    if (spelling_edits > 0) {
      ids = SimilarTerms(dict, t, spelling_edits);
    } else {
      TermId id = dict.Lookup(t);
      if (id != kInvalidTermId) ids.push_back(id);
    }
    return expansion.emplace(t, std::move(ids)).first->second;
  };

  for (int32_t row = 0; row < r.num_rows; ++row) {
    r.cell_terms[row].resize(r.num_columns);
    r.cell_term_groups[row].resize(r.num_columns);
    r.cell_num_terms[row].resize(r.num_columns);
    for (int32_t col = 0; col < r.num_columns; ++col) {
      r.cell_num_terms[row][col] =
          static_cast<int32_t>(sheet.cell(row, col).terms.size());
      std::unordered_set<TermId> seen;
      for (const std::string& t : sheet.cell(row, col).terms) {
        const std::vector<TermId>& ids = expand(t);
        if (ids.empty()) continue;
        r.cell_term_groups[row][col].push_back(ids);
        for (TermId id : ids) {
          if (seen.insert(id).second) r.cell_terms[row][col].push_back(id);
        }
      }
    }
  }
  r.column_terms.resize(r.num_columns);
  for (int32_t col = 0; col < r.num_columns; ++col) {
    std::unordered_set<TermId> seen;
    for (const std::string& t : sheet.ColumnTerms(col)) {
      for (TermId id : expand(t)) {
        if (seen.insert(id).second) r.column_terms[col].push_back(id);
      }
    }
  }
  return r;
}

}  // namespace s4
