#ifndef S4_QUERY_PJ_QUERY_H_
#define S4_QUERY_PJ_QUERY_H_

#include <string>
#include <vector>

#include "schema/join_tree.h"

namespace s4 {

// One element of the column mapping φ: example-spreadsheet column
// `es_column` is mapped to column `column` of the relation instance
// `node` of the join tree. The set of distinct (node, column) pairs is
// the projection C of Def 2.
struct ProjectionBinding {
  int32_t es_column = -1;
  TreeNodeId node = kNoNode;
  int32_t column = -1;

  bool operator==(const ProjectionBinding&) const = default;
};

// How a sub-PJ query's cached output relation is keyed, i.e. the join
// attribute that links the sub-PJ's root to the rest of an enclosing
// query (Appendix B.2).
struct LinkSpec {
  enum class Kind : uint8_t {
    kByPk,  // keyed by the root relation's primary key
    kByFk,  // keyed by the root's FK value on `edge`
  };
  Kind kind = Kind::kByPk;
  SchemaEdgeId edge = -1;  // only for kByFk

  std::string ToString() const;
};

class PJQuery;

// A sub-PJ query of some PJ query Q (Def 4) together with the bookkeeping
// the caching-evaluation scheduler needs: where it anchors inside Q, how
// its output relation is keyed, and a canonical cache key that collides
// exactly for shareable occurrences across different PJ queries.
struct SubPJQuery {
  enum class Kind : uint8_t {
    kSubtree,            // type i: full rooted subtree at a node
    kSubtreeWithParent,  // type ii: type i plus the parent of its root
  };

  Kind kind = Kind::kSubtree;
  // The sub-PJ as a standalone rooted query (restricted bindings).
  // Shared via copy; trees are tiny.
  JoinTree tree;
  std::vector<ProjectionBinding> bindings;
  LinkSpec link;
  // Anchor node within the *enclosing* query's tree: the node v of Def 4
  // (for kSubtreeWithParent this is still v, whose parent became the
  // sub-PJ root).
  TreeNodeId anchor = kNoNode;
  std::string cache_key;
};

// A (minimal) project-join query Q = (J, C, φ) for an example spreadsheet
// (Def 2/3). Always stored in canonical form: the tree is rooted at the
// canonical root with deterministically ordered children, so equal
// queries have equal signatures.
class PJQuery {
 public:
  PJQuery() = default;
  // Takes any rooted tree plus bindings (node ids relative to `tree`)
  // and canonicalizes both. `root_weights` (aligned with `tree`'s nodes,
  // typically relation row counts) biases the canonical root toward the
  // cheapest relation so expensive relations land in cacheable subtrees;
  // query *identity* (signature) is root-independent either way.
  PJQuery(JoinTree tree, std::vector<ProjectionBinding> bindings,
          const std::vector<int64_t>* root_weights = nullptr);

  const JoinTree& tree() const { return tree_; }
  const std::vector<ProjectionBinding>& bindings() const {
    return bindings_;
  }

  // Bindings attached to tree node `node`.
  std::vector<ProjectionBinding> BindingsOf(TreeNodeId node) const;

  // Distinct (node, column) projection pairs, i.e. C of Def 2.
  std::vector<std::pair<TreeNodeId, int32_t>> ProjectionColumns() const;

  // Canonical signature of (J, C, φ), independent of the rooting chosen
  // for evaluation; equal queries compare equal.
  const std::string& signature() const { return signature_; }

  // Checks Def 3(i): every degree-1 relation has a mapped column.
  bool IsMinimalShape() const;

  // Enumerates the sub-PJ queries of this query usable by the scheduler:
  // one type-i per node (the root's type-i is the query itself, keyed by
  // the root PK), one type-ii per non-root node whose parent exists.
  std::vector<SubPJQuery> EnumerateSubQueries() const;

  // Renders an executable SQL SELECT for the query; ES columns are
  // aliased A, B, C, ... in the projection (Fig 2 style).
  std::string ToSql(const Database& db) const;

  // Compact one-line description for logs and examples.
  std::string ToString(const Database& db) const;

  bool operator==(const PJQuery& other) const {
    return signature_ == other.signature_;
  }

  // Annotation strings (one per node) encoding φ, used for tree
  // canonicalization and sub-PJ cache keys.
  static std::vector<std::string> NodeAnnotations(
      const JoinTree& tree, const std::vector<ProjectionBinding>& bindings);

 private:
  JoinTree tree_;
  std::vector<ProjectionBinding> bindings_;
  std::string signature_;
};

// How node `v`'s output relation is keyed when joined from its parent in
// `tree` (the root is keyed by its primary key). Used by both sub-PJ
// enumeration and the cache-aware evaluator so cache keys agree.
LinkSpec LinkSpecFor(const JoinTree& tree, TreeNodeId v);

// Canonical cache key of the type-i sub-PJ query rooted at `v` of
// (tree, bindings) when keyed by `link`.
std::string SubtreeCacheKey(const JoinTree& tree,
                            const std::vector<ProjectionBinding>& bindings,
                            TreeNodeId v, const LinkSpec& link);

// Canonical cache key of the type-ii sub-PJ query: subtree at `v` plus
// v's parent, keyed by the parent's primary key. Requires v != root.
std::string SubtreeWithParentCacheKey(
    const JoinTree& tree, const std::vector<ProjectionBinding>& bindings,
    TreeNodeId v);

// Per-relation-generation stamp appended to sub-PJ cache keys so a
// cached table is reused only while every relation it was computed from
// is unchanged (live mutation invalidates per relation, not globally).
// `gens` is IndexSet::relation_gens(); an empty vector (offline builds)
// yields an empty suffix, keeping static cache keys byte-identical to
// the pre-live format. Generations of repeated relation instances are
// combined with a wrapping sum of per-node hashes (not XOR, which would
// cancel for self-joins). The first form covers every node of `tree`
// (use when the tree *is* the extracted sub-PJ tree); the second covers
// the subtree rooted at `v` within a larger candidate tree, plus v's
// parent when `include_parent` is set (type-ii keys).
std::string RelationGenSuffix(const JoinTree& tree,
                              const std::vector<uint64_t>& gens);
std::string RelationGenSuffix(const JoinTree& tree, TreeNodeId v,
                              bool include_parent,
                              const std::vector<uint64_t>& gens);

}  // namespace s4

#endif  // S4_QUERY_PJ_QUERY_H_
