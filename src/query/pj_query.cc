#include "query/pj_query.h"

#include <algorithm>

#include "common/string_util.h"

namespace s4 {

namespace {

// Spreadsheet column display name: A, B, ..., Z, ES26, ES27, ...
std::string EsColumnName(int32_t col) {
  if (col < 26) return std::string(1, static_cast<char>('A' + col));
  return StrFormat("ES%d", col);
}

}  // namespace

std::string LinkSpec::ToString() const {
  if (kind == Kind::kByPk) return "pk";
  return StrFormat("fk%d", edge);
}

std::vector<std::string> PJQuery::NodeAnnotations(
    const JoinTree& tree, const std::vector<ProjectionBinding>& bindings) {
  std::vector<std::vector<std::string>> per_node(tree.size());
  for (const ProjectionBinding& b : bindings) {
    per_node[b.node].push_back(StrFormat("m%d:%d", b.column, b.es_column));
  }
  std::vector<std::string> out(tree.size());
  for (int32_t i = 0; i < tree.size(); ++i) {
    std::sort(per_node[i].begin(), per_node[i].end());
    out[i] = Join(per_node[i], ",");
  }
  return out;
}

PJQuery::PJQuery(JoinTree tree, std::vector<ProjectionBinding> bindings,
                 const std::vector<int64_t>* root_weights) {
  std::vector<std::string> ann = NodeAnnotations(tree, bindings);
  std::vector<TreeNodeId> remap;
  tree_ = tree.Canonicalize(ann, &remap, root_weights);
  bindings_ = std::move(bindings);
  for (ProjectionBinding& b : bindings_) b.node = remap[b.node];
  std::sort(bindings_.begin(), bindings_.end(),
            [](const ProjectionBinding& a, const ProjectionBinding& b) {
              if (a.es_column != b.es_column) return a.es_column < b.es_column;
              if (a.node != b.node) return a.node < b.node;
              return a.column < b.column;
            });
  signature_ = tree_.UnrootedSignature(NodeAnnotations(tree_, bindings_));
}

std::vector<ProjectionBinding> PJQuery::BindingsOf(TreeNodeId node) const {
  std::vector<ProjectionBinding> out;
  for (const ProjectionBinding& b : bindings_) {
    if (b.node == node) out.push_back(b);
  }
  return out;
}

std::vector<std::pair<TreeNodeId, int32_t>> PJQuery::ProjectionColumns()
    const {
  std::vector<std::pair<TreeNodeId, int32_t>> out;
  for (const ProjectionBinding& b : bindings_) {
    out.emplace_back(b.node, b.column);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool PJQuery::IsMinimalShape() const {
  for (TreeNodeId v = 0; v < tree_.size(); ++v) {
    if (tree_.Degree(v) <= 1 && BindingsOf(v).empty()) return false;
  }
  return true;
}

namespace {

struct Extracted {
  JoinTree tree;
  std::vector<ProjectionBinding> bindings;
};

Extracted ExtractSubtree(const JoinTree& tree,
                         const std::vector<ProjectionBinding>& bindings,
                         TreeNodeId v) {
  Extracted out;
  std::vector<TreeNodeId> remap;
  out.tree = tree.RootedSubtree(v, &remap);
  for (const ProjectionBinding& b : bindings) {
    if (remap[b.node] != kNoNode) {
      out.bindings.push_back(
          ProjectionBinding{b.es_column, remap[b.node], b.column});
    }
  }
  return out;
}

Extracted ExtractWithParent(const JoinTree& tree,
                            const std::vector<ProjectionBinding>& bindings,
                            TreeNodeId v) {
  Extracted out;
  std::vector<TreeNodeId> remap;
  out.tree = tree.SubtreeWithParent(v, &remap);
  TreeNodeId parent = tree.node(v).parent;
  for (const ProjectionBinding& b : bindings) {
    TreeNodeId new_node = kNoNode;
    if (b.node == parent) {
      new_node = 0;  // the parent became the sub-PJ root
    } else if (remap[b.node] != kNoNode) {
      new_node = remap[b.node];
    }
    if (new_node != kNoNode) {
      out.bindings.push_back(
          ProjectionBinding{b.es_column, new_node, b.column});
    }
  }
  return out;
}

}  // namespace

LinkSpec LinkSpecFor(const JoinTree& tree, TreeNodeId v) {
  if (tree.node(v).parent == kNoNode) return LinkSpec{LinkSpec::Kind::kByPk, -1};
  const JoinTree::Node& n = tree.node(v);
  if (n.parent_holds_fk) return LinkSpec{LinkSpec::Kind::kByPk, -1};
  return LinkSpec{LinkSpec::Kind::kByFk, n.edge_to_parent};
}

namespace {

// FNV-1a over the (table, generation) pair of one relation instance.
uint64_t GenMix(TableId table, uint64_t gen) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint32_t>(table), 4);
  mix(gen, 8);
  return h;
}

uint64_t NodeGen(const JoinTree& tree, TreeNodeId v,
                 const std::vector<uint64_t>& gens) {
  const TableId table = tree.node(v).table;
  const uint64_t gen =
      static_cast<size_t>(table) < gens.size() ? gens[table] : 0;
  return GenMix(table, gen);
}

}  // namespace

std::string RelationGenSuffix(const JoinTree& tree,
                              const std::vector<uint64_t>& gens) {
  if (gens.empty()) return std::string();
  uint64_t sum = 0;
  for (TreeNodeId v = 0; v < tree.size(); ++v) sum += NodeGen(tree, v, gens);
  return StrFormat("|G%016llx", static_cast<unsigned long long>(sum));
}

std::string RelationGenSuffix(const JoinTree& tree, TreeNodeId v,
                              bool include_parent,
                              const std::vector<uint64_t>& gens) {
  if (gens.empty()) return std::string();
  uint64_t sum = 0;
  for (TreeNodeId d : tree.DescendantsOf(v)) sum += NodeGen(tree, d, gens);
  if (include_parent && tree.node(v).parent != kNoNode) {
    sum += NodeGen(tree, tree.node(v).parent, gens);
  }
  return StrFormat("|G%016llx", static_cast<unsigned long long>(sum));
}

std::string SubtreeCacheKey(const JoinTree& tree,
                            const std::vector<ProjectionBinding>& bindings,
                            TreeNodeId v, const LinkSpec& link) {
  Extracted ex = ExtractSubtree(tree, bindings, v);
  return ex.tree.RootedSignature(
             PJQuery::NodeAnnotations(ex.tree, ex.bindings)) +
         "|" + link.ToString();
}

std::string SubtreeWithParentCacheKey(
    const JoinTree& tree, const std::vector<ProjectionBinding>& bindings,
    TreeNodeId v) {
  // Keyed by the root (parent) PK, so the key format deliberately matches
  // a type-i subtree of the same shape: the materialized tables are
  // identical, letting type-i and type-ii occurrences share cache entries.
  Extracted ex = ExtractWithParent(tree, bindings, v);
  return ex.tree.RootedSignature(
             PJQuery::NodeAnnotations(ex.tree, ex.bindings)) +
         "|pk";
}

std::vector<SubPJQuery> PJQuery::EnumerateSubQueries() const {
  std::vector<SubPJQuery> out;
  for (TreeNodeId v = 0; v < tree_.size(); ++v) {
    // Type i: full rooted subtree at v.
    {
      SubPJQuery sub;
      sub.kind = SubPJQuery::Kind::kSubtree;
      sub.anchor = v;
      Extracted ex = ExtractSubtree(tree_, bindings_, v);
      sub.tree = std::move(ex.tree);
      sub.bindings = std::move(ex.bindings);
      sub.link = LinkSpecFor(tree_, v);
      sub.cache_key = SubtreeCacheKey(tree_, bindings_, v, sub.link);
      out.push_back(std::move(sub));
    }
    // Type ii: subtree at v plus v's parent (keyed by the parent's PK so
    // the parent's other children can still be joined on reuse).
    if (tree_.node(v).parent != kNoNode) {
      SubPJQuery sub;
      sub.kind = SubPJQuery::Kind::kSubtreeWithParent;
      sub.anchor = v;
      Extracted ex = ExtractWithParent(tree_, bindings_, v);
      sub.tree = std::move(ex.tree);
      sub.bindings = std::move(ex.bindings);
      sub.link = LinkSpec{LinkSpec::Kind::kByPk, -1};
      sub.cache_key = SubtreeWithParentCacheKey(tree_, bindings_, v);
      out.push_back(std::move(sub));
    }
  }
  return out;
}

std::string PJQuery::ToSql(const Database& db) const {
  std::vector<std::string> selects;
  for (const ProjectionBinding& b : bindings_) {
    const Table& t = db.table(tree_.node(b.node).table);
    selects.push_back(StrFormat("t%d.%s AS %s", b.node,
                                t.column(b.column).name.c_str(),
                                EsColumnName(b.es_column).c_str()));
  }
  std::string sql = "SELECT " + Join(selects, ", ");
  sql += "\nFROM " + db.table(tree_.node(0).table).name() + " t0";
  for (TreeNodeId v = 1; v < tree_.size(); ++v) {
    const JoinTree::Node& n = tree_.node(v);
    const Table& vt = db.table(n.table);
    const ForeignKeyDef& fk = db.foreign_keys()[n.edge_to_parent];
    const Table& pt = db.table(tree_.node(n.parent).table);
    std::string cond;
    if (n.parent_holds_fk) {
      // Parent references this node: parent.fkcol = v.pk.
      cond = StrFormat(
          "t%d.%s = t%d.%s", n.parent, fk.label.c_str(), v,
          vt.column(vt.primary_key_column()).name.c_str());
    } else {
      cond = StrFormat(
          "t%d.%s = t%d.%s", v, fk.label.c_str(), n.parent,
          pt.column(pt.primary_key_column()).name.c_str());
    }
    sql += StrFormat("\nJOIN %s t%d ON %s", vt.name().c_str(), v,
                     cond.c_str());
  }
  return sql;
}

std::string PJQuery::ToString(const Database& db) const {
  std::vector<std::string> tables;
  for (const JoinTree::Node& n : tree_.nodes()) {
    tables.push_back(db.table(n.table).name());
  }
  std::vector<std::string> maps;
  for (const ProjectionBinding& b : bindings_) {
    const Table& t = db.table(tree_.node(b.node).table);
    maps.push_back(EsColumnName(b.es_column) + "->" + t.name() + "." +
                   t.column(b.column).name);
  }
  return "PJ{" + Join(tables, "*") + "; " + Join(maps, ", ") + "}";
}

}  // namespace s4
