#ifndef S4_LIVE_LIVE_S4_H_
#define S4_LIVE_LIVE_S4_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/stop_token.h"
#include "live/mutation.h"
#include "s4/s4.h"

namespace s4 {

namespace obs {
class Trace;
}  // namespace obs

// A mutable S4 deployment: owns the master database and publishes an
// immutable S4System *epoch* after every mutation batch. Readers pin an
// epoch with current() — one shared_ptr load under a small mutex, no
// locks afterwards — and search it while writers prepare the next epoch
// behind write_mu_. Epoch construction is copy-on-publish: the new
// IndexSet shares every untouched structure with its predecessor
// (posting lists via delta overlays, per-relation key arrays and
// cell-length columns via shared_ptrs, the term dictionary via layered
// forks) and rebuilds only what the batch dirtied.
//
// Correctness bar (enforced by tests/live_test.cc): after any sequence
// of Apply calls, searching current() returns bit-identical results to
// an S4System built from scratch over a database in the same state —
// for every strategy, thread count, and shard slicing.
//
// Invalidation: each epoch carries per-relation mutation generations
// (IndexSet::relation_gens()); sub-PJ cache keys are stamped with the
// generations of exactly the relations they cover, so a cached table
// survives mutations to unrelated relations and can never be reused
// across a mutation of a covered one. No global cache flush happens on
// Apply.
//
// Concurrency contract: searches against a pinned epoch touch only the
// epoch's IndexSet (inverted indexes, (key,fk) snapshot, dictionary,
// cell lengths) plus immutable schema metadata (table/column names,
// foreign keys — there is no DDL), and are therefore race-free against
// concurrent Apply calls. APIs that read base-table *cell data* —
// S4System::Preview, row materialization — see the master's current
// state and must not run concurrently with writers.
class LiveS4System {
 public:
  // Takes ownership of `db` (must be finalized) and builds epoch 0.
  static StatusOr<std::unique_ptr<LiveS4System>> Create(
      Database db, IndexBuildOptions index_options = {});

  // The current epoch. The returned handle pins every structure the
  // epoch's searches touch; holding it keeps the epoch alive across any
  // number of later Apply calls.
  std::shared_ptr<const S4System> current() const {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    return epoch_;
  }

  // Applies `batch` in order and publishes one new epoch covering the
  // applied prefix. Writers serialize; readers are never blocked. A
  // per-op failure or a stop request ends the batch early — the applied
  // prefix is still published and reported in the (OK) result. Returns
  // a non-OK status only when nothing was applied and nothing changed.
  // `stop` is polled between operations; `trace`, when set, receives a
  // live/apply_mutation span per operation plus the publish span.
  StatusOr<MutationResult> Apply(const std::vector<Mutation>& batch,
                                 const StopToken* stop = nullptr,
                                 obs::Trace* trace = nullptr);

  // Number of the latest published epoch (0 = the initial build).
  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    return epoch_num_;
  }

  // Master database. Reflects every applied mutation immediately; only
  // safe to read when no Apply is in flight.
  const Database& db() const { return db_; }

 private:
  LiveS4System() = default;

  Database db_;
  IndexBuildOptions index_options_;

  std::mutex write_mu_;  // serializes Apply

  mutable std::mutex epoch_mu_;  // guards the two fields below
  std::shared_ptr<const S4System> epoch_;
  uint64_t epoch_num_ = 0;

  // Master per-relation generation counters (indexed by TableId); the
  // published epoch's IndexSet carries a copy.
  std::vector<uint64_t> relation_gens_;
};

}  // namespace s4

#endif  // S4_LIVE_LIVE_S4_H_
