#ifndef S4_LIVE_MUTATION_H_
#define S4_LIVE_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"
#include "storage/value.h"

namespace s4 {

// One write operation against a served database. Relations and columns
// are addressed by name (the stable external identity; ids are an
// implementation detail of the catalog). Rows are addressed by primary
// key — dense row ids are an index-internal notion that reshuffles on
// swap-delete and must never leak into the write API.
struct Mutation {
  enum class Op : uint8_t {
    kInsertRow = 0,   // append `values` (full row, schema order)
    kDeleteRow = 1,   // remove the row whose primary key is `pk`
    kUpdateCell = 2,  // set `column` of row `pk` to `value`
  };

  Op op = Op::kInsertRow;
  std::string table;

  // kInsertRow: one value per column, schema order (NULLs allowed
  // anywhere but the primary key).
  std::vector<Value> values;

  // kDeleteRow / kUpdateCell: row identity.
  int64_t pk = 0;

  // kUpdateCell only. The primary-key column is rejected — a row's pk
  // is its identity (delete + insert instead).
  std::string column;
  Value value;

  static Mutation Insert(std::string table, std::vector<Value> values) {
    Mutation m;
    m.op = Op::kInsertRow;
    m.table = std::move(table);
    m.values = std::move(values);
    return m;
  }
  static Mutation Delete(std::string table, int64_t pk) {
    Mutation m;
    m.op = Op::kDeleteRow;
    m.table = std::move(table);
    m.pk = pk;
    return m;
  }
  static Mutation Update(std::string table, int64_t pk, std::string column,
                         Value value) {
    Mutation m;
    m.op = Op::kUpdateCell;
    m.table = std::move(table);
    m.pk = pk;
    m.column = std::move(column);
    m.value = std::move(value);
    return m;
  }
};

// Outcome of applying one mutation batch. A batch is a *sequence*, not a
// transaction: operations apply in order, the first failure (or a
// cancellation) stops the batch, and the applied prefix is kept and
// published. `applied == batch size` with an empty `error` means full
// success.
struct MutationResult {
  int64_t applied = 0;       // operations applied (prefix length)
  uint64_t epoch = 0;        // epoch the applied prefix was published as
  bool interrupted = false;  // stopped by the StopToken
  std::string error;         // first per-op failure message, or empty
  // Tables the applied prefix touched, by id, ascending.
  std::vector<TableId> touched;
};

}  // namespace s4

#endif  // S4_LIVE_MUTATION_H_
