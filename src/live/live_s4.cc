#include "live/live_s4.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "index/index_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace s4 {

namespace {

// Registry handles bumped by Apply; cached once like the service does.
struct LiveMetrics {
  obs::Counter* mutations;
  obs::Counter* inserts;
  obs::Counter* deletes;
  obs::Counter* updates;
  obs::Counter* failed;
  obs::Counter* epochs;
  obs::Gauge* overlay_depth;
  obs::Histogram* apply_seconds;

  static LiveMetrics& Get() {
    static LiveMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new LiveMetrics{
          &reg.GetCounter("s4_live_mutations_total"),
          &reg.GetCounter("s4_live_inserts_total"),
          &reg.GetCounter("s4_live_deletes_total"),
          &reg.GetCounter("s4_live_updates_total"),
          &reg.GetCounter("s4_live_failed_total"),
          &reg.GetCounter("s4_live_epochs_total"),
          &reg.GetGauge("s4_live_overlay_depth"),
          &reg.GetHistogram("s4_live_apply_seconds"),
      };
    }();
    return *m;
  }
};

const char* OpName(Mutation::Op op) {
  switch (op) {
    case Mutation::Op::kInsertRow:
      return "insert_row";
    case Mutation::Op::kDeleteRow:
      return "delete_row";
    case Mutation::Op::kUpdateCell:
      return "update_cell";
  }
  return "unknown";
}

}  // namespace

// Prepares one epoch's IndexSet from its predecessor plus a mutation
// batch. All deltas accumulate in working maps keyed the same way the
// index overlays are; Publish() freezes them into a new IndexSet that
// shares every untouched structure with `prev`.
//
// The incremental edits reproduce exactly what IndexSet::Build computes
// from the mutated database: posting lists stay row-ascending (Build
// scans rows in order), column lists stay gid-ascending (Build visits
// columns in gid-assignment order), and cell-length columns stay
// row-aligned — so searches over the published epoch are bit-identical
// to a from-scratch rebuild.
class LiveIndexBuilder {
 public:
  LiveIndexBuilder(const IndexSet& prev, const Database& db)
      : prev_(prev),
        db_(db),
        dict_(TermDict::Fork(prev.dict_)),
        dirty_tables_(static_cast<size_t>(db.NumTables()), false),
        dirty_fks_(db.foreign_keys().size(), false),
        gen_touched_(static_cast<size_t>(db.NumTables()), false) {}

  // Each Apply* mutates the master table *and* records the index
  // deltas. On error the database is untouched and the working state is
  // unchanged (validation happens before any write).

  Status ApplyInsert(Table& t, const std::vector<Value>& values) {
    Status s = t.AppendRow(values);
    if (!s.ok()) return s;
    const int64_t row = t.NumRows() - 1;
    for (int32_t c : t.TextColumnIndexes()) {
      const int32_t gid = prev_.column_ids_.Gid(ColumnRef{t.id(), c});
      TfMap tf = CellTf(t.IsNull(row, c) ? "" : t.GetText(row, c));
      Lengths(gid).push_back(DistinctCount(tf));
      for (const auto& [term, count] : tf) {
        UpsertPosting(term, gid, static_cast<int32_t>(row), count);
      }
    }
    MarkRowSetChanged(t.id());
    return Status::OK();
  }

  Status ApplyDelete(Table& t, int64_t pk) {
    const int64_t row = t.FindByPk(pk);
    if (row < 0) {
      return Status::NotFound(
          StrFormat("%s: no row with pk %lld", t.name().c_str(),
                    static_cast<long long>(pk)));
    }
    const int64_t last = t.NumRows() - 1;
    for (int32_t c : t.TextColumnIndexes()) {
      const int32_t gid = prev_.column_ids_.Gid(ColumnRef{t.id(), c});
      TfMap old_tf = CellTf(t.IsNull(row, c) ? "" : t.GetText(row, c));
      for (const auto& [term, count] : old_tf) {
        (void)count;
        RemovePosting(term, gid, static_cast<int32_t>(row));
      }
      if (row != last) {
        // The last row moves into the freed slot: renumber its postings.
        TfMap moved_tf = CellTf(t.IsNull(last, c) ? "" : t.GetText(last, c));
        for (const auto& [term, count] : moved_tf) {
          RemovePosting(term, gid, static_cast<int32_t>(last));
          UpsertPosting(term, gid, static_cast<int32_t>(row), count);
        }
      }
      std::vector<uint16_t>& lengths = Lengths(gid);
      if (row != last) lengths[row] = lengths[last];
      lengths.pop_back();
    }
    Status s = t.RemoveRowSwapLast(row);
    if (!s.ok()) return s;  // unreachable: row validated above
    MarkRowSetChanged(t.id());
    return Status::OK();
  }

  Status ApplyUpdate(Table& t, int64_t pk, const std::string& column,
                     const Value& value) {
    const int32_t col = t.ColumnIndex(column);
    if (col < 0) {
      return Status::NotFound(t.name() + ": no column " + column);
    }
    const int64_t row = t.FindByPk(pk);
    if (row < 0) {
      return Status::NotFound(
          StrFormat("%s: no row with pk %lld", t.name().c_str(),
                    static_cast<long long>(pk)));
    }
    const bool is_text = t.column(col).type == ColumnType::kText;
    TfMap old_tf;
    if (is_text) old_tf = CellTf(t.IsNull(row, col) ? "" : t.GetText(row, col));
    Status s = t.SetCell(row, col, value);
    if (!s.ok()) return s;
    if (is_text) {
      const int32_t gid = prev_.column_ids_.Gid(ColumnRef{t.id(), col});
      TfMap new_tf = CellTf(value.is_null() ? "" : value.AsText());
      for (const auto& [term, count] : old_tf) {
        (void)count;
        if (new_tf.find(term) == new_tf.end()) {
          RemovePosting(term, gid, static_cast<int32_t>(row));
        }
      }
      for (const auto& [term, count] : new_tf) {
        UpsertPosting(term, gid, static_cast<int32_t>(row), count);
      }
      Lengths(gid)[row] = DistinctCount(new_tf);
      gen_touched_[t.id()] = true;
    } else {
      // INT64 update: only materialized FK arrays (and caches over
      // joins through them) can be affected.
      for (size_t i = 0; i < db_.foreign_keys().size(); ++i) {
        const ForeignKeyDef& fk = db_.foreign_keys()[i];
        if (fk.src_table == t.id() && fk.src_column == col) {
          dirty_fks_[i] = true;
          gen_touched_[t.id()] = true;
        }
      }
    }
    return Status::OK();
  }

  // Freezes the accumulated deltas into the next epoch's IndexSet.
  std::unique_ptr<IndexSet> Publish(uint64_t epoch,
                                    std::vector<uint64_t>* relation_gens,
                                    Status* status) {
    std::unique_ptr<IndexSet> set(
        new IndexSet(db_, IndexBuildOptions{prev_.tokenizer_.options()}));
    auto snapshot = prev_.snapshot_.Rebuilt(db_, dirty_tables_, dirty_fks_);
    if (!snapshot.ok()) {
      *status = snapshot.status();
      return nullptr;
    }
    set->snapshot_ = std::move(snapshot).value();
    set->dict_ = dict_.size() > prev_.dict_->size()
                     ? std::make_shared<const TermDict>(std::move(dict_))
                     : prev_.dict_;
    set->column_index_ =
        prev_.column_index_.WithChanges(std::move(col_changes_));
    set->row_index_ = prev_.row_index_.WithChanges(std::move(row_changes_));
    set->cell_lengths_ = prev_.cell_lengths_;
    for (auto& [gid, lengths] : lengths_changes_) {
      set->cell_lengths_[gid] =
          std::make_shared<const std::vector<uint16_t>>(std::move(lengths));
    }
    for (TableId t = 0; t < db_.NumTables(); ++t) {
      if (gen_touched_[t]) ++(*relation_gens)[t];
    }
    set->relation_gens_ = *relation_gens;
    set->epoch_ = epoch;
    *status = Status::OK();
    return set;
  }

  // Epoch 0 of a live system: the offline-built IndexSet, re-stamped
  // with all-zero per-relation generations so later epochs invalidate
  // relation-by-relation from the start.
  static void InitGens(IndexSet* set, int32_t num_tables, uint64_t epoch) {
    set->relation_gens_.assign(static_cast<size_t>(num_tables), 0);
    set->epoch_ = epoch;
  }

  // Tables whose generation the batch bumped, ascending.
  std::vector<TableId> Touched() const {
    std::vector<TableId> out;
    for (TableId t = 0; t < static_cast<TableId>(gen_touched_.size()); ++t) {
      if (gen_touched_[t]) out.push_back(t);
    }
    return out;
  }

 private:
  using TfMap = std::unordered_map<TermId, uint16_t>;

  // Distinct-term tf of one cell, interning new terms into the forked
  // dictionary (matches the Build loop's per-cell tf pass).
  TfMap CellTf(const std::string& text) {
    TfMap tf;
    if (text.empty()) return tf;
    for (const std::string& tok : prev_.tokenizer_.Tokenize(text)) {
      uint16_t& count = tf[dict_.Intern(tok)];
      if (count < UINT16_MAX) ++count;
    }
    return tf;
  }

  static uint16_t DistinctCount(const TfMap& tf) {
    return static_cast<uint16_t>(std::min<size_t>(tf.size(), UINT16_MAX));
  }

  // Working replacement list for (term, gid), copied from the previous
  // epoch on first touch. Lists stay row-ascending throughout.
  std::vector<Posting>& RowList(TermId term, int32_t gid) {
    const uint64_t key = RowInvertedIndex::Key(term, gid);
    auto it = row_changes_.find(key);
    if (it != row_changes_.end()) return it->second;
    const std::vector<Posting>* p = prev_.row_index_.Find(term, gid);
    return row_changes_
        .emplace(key, p == nullptr ? std::vector<Posting>() : *p)
        .first->second;
  }

  std::vector<int32_t>& ColList(TermId term) {
    auto it = col_changes_.find(term);
    if (it != col_changes_.end()) return it->second;
    const std::vector<int32_t>* p = prev_.column_index_.Find(term);
    return col_changes_
        .emplace(term, p == nullptr ? std::vector<int32_t>() : *p)
        .first->second;
  }

  std::vector<uint16_t>& Lengths(int32_t gid) {
    auto it = lengths_changes_.find(gid);
    if (it != lengths_changes_.end()) return it->second;
    const std::vector<uint16_t>* p = prev_.CellLengths(gid);
    return lengths_changes_
        .emplace(gid, p == nullptr ? std::vector<uint16_t>() : *p)
        .first->second;
  }

  void UpsertPosting(TermId term, int32_t gid, int32_t row, uint16_t tf) {
    std::vector<Posting>& list = RowList(term, gid);
    auto pos = std::lower_bound(
        list.begin(), list.end(), row,
        [](const Posting& p, int32_t r) { return p.row < r; });
    if (pos != list.end() && pos->row == row) {
      pos->tf = tf;
      return;
    }
    const bool was_empty = list.empty();
    list.insert(pos, Posting{row, tf});
    if (was_empty) {
      // Term (re)gains this column; keep the gid list ascending like
      // the builder's column-visit order produces.
      std::vector<int32_t>& cols = ColList(term);
      auto cpos = std::lower_bound(cols.begin(), cols.end(), gid);
      if (cpos == cols.end() || *cpos != gid) cols.insert(cpos, gid);
    }
  }

  void RemovePosting(TermId term, int32_t gid, int32_t row) {
    std::vector<Posting>& list = RowList(term, gid);
    auto pos = std::lower_bound(
        list.begin(), list.end(), row,
        [](const Posting& p, int32_t r) { return p.row < r; });
    if (pos == list.end() || pos->row != row) return;
    list.erase(pos);
    if (list.empty()) {
      // Empty working list = overlay tombstone; the term leaves this
      // column's gid list too.
      std::vector<int32_t>& cols = ColList(term);
      auto cpos = std::lower_bound(cols.begin(), cols.end(), gid);
      if (cpos != cols.end() && *cpos == gid) cols.erase(cpos);
    }
  }

  // Insert/delete change the table's row set: its pk arrays and every
  // FK array it sources go stale, and its generation bumps.
  void MarkRowSetChanged(TableId t) {
    dirty_tables_[t] = true;
    gen_touched_[t] = true;
    for (size_t i = 0; i < db_.foreign_keys().size(); ++i) {
      if (db_.foreign_keys()[i].src_table == t) dirty_fks_[i] = true;
    }
  }

  const IndexSet& prev_;
  const Database& db_;
  TermDict dict_;
  RowInvertedIndex::Map row_changes_;
  ColumnInvertedIndex::Map col_changes_;
  std::unordered_map<int32_t, std::vector<uint16_t>> lengths_changes_;
  std::vector<bool> dirty_tables_;
  std::vector<bool> dirty_fks_;
  std::vector<bool> gen_touched_;
};

StatusOr<std::unique_ptr<LiveS4System>> LiveS4System::Create(
    Database db, IndexBuildOptions index_options) {
  if (!db.finalized()) {
    return Status::FailedPrecondition("database must be finalized");
  }
  std::unique_ptr<LiveS4System> live(new LiveS4System());
  live->db_ = std::move(db);
  live->index_options_ = index_options;
  auto index = IndexSet::Build(live->db_, index_options);
  if (!index.ok()) return index.status();
  LiveIndexBuilder::InitGens(index->get(), live->db_.NumTables(),
                             /*epoch=*/0);
  live->relation_gens_.assign(static_cast<size_t>(live->db_.NumTables()), 0);
  live->epoch_ = S4System::FromIndex(std::move(index).value());
  return live;
}

StatusOr<MutationResult> LiveS4System::Apply(
    const std::vector<Mutation>& batch, const StopToken* stop,
    obs::Trace* trace) {
  LiveMetrics& metrics = LiveMetrics::Get();
  const auto start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> write_lock(write_mu_);

  MutationResult result;
  // Pin the epoch the deltas layer over for the whole batch; readers may
  // retire it from `epoch_` at any time.
  std::shared_ptr<const S4System> prev = current();
  LiveIndexBuilder builder(prev->index(), db_);
  for (const Mutation& m : batch) {
    if (stop != nullptr && stop->ShouldStop()) {
      result.interrupted = true;
      break;
    }
    obs::SpanTimer span(trace, "live", "apply_mutation");
    if (span.enabled()) {
      span.AddArg("op", OpName(m.op));
      span.AddArg("table", m.table);
    }
    Table* t = db_.FindTable(m.table);
    Status s = t == nullptr ? Status::NotFound("no table " + m.table)
                            : Status::OK();
    if (s.ok()) {
      switch (m.op) {
        case Mutation::Op::kInsertRow:
          s = builder.ApplyInsert(*t, m.values);
          if (s.ok()) metrics.inserts->Increment();
          break;
        case Mutation::Op::kDeleteRow:
          s = builder.ApplyDelete(*t, m.pk);
          if (s.ok()) metrics.deletes->Increment();
          break;
        case Mutation::Op::kUpdateCell:
          s = builder.ApplyUpdate(*t, m.pk, m.column, m.value);
          if (s.ok()) metrics.updates->Increment();
          break;
      }
    }
    if (!s.ok()) {
      metrics.failed->Increment();
      result.error = s.ToString();
      break;
    }
    ++result.applied;
    metrics.mutations->Increment();
  }

  if (result.applied == 0) {
    // Nothing changed; keep the current epoch.
    metrics.apply_seconds->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
    if (result.interrupted) {
      return Status::Cancelled("mutation batch cancelled before any write");
    }
    if (!result.error.empty()) {
      return Status::InvalidArgument(result.error);
    }
    result.epoch = epoch();
    return result;  // empty batch
  }

  // Publish the applied prefix as the next epoch.
  obs::SpanTimer publish_span(trace, "live", "publish_epoch");
  Status publish_status;
  uint64_t next_epoch;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    next_epoch = epoch_num_ + 1;
  }
  std::unique_ptr<IndexSet> set =
      builder.Publish(next_epoch, &relation_gens_, &publish_status);
  if (set == nullptr) {
    // The master database has the prefix applied but the epoch could
    // not be assembled (e.g. a relation outgrew the snapshot's row-id
    // space). Surface loudly: the system needs a rebuild.
    return publish_status;
  }
  result.touched = builder.Touched();
  std::shared_ptr<const S4System> next =
      S4System::FromIndex(std::move(set));
  // Compaction-pressure signal: how many posting lists the published
  // epoch carries in delta overlays outside the frozen bases. Resets
  // toward 0 whenever WithChanges compacts (overlay > max(64, base/4)).
  metrics.overlay_depth->Set(static_cast<int64_t>(
      std::max(next->index().column_index().OverlaySize(),
               next->index().row_index().OverlaySize())));
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch_ = std::move(next);
    epoch_num_ = next_epoch;
  }
  result.epoch = next_epoch;
  metrics.epochs->Increment();
  metrics.apply_seconds->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

}  // namespace s4
