#ifndef S4_INDEX_INDEX_SET_H_
#define S4_INDEX_INDEX_SET_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/column_ids.h"
#include "index/inverted_index.h"
#include "index/kfk_snapshot.h"
#include "storage/database.h"
#include "text/term_dict.h"
#include "text/tokenizer.h"

namespace s4 {

struct IndexBuildOptions {
  TokenizerOptions tokenizer;
};

// Size report matching Table 1 of the paper.
struct IndexStats {
  size_t inverted_index_bytes = 0;  // column-level + row-level
  size_t kfk_snapshot_bytes = 0;
  int64_t num_tokens = 0;           // distinct terms in the dictionary
  int64_t num_postings = 0;         // total row-level postings
};

// All offline-built structures of Sec 3.1, owned together: term
// dictionary, column-level and row-level inverted indexes, and the
// (key, fk) snapshot. Everything the online phase touches lives here; the
// base Database is only needed again to display result rows.
//
// Under live mutation (src/live/), each published epoch is its own
// IndexSet whose members share unchanged state with the previous epoch
// through the structures' internal shared_ptrs; `relation_gens_` counts
// mutations per relation so cross-query cache keys can be stamped with
// exactly the generations of the relations a sub-PJ touches. Offline
// builds leave `relation_gens_` empty (an empty gen suffix), keeping
// static cache keys byte-identical to the pre-live layout.
class IndexSet {
 public:
  // Tokenizes every text column of `db` and builds all indexes. `db`
  // must be finalized and outlive the IndexSet.
  static StatusOr<std::unique_ptr<IndexSet>> Build(
      const Database& db, IndexBuildOptions options = {});

  const Database& db() const { return *db_; }
  const Tokenizer& tokenizer() const { return tokenizer_; }
  const TermDict& dict() const { return *dict_; }
  const ColumnIds& column_ids() const { return column_ids_; }
  const ColumnInvertedIndex& column_index() const { return column_index_; }
  const RowInvertedIndex& row_index() const { return row_index_; }
  const KfkSnapshot& snapshot() const { return snapshot_; }

  // Distinct-token count per cell of text column `gid` (row-aligned), or
  // nullptr for non-text columns. Supports the exact-match bonus of the
  // Appendix A.2 cell-similarity extension.
  const std::vector<uint16_t>* CellLengths(int32_t gid) const {
    auto it = cell_lengths_.find(gid);
    return it == cell_lengths_.end() ? nullptr : it->second.get();
  }

  // Per-relation mutation generations, indexed by TableId. Empty for
  // offline builds (no mutation has ever touched the database); under
  // live mutation each entry counts the epochs that dirtied the table.
  const std::vector<uint64_t>& relation_gens() const {
    return relation_gens_;
  }
  // Publication number of this epoch; 0 for offline builds.
  uint64_t epoch() const { return epoch_; }

  IndexStats stats() const;

 private:
  friend class LiveIndexBuilder;  // assembles mutation epochs (src/live/)

  IndexSet(const Database& db, IndexBuildOptions options)
      : db_(&db), tokenizer_(options.tokenizer), column_ids_(db) {}

  const Database* db_;
  Tokenizer tokenizer_;
  std::shared_ptr<const TermDict> dict_;
  ColumnIds column_ids_;
  ColumnInvertedIndex column_index_;
  RowInvertedIndex row_index_;
  KfkSnapshot snapshot_;
  std::unordered_map<int32_t, std::shared_ptr<const std::vector<uint16_t>>>
      cell_lengths_;
  std::vector<uint64_t> relation_gens_;
  uint64_t epoch_ = 0;
};

}  // namespace s4

#endif  // S4_INDEX_INDEX_SET_H_
