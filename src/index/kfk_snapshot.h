#ifndef S4_INDEX_KFK_SNAPSHOT_H_
#define S4_INDEX_KFK_SNAPSHOT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/flat_table.h"
#include "common/status.h"
#include "storage/database.h"

namespace s4 {

// In-memory (key, foreign key) snapshot of the database (Sec 3.1): for
// every relation, its primary-key column and all foreign-key columns are
// materialized as flat arrays so PJ queries execute without touching the
// (conceptually on-disk) base tables. Execution plans scan these arrays
// and perform hash lookups (Appendix B.1).
class KfkSnapshot {
 public:
  // Builds the snapshot; `db` must be finalized and must outlive it.
  static StatusOr<KfkSnapshot> Build(const Database& db);

  int64_t NumRows(TableId t) const {
    return static_cast<int64_t>(pk_[t].size());
  }
  // Primary keys of table `t`, aligned with dense row ids.
  const std::vector<int64_t>& Pk(TableId t) const { return pk_[t]; }

  // FK values of foreign key `fk_index` (index into db.foreign_keys(),
  // equal to the SchemaEdgeId), aligned with rows of the source table.
  const std::vector<int64_t>& Fk(int32_t fk_index) const {
    return fk_[fk_index];
  }
  bool FkValid(int32_t fk_index, int64_t row) const {
    return fk_valid_[fk_index][row];
  }

  // Dense row id of table `t`'s row whose primary key is `pk`, or -1.
  // A flat open-addressing probe; this is the evaluator's hot pk lookup
  // (replaces Table::FindByPk's unordered_map on that path).
  int64_t RowOfPk(TableId t, int64_t pk) const {
    const uint32_t row = pk_row_[t].Find(pk);
    return row == FlatMap64::kNotFound ? -1 : static_cast<int64_t>(row);
  }

  // Batched RowOfPk over `pks[0..n)` into `rows[0..n)` (-1 for absent
  // keys): the probes run through FlatMap64::FindBatch, so the pk-index
  // cache misses overlap instead of serializing one per key.
  void RowOfPkBatch(TableId t, const int64_t* pks, size_t n,
                    int64_t* rows) const {
    uint32_t ids[FlatMap64::kBatchWidth];
    for (size_t lo = 0; lo < n; lo += FlatMap64::kBatchWidth) {
      const size_t m = std::min(n - lo, FlatMap64::kBatchWidth);
      pk_row_[t].FindBatch(pks + lo, m, ids);
      for (size_t j = 0; j < m; ++j) {
        rows[lo + j] = ids[j] == FlatMap64::kNotFound
                           ? -1
                           : static_cast<int64_t>(ids[j]);
      }
    }
  }

  // Bytes of all materialized key arrays plus the flat pk->row indexes
  // (Table 1's "(key,fk) snap." column).
  size_t ByteSize() const;

  // Creates an empty snapshot; prefer Build().
  KfkSnapshot() = default;

 private:
  std::vector<std::vector<int64_t>> pk_;        // per table
  std::vector<FlatMap64> pk_row_;               // per table: pk -> row id
  std::vector<std::vector<int64_t>> fk_;        // per foreign key
  std::vector<std::vector<bool>> fk_valid_;     // per foreign key
};

}  // namespace s4

#endif  // S4_INDEX_KFK_SNAPSHOT_H_
