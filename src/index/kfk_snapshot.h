#ifndef S4_INDEX_KFK_SNAPSHOT_H_
#define S4_INDEX_KFK_SNAPSHOT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/flat_table.h"
#include "common/status.h"
#include "storage/database.h"

namespace s4 {

// In-memory (key, foreign key) snapshot of the database (Sec 3.1): for
// every relation, its primary-key column and all foreign-key columns are
// materialized as flat arrays so PJ queries execute without touching the
// (conceptually on-disk) base tables. Execution plans scan these arrays
// and perform hash lookups (Appendix B.1).
//
// Each relation's arrays sit behind a shared_ptr so mutation epochs are
// cheap: Rebuilt() copies the per-relation pointer vector and rebuilds
// only the dirty relations' arrays from the (already mutated) database —
// bit-identical to a from-scratch Build by construction, with untouched
// relations shared across epochs.
class KfkSnapshot {
 public:
  // Per-table primary-key arrays plus the flat pk -> dense-row index.
  struct TableKeys {
    std::vector<int64_t> pk;
    FlatMap64 pk_row;
  };
  // Reverse of one FK column: for a referenced primary-key value, the
  // dense rows of the FK's source table that point at it (NULL fks
  // excluded). Row groups are stored contiguously, ascending within a
  // group, so a lookup is one hash probe plus a contiguous span.
  struct ReverseFkIndex {
    std::unordered_map<int64_t, std::pair<uint32_t, uint32_t>> ranges;
    std::vector<uint32_t> rows;

    // Referring rows of `value`, ascending; empty span when nothing
    // points at it.
    std::pair<const uint32_t*, const uint32_t*> RowsFor(int64_t value) const {
      auto it = ranges.find(value);
      if (it == ranges.end()) {
        return {rows.data(), rows.data()};
      }
      return {rows.data() + it->second.first, rows.data() + it->second.second};
    }
  };

  // Per-foreign-key value array plus its NULL bitmap.
  struct FkKeys {
    std::vector<int64_t> fk;
    std::vector<bool> valid;
    // Reverse index, built lazily on first ReverseFkOf call (the
    // forward-only evaluator never pays for it) and shared across
    // epochs for unchanged relations along with the rest of the FkKeys.
    mutable std::once_flag reverse_once;
    mutable ReverseFkIndex reverse;
  };

  // Builds the snapshot; `db` must be finalized and must outlive it.
  static StatusOr<KfkSnapshot> Build(const Database& db);

  // A copy sharing every relation's arrays except those flagged dirty,
  // which are rebuilt from `db` (whose mutated state must match what
  // the caller wants this epoch to see). `dirty_tables` is indexed by
  // TableId, `dirty_fks` by foreign-key index; short vectors read as
  // clean.
  StatusOr<KfkSnapshot> Rebuilt(const Database& db,
                                const std::vector<bool>& dirty_tables,
                                const std::vector<bool>& dirty_fks) const;

  int64_t NumRows(TableId t) const {
    return static_cast<int64_t>(tables_[t]->pk.size());
  }
  // Primary keys of table `t`, aligned with dense row ids.
  const std::vector<int64_t>& Pk(TableId t) const { return tables_[t]->pk; }

  // FK values of foreign key `fk_index` (index into db.foreign_keys(),
  // equal to the SchemaEdgeId), aligned with rows of the source table.
  const std::vector<int64_t>& Fk(int32_t fk_index) const {
    return fks_[fk_index]->fk;
  }
  bool FkValid(int32_t fk_index, int64_t row) const {
    return fks_[fk_index]->valid[row];
  }
  // The whole validity bitmap of `fk_index` — hoist this outside
  // per-row loops (the evaluator's Stage-II loops do) so the per-row
  // cost is one bitmap read, not a shared_ptr chase per call.
  const std::vector<bool>& FkValidColumn(int32_t fk_index) const {
    return fks_[fk_index]->valid;
  }

  // Reverse index of foreign key `fk_index` (referenced pk value -> the
  // source-table rows holding it). Built lazily under a once-flag —
  // thread-safe against concurrent searches — and only by the callers
  // that walk joins child-ward (the approximate sampler); its bytes are
  // therefore not part of ByteSize()'s Table-1 accounting.
  const ReverseFkIndex& ReverseFkOf(int32_t fk_index) const;

  // Dense row id of table `t`'s row whose primary key is `pk`, or -1.
  // A flat open-addressing probe; this is the evaluator's hot pk lookup
  // (replaces Table::FindByPk's unordered_map on that path).
  int64_t RowOfPk(TableId t, int64_t pk) const {
    const uint32_t row = tables_[t]->pk_row.Find(pk);
    return row == FlatMap64::kNotFound ? -1 : static_cast<int64_t>(row);
  }

  // Batched RowOfPk over `pks[0..n)` into `rows[0..n)` (-1 for absent
  // keys): the probes run through FlatMap64::FindBatch, so the pk-index
  // cache misses overlap instead of serializing one per key.
  void RowOfPkBatch(TableId t, const int64_t* pks, size_t n,
                    int64_t* rows) const {
    const FlatMap64& pk_row = tables_[t]->pk_row;
    uint32_t ids[FlatMap64::kBatchWidth];
    for (size_t lo = 0; lo < n; lo += FlatMap64::kBatchWidth) {
      const size_t m = std::min(n - lo, FlatMap64::kBatchWidth);
      pk_row.FindBatch(pks + lo, m, ids);
      for (size_t j = 0; j < m; ++j) {
        rows[lo + j] = ids[j] == FlatMap64::kNotFound
                           ? -1
                           : static_cast<int64_t>(ids[j]);
      }
    }
  }

  // Bytes of all materialized key arrays plus the flat pk->row indexes
  // (Table 1's "(key,fk) snap." column).
  size_t ByteSize() const;

  // Creates an empty snapshot; prefer Build().
  KfkSnapshot() = default;

 private:
  static StatusOr<std::shared_ptr<const TableKeys>> BuildTable(
      const Table& table);
  static std::shared_ptr<const FkKeys> BuildFk(const Database& db,
                                               const ForeignKeyDef& fk);

  std::vector<std::shared_ptr<const TableKeys>> tables_;  // per table
  std::vector<std::shared_ptr<const FkKeys>> fks_;        // per foreign key
};

}  // namespace s4

#endif  // S4_INDEX_KFK_SNAPSHOT_H_
