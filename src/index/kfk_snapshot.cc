#include "index/kfk_snapshot.h"

namespace s4 {

StatusOr<std::shared_ptr<const KfkSnapshot::TableKeys>>
KfkSnapshot::BuildTable(const Table& table) {
  auto keys = std::make_shared<TableKeys>();
  keys->pk = table.IntColumn(table.primary_key_column());
  // Flat pk -> dense-row index; row ids are stored as uint32, which
  // bounds an in-memory relation at ~4.29e9 rows.
  const std::vector<int64_t>& pks = keys->pk;
  if (pks.size() >= static_cast<size_t>(FlatMap64::kNotFound)) {
    return Status::InvalidArgument(
        "table too large for the in-memory kfk snapshot");
  }
  keys->pk_row.Reserve(pks.size());
  bool inserted = false;
  for (size_t r = 0; r < pks.size(); ++r) {
    keys->pk_row.FindOrInsert(pks[r], static_cast<uint32_t>(r), &inserted);
  }
  return std::shared_ptr<const TableKeys>(std::move(keys));
}

std::shared_ptr<const KfkSnapshot::FkKeys> KfkSnapshot::BuildFk(
    const Database& db, const ForeignKeyDef& fk) {
  auto keys = std::make_shared<FkKeys>();
  const Table& src = db.table(fk.src_table);
  keys->fk = src.IntColumn(fk.src_column);
  keys->valid.resize(static_cast<size_t>(src.NumRows()));
  for (int64_t r = 0; r < src.NumRows(); ++r) {
    keys->valid[r] = !src.IsNull(r, fk.src_column);
  }
  return keys;
}

StatusOr<KfkSnapshot> KfkSnapshot::Build(const Database& db) {
  if (!db.finalized()) {
    return Status::FailedPrecondition("database must be finalized");
  }
  KfkSnapshot snap;
  snap.tables_.reserve(db.NumTables());
  for (TableId t = 0; t < db.NumTables(); ++t) {
    auto keys = BuildTable(db.table(t));
    if (!keys.ok()) return keys.status();
    snap.tables_.push_back(std::move(keys).value());
  }
  snap.fks_.reserve(db.foreign_keys().size());
  for (const ForeignKeyDef& fk : db.foreign_keys()) {
    snap.fks_.push_back(BuildFk(db, fk));
  }
  return snap;
}

StatusOr<KfkSnapshot> KfkSnapshot::Rebuilt(
    const Database& db, const std::vector<bool>& dirty_tables,
    const std::vector<bool>& dirty_fks) const {
  KfkSnapshot snap;
  snap.tables_.reserve(tables_.size());
  for (TableId t = 0; t < static_cast<TableId>(tables_.size()); ++t) {
    const bool dirty =
        static_cast<size_t>(t) < dirty_tables.size() && dirty_tables[t];
    if (!dirty) {
      snap.tables_.push_back(tables_[t]);
      continue;
    }
    auto keys = BuildTable(db.table(t));
    if (!keys.ok()) return keys.status();
    snap.tables_.push_back(std::move(keys).value());
  }
  snap.fks_.reserve(fks_.size());
  for (size_t i = 0; i < fks_.size(); ++i) {
    const bool dirty = i < dirty_fks.size() && dirty_fks[i];
    snap.fks_.push_back(dirty ? BuildFk(db, db.foreign_keys()[i])
                              : fks_[i]);
  }
  return snap;
}

const KfkSnapshot::ReverseFkIndex& KfkSnapshot::ReverseFkOf(
    int32_t fk_index) const {
  const FkKeys& keys = *fks_[fk_index];
  std::call_once(keys.reverse_once, [&keys] {
    std::vector<std::pair<int64_t, uint32_t>> pairs;
    pairs.reserve(keys.fk.size());
    for (size_t r = 0; r < keys.fk.size(); ++r) {
      if (keys.valid[r]) {
        pairs.emplace_back(keys.fk[r], static_cast<uint32_t>(r));
      }
    }
    std::sort(pairs.begin(), pairs.end());
    ReverseFkIndex& rev = keys.reverse;
    rev.rows.reserve(pairs.size());
    for (size_t i = 0; i < pairs.size();) {
      const int64_t value = pairs[i].first;
      const uint32_t start = static_cast<uint32_t>(rev.rows.size());
      for (; i < pairs.size() && pairs[i].first == value; ++i) {
        rev.rows.push_back(pairs[i].second);
      }
      rev.ranges.emplace(value,
                         std::make_pair(start, static_cast<uint32_t>(
                                                   rev.rows.size())));
    }
  });
  return keys.reverse;
}

size_t KfkSnapshot::ByteSize() const {
  size_t bytes = 0;
  for (const auto& t : tables_) {
    bytes += t->pk.capacity() * sizeof(int64_t) + t->pk_row.ByteSize();
  }
  for (const auto& f : fks_) {
    bytes += f->fk.capacity() * sizeof(int64_t) + f->valid.capacity() / 8;
  }
  return bytes;
}

}  // namespace s4
