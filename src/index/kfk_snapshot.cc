#include "index/kfk_snapshot.h"

namespace s4 {

StatusOr<KfkSnapshot> KfkSnapshot::Build(const Database& db) {
  if (!db.finalized()) {
    return Status::FailedPrecondition("database must be finalized");
  }
  KfkSnapshot snap;
  snap.pk_.resize(db.NumTables());
  snap.pk_row_.resize(db.NumTables());
  for (TableId t = 0; t < db.NumTables(); ++t) {
    const Table& table = db.table(t);
    snap.pk_[t] = table.IntColumn(table.primary_key_column());
    // Flat pk -> dense-row index; row ids are stored as uint32, which
    // bounds an in-memory relation at ~4.29e9 rows.
    const std::vector<int64_t>& pks = snap.pk_[t];
    if (pks.size() >= static_cast<size_t>(FlatMap64::kNotFound)) {
      return Status::InvalidArgument(
          "table too large for the in-memory kfk snapshot");
    }
    FlatMap64& index = snap.pk_row_[t];
    index.Reserve(pks.size());
    bool inserted = false;
    for (size_t r = 0; r < pks.size(); ++r) {
      index.FindOrInsert(pks[r], static_cast<uint32_t>(r), &inserted);
    }
  }
  snap.fk_.resize(db.foreign_keys().size());
  snap.fk_valid_.resize(db.foreign_keys().size());
  for (size_t i = 0; i < db.foreign_keys().size(); ++i) {
    const ForeignKeyDef& fk = db.foreign_keys()[i];
    const Table& src = db.table(fk.src_table);
    snap.fk_[i] = src.IntColumn(fk.src_column);
    std::vector<bool> valid(static_cast<size_t>(src.NumRows()));
    for (int64_t r = 0; r < src.NumRows(); ++r) {
      valid[r] = !src.IsNull(r, fk.src_column);
    }
    snap.fk_valid_[i] = std::move(valid);
  }
  return snap;
}

size_t KfkSnapshot::ByteSize() const {
  size_t bytes = 0;
  for (const auto& v : pk_) bytes += v.capacity() * sizeof(int64_t);
  for (const auto& m : pk_row_) bytes += m.ByteSize();
  for (const auto& v : fk_) bytes += v.capacity() * sizeof(int64_t);
  for (const auto& v : fk_valid_) bytes += v.capacity() / 8;
  return bytes;
}

}  // namespace s4
