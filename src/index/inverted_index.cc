#include "index/inverted_index.h"

namespace s4 {

void ColumnInvertedIndex::Add(TermId term, int32_t gid) {
  std::vector<int32_t>& cols = postings_[term];
  if (cols.empty() || cols.back() != gid) cols.push_back(gid);
}

const std::vector<int32_t>* ColumnInvertedIndex::Find(TermId term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? nullptr : &it->second;
}

int64_t ColumnInvertedIndex::NumEntries() const {
  int64_t n = 0;
  for (const auto& [term, cols] : postings_) {
    (void)term;
    n += static_cast<int64_t>(cols.size());
  }
  return n;
}

size_t ColumnInvertedIndex::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [term, cols] : postings_) {
    (void)term;
    bytes += sizeof(TermId) + sizeof(std::vector<int32_t>) + 32 +
             cols.capacity() * sizeof(int32_t);
  }
  return bytes;
}

void RowInvertedIndex::Add(TermId term, int32_t gid, int32_t row,
                           uint16_t tf) {
  postings_[Key(term, gid)].push_back(Posting{row, tf});
  ++total_postings_;
}

const std::vector<Posting>* RowInvertedIndex::Find(TermId term,
                                                   int32_t gid) const {
  auto it = postings_.find(Key(term, gid));
  return it == postings_.end() ? nullptr : &it->second;
}

size_t RowInvertedIndex::ByteSize() const {
  size_t bytes = 0;
  for (const auto& [key, plist] : postings_) {
    (void)key;
    bytes += sizeof(uint64_t) + sizeof(std::vector<Posting>) + 32 +
             plist.capacity() * sizeof(Posting);
  }
  return bytes;
}

}  // namespace s4
