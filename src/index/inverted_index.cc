#include "index/inverted_index.h"

#include <algorithm>
#include <utility>

namespace s4 {

namespace {

// Overlay compaction threshold: past this many overlay entries the
// delta is folded into a fresh base so probe cost stays one null test
// plus at most one extra hash lookup.
size_t CompactionThreshold(size_t base_size) {
  return std::max<size_t>(64, base_size / 4);
}

}  // namespace

void ColumnInvertedIndex::Add(TermId term, int32_t gid) {
  std::vector<int32_t>& cols = (*owned_)[term];
  if (cols.empty() || cols.back() != gid) cols.push_back(gid);
}

ColumnInvertedIndex ColumnInvertedIndex::WithChanges(Map changes) const {
  Map merged = overlay_ != nullptr ? *overlay_ : Map();
  for (auto& [term, cols] : changes) {
    merged.insert_or_assign(term, std::move(cols));
  }
  ColumnInvertedIndex out;
  if (merged.size() > CompactionThreshold(base_->size())) {
    auto compacted = std::make_shared<Map>(*base_);
    for (auto& [term, cols] : merged) {
      if (cols.empty()) {
        compacted->erase(term);
      } else {
        compacted->insert_or_assign(term, std::move(cols));
      }
    }
    out.owned_ = nullptr;
    out.base_ = std::move(compacted);
  } else {
    out.owned_ = nullptr;
    out.base_ = base_;
    out.overlay_ = std::make_shared<const Map>(std::move(merged));
  }
  return out;
}

int64_t ColumnInvertedIndex::NumEntries() const {
  int64_t n = 0;
  for (const auto& [term, cols] : *base_) {
    if (overlay_ != nullptr && overlay_->count(term) > 0) continue;
    n += static_cast<int64_t>(cols.size());
  }
  if (overlay_ != nullptr) {
    for (const auto& [term, cols] : *overlay_) {
      (void)term;
      n += static_cast<int64_t>(cols.size());
    }
  }
  return n;
}

size_t ColumnInvertedIndex::ByteSize() const {
  size_t bytes = 0;
  const auto entry_bytes = [](const std::vector<int32_t>& cols) {
    return sizeof(TermId) + sizeof(std::vector<int32_t>) + 32 +
           cols.capacity() * sizeof(int32_t);
  };
  for (const auto& [term, cols] : *base_) {
    (void)term;
    bytes += entry_bytes(cols);
  }
  if (overlay_ != nullptr) {
    for (const auto& [term, cols] : *overlay_) {
      (void)term;
      bytes += entry_bytes(cols);
    }
  }
  return bytes;
}

void RowInvertedIndex::Add(TermId term, int32_t gid, int32_t row,
                           uint16_t tf) {
  (*owned_)[Key(term, gid)].push_back(Posting{row, tf});
  ++total_postings_;
}

RowInvertedIndex RowInvertedIndex::WithChanges(Map changes) const {
  // Size deltas are against this index's current view (overlay first,
  // then base), so TotalPostings stays exact across stacked epochs.
  int64_t delta = 0;
  for (const auto& [key, plist] : changes) {
    int64_t before = 0;
    if (overlay_ != nullptr) {
      auto it = overlay_->find(key);
      if (it != overlay_->end()) {
        before = static_cast<int64_t>(it->second.size());
      } else {
        auto bit = base_->find(key);
        if (bit != base_->end()) {
          before = static_cast<int64_t>(bit->second.size());
        }
      }
    } else {
      auto bit = base_->find(key);
      if (bit != base_->end()) before = static_cast<int64_t>(bit->second.size());
    }
    delta += static_cast<int64_t>(plist.size()) - before;
  }

  Map merged = overlay_ != nullptr ? *overlay_ : Map();
  for (auto& [key, plist] : changes) {
    merged.insert_or_assign(key, std::move(plist));
  }
  RowInvertedIndex out;
  out.total_postings_ = total_postings_ + delta;
  if (merged.size() > CompactionThreshold(base_->size())) {
    auto compacted = std::make_shared<Map>(*base_);
    for (auto& [key, plist] : merged) {
      if (plist.empty()) {
        compacted->erase(key);
      } else {
        compacted->insert_or_assign(key, std::move(plist));
      }
    }
    out.owned_ = nullptr;
    out.base_ = std::move(compacted);
  } else {
    out.owned_ = nullptr;
    out.base_ = base_;
    out.overlay_ = std::make_shared<const Map>(std::move(merged));
  }
  return out;
}

size_t RowInvertedIndex::ByteSize() const {
  size_t bytes = 0;
  const auto entry_bytes = [](const std::vector<Posting>& plist) {
    return sizeof(uint64_t) + sizeof(std::vector<Posting>) + 32 +
           plist.capacity() * sizeof(Posting);
  };
  for (const auto& [key, plist] : *base_) {
    (void)key;
    bytes += entry_bytes(plist);
  }
  if (overlay_ != nullptr) {
    for (const auto& [key, plist] : *overlay_) {
      (void)key;
      bytes += entry_bytes(plist);
    }
  }
  return bytes;
}

}  // namespace s4
