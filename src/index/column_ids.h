#ifndef S4_INDEX_COLUMN_IDS_H_
#define S4_INDEX_COLUMN_IDS_H_

#include <cstdint>
#include <vector>

#include "storage/database.h"

namespace s4 {

// Dense global column identifiers across all tables of a database
// ("column identifier which uniquely identifies a column across all
// columns in the database", Sec 6.1). Posting-list keys use these.
class ColumnIds {
 public:
  explicit ColumnIds(const Database& db) {
    offsets_.reserve(db.NumTables() + 1);
    offsets_.push_back(0);
    for (TableId t = 0; t < db.NumTables(); ++t) {
      offsets_.push_back(offsets_.back() + db.table(t).NumColumns());
    }
    refs_.reserve(offsets_.back());
    for (TableId t = 0; t < db.NumTables(); ++t) {
      for (int32_t c = 0; c < db.table(t).NumColumns(); ++c) {
        refs_.push_back(ColumnRef{t, c});
      }
    }
  }

  int32_t Gid(const ColumnRef& ref) const {
    return offsets_[ref.table_id] + ref.column_index;
  }
  const ColumnRef& FromGid(int32_t gid) const { return refs_[gid]; }
  int32_t NumColumns() const { return static_cast<int32_t>(refs_.size()); }

 private:
  std::vector<int32_t> offsets_;
  std::vector<ColumnRef> refs_;
};

}  // namespace s4

#endif  // S4_INDEX_COLUMN_IDS_H_
