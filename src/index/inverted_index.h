#ifndef S4_INDEX_INVERTED_INDEX_H_
#define S4_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "text/term_dict.h"

namespace s4 {

// Column-level inverted index (Sec 3.1): inv(w) = the database columns
// (as global column ids) where term w appears in at least one row.
//
// Internally the postings live behind shared_ptrs so live mutation
// epochs are cheap: a mutated epoch shares the frozen base map and adds
// a small delta overlay of fully materialized replacement lists (an
// empty list is a tombstone). The static-build probe path pays exactly
// one extra null test; once the overlay outgrows max(64, base/4)
// entries, WithChanges compacts it into a fresh base. Copies share
// state with the source; Add() after copying is not supported (builds
// freeze before an index is shared).
class ColumnInvertedIndex {
 public:
  using Map = std::unordered_map<TermId, std::vector<int32_t>>;

  ColumnInvertedIndex() : owned_(std::make_shared<Map>()), base_(owned_) {}

  // Records that `term` occurs in column `gid` (idempotent if called in
  // non-decreasing gid order per term, which the builder guarantees).
  // Build path only — not for indexes produced by WithChanges.
  void Add(TermId term, int32_t gid);

  // Columns containing `term`, or nullptr if the term is unknown.
  const std::vector<int32_t>* Find(TermId term) const {
    if (overlay_ != nullptr) {
      auto it = overlay_->find(term);
      if (it != overlay_->end()) {
        return it->second.empty() ? nullptr : &it->second;
      }
    }
    auto it = base_->find(term);
    return it == base_->end() ? nullptr : &it->second;
  }

  // A new index sharing this one's base with `changes` layered on top
  // (each entry fully replaces the term's column list; an empty list
  // deletes the term). Existing overlay entries not re-changed are
  // carried over; compaction folds everything into a new base when the
  // overlay grows past the threshold.
  ColumnInvertedIndex WithChanges(Map changes) const;

  int64_t NumEntries() const;
  size_t ByteSize() const;

  // Delta-overlay size (terms carried outside the frozen base): the
  // compaction-pressure signal, published as `s4_live_overlay_depth`
  // on epoch publish. 0 for static builds and freshly compacted epochs.
  size_t OverlaySize() const {
    return overlay_ == nullptr ? 0 : overlay_->size();
  }

 private:
  std::shared_ptr<Map> owned_;          // build-path mutable alias of base_
  std::shared_ptr<const Map> base_;
  std::shared_ptr<const Map> overlay_;  // empty list = tombstone
};

// One entry of a row-level posting list: a row of the column's table and
// the term frequency within that cell. tf is kept for the IR-style
// scoring extension (Appendix A.2); the default cell similarity only
// uses presence.
struct Posting {
  int32_t row;
  uint16_t tf;
};

// Row-level inverted index (Sec 3.1): inv(w, R[j]) = rows of R where w
// appears in column j, with term frequencies. Same base + delta-overlay
// layout as ColumnInvertedIndex (see above).
class RowInvertedIndex {
 public:
  using Map = std::unordered_map<uint64_t, std::vector<Posting>>;

  // Posting-list key for (term, column gid) — the map key WithChanges
  // callers build deltas under.
  static uint64_t Key(TermId term, int32_t gid) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(term)) << 32) |
           static_cast<uint32_t>(gid);
  }

  RowInvertedIndex() : owned_(std::make_shared<Map>()), base_(owned_) {}

  // Build path only — not for indexes produced by WithChanges.
  void Add(TermId term, int32_t gid, int32_t row, uint16_t tf);

  // Posting list for (term, column gid), or nullptr.
  const std::vector<Posting>* Find(TermId term, int32_t gid) const {
    const uint64_t key = Key(term, gid);
    if (overlay_ != nullptr) {
      auto it = overlay_->find(key);
      if (it != overlay_->end()) {
        return it->second.empty() ? nullptr : &it->second;
      }
    }
    auto it = base_->find(key);
    return it == base_->end() ? nullptr : &it->second;
  }

  // |inv(w, R[j])|: posting-list length, 0 if absent. This is the l_w of
  // Propositions 3-4 and the cost model (12).
  int64_t PostingLength(TermId term, int32_t gid) const {
    const std::vector<Posting>* p = Find(term, gid);
    return p == nullptr ? 0 : static_cast<int64_t>(p->size());
  }

  // A new index layering `changes` (full replacement lists, empty =
  // delete) over this one's base; TotalPostings is maintained from the
  // per-list size deltas.
  RowInvertedIndex WithChanges(Map changes) const;

  int64_t TotalPostings() const { return total_postings_; }
  size_t ByteSize() const;

  // Delta-overlay size (posting lists carried outside the frozen
  // base); see ColumnInvertedIndex::OverlaySize.
  size_t OverlaySize() const {
    return overlay_ == nullptr ? 0 : overlay_->size();
  }

 private:
  std::shared_ptr<Map> owned_;          // build-path mutable alias of base_
  std::shared_ptr<const Map> base_;
  std::shared_ptr<const Map> overlay_;  // empty list = tombstone
  int64_t total_postings_ = 0;
};

}  // namespace s4

#endif  // S4_INDEX_INVERTED_INDEX_H_
