#ifndef S4_INDEX_INVERTED_INDEX_H_
#define S4_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "text/term_dict.h"

namespace s4 {

// Column-level inverted index (Sec 3.1): inv(w) = the database columns
// (as global column ids) where term w appears in at least one row.
class ColumnInvertedIndex {
 public:
  // Records that `term` occurs in column `gid` (idempotent if called in
  // non-decreasing gid order per term, which the builder guarantees).
  void Add(TermId term, int32_t gid);

  // Columns containing `term`, or nullptr if the term is unknown.
  const std::vector<int32_t>* Find(TermId term) const;

  int64_t NumEntries() const;
  size_t ByteSize() const;

 private:
  std::unordered_map<TermId, std::vector<int32_t>> postings_;
};

// One entry of a row-level posting list: a row of the column's table and
// the term frequency within that cell. tf is kept for the IR-style
// scoring extension (Appendix A.2); the default cell similarity only
// uses presence.
struct Posting {
  int32_t row;
  uint16_t tf;
};

// Row-level inverted index (Sec 3.1): inv(w, R[j]) = rows of R where w
// appears in column j, with term frequencies.
class RowInvertedIndex {
 public:
  void Add(TermId term, int32_t gid, int32_t row, uint16_t tf);

  // Posting list for (term, column gid), or nullptr.
  const std::vector<Posting>* Find(TermId term, int32_t gid) const;

  // |inv(w, R[j])|: posting-list length, 0 if absent. This is the l_w of
  // Propositions 3-4 and the cost model (12).
  int64_t PostingLength(TermId term, int32_t gid) const {
    const std::vector<Posting>* p = Find(term, gid);
    return p == nullptr ? 0 : static_cast<int64_t>(p->size());
  }

  int64_t TotalPostings() const { return total_postings_; }
  size_t ByteSize() const;

 private:
  static uint64_t Key(TermId term, int32_t gid) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(term)) << 32) |
           static_cast<uint32_t>(gid);
  }

  std::unordered_map<uint64_t, std::vector<Posting>> postings_;
  int64_t total_postings_ = 0;
};

}  // namespace s4

#endif  // S4_INDEX_INVERTED_INDEX_H_
