#include "index/index_set.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace s4 {

StatusOr<std::unique_ptr<IndexSet>> IndexSet::Build(
    const Database& db, IndexBuildOptions options) {
  if (!db.finalized()) {
    return Status::FailedPrecondition("database must be finalized");
  }
  // Cannot use make_unique with a private constructor.
  std::unique_ptr<IndexSet> set(new IndexSet(db, options));

  auto snapshot = KfkSnapshot::Build(db);
  if (!snapshot.ok()) return snapshot.status();
  set->snapshot_ = std::move(snapshot).value();

  // Build the inverted indexes column-by-column so column-level entries
  // are added in non-decreasing gid order per term.
  auto dict = std::make_shared<TermDict>();
  std::unordered_map<TermId, uint16_t> tf;
  for (TableId t = 0; t < db.NumTables(); ++t) {
    const Table& table = db.table(t);
    for (int32_t c : table.TextColumnIndexes()) {
      const int32_t gid = set->column_ids_.Gid(ColumnRef{t, c});
      std::vector<uint16_t> lengths(static_cast<size_t>(table.NumRows()), 0);
      for (int64_t r = 0; r < table.NumRows(); ++r) {
        if (table.IsNull(r, c)) continue;
        std::vector<std::string> tokens =
            set->tokenizer_.Tokenize(table.GetText(r, c));
        if (tokens.empty()) continue;
        tf.clear();
        for (const std::string& tok : tokens) {
          TermId id = dict->Intern(tok);
          uint16_t& count = tf[id];
          if (count < UINT16_MAX) ++count;
        }
        lengths[r] = static_cast<uint16_t>(
            std::min<size_t>(tf.size(), UINT16_MAX));
        for (const auto& [term, count] : tf) {
          set->column_index_.Add(term, gid);
          set->row_index_.Add(term, gid, static_cast<int32_t>(r), count);
        }
      }
      set->cell_lengths_[gid] =
          std::make_shared<const std::vector<uint16_t>>(std::move(lengths));
    }
  }
  set->dict_ = std::move(dict);
  return set;
}

IndexStats IndexSet::stats() const {
  IndexStats s;
  s.inverted_index_bytes = column_index_.ByteSize() + row_index_.ByteSize() +
                           dict_->ByteSize();
  for (const auto& [gid, lengths] : cell_lengths_) {
    (void)gid;
    s.inverted_index_bytes += lengths->capacity() * sizeof(uint16_t);
  }
  s.kfk_snapshot_bytes = snapshot_.ByteSize();
  s.num_tokens = dict_->size();
  s.num_postings = row_index_.TotalPostings();
  return s;
}

}  // namespace s4
