#ifndef S4_CACHE_FLAT_TABLE_H_
#define S4_CACHE_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace s4 {

// Flat open-addressing hash map from int64 join keys to uint32 payloads,
// tuned for the hash-join hot path: robin-hood displacement bounds probe
// chains, capacity is a power of two, and there is no deletion (the
// evaluator only ever inserts or promotes). Slots live in two parallel
// arrays — an int64 key array and a uint32 value array — so a probe
// touches at most two adjacent cache lines instead of chasing
// unordered_map node pointers.
//
// The value 0xFFFFFFFF is reserved as the empty-slot marker; callers may
// store any other uint32. Allocation is exact (the arrays are sized to
// the capacity, never over-reserved), so ByteSize() reports true heap
// bytes.
class FlatMap64 {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;  // empty-slot marker
  static constexpr size_t kSlotBytes = sizeof(int64_t) + sizeof(uint32_t);

  FlatMap64() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return vals_.size(); }

  // Grows (never shrinks) so `n` keys fit without further rehashing.
  void Reserve(size_t n);

  // Capacity the table settles on to hold `n` keys at the 3/4 max load
  // factor; used by the cost model to predict ByteSize without building.
  static size_t CapacityFor(size_t n);

  // Value stored under `key`, or kNotFound. Robin-hood order lets a miss
  // stop as soon as it passes a slot whose resident is closer to its
  // ideal position than the probe is.
  uint32_t Find(int64_t key) const {
    if (size_ == 0) return kNotFound;
    const size_t mask = vals_.size() - 1;
    size_t i = Ideal(key);
    size_t dist = 0;
    while (true) {
      const uint32_t v = vals_[i];
      if (v == kNotFound) return kNotFound;
      if (keys_[i] == key) return v;
      if (ProbeDistance(keys_[i], i) < dist) return kNotFound;
      i = (i + 1) & mask;
      ++dist;
    }
  }

  // Pointer to the value slot of `key`, inserting `value` if absent
  // (`*inserted` reports which). The pointer is valid until the next
  // insertion that grows the table.
  uint32_t* FindOrInsert(int64_t key, uint32_t value, bool* inserted) {
    if ((size_ + 1) * 4 > vals_.size() * 3) {
      Grow(vals_.empty() ? kMinCapacity : vals_.size() * 2);
    }
    const size_t mask = vals_.size() - 1;
    size_t i = Ideal(key);
    size_t dist = 0;
    int64_t k = key;
    uint32_t v = value;
    size_t home = kNoSlot;  // where the original key ends up
    while (true) {
      if (vals_[i] == kNotFound) {
        keys_[i] = k;
        vals_[i] = v;
        ++size_;
        *inserted = true;
        return &vals_[home == kNoSlot ? i : home];
      }
      if (keys_[i] == k) {  // only reachable before any displacement
        *inserted = false;
        return &vals_[i];
      }
      const size_t d = ProbeDistance(keys_[i], i);
      if (d < dist) {  // rich resident: displace it, keep inserting
        std::swap(k, keys_[i]);
        std::swap(v, vals_[i]);
        if (home == kNoSlot) home = i;
        dist = d;
      }
      i = (i + 1) & mask;
      ++dist;
    }
  }

  // Calls f(key, value) for every occupied slot, in slot order.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < vals_.size(); ++i) {
      if (vals_[i] != kNotFound) f(keys_[i], vals_[i]);
    }
  }

  // Exact heap bytes of the slot arrays.
  size_t ByteSize() const {
    return keys_.capacity() * sizeof(int64_t) +
           vals_.capacity() * sizeof(uint32_t);
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNoSlot = ~size_t{0};

  // splitmix64 finalizer: full-avalanche mix so sequential join keys
  // spread over the slot range.
  static uint64_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  // Ideal slot from the top bits of the mix (capacity = 1 << (64-shift_)).
  size_t Ideal(int64_t key) const {
    return static_cast<size_t>(Mix(key) >> shift_);
  }

  size_t ProbeDistance(int64_t key, size_t slot) const {
    const size_t mask = vals_.size() - 1;
    return (slot + vals_.size() - Ideal(key)) & mask;
  }

  void Grow(size_t new_capacity);

  std::vector<int64_t> keys_;
  std::vector<uint32_t> vals_;  // kNotFound marks an empty slot
  size_t size_ = 0;
  int shift_ = 64;  // 64 - log2(capacity)
};

}  // namespace s4

#endif  // S4_CACHE_FLAT_TABLE_H_
