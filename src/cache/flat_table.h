#ifndef S4_CACHE_FLAT_TABLE_H_
#define S4_CACHE_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/simd.h"

namespace s4 {

// Flat open-addressing hash map from int64 join keys to uint32 payloads,
// tuned for the hash-join hot path: robin-hood displacement bounds probe
// chains, capacity is a power of two, and there is no deletion (the
// evaluator only ever inserts or promotes). Slots live in three parallel
// arrays — an int64 key array, a uint32 value array, and a 1-byte tag
// array holding 7 low hash bits per occupied slot (0 marks empty, so an
// occupied tag always has the 0x80 bit set). Probe walks compare 16 tags
// at a time (src/common/simd.h) and touch the 8-byte key array only on
// tag hits, so a miss typically costs one tag-line load instead of a
// key-line walk.
//
// Batched probing: FindBatch resolves a group of keys in two passes —
// hash every key and software-prefetch its ideal tag/key cache lines,
// then run the probe walks — so the per-key cache misses overlap instead
// of serializing (one dependent miss per probe). Prefetch exposes the
// same first pass to build loops that upsert a stream of keys.
//
// The value 0xFFFFFFFF is reserved as the empty-slot marker; callers may
// store any other uint32. Allocation is exact (the arrays are sized to
// the capacity, never over-reserved), so ByteSize() reports true heap
// bytes.
class FlatMap64 {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;  // empty-slot marker
  // Bytes per slot across the three parallel arrays (key + value + tag);
  // the cost model multiplies CapacityFor by this to predict ByteSize.
  static constexpr size_t kSlotBytes =
      sizeof(int64_t) + sizeof(uint32_t) + sizeof(uint8_t);
  // Tag lanes compared per probe step; capacities are multiples of this
  // (kMinCapacity == 16), so aligned groups never run off the arrays.
  static constexpr size_t kGroupWidth =
      static_cast<size_t>(simd::kGroupWidth);
  // Keys hashed + prefetched ahead per FindBatch chunk: enough in-flight
  // lines to cover DRAM latency without evicting the earliest prefetch
  // before its probe resolves.
  static constexpr size_t kBatchWidth = 16;

  FlatMap64() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return vals_.size(); }

  // Grows (never shrinks) so `n` keys fit without further rehashing.
  void Reserve(size_t n);

  // Capacity the table settles on to hold `n` keys at the 3/4 max load
  // factor; used by the cost model to predict ByteSize without building.
  static size_t CapacityFor(size_t n);

  // Value stored under `key`, or kNotFound. The walk scans 16-tag groups
  // from the key's ideal slot; the robin-hood invariant (a probe chain
  // never crosses an empty slot) lets a miss stop at the first group
  // with an empty lane at or after the ideal position.
  uint32_t Find(int64_t key) const {
    if (size_ == 0) return kNotFound;
    return FindHashed(key, Mix(key));
  }

  // Batched Find: resolves `keys[0..n)` into `out[0..n)`. Hashes up to
  // kBatchWidth keys ahead and prefetches each key's ideal tag and key
  // cache lines before any probe walk runs, so the misses overlap.
  // Results are exactly what n individual Find calls would return.
  void FindBatch(const int64_t* keys, size_t n, uint32_t* out) const;

  // Issues software prefetches for `key`'s ideal tag/key cache lines
  // (and the value line when `for_write`, ahead of a FindOrInsert).
  // Purely advisory: a following probe or insert is correct without it.
  void Prefetch(int64_t key, bool for_write = false) const {
    if (vals_.empty()) return;
    const size_t i = Ideal(key);
    __builtin_prefetch(tags_.data() + (i & ~(kGroupWidth - 1)), 0, 3);
    __builtin_prefetch(keys_.data() + i, for_write ? 1 : 0, 3);
    if (for_write) __builtin_prefetch(vals_.data() + i, 1, 3);
  }

  // Pointer to the value slot of `key`, inserting `value` if absent
  // (`*inserted` reports which). The pointer is valid until the next
  // insertion that grows the table.
  uint32_t* FindOrInsert(int64_t key, uint32_t value, bool* inserted) {
    if ((size_ + 1) * 4 > vals_.size() * 3) {
      Grow(vals_.empty() ? kMinCapacity : vals_.size() * 2);
    }
    const size_t mask = vals_.size() - 1;
    const uint64_t h = Mix(key);
    size_t i = static_cast<size_t>(h >> shift_);
    size_t dist = 0;
    int64_t k = key;
    uint32_t v = value;
    uint8_t tag = TagOf(h);
    size_t home = kNoSlot;  // where the original key ends up
    while (true) {
      if (tags_[i] == 0) {
        keys_[i] = k;
        vals_[i] = v;
        tags_[i] = tag;
        ++size_;
        *inserted = true;
        return &vals_[home == kNoSlot ? i : home];
      }
      // Tag filter first: an occupied slot holding k must carry k's tag,
      // so the 8-byte key compare runs only on tag hits. Only reachable
      // before any displacement, as before.
      if (tags_[i] == tag && keys_[i] == k) {
        *inserted = false;
        return &vals_[i];
      }
      const size_t d = ProbeDistance(keys_[i], i);
      if (d < dist) {  // rich resident: displace it, keep inserting
        std::swap(k, keys_[i]);
        std::swap(v, vals_[i]);
        std::swap(tag, tags_[i]);
        if (home == kNoSlot) home = i;
        dist = d;
      }
      i = (i + 1) & mask;
      ++dist;
    }
  }

  // Calls f(key, value) for every occupied slot, in slot order.
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < vals_.size(); ++i) {
      if (vals_[i] != kNotFound) f(keys_[i], vals_[i]);
    }
  }

  // Exact heap bytes of the slot arrays (keys + values + tags).
  size_t ByteSize() const {
    return keys_.capacity() * sizeof(int64_t) +
           vals_.capacity() * sizeof(uint32_t) +
           tags_.capacity() * sizeof(uint8_t);
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNoSlot = ~size_t{0};

  // splitmix64 finalizer: full-avalanche mix so sequential join keys
  // spread over the slot range.
  static uint64_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  // 7 low hash bits with the high bit forced on: occupied tags live in
  // [0x80, 0xFF] and can never collide with the empty marker 0. The low
  // bits are independent of the slot index (Ideal uses the top bits), so
  // tags stay discriminating within a probe chain at any capacity.
  static uint8_t TagOf(uint64_t h) {
    return static_cast<uint8_t>(h & 0x7F) | 0x80;
  }

  // Ideal slot from the top bits of the mix (capacity = 1 << (64-shift_)).
  size_t Ideal(int64_t key) const {
    return static_cast<size_t>(Mix(key) >> shift_);
  }

  size_t ProbeDistance(int64_t key, size_t slot) const {
    const size_t mask = vals_.size() - 1;
    return (slot + vals_.size() - Ideal(key)) & mask;
  }

  // The probe walk behind Find/FindBatch, with the hash precomputed.
  // Group-aligned: the first group masks off lanes before the ideal
  // slot, every later group considers all 16. Lanes past a chain's end
  // can hold other chains' residents, but a tag+key double hit there
  // would mean a duplicate key — impossible — and empty lanes can never
  // tag-match (occupied tags have the 0x80 bit set), so scanning whole
  // groups is safe.
  uint32_t FindHashed(int64_t key, uint64_t h) const {
    const size_t mask = vals_.size() - 1;
    const uint8_t tag = TagOf(h);
    const size_t start = static_cast<size_t>(h >> shift_);
    size_t gbase = start & ~(kGroupWidth - 1);
    uint32_t filter = (0xFFFFu << (start - gbase)) & 0xFFFFu;
    while (true) {
      const uint8_t* group = tags_.data() + gbase;
      uint32_t match = simd::MatchByteMask16(group, tag) & filter;
      while (match != 0) {
        const size_t i = gbase + static_cast<size_t>(simd::FirstLane(match));
        if (keys_[i] == key) return vals_[i];
        match = simd::ClearFirstLane(match);
      }
      // An empty lane at or after the ideal slot ends the probe chain
      // (load factor <= 3/4 guarantees one exists somewhere).
      if ((simd::MatchByteMask16(group, 0) & filter) != 0) return kNotFound;
      gbase = (gbase + kGroupWidth) & mask;
      filter = 0xFFFFu;
    }
  }

  void Grow(size_t new_capacity);

  std::vector<int64_t> keys_;
  std::vector<uint32_t> vals_;  // kNotFound marks an empty slot
  std::vector<uint8_t> tags_;   // 0 = empty, else 0x80 | low hash bits
  size_t size_ = 0;
  int shift_ = 64;  // 64 - log2(capacity)
};

}  // namespace s4

#endif  // S4_CACHE_FLAT_TABLE_H_
