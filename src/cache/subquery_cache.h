#ifndef S4_CACHE_SUBQUERY_CACHE_H_
#define S4_CACHE_SUBQUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace s4 {

// The materialized output relation of a (sub-)PJ query in the form the
// hash-join execution plan consumes (Appendix B.1/B.2): a hash table
// from join-key to the per-example-row best partial similarity scores of
// the subtree, plus the set of keys that join but carry all-zero scores
// (needed for exact inner-join semantics).
struct SubQueryTable {
  int32_t num_es_rows = 0;
  std::unordered_map<int64_t, std::vector<double>> scored;
  std::unordered_set<int64_t> zero;

  // Scores for `key`: pointer into `scored`, nullptr+exists for zero
  // keys, nullptr+!exists when the key does not join.
  const std::vector<double>* Find(int64_t key, bool* exists) const {
    auto it = scored.find(key);
    if (it != scored.end()) {
      *exists = true;
      return &it->second;
    }
    *exists = zero.count(key) > 0;
    return nullptr;
  }

  int64_t NumKeys() const {
    return static_cast<int64_t>(scored.size() + zero.size());
  }

  // Approximate bytes (hash buckets + score vectors).
  size_t ByteSize() const {
    return scored.size() * (sizeof(int64_t) + 32 +
                            sizeof(double) * static_cast<size_t>(num_es_rows)) +
           zero.size() * (sizeof(int64_t) + 16) + sizeof(SubQueryTable);
  }
};

struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t rejected_too_large = 0;
  size_t peak_bytes = 0;
};

// Budgeted LRU cache M of sub-PJ query output relations (Sec 5.1-5.3).
// The scheduler explicitly Adds critical sub-PJ results (optionally
// pinned so the LRU heuristic never drops them mid-group, Sec 5.3.4),
// and the evaluator opportunistically offers intermediate tables.
class SubQueryCache {
 public:
  explicit SubQueryCache(size_t budget_bytes) : budget_(budget_bytes) {}

  SubQueryCache(const SubQueryCache&) = delete;
  SubQueryCache& operator=(const SubQueryCache&) = delete;

  size_t budget() const { return budget_; }
  size_t bytes_used() const { return bytes_used_; }
  const CacheStats& stats() const { return stats_; }

  // Looks up `key`; records a hit/miss and refreshes LRU recency.
  std::shared_ptr<const SubQueryTable> Get(const std::string& key);

  // True without touching stats or recency (used by cost estimation).
  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }

  // Inserts `table` under `key`, evicting unpinned LRU entries as needed.
  // Returns false (and stores nothing) if the table cannot fit even
  // after evicting everything unpinned. Re-inserting an existing key
  // replaces the value.
  bool Add(const std::string& key, std::shared_ptr<const SubQueryTable> table,
           bool pinned = false);

  // Removes one entry / all entries (type-c operator Delete).
  void Remove(const std::string& key);
  void Clear();

  // Pin management; pinned entries are never evicted by Add.
  void Unpin(const std::string& key);

  int64_t NumEntries() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    std::shared_ptr<const SubQueryTable> table;
    size_t bytes = 0;
    bool pinned = false;
    std::list<std::string>::iterator lru_it;
  };

  void Touch(Entry& e, const std::string& key);
  bool EvictUntil(size_t needed);

  size_t budget_;
  size_t bytes_used_ = 0;
  CacheStats stats_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
};

}  // namespace s4

#endif  // S4_CACHE_SUBQUERY_CACHE_H_
