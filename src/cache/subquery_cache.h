#ifndef S4_CACHE_SUBQUERY_CACHE_H_
#define S4_CACHE_SUBQUERY_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/flat_table.h"

namespace s4 {

// The materialized output relation of a (sub-)PJ query in the form the
// hash-join execution plan consumes (Appendix B.1/B.2): one flat
// open-addressing table mapping each join key to a row of a contiguous
// `num_es_rows`-strided double arena holding the per-example-row best
// partial similarity scores of the subtree. Keys that join but carry
// all-zero scores (needed for exact inner-join semantics) map to the
// sentinel row id kZeroRow instead of an arena row, so they cost one
// 12-byte slot and no payload.
struct SubQueryTable {
  // Sentinel arena-row id for keys that join with all-zero scores.
  static constexpr uint32_t kZeroRow = 0xFFFFFFFEu;

  int32_t num_es_rows = 0;
  FlatMap64 keys;             // join key -> arena row id or kZeroRow
  std::vector<double> arena;  // NumScored() rows, num_es_rows doubles each

  // Scores for `key`: pointer to its num_es_rows-wide arena row,
  // nullptr+exists for zero keys, nullptr+!exists when the key does not
  // join. The pointer stays valid while the table is not mutated.
  const double* Find(int64_t key, bool* exists) const {
    const uint32_t row = keys.Find(key);
    if (row == FlatMap64::kNotFound) {
      *exists = false;
      return nullptr;
    }
    *exists = true;
    if (row == kZeroRow) return nullptr;
    return arena.data() + static_cast<size_t>(row) * num_es_rows;
  }

  // Mutable arena row for `key`, allocating a fresh zero-filled row when
  // the key is new or promoting it when it was a zero sentinel; `*fresh`
  // reports which. The pointer is invalidated by the next Upsert.
  double* UpsertScored(int64_t key, bool* fresh) {
    bool inserted = false;
    uint32_t* slot = keys.FindOrInsert(key, 0, &inserted);
    if (inserted || *slot == kZeroRow) {
      const uint32_t row =
          static_cast<uint32_t>(arena.size() / static_cast<size_t>(num_es_rows));
      *slot = row;
      arena.resize(arena.size() + static_cast<size_t>(num_es_rows), 0.0);
      *fresh = true;
      return arena.data() + static_cast<size_t>(row) * num_es_rows;
    }
    *fresh = false;
    return arena.data() + static_cast<size_t>(*slot) * num_es_rows;
  }

  // Records that `key` joins with all-zero scores; no-op when the key is
  // already present (scored or zero). True if newly inserted.
  bool InsertZero(int64_t key) {
    bool inserted = false;
    keys.FindOrInsert(key, kZeroRow, &inserted);
    return inserted;
  }

  // Batched Find over `probe_keys[0..n)`: fills `rows[j]` / `exists[j]`
  // with exactly what Find(probe_keys[j], ...) would produce, but
  // resolves the key-table probes through FlatMap64::FindBatch so the
  // slot cache misses overlap. The row pointers stay valid while the
  // table is not mutated.
  void FindBatch(const int64_t* probe_keys, size_t n, const double** rows,
                 bool* exists) const {
    uint32_t ids[FlatMap64::kBatchWidth];
    for (size_t lo = 0; lo < n; lo += FlatMap64::kBatchWidth) {
      const size_t m = std::min(n - lo, FlatMap64::kBatchWidth);
      keys.FindBatch(probe_keys + lo, m, ids);
      for (size_t j = 0; j < m; ++j) {
        const uint32_t row = ids[j];
        exists[lo + j] = row != FlatMap64::kNotFound;
        rows[lo + j] =
            (row == FlatMap64::kNotFound || row == kZeroRow)
                ? nullptr
                : arena.data() + static_cast<size_t>(row) * num_es_rows;
      }
    }
  }

  // Warms the key-table cache lines an UpsertScored(key) is about to
  // touch; advisory only. Build loops call this a few keys ahead of the
  // upsert so the slot line loads overlap the arena writes.
  void PrefetchUpsert(int64_t key) const { keys.Prefetch(key, true); }

  int64_t NumKeys() const { return static_cast<int64_t>(keys.size()); }
  int64_t NumScored() const {
    return num_es_rows == 0
               ? 0
               : static_cast<int64_t>(arena.size() /
                                      static_cast<size_t>(num_es_rows));
  }
  int64_t NumZero() const { return NumKeys() - NumScored(); }

  // Calls f(key) for every joining key (scored and zero), in slot order.
  template <typename F>
  void ForEachKey(F&& f) const {
    keys.ForEach([&](int64_t key, uint32_t) { f(key); });
  }

  // Calls f(key, row) for every joining key in slot order, `row`
  // pointing at its arena row or nullptr for zero-score keys — the
  // key-and-payload walk the evaluator's batched Stage-II loop seeds
  // from (one pass instead of ForEachKey + a re-probe per key).
  template <typename F>
  void ForEachEntry(F&& f) const {
    keys.ForEach([&](int64_t key, uint32_t row) {
      f(key, row == kZeroRow
                 ? nullptr
                 : arena.data() + static_cast<size_t>(row) * num_es_rows);
    });
  }

  // Calls f(key, row) for every scored key, `row` pointing at its
  // num_es_rows-wide arena row.
  template <typename F>
  void ForEachScored(F&& f) const {
    keys.ForEach([&](int64_t key, uint32_t row) {
      if (row != kZeroRow) {
        f(key, arena.data() + static_cast<size_t>(row) * num_es_rows);
      }
    });
  }

  // Pre-sizes the key table for `n` keys (the arena grows on demand).
  void Reserve(size_t n) { keys.Reserve(n); }

  // Drops arena growth slack once building is done, so cached tables are
  // charged (and occupy) exactly what they use.
  void ShrinkToFit() { arena.shrink_to_fit(); }

  // Exact bytes: the flat table's slot arrays at capacity plus the arena
  // allocation. Both allocate exactly their capacity, so the cache
  // budget B, eviction order, and the Fig. 8 sweep see true memory.
  size_t ByteSize() const {
    return sizeof(SubQueryTable) + keys.ByteSize() +
           arena.capacity() * sizeof(double);
  }
};

struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t rejected_too_large = 0;
  size_t peak_bytes = 0;
};

// Budgeted LRU cache M of sub-PJ query output relations (Sec 5.1-5.3).
// The scheduler explicitly Adds critical sub-PJ results (optionally
// pinned so the LRU heuristic never drops them mid-group, Sec 5.3.4),
// and the evaluator opportunistically offers intermediate tables.
//
// Concurrency: the cache is split into `num_shards` shards, each owning
// a mutex-guarded hash map + LRU list of the keys that hash to it, so
// parallel candidate evaluations contend only on colliding shards. The
// byte budget B is global, tracked by one atomic counter; an Add that
// would exceed it evicts unpinned LRU entries one shard at a time
// (own shard first), never holding two shard locks at once. The
// single-shard default preserves the exact global LRU order of the
// paper's serial scheduler, which the serial (num_threads = 1)
// strategies rely on for reproducibility.
//
// Cross-query sharing (service layer): a per-run cache may attach a
// long-lived *shared* cache via AttachShared. Local lookups that miss
// fall through to the shared cache under a caller-supplied key prefix
// (epoch + spreadsheet fingerprint, making keys canonical across
// requests), and local insertions are republished there unpinned.
// Sub-query tables are immutable once built and deterministic functions
// of their canonical key, so serving another request's table is always
// exact — sharing changes work counts, never scores. Clear() and pins
// stay strictly local: the scheduler's per-group reset and pin/unpin
// protocol must not perturb concurrent runs.
class SubQueryCache {
 public:
  explicit SubQueryCache(size_t budget_bytes, int32_t num_shards = 1);

  SubQueryCache(const SubQueryCache&) = delete;
  SubQueryCache& operator=(const SubQueryCache&) = delete;

  size_t budget() const { return budget_; }
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  // Merged snapshot of the per-shard counters. Each shard's counters are
  // read under that shard's mutex — the same lock every mutation holds —
  // so the per-shard sums are exact; only cross-shard skew is possible
  // while other threads keep operating. peak_bytes is an atomic read.
  CacheStats stats() const;

  // Shard count for a given evaluation thread count: one shard for the
  // serial path (exact global LRU), else enough shards to keep
  // lock contention low.
  static int32_t ShardsForThreads(int32_t num_threads);

  // Attaches a long-lived shared cache consulted on local misses and fed
  // on local insertions, with `key_prefix` namespacing this run's keys
  // into the shared key space. `shared` must outlive this cache and must
  // not be `this`. Pass nullptr to detach.
  void AttachShared(SubQueryCache* shared, std::string key_prefix);

  // Looks up `key`; records a hit/miss and refreshes LRU recency.
  std::shared_ptr<const SubQueryTable> Get(const std::string& key);

  // True without touching stats or recency (used by cost estimation).
  bool Contains(const std::string& key) const;

  // Inserts `table` under `key`, evicting unpinned LRU entries as needed.
  // Returns false (and stores nothing) if the table cannot fit even
  // after evicting everything unpinned. Re-inserting an existing key
  // replaces the value.
  bool Add(const std::string& key, std::shared_ptr<const SubQueryTable> table,
           bool pinned = false);

  // Removes one entry / all entries (type-c operator Delete).
  void Remove(const std::string& key);
  void Clear();

  // Pin management; pinned entries are never evicted by Add.
  void Unpin(const std::string& key);

  int64_t NumEntries() const;

 private:
  struct Entry {
    std::shared_ptr<const SubQueryTable> table;
    size_t bytes = 0;
    bool pinned = false;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru;  // front = most recent
    CacheStats stats;            // shard-local; merged by stats()
  };

  size_t ShardIndex(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

  // Evicts the shard's LRU unpinned entry; true if one was evicted.
  bool EvictOneFrom(Shard& shard);
  // Drops `key` from `shard` (shard.mu must be held by the caller).
  void RemoveLocked(Shard& shard, const std::string& key);
  void UpdatePeak();

  size_t budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> peak_bytes_{0};
  // Cross-query fallthrough target (not owned); set before a run starts
  // and constant during it.
  SubQueryCache* shared_ = nullptr;
  std::string shared_prefix_;
};

}  // namespace s4

#endif  // S4_CACHE_SUBQUERY_CACHE_H_
