#ifndef S4_CACHE_SUBQUERY_CACHE_H_
#define S4_CACHE_SUBQUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace s4 {

// The materialized output relation of a (sub-)PJ query in the form the
// hash-join execution plan consumes (Appendix B.1/B.2): a hash table
// from join-key to the per-example-row best partial similarity scores of
// the subtree, plus the set of keys that join but carry all-zero scores
// (needed for exact inner-join semantics).
struct SubQueryTable {
  int32_t num_es_rows = 0;
  std::unordered_map<int64_t, std::vector<double>> scored;
  std::unordered_set<int64_t> zero;

  // Scores for `key`: pointer into `scored`, nullptr+exists for zero
  // keys, nullptr+!exists when the key does not join.
  const std::vector<double>* Find(int64_t key, bool* exists) const {
    auto it = scored.find(key);
    if (it != scored.end()) {
      *exists = true;
      return &it->second;
    }
    *exists = zero.count(key) > 0;
    return nullptr;
  }

  int64_t NumKeys() const {
    return static_cast<int64_t>(scored.size() + zero.size());
  }

  // Approximate bytes. Counts the bucket arrays (one pointer-sized
  // bucket head per bucket) and the per-node overhead of the chained
  // hash tables (next pointer + cached hash) in addition to the
  // payload, so the cache budget B reflects the real footprint — the
  // bucket array alone can dominate for sparse, heavily rehashed
  // tables.
  size_t ByteSize() const {
    constexpr size_t kNodeOverhead = 2 * sizeof(void*);  // next ptr + hash
    size_t bytes = sizeof(SubQueryTable);
    bytes += scored.bucket_count() * sizeof(void*);
    bytes += scored.size() *
             (kNodeOverhead + sizeof(int64_t) + sizeof(std::vector<double>) +
              sizeof(double) * static_cast<size_t>(num_es_rows));
    bytes += zero.bucket_count() * sizeof(void*);
    bytes += zero.size() * (kNodeOverhead + sizeof(int64_t));
    return bytes;
  }
};

struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t rejected_too_large = 0;
  size_t peak_bytes = 0;
};

// Budgeted LRU cache M of sub-PJ query output relations (Sec 5.1-5.3).
// The scheduler explicitly Adds critical sub-PJ results (optionally
// pinned so the LRU heuristic never drops them mid-group, Sec 5.3.4),
// and the evaluator opportunistically offers intermediate tables.
//
// Concurrency: the cache is split into `num_shards` shards, each owning
// a mutex-guarded hash map + LRU list of the keys that hash to it, so
// parallel candidate evaluations contend only on colliding shards. The
// byte budget B is global, tracked by one atomic counter; an Add that
// would exceed it evicts unpinned LRU entries one shard at a time
// (own shard first), never holding two shard locks at once. The
// single-shard default preserves the exact global LRU order of the
// paper's serial scheduler, which the serial (num_threads = 1)
// strategies rely on for reproducibility.
class SubQueryCache {
 public:
  explicit SubQueryCache(size_t budget_bytes, int32_t num_shards = 1);

  SubQueryCache(const SubQueryCache&) = delete;
  SubQueryCache& operator=(const SubQueryCache&) = delete;

  size_t budget() const { return budget_; }
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  // Merged snapshot of the per-shard counters.
  CacheStats stats() const;

  // Shard count for a given evaluation thread count: one shard for the
  // serial path (exact global LRU), else enough shards to keep
  // lock contention low.
  static int32_t ShardsForThreads(int32_t num_threads);

  // Looks up `key`; records a hit/miss and refreshes LRU recency.
  std::shared_ptr<const SubQueryTable> Get(const std::string& key);

  // True without touching stats or recency (used by cost estimation).
  bool Contains(const std::string& key) const;

  // Inserts `table` under `key`, evicting unpinned LRU entries as needed.
  // Returns false (and stores nothing) if the table cannot fit even
  // after evicting everything unpinned. Re-inserting an existing key
  // replaces the value.
  bool Add(const std::string& key, std::shared_ptr<const SubQueryTable> table,
           bool pinned = false);

  // Removes one entry / all entries (type-c operator Delete).
  void Remove(const std::string& key);
  void Clear();

  // Pin management; pinned entries are never evicted by Add.
  void Unpin(const std::string& key);

  int64_t NumEntries() const;

 private:
  struct Entry {
    std::shared_ptr<const SubQueryTable> table;
    size_t bytes = 0;
    bool pinned = false;
    std::list<std::string>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::list<std::string> lru;  // front = most recent
    CacheStats stats;            // shard-local; merged by stats()
  };

  size_t ShardIndex(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

  // Evicts the shard's LRU unpinned entry; true if one was evicted.
  bool EvictOneFrom(Shard& shard);
  // Drops `key` from `shard` (shard.mu must be held by the caller).
  void RemoveLocked(Shard& shard, const std::string& key);
  void UpdatePeak();

  size_t budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> peak_bytes_{0};
};

}  // namespace s4

#endif  // S4_CACHE_SUBQUERY_CACHE_H_
