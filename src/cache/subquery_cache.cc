#include "cache/subquery_cache.h"

#include <algorithm>

namespace s4 {

SubQueryCache::SubQueryCache(size_t budget_bytes, int32_t num_shards)
    : budget_(budget_bytes) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int32_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

int32_t SubQueryCache::ShardsForThreads(int32_t num_threads) {
  if (num_threads <= 1) return 1;
  return std::min<int32_t>(64, num_threads * 4);
}

void SubQueryCache::AttachShared(SubQueryCache* shared,
                                 std::string key_prefix) {
  shared_ = shared == this ? nullptr : shared;
  shared_prefix_ = std::move(key_prefix);
}

CacheStats SubQueryCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->stats.hits;
    out.misses += shard->stats.misses;
    out.insertions += shard->stats.insertions;
    out.evictions += shard->stats.evictions;
    out.rejected_too_large += shard->stats.rejected_too_large;
  }
  out.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  return out;
}

std::shared_ptr<const SubQueryTable> SubQueryCache::Get(
    const std::string& key) {
  {
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.stats.hits;
      shard.lru.erase(it->second.lru_it);
      shard.lru.push_front(key);
      it->second.lru_it = shard.lru.begin();
      return it->second.table;
    }
    ++shard.stats.misses;
  }
  // Fall through to the cross-query cache; its own stats record the
  // cross-query hit rate. The table is returned without re-inserting it
  // locally so local bytes/LRU reflect only this run's insertions.
  if (shared_ != nullptr) return shared_->Get(shared_prefix_ + key);
  return nullptr;
}

bool SubQueryCache::Contains(const std::string& key) const {
  {
    const Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.entries.count(key) > 0) return true;
  }
  return shared_ != nullptr && shared_->Contains(shared_prefix_ + key);
}

bool SubQueryCache::EvictOneFrom(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    auto eit = shard.entries.find(*it);
    if (eit->second.pinned) continue;
    bytes_used_.fetch_sub(eit->second.bytes, std::memory_order_relaxed);
    ++shard.stats.evictions;
    auto victim = std::prev(it.base());
    shard.entries.erase(eit);
    shard.lru.erase(victim);
    return true;
  }
  return false;
}

void SubQueryCache::RemoveLocked(Shard& shard, const std::string& key) {
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  bytes_used_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
  shard.lru.erase(it->second.lru_it);
  shard.entries.erase(it);
}

void SubQueryCache::UpdatePeak() {
  size_t cur = bytes_used_.load(std::memory_order_relaxed);
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (cur > peak && !peak_bytes_.compare_exchange_weak(
                           peak, cur, std::memory_order_relaxed)) {
  }
}

bool SubQueryCache::Add(const std::string& key,
                        std::shared_ptr<const SubQueryTable> table,
                        bool pinned) {
  // Republish to the cross-query cache (best-effort, never pinned: pins
  // belong to this run's scheduler, not the shared LRU).
  if (shared_ != nullptr) {
    shared_->Add(shared_prefix_ + key, table, /*pinned=*/false);
  }
  const size_t bytes = table->ByteSize();
  const size_t home_index = ShardIndex(key);
  Shard& home = *shards_[home_index];
  {
    std::lock_guard<std::mutex> lock(home.mu);
    RemoveLocked(home, key);  // re-inserting an existing key replaces it
    if (bytes > budget_) {
      ++home.stats.rejected_too_large;
      return false;
    }
  }
  // Reserve the new entry's bytes, then evict — one shard locked at a
  // time, the home shard first — until the global budget holds again.
  size_t used =
      bytes_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  while (used > budget_) {
    bool evicted = false;
    for (size_t off = 0; off < shards_.size() && !evicted; ++off) {
      evicted = EvictOneFrom(*shards_[(home_index + off) % shards_.size()]);
    }
    if (!evicted) {  // everything left is pinned
      bytes_used_.fetch_sub(bytes, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(home.mu);
      ++home.stats.rejected_too_large;
      return false;
    }
    used = bytes_used_.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(home.mu);
    // A racing Add of the same key may have landed while unlocked.
    RemoveLocked(home, key);
    home.lru.push_front(key);
    Entry e;
    e.table = std::move(table);
    e.bytes = bytes;
    e.pinned = pinned;
    e.lru_it = home.lru.begin();
    home.entries.emplace(key, std::move(e));
    ++home.stats.insertions;
  }
  UpdatePeak();
  return true;
}

void SubQueryCache::Remove(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  RemoveLocked(shard, key);
}

void SubQueryCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    size_t bytes = 0;
    for (const auto& [key, e] : shard->entries) {
      (void)key;
      bytes += e.bytes;
    }
    bytes_used_.fetch_sub(bytes, std::memory_order_relaxed);
    shard->entries.clear();
    shard->lru.clear();
  }
}

void SubQueryCache::Unpin(const std::string& key) {
  Shard& shard = *shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) it->second.pinned = false;
}

int64_t SubQueryCache::NumEntries() const {
  int64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += static_cast<int64_t>(shard->entries.size());
  }
  return n;
}

}  // namespace s4
