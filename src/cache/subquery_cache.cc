#include "cache/subquery_cache.h"

#include <algorithm>

namespace s4 {

std::shared_ptr<const SubQueryTable> SubQueryCache::Get(
    const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  Touch(it->second, key);
  return it->second.table;
}

void SubQueryCache::Touch(Entry& e, const std::string& key) {
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
}

bool SubQueryCache::EvictUntil(size_t needed) {
  while (bytes_used_ + needed > budget_) {
    // Evict the least-recently-used unpinned entry.
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (!entries_.at(*it).pinned) {
        victim = std::prev(it.base());
        break;
      }
    }
    if (victim == lru_.end()) return false;  // everything pinned
    auto eit = entries_.find(*victim);
    bytes_used_ -= eit->second.bytes;
    lru_.erase(victim);
    entries_.erase(eit);
    ++stats_.evictions;
  }
  return true;
}

bool SubQueryCache::Add(const std::string& key,
                        std::shared_ptr<const SubQueryTable> table,
                        bool pinned) {
  const size_t bytes = table->ByteSize();
  Remove(key);
  if (bytes > budget_ || !EvictUntil(bytes)) {
    ++stats_.rejected_too_large;
    return false;
  }
  lru_.push_front(key);
  Entry e;
  e.table = std::move(table);
  e.bytes = bytes;
  e.pinned = pinned;
  e.lru_it = lru_.begin();
  entries_.emplace(key, std::move(e));
  bytes_used_ += bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, bytes_used_);
  ++stats_.insertions;
  return true;
}

void SubQueryCache::Remove(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_used_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void SubQueryCache::Clear() {
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

void SubQueryCache::Unpin(const std::string& key) {
  auto it = entries_.find(key);
  if (it != entries_.end()) it->second.pinned = false;
}

}  // namespace s4
