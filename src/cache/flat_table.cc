#include "cache/flat_table.h"

namespace s4 {

size_t FlatMap64::CapacityFor(size_t n) {
  size_t capacity = kMinCapacity;
  // Max load factor 3/4: n keys need capacity >= ceil(4n/3).
  while (capacity * 3 < n * 4) capacity *= 2;
  return capacity;
}

void FlatMap64::Reserve(size_t n) {
  const size_t target = CapacityFor(n);
  if (target > vals_.size()) Grow(target);
}

void FlatMap64::Grow(size_t new_capacity) {
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_vals = std::move(vals_);
  keys_ = std::vector<int64_t>(new_capacity);
  vals_ = std::vector<uint32_t>(new_capacity, kNotFound);
  int shift = 64;
  for (size_t c = new_capacity; c > 1; c >>= 1) --shift;
  shift_ = shift;
  size_ = 0;
  bool inserted = false;
  for (size_t i = 0; i < old_vals.size(); ++i) {
    if (old_vals[i] != kNotFound) {
      FindOrInsert(old_keys[i], old_vals[i], &inserted);
    }
  }
}

}  // namespace s4
