#include "cache/flat_table.h"

#include <algorithm>

namespace s4 {

size_t FlatMap64::CapacityFor(size_t n) {
  size_t capacity = kMinCapacity;
  // Max load factor 3/4: n keys need capacity >= ceil(4n/3).
  while (capacity * 3 < n * 4) capacity *= 2;
  return capacity;
}

void FlatMap64::Reserve(size_t n) {
  const size_t target = CapacityFor(n);
  if (target > vals_.size()) Grow(target);
}

void FlatMap64::FindBatch(const int64_t* keys, size_t n,
                          uint32_t* out) const {
  if (size_ == 0) {
    std::fill(out, out + n, kNotFound);
    return;
  }
  uint64_t hashes[kBatchWidth];
  for (size_t lo = 0; lo < n; lo += kBatchWidth) {
    const size_t m = std::min(n - lo, kBatchWidth);
    // Pass 1: hash the whole chunk and prefetch each key's ideal tag
    // group and key cache line, so the (likely) misses are all in
    // flight before any walk needs its data.
    for (size_t j = 0; j < m; ++j) {
      const uint64_t h = Mix(keys[lo + j]);
      hashes[j] = h;
      const size_t i = static_cast<size_t>(h >> shift_);
      __builtin_prefetch(tags_.data() + (i & ~(kGroupWidth - 1)), 0, 3);
      __builtin_prefetch(keys_.data() + i, 0, 3);
    }
    // Pass 2: resolve the probes; each walk starts on a warmed line.
    for (size_t j = 0; j < m; ++j) {
      out[lo + j] = FindHashed(keys[lo + j], hashes[j]);
    }
  }
}

void FlatMap64::Grow(size_t new_capacity) {
  std::vector<int64_t> old_keys = std::move(keys_);
  std::vector<uint32_t> old_vals = std::move(vals_);
  std::vector<uint8_t> old_tags = std::move(tags_);
  keys_ = std::vector<int64_t>(new_capacity);
  vals_ = std::vector<uint32_t>(new_capacity, kNotFound);
  tags_ = std::vector<uint8_t>(new_capacity, 0);
  int shift = 64;
  for (size_t c = new_capacity; c > 1; c >>= 1) --shift;
  shift_ = shift;
  size_ = 0;
  bool inserted = false;
  for (size_t i = 0; i < old_vals.size(); ++i) {
    if (old_tags[i] != 0) {
      FindOrInsert(old_keys[i], old_vals[i], &inserted);
    }
  }
}

}  // namespace s4
