#ifndef S4_ENUMERATE_ENUMERATOR_H_
#define S4_ENUMERATE_ENUMERATOR_H_

#include <vector>

#include "common/status.h"
#include "query/pj_query.h"
#include "schema/schema_graph.h"
#include "score/score_context.h"

namespace s4 {

struct EnumerationOptions {
  // Maximum number of relations |J| in a join tree (candidate-network
  // size cap, standard in keyword-search enumeration [5,12,13]).
  int32_t max_tree_size = 5;
  // Hard cap on emitted candidate queries (safety valve for adversarial
  // schemas; enumeration stops once reached).
  int64_t max_queries = 500000;
  // Columns of the example spreadsheet to map. Empty = all columns
  // (AND semantics). The OR-semantics driver passes proper subsets.
  std::vector<int32_t> active_columns;
  // OR-column-mapping semantics (Appendix A.3, "more direct way"):
  // candidates may map any non-empty subset of the active columns, i.e.
  // phi maps unmatched columns to ⊥. Default (false) is AND semantics.
  bool or_semantics = false;
  // Root canonical join trees at the relation with the fewest rows so
  // expensive relations sit in shareable subtrees (see DESIGN.md).
  // Disable to fall back to pure signature-based rooting (ablation).
  bool cost_aware_rooting = true;
};

// A candidate PJ query with its upper-bound score (Prop 2), produced
// during enumeration without executing any join.
struct CandidateQuery {
  PJQuery query;
  double upper_bound = 0.0;   // score̅(Q) = score_col / (1+ln(1+ln|J|))
  double column_score = 0.0;  // score_col(T | Q), exact (Eq. 4)
};

struct EnumerationStats {
  int64_t trees_explored = 0;   // partial trees popped from the queue
  int64_t trees_complete = 0;   // distinct trees with all leaves relevant
  int64_t queries_emitted = 0;
  int64_t pruned_minimality = 0;  // assignments violating Def 3(i)
  bool truncated = false;         // hit max_queries
};

struct EnumerationResult {
  std::vector<CandidateQuery> candidates;
  EnumerationStats stats;
};

// Enumerates the candidate set Q_C of minimal PJ queries for the
// spreadsheet behind `ctx` (Sec 4.1.1): grows connected subtrees of the
// schema graph (relation instances allowed, both edge orientations) whose
// leaves are relations holding candidate projection columns, then assigns
// each active spreadsheet column to a candidate column of some tree node,
// pruning assignments that violate minimality. Upper bounds come from the
// precomputed column scores, so no join is executed.
EnumerationResult EnumerateCandidates(const SchemaGraph& graph,
                                      const ScoreContext& ctx,
                                      const EnumerationOptions& options = {});

}  // namespace s4

#endif  // S4_ENUMERATE_ENUMERATOR_H_
