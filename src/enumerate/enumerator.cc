#include "enumerate/enumerator.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "index/column_ids.h"
#include "score/score_model.h"

namespace s4 {

namespace {

// Per-table candidate projection columns: table -> list of
// (es_column, column_index) pairs that some spreadsheet column may map to.
using TableTargets =
    std::unordered_map<TableId, std::vector<std::pair<int32_t, int32_t>>>;

// True if adding a child to `v` over (edge, dir) would recreate the same
// referenced row as an existing neighbor: a forward edge determines a
// single row (the one v's FK points at), so duplicating it as a second
// child — or bouncing back to the parent v was reached from — yields a
// redundant relation instance (CN pruning as in DISCOVER [13]).
bool IsRedundantExpansion(const JoinTree& tree, TreeNodeId v,
                          SchemaEdgeId edge, EdgeDir dir) {
  if (dir != EdgeDir::kForward) return false;
  const JoinTree::Node& vn = tree.node(v);
  if (vn.parent != kNoNode && vn.edge_to_parent == edge &&
      !vn.parent_holds_fk) {
    // v reached its parent through this very FK; the FK value is fixed,
    // so the "new" child would be the parent row again.
    return true;
  }
  for (TreeNodeId c : tree.ChildrenOf(v)) {
    const JoinTree::Node& cn = tree.node(c);
    if (cn.edge_to_parent == edge && cn.parent_holds_fk) return true;
  }
  return false;
}

class Assigner {
 public:
  Assigner(const JoinTree& tree, const TableTargets& targets,
           const std::vector<int32_t>& active, const ScoreContext& ctx,
           const ColumnIds& cols, const EnumerationOptions& options,
           EnumerationResult* result,
           std::unordered_set<std::string>* emitted)
      : tree_(tree),
        active_(active),
        ctx_(ctx),
        cols_(cols),
        options_(options),
        result_(result),
        emitted_(emitted) {
    // Root-choice weights: relation row counts, so the canonical root is
    // the cheapest relation and expensive relations end up in shareable
    // subtrees (Sec 5.3.2).
    root_weights_.reserve(tree.size());
    for (TreeNodeId v = 0; v < tree.size(); ++v) {
      root_weights_.push_back(
          ctx.index().snapshot().NumRows(tree.node(v).table));
    }
    // Targets of each active spreadsheet column within this tree.
    per_column_.resize(active.size());
    for (size_t a = 0; a < active.size(); ++a) {
      int32_t es_col = active[a];
      for (TreeNodeId v = 0; v < tree.size(); ++v) {
        auto it = targets.find(tree.node(v).table);
        if (it == targets.end()) continue;
        for (const auto& [col_es, col_idx] : it->second) {
          if (col_es == es_col) per_column_[a].emplace_back(v, col_idx);
        }
      }
    }
  }

  bool Feasible() const {
    if (options_.or_semantics) return true;
    for (const auto& t : per_column_) {
      if (t.empty()) return false;
    }
    return true;
  }

  void Run() {
    bindings_.clear();
    Recurse(0);
  }

 private:
  void Recurse(size_t a) {
    if (result_->stats.truncated) return;
    if (a == per_column_.size()) {
      // Under OR semantics a candidate must still map at least one
      // column (an all-unmapped query scores 0 and is never minimal).
      if (!bindings_.empty()) Emit();
      return;
    }
    for (const auto& [node, col] : per_column_[a]) {
      bindings_.push_back(ProjectionBinding{active_[a], node, col});
      Recurse(a + 1);
      bindings_.pop_back();
    }
    if (options_.or_semantics) {
      // phi(active_[a]) = ⊥: leave this spreadsheet column unmapped.
      Recurse(a + 1);
    }
  }

  void Emit() {
    // Def 3(i): every degree-<=1 node must carry a mapped column.
    std::vector<bool> bound(tree_.size(), false);
    for (const ProjectionBinding& b : bindings_) bound[b.node] = true;
    for (TreeNodeId v = 0; v < tree_.size(); ++v) {
      if (tree_.Degree(v) <= 1 && !bound[v]) {
        ++result_->stats.pruned_minimality;
        return;
      }
    }
    PJQuery q(tree_, bindings_,
              options_.cost_aware_rooting ? &root_weights_ : nullptr);
    if (!emitted_->insert(q.signature()).second) return;

    CandidateQuery cand;
    double score_col = 0.0;
    for (const ProjectionBinding& b : q.bindings()) {
      int32_t gid = cols_.Gid(
          ColumnRef{q.tree().node(b.node).table, b.column});
      score_col += ctx_.ColumnScore(b.es_column, gid);
    }
    cand.column_score = score_col;
    cand.upper_bound = UpperBoundFromColumnScore(score_col, q.tree().size());
    cand.query = std::move(q);
    result_->candidates.push_back(std::move(cand));
    if (++result_->stats.queries_emitted >= options_.max_queries) {
      result_->stats.truncated = true;
    }
  }

  const JoinTree& tree_;
  const std::vector<int32_t>& active_;
  const ScoreContext& ctx_;
  const ColumnIds& cols_;
  const EnumerationOptions& options_;
  EnumerationResult* result_;
  std::unordered_set<std::string>* emitted_;
  std::vector<int64_t> root_weights_;
  std::vector<std::vector<std::pair<TreeNodeId, int32_t>>> per_column_;
  std::vector<ProjectionBinding> bindings_;
};

}  // namespace

EnumerationResult EnumerateCandidates(const SchemaGraph& graph,
                                      const ScoreContext& ctx,
                                      const EnumerationOptions& options) {
  EnumerationResult result;

  std::vector<int32_t> active = options.active_columns;
  if (active.empty()) {
    for (int32_t i = 0; i < ctx.NumEsColumns(); ++i) active.push_back(i);
  }

  const ColumnIds& cols = ctx.index().column_ids();
  TableTargets targets;
  for (int32_t es_col : active) {
    for (int32_t gid : ctx.CandidateColumns(es_col)) {
      const ColumnRef& ref = cols.FromGid(gid);
      targets[ref.table_id].emplace_back(es_col, ref.column_index);
    }
  }
  if (targets.empty()) return result;

  // Breadth-first growth of connected subtrees (relation instances) whose
  // leaves are relations holding candidate columns, deduplicated by
  // unrooted canonical signature.
  std::deque<JoinTree> queue;
  std::unordered_set<std::string> seen;
  std::vector<JoinTree> complete;
  for (const auto& [table, t] : targets) {
    (void)t;
    JoinTree tree = JoinTree::Single(table);
    std::string sig = tree.UnrootedSignature({std::string()});
    if (seen.insert(sig).second) queue.push_back(std::move(tree));
  }

  // Safety valve: the number of distinct partial trees explored is capped
  // proportionally to the query cap.
  const int64_t max_trees = options.max_queries * 4 + 4096;

  while (!queue.empty()) {
    JoinTree tree = std::move(queue.front());
    queue.pop_front();
    ++result.stats.trees_explored;

    bool all_leaves_relevant = true;
    for (TreeNodeId leaf : tree.Leaves()) {
      if (targets.find(tree.node(leaf).table) == targets.end()) {
        all_leaves_relevant = false;
        break;
      }
    }
    if (all_leaves_relevant) {
      ++result.stats.trees_complete;
      complete.push_back(tree);
    }

    if (tree.size() >= options.max_tree_size ||
        result.stats.trees_explored >= max_trees) {
      continue;
    }
    for (TreeNodeId v = 0; v < tree.size(); ++v) {
      for (const SchemaGraph::Incidence& inc :
           graph.IncidentEdges(tree.node(v).table)) {
        if (IsRedundantExpansion(tree, v, inc.edge, inc.dir)) continue;
        JoinTree grown = tree;
        grown.AddChild(v, graph, inc.edge, inc.dir);
        std::string sig = grown.UnrootedSignature(
            std::vector<std::string>(grown.size()));
        if (seen.insert(sig).second) queue.push_back(std::move(grown));
      }
    }
  }

  // Column-mapping assignment per complete tree.
  std::unordered_set<std::string> emitted;
  for (const JoinTree& tree : complete) {
    if (result.stats.truncated) break;
    Assigner assigner(tree, targets, active, ctx, cols, options, &result,
                      &emitted);
    if (!assigner.Feasible()) continue;
    assigner.Run();
  }
  return result;
}

}  // namespace s4
