#ifndef S4_DIST_COORDINATOR_H_
#define S4_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace s4::dist {

// One shard endpoint of a scatter-gather deployment. Every shard serves
// the same schema graph and indexes; the candidate space is partitioned
// by ShardOfSignature (strategy.h), so slice `i` of `N` answers exactly
// the PJ-queries whose fingerprint hashes to `i`.
struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  std::vector<ShardAddress> shards;
  double connect_timeout_seconds = 2.0;
  // Overall search budget when the request does not carry its own
  // deadline. The coordinator always returns within the budget — a
  // shard that cannot answer in time degrades the result instead of
  // extending it.
  double request_timeout_seconds = 30.0;
  // Fraction of the remaining coordinator budget granted to each shard
  // exchange as its server-side deadline, reserving headroom for the
  // final merge and the network.
  double shard_deadline_fraction = 0.9;
  // Bounded retries per shard, applied only to retryable failures
  // (ResourceExhausted — admission backpressure), never to timeouts.
  int32_t max_retries = 1;
  // Partial-streaming cadence forwarded to the shards: a kShardPartial
  // every this many strategy progress snapshots (0 = finals only, which
  // also disables cross-shard early stopping).
  uint32_t partial_every = 1;
  // When true, every Search records a coordinator trace (dist/scatter,
  // dist/shard_exchange, dist/merge spans) retrievable via last_trace().
  bool enable_tracing = false;
};

// Per-shard outcome of one distributed search (diagnostics).
struct DistShardStats {
  int32_t shard_index = 0;
  bool reached = false;         // contributed data to the merge
  bool early_stopped = false;   // coordinator sent kShardStop
  int32_t retries = 0;
  int64_t partials = 0;         // kShardPartial frames received
  int64_t queries_enumerated = 0;  // slice size (any partial/done frame)
  int64_t queries_evaluated = 0;
  double wall_seconds = 0.0;
  std::string error;  // last failure message when not reached
};

// Result of a scatter-gather search. When `complete` is false one or
// more shards were unreached (timeout / disconnect / non-retryable
// error); `topk` is then the exact top-k of the union of the reached
// slices — a consistent answer over a subset of the candidate space,
// never a corrupted one.
struct DistSearchResult {
  std::vector<net::NetTopkEntry> topk;
  bool complete = true;
  // True when any merged shard answer was approximate (sampling-resolved
  // entries or an epsilon-relaxed shard termination), or when the
  // coordinator itself early-stopped a shard under the epsilon-relaxed
  // dominance rule. The merged top-k is then correct up to the per-entry
  // intervals and the requested approx_epsilon.
  bool approximate = false;
  std::vector<int32_t> unreached_shards;

  int64_t queries_enumerated = 0;  // summed over reached shards
  int64_t queries_evaluated = 0;
  int64_t partials_received = 0;
  int64_t early_stops_sent = 0;
  std::vector<DistShardStats> shards;
  double wall_seconds = 0.0;

  // Cluster-wide resource profile, filled when the request set
  // want_profile: every reached shard's QueryProfile accumulated (work
  // counters summed, the timing envelope re-stamped with the
  // coordinator's own wall clock) plus one ShardProfile row per shard.
  obs::QueryProfile profile;
};

// Per-shard outcome of one broadcast write.
struct DistShardMutate {
  int32_t shard_index = 0;
  bool reached = false;  // got a kMutateResponse back
  net::NetMutateResponse response;
  std::string error;  // transport / admission failure when not reached
};

// Result of broadcasting one mutation batch to every shard. Shards all
// hold the full database (only the candidate space is partitioned), so
// a write must land everywhere; `complete` means every shard applied
// the whole batch. A diverged shard (unreached, or applied a shorter
// prefix) serves stale/partial epochs until an operator re-syncs it —
// the per-shard slots say exactly which and why.
struct DistMutateResult {
  bool complete = true;
  int64_t applied = 0;  // min applied count over reached shards
  std::vector<int32_t> diverged_shards;
  std::vector<DistShardMutate> shards;
  double wall_seconds = 0.0;
};

// Scatter-gather coordinator over N S4Server shards (DESIGN.md
// "Distributed serving"). Fans a search out as kShardSearchRequest
// exchanges, one blocking connection per shard, merges the streamed
// kShardPartial snapshots under the global top-k, and sends kShardStop
// to any shard whose remaining upper bound can no longer beat the
// merged kth score — the FASTTOPK termination condition (7) lifted to
// cluster scope. Thread-safe: concurrent Search calls share nothing but
// the process-wide metrics registry.
class S4Coordinator {
 public:
  explicit S4Coordinator(CoordinatorOptions options);

  // Fans `request` out over every configured shard and merges. Returns
  // a Status error only for coordinator-level failures (no shards
  // configured, invalid request rejected by every shard); partial
  // failures degrade the DistSearchResult instead.
  StatusOr<DistSearchResult> Search(const net::NetSearchRequest& request);

  // Broadcasts one mutation batch to every shard, serialized under a
  // coordinator-wide write lock so concurrent Mutate calls reach all
  // shards in one identical order (shards then publish identical
  // epochs). Returns a Status error only when no shards are configured
  // or the batch is empty; per-shard failures degrade the result.
  StatusOr<DistMutateResult> Mutate(const std::vector<Mutation>& mutations);

  // Trace of the most recent Search (nullptr unless enable_tracing).
  std::shared_ptr<obs::Trace> last_trace() const;

  size_t num_shards() const { return options_.shards.size(); }

 private:
  struct MergeState;

  // Runs the full exchange against shard `index`, including bounded
  // retries. Marks the slot done/lost under the merge lock.
  void ExchangeShard(MergeState& state, int32_t index,
                     const net::NetSearchRequest& request, obs::Trace* trace);
  // One connect/send/stream attempt. OK = the slot holds merged data.
  Status RunExchangeOnce(MergeState& state, int32_t index,
                         const net::NetSearchRequest& request);
  // Under state.mu: recomputes the merged kth score and sends
  // kShardStop to every live shard that can no longer contribute.
  void CheckEarlyStops(MergeState& state);

  CoordinatorOptions options_;
  std::atomic<uint64_t> next_request_id_{1};

  // Serializes write broadcasts: every shard sees every batch in the
  // same order, which (deterministic apply) keeps their epochs
  // bit-identical.
  std::mutex mutate_mu_;

  mutable std::mutex trace_mu_;
  std::shared_ptr<obs::Trace> last_trace_;
};

}  // namespace s4::dist

#endif  // S4_DIST_COORDINATOR_H_
