#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <thread>
#include <utility>

#include "common/fd.h"
#include "common/string_util.h"
#include "net/client.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

namespace s4::dist {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double Elapsed(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Remaining budget for the socket helpers: 0 budget = no deadline, and
// an exhausted budget becomes an immediate timeout rather than falling
// through to "no deadline" (same convention as the client).
double Remaining(std::chrono::steady_clock::time_point start,
                 double budget_seconds) {
  if (budget_seconds <= 0.0) return 0.0;
  return std::max(budget_seconds - Elapsed(start), 1e-4);
}

// Global merge order: score descending, then signature ascending — the
// same canonical total order TopKHeap uses for boundary ties, so the
// merged prefix is bit-identical to the single-node selection
// (signatures are unique candidate identities; this is a total order).
bool MergeBefore(const net::NetTopkEntry& a, const net::NetTopkEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.signature < b.signature;
}

}  // namespace

struct S4Coordinator::MergeState {
  struct Slot {
    // --- guarded by MergeState::mu ---------------------------------
    std::vector<net::NetTopkEntry> topk;  // latest snapshot (disjoint slice)
    double remaining_ub = kInf;
    bool approximate = false;  // shard answered approximately
    bool reported = false;   // at least one partial/done merged
    bool done = false;       // exchange finished with usable data
    bool lost = false;       // shard unreached; its data is dropped
    bool stop_sent = false;  // kShardStop issued for this exchange
    uint64_t exchange_id = 0;
    Status failure = Status::OK();  // final status of a lost shard
    DistShardStats stats;
    // Per-shard resource profile from kShardDone (want_profile only).
    bool has_profile = false;
    obs::QueryProfile profile;
    // --- stop-frame channel ----------------------------------------
    // The exchange socket, published while the exchange thread blocks
    // reading it, so CheckEarlyStops can write a kShardStop on the same
    // full-duplex connection. Lock order: MergeState::mu before io_mu.
    std::mutex io_mu;
    int fd = -1;
  };

  MergeState(size_t n, int32_t k, double approx_epsilon)
      : k(k), approx_epsilon(approx_epsilon) {
    slots.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      slots.push_back(std::make_unique<Slot>());
      slots.back()->stats.shard_index = static_cast<int32_t>(i);
    }
  }

  const int32_t k;
  // Request-level epsilon: > 0 arms the relaxed early-stop rule below.
  const double approx_epsilon;

  std::chrono::steady_clock::time_point start{};
  double budget = 0.0;

  // Stitching context (null / 0 when tracing is off): every shard
  // request carries trace->trace_id() and the scatter span id so
  // returned segments nest under the scatter on one shared timeline.
  obs::Trace* trace = nullptr;
  uint64_t scatter_span_id = 0;

  std::mutex mu;
  std::vector<std::unique_ptr<Slot>> slots;
  int64_t partials_received = 0;
  int64_t early_stops_sent = 0;
  // A relaxed (interval-dominance) stop was issued: the merged result
  // must be flagged approximate even if every entry was evaluated
  // exactly, because a stopped shard might still have held a candidate
  // within epsilon of the merged kth.
  bool relaxed_stop = false;
};

S4Coordinator::S4Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {}

std::shared_ptr<obs::Trace> S4Coordinator::last_trace() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return last_trace_;
}

void S4Coordinator::CheckEarlyStops(MergeState& state) {
  // The merged kth score over the current snapshots only rises as more
  // frames arrive, so `kth > shard.remaining_ub` observed now stays
  // true at the end of the search: nothing that shard has yet to
  // evaluate can enter the global top-k (the FASTTOPK condition (7)
  // across shards; strict, so an exact ub == kth tie is still evaluated
  // and resolved under the canonical signature order). Stale
  // remaining_ub values are safe overestimates — they only delay a
  // stop, never cause a wrong one.
  if (state.k <= 0) return;
  std::vector<double> scores;
  for (const auto& slot : state.slots) {
    if (slot->lost) continue;
    for (const auto& e : slot->topk) scores.push_back(e.score);
  }
  if (scores.size() < static_cast<size_t>(state.k)) return;
  std::nth_element(scores.begin(), scores.begin() + (state.k - 1),
                   scores.end(), std::greater<double>());
  const double kth = scores[state.k - 1];
  for (auto& sp : state.slots) {
    MergeState::Slot& slot = *sp;
    if (slot.done || slot.lost || slot.stop_sent || !slot.reported) continue;
    // Exact dominance: nothing the shard has left can beat the merged
    // kth. Relaxed (interval) dominance: under approx_epsilon the
    // request already accepts any answer within kth * (1 + epsilon), so
    // a shard whose remaining upper bound is inside that slack can be
    // stopped too — at the cost of flagging the merge approximate.
    // Approximate entry scores are interval lower bounds, which only
    // under-estimate the merged kth; both rules stay sound, they just
    // stop later than perfect information would allow.
    const bool exact_stop = kth > slot.remaining_ub;
    const bool relaxed_stop =
        state.approx_epsilon > 0.0 &&
        slot.remaining_ub <= kth * (1.0 + state.approx_epsilon);
    if (!exact_stop && !relaxed_stop) continue;
    if (!exact_stop) state.relaxed_stop = true;
    slot.stop_sent = true;
    const std::string frame = net::EncodeShardStopFrame(
        slot.exchange_id,
        next_request_id_.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> io(slot.io_mu);
    // A failed or late delivery is harmless: the shard just finishes
    // its slice and the kShardDone merges like any other.
    if (slot.fd >= 0 &&
        net::SendAll(slot.fd, frame.data(), frame.size(), 0.25).ok()) {
      slot.stats.early_stopped = true;
      ++state.early_stops_sent;
      obs::MetricsRegistry::Global()
          .GetCounter("s4_dist_early_stops_sent")
          .Increment();
    }
  }
}

Status S4Coordinator::RunExchangeOnce(MergeState& state, int32_t index,
                                      const net::NetSearchRequest& request) {
  MergeState::Slot& slot = *state.slots[index];
  {
    // Reset anything a failed previous attempt left behind.
    std::lock_guard<std::mutex> lock(state.mu);
    slot.topk.clear();
    slot.remaining_ub = kInf;
    slot.approximate = false;
    slot.reported = false;
    slot.stop_sent = false;
  }
  const double remaining = Remaining(state.start, state.budget);
  if (state.budget > 0.0 && remaining <= 1e-3) {
    return Status::DeadlineExceeded(
        "coordinator budget exhausted before the shard exchange");
  }
  const double connect_budget =
      state.budget > 0.0
          ? std::min(options_.connect_timeout_seconds, remaining)
          : options_.connect_timeout_seconds;
  auto fd_or = net::ConnectWithTimeout(options_.shards[index].host,
                                       options_.shards[index].port,
                                       connect_budget);
  if (!fd_or.ok()) return fd_or.status();
  UniqueFd fd = std::move(*fd_or);

  net::NetShardSearchRequest sreq;
  sreq.base = request;
  sreq.shard_count = static_cast<int32_t>(options_.shards.size());
  sreq.shard_index = index;
  sreq.partial_every = options_.partial_every;
  if (state.trace != nullptr) {
    // Cross-shard trace propagation: the shard records its own segment
    // under our trace id and ships it back on kShardDone; the origin
    // wall-clock lets the import normalize the two machines' clocks.
    sreq.want_trace = true;
    sreq.trace_id = state.trace->trace_id();
    sreq.parent_span_id = state.scatter_span_id;
    sreq.origin_unix_us = state.trace->origin_unix_us();
  }
  if (state.budget > 0.0) {
    // Grant the shard a slice of what is left, keeping headroom for the
    // final merge and the wire.
    sreq.base.deadline_seconds =
        std::max(Remaining(state.start, state.budget) *
                     options_.shard_deadline_fraction,
                 1e-3);
  }
  const uint64_t id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  const std::string frame = net::EncodeShardSearchRequestFrame(sreq, id);

  {
    std::lock_guard<std::mutex> lock(state.mu);
    slot.exchange_id = id;
  }
  {
    std::lock_guard<std::mutex> io(slot.io_mu);
    slot.fd = fd.get();
  }
  const auto unpublish = [&slot] {
    std::lock_guard<std::mutex> io(slot.io_mu);
    slot.fd = -1;
  };

  Status st = net::SendAll(fd.get(), frame.data(), frame.size(),
                           Remaining(state.start, state.budget));
  if (!st.ok()) {
    unpublish();
    return st;
  }
  while (true) {
    char header[net::kHeaderBytes];
    st = net::RecvAll(fd.get(), header, net::kHeaderBytes,
                      Remaining(state.start, state.budget));
    if (!st.ok()) {
      unpublish();
      return st;
    }
    net::FrameHeader h;
    st = net::DecodeFrameHeader(std::string_view(header, net::kHeaderBytes),
                                &h);
    if (!st.ok()) {
      unpublish();
      return st;
    }
    if (h.payload_len > net::kDefaultMaxFrameBytes) {
      unpublish();
      return Status::Internal(
          StrFormat("shard %d sent an oversized frame (%u bytes)", index,
                    h.payload_len));
    }
    std::string payload(h.payload_len, '\0');
    if (h.payload_len > 0) {
      st = net::RecvAll(fd.get(), payload.data(), payload.size(),
                        Remaining(state.start, state.budget));
      if (!st.ok()) {
        unpublish();
        return st;
      }
    }
    if (h.request_id != id) {
      unpublish();
      return Status::Internal(
          StrFormat("shard %d stream out of sync: frame for request %llu "
                    "while waiting for %llu",
                    index, static_cast<unsigned long long>(h.request_id),
                    static_cast<unsigned long long>(id)));
    }
    switch (h.type) {
      case net::FrameType::kShardPartial: {
        net::NetShardPartial partial;
        st = net::DecodeShardPartial(payload, &partial);
        if (!st.ok()) {
          unpublish();
          return st;
        }
        std::lock_guard<std::mutex> lock(state.mu);
        slot.topk = std::move(partial.topk);
        slot.remaining_ub = partial.remaining_upper_bound;
        // Partial frames carry no response-level flag; an entry-level
        // one is just as binding for the merge.
        for (const auto& e : slot.topk) slot.approximate |= e.approximate;
        slot.reported = true;
        slot.stats.queries_enumerated = partial.enumerated;
        slot.stats.queries_evaluated = partial.evaluated;
        ++slot.stats.partials;
        ++state.partials_received;
        CheckEarlyStops(state);
        break;
      }
      case net::FrameType::kShardDone: {
        net::NetShardDone done;
        st = net::DecodeShardDone(payload, &done);
        if (!st.ok()) {
          unpublish();
          return st;
        }
        unpublish();
        if (done.has_segment && state.trace != nullptr) {
          // Stitch the shard's timeline in as its own process, nested
          // under the scatter span. Trace has its own lock; pid 2+i
          // keeps shard processes distinct from the coordinator (pid 1).
          state.trace->ImportSegment(done.segment,
                                     /*pid=*/2 + static_cast<uint32_t>(index),
                                     StrFormat("shard %d", index),
                                     state.scatter_span_id);
        }
        std::lock_guard<std::mutex> lock(state.mu);
        slot.topk = std::move(done.response.topk);
        slot.remaining_ub = done.remaining_upper_bound;
        slot.approximate = done.response.approximate;
        slot.reported = true;
        slot.stats.queries_enumerated = done.response.queries_enumerated;
        slot.stats.queries_evaluated = done.response.queries_evaluated;
        slot.has_profile = done.response.has_profile;
        if (slot.has_profile) slot.profile = done.response.profile;
        // This shard's final answer may unlock stops for the others.
        CheckEarlyStops(state);
        return Status::OK();
      }
      case net::FrameType::kError: {
        net::NetError err;
        st = net::DecodeError(payload, &err);
        unpublish();
        if (!st.ok()) return st;
        const Status app = err.ToStatus();
        {
          std::lock_guard<std::mutex> lock(state.mu);
          if (slot.stop_sent &&
              (app.code() == StatusCode::kCancelled ||
               app.code() == StatusCode::kDeadlineExceeded)) {
            // The normal end of an early-stopped exchange: the shard
            // honoured kShardStop (or its deadline fired after ours
            // made it irrelevant). Its last snapshot is final — nothing
            // it had left could beat the merged kth.
            return Status::OK();
          }
        }
        return app;
      }
      default:
        unpublish();
        return Status::Internal(
            StrFormat("unexpected frame type %u in shard %d exchange",
                      static_cast<unsigned>(h.type), index));
    }
  }
}

void S4Coordinator::ExchangeShard(MergeState& state, int32_t index,
                                  const net::NetSearchRequest& request,
                                  obs::Trace* trace) {
  obs::SpanTimer span(trace, "dist", "shard_exchange");
  if (span.enabled()) span.AddArg("shard", StrFormat("%d", index));
  auto& registry = obs::MetricsRegistry::Global();
  MergeState::Slot& slot = *state.slots[index];
  const auto t0 = std::chrono::steady_clock::now();
  Status status = Status::OK();
  for (int32_t attempt = 0;; ++attempt) {
    registry.GetCounter("s4_dist_shard_requests").Increment();
    status = RunExchangeOnce(state, index, request);
    if (status.ok()) break;
    // Only admission backpressure is retryable: the request never ran,
    // so a clean resend is safe. Timeouts and transport failures are
    // not — retrying them would blow the coordinator's budget.
    if (status.code() == StatusCode::kResourceExhausted &&
        attempt < options_.max_retries &&
        (state.budget <= 0.0 || Elapsed(state.start) < state.budget)) {
      std::lock_guard<std::mutex> lock(state.mu);
      ++slot.stats.retries;
      registry.GetCounter("s4_dist_retries").Increment();
      continue;
    }
    break;
  }
  std::lock_guard<std::mutex> lock(state.mu);
  slot.stats.wall_seconds = Elapsed(t0);
  if (status.ok()) {
    slot.done = true;
    slot.stats.reached = true;
  } else {
    // Drop everything this shard reported: a lost shard's slice is
    // excluded wholesale so the degraded result stays the exact top-k
    // of the union of reached slices (a partial snapshot would be a
    // third, weaker kind of answer).
    slot.lost = true;
    slot.topk.clear();
    slot.failure = status;
    slot.stats.error = std::string(status.message());
    registry.GetCounter("s4_dist_shard_failures").Increment();
  }
}

StatusOr<DistSearchResult> S4Coordinator::Search(
    const net::NetSearchRequest& request) {
  const size_t n = options_.shards.size();
  if (n == 0) {
    return Status::InvalidArgument("coordinator has no shards configured");
  }
  if (n > static_cast<size_t>(net::kMaxWireShards)) {
    return Status::InvalidArgument(
        StrFormat("coordinator has %zu shards; the wire caps at %d", n,
                  net::kMaxWireShards));
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("s4_dist_searches").Increment();

  std::shared_ptr<obs::Trace> trace;
  if (options_.enable_tracing) {
    trace = std::make_shared<obs::Trace>("dist_search");
    // One fleet-wide id for the whole distributed request; every shard
    // segment comes back stamped with it.
    trace->set_trace_id(
        next_request_id_.fetch_add(1, std::memory_order_relaxed));
  }

  MergeState state(n, request.k, request.approx_epsilon);
  state.start = std::chrono::steady_clock::now();
  state.budget = request.deadline_seconds > 0.0
                     ? request.deadline_seconds
                     : options_.request_timeout_seconds;
  state.trace = trace.get();

  {
    obs::SpanTimer scatter(trace.get(), "dist", "scatter");
    if (scatter.enabled()) scatter.AddArg("shards", StrFormat("%zu", n));
    // The span id exists from construction, so shard requests sent
    // while the scatter is still open can already name their parent.
    state.scatter_span_id = scatter.span_id();
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, &state, &request, trace, i] {
        ExchangeShard(state, static_cast<int32_t>(i), request, trace.get());
      });
    }
    for (auto& t : threads) t.join();
  }

  DistSearchResult result;
  {
    obs::SpanTimer merge(trace.get(), "dist", "merge");
    std::lock_guard<std::mutex> lock(state.mu);
    std::vector<net::NetTopkEntry> merged;
    for (auto& sp : state.slots) {
      MergeState::Slot& slot = *sp;
      if (slot.lost) {
        result.complete = false;
        result.unreached_shards.push_back(slot.stats.shard_index);
      } else {
        merged.insert(merged.end(),
                      std::make_move_iterator(slot.topk.begin()),
                      std::make_move_iterator(slot.topk.end()));
        result.queries_enumerated += slot.stats.queries_enumerated;
        result.queries_evaluated += slot.stats.queries_evaluated;
        result.approximate |= slot.approximate;
        if (slot.has_profile) result.profile.Accumulate(slot.profile);
      }
      if (request.want_profile) {
        obs::ShardProfile sp_row;
        sp_row.shard_index = slot.stats.shard_index;
        sp_row.wall_seconds = slot.stats.wall_seconds;
        sp_row.enumerated = slot.stats.queries_enumerated;
        sp_row.evaluated = slot.stats.queries_evaluated;
        sp_row.partials = slot.stats.partials;
        sp_row.lost = slot.lost;
        sp_row.approximate = slot.approximate;
        result.profile.shards.push_back(sp_row);
      }
      result.shards.push_back(slot.stats);
    }
    result.approximate |= state.relaxed_stop;
    std::sort(merged.begin(), merged.end(), MergeBefore);
    if (request.k >= 0 &&
        merged.size() > static_cast<size_t>(request.k)) {
      merged.resize(static_cast<size_t>(request.k));
    }
    result.topk = std::move(merged);
    result.partials_received = state.partials_received;
    result.early_stops_sent = state.early_stops_sent;
  }
  result.wall_seconds = Elapsed(state.start);
  // The timing envelope is the coordinator's, not any one shard's.
  result.profile.total_seconds = result.wall_seconds;
  result.profile.queue_seconds = 0.0;

  registry.GetHistogram("s4_dist_search_seconds")
      .Observe(result.wall_seconds);
  registry.GetCounter("s4_dist_partials_received")
      .Add(result.partials_received);
  if (!result.complete) {
    registry.GetCounter("s4_dist_degraded_results").Increment();
  }
  if (trace) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    last_trace_ = trace;
  }

  // A search that reached no shard at all has no answer to degrade:
  // surface the first shard's typed failure as the overall status (with
  // one shard that is simply its error; with many it is the
  // request-level error every shard rejected the request with).
  if (result.unreached_shards.size() == n) {
    std::lock_guard<std::mutex> lock(state.mu);
    for (const auto& sp : state.slots) {
      if (!sp->failure.ok()) return sp->failure;
    }
    return Status::Internal(StrFormat("all %zu shards unreached", n));
  }
  return result;
}

StatusOr<DistMutateResult> S4Coordinator::Mutate(
    const std::vector<Mutation>& mutations) {
  if (options_.shards.empty()) {
    return Status::FailedPrecondition("no shards configured");
  }
  if (mutations.empty()) {
    return Status::InvalidArgument("empty mutation batch");
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("s4_dist_mutates").Increment();
  const auto start = std::chrono::steady_clock::now();

  // One broadcast at a time: with every batch reaching all shards in the
  // same order and the apply itself being deterministic, every shard's
  // epoch sequence stays bit-identical. Shards are visited sequentially
  // for the same reason — a parallel fan-out would be faster but could
  // interleave two coordinators' batches differently per shard.
  std::lock_guard<std::mutex> write_lock(mutate_mu_);

  DistMutateResult result;
  result.shards.reserve(options_.shards.size());
  int64_t min_applied = std::numeric_limits<int64_t>::max();
  for (size_t i = 0; i < options_.shards.size(); ++i) {
    DistShardMutate slot;
    slot.shard_index = static_cast<int32_t>(i);
    net::ClientOptions copts;
    copts.host = options_.shards[i].host;
    copts.port = options_.shards[i].port;
    copts.connect_timeout_seconds = options_.connect_timeout_seconds;
    copts.request_timeout_seconds = options_.request_timeout_seconds;
    net::S4Client client(copts);
    auto resp = client.Mutate(mutations);
    if (resp.ok()) {
      slot.reached = true;
      slot.response = std::move(*resp);
      min_applied = std::min(min_applied, slot.response.applied);
      if (slot.response.applied !=
              static_cast<int64_t>(mutations.size()) ||
          !slot.response.error.empty()) {
        result.complete = false;
        result.diverged_shards.push_back(slot.shard_index);
      }
    } else {
      slot.error = std::string(resp.status().message());
      result.complete = false;
      result.diverged_shards.push_back(slot.shard_index);
      registry.GetCounter("s4_dist_mutate_shard_failures").Increment();
    }
    result.shards.push_back(std::move(slot));
  }
  result.applied =
      min_applied == std::numeric_limits<int64_t>::max() ? 0 : min_applied;
  result.wall_seconds = Elapsed(start);
  if (!result.complete) {
    registry.GetCounter("s4_dist_diverged_mutates").Increment();
  }

  // A write that landed nowhere is an error, not a degraded success.
  if (result.diverged_shards.size() == options_.shards.size() &&
      result.applied == 0) {
    bool any_reached = false;
    for (const auto& s : result.shards) any_reached |= s.reached;
    if (!any_reached) {
      return Status::Internal(StrFormat("all %zu shards unreached: %s",
                                        options_.shards.size(),
                                        result.shards[0].error.c_str()));
    }
  }
  return result;
}

}  // namespace s4::dist
