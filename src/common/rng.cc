#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace s4 {

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace s4
