#include "common/table_printer.h"

#include <cstdio>

#include "common/string_util.h"

namespace s4 {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TablePrinter::Int(long long v) { return StrFormat("%lld", v); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace s4
