#ifndef S4_COMMON_THREAD_POOL_H_
#define S4_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace s4 {

// Work-stealing thread pool backing the parallel candidate-evaluation
// path. Tasks are distributed round-robin across per-worker deques; an
// idle worker first drains its own deque from the front and then steals
// from the back of a sibling's deque, keeping owners and thieves on
// opposite ends. Destruction drains every queued task before joining.
//
// ParallelFor blocks the calling thread (it does not execute loop
// bodies), so a pool of N workers gives exactly N evaluation threads.
// Calling ParallelFor from inside a pool task is not supported.
class ThreadPool {
 public:
  // Spawns `num_threads` workers; <= 0 means DefaultThreads().
  explicit ThreadPool(int32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int32_t num_threads() const { return static_cast<int32_t>(workers_.size()); }

  // std::thread::hardware_concurrency(), never less than 1.
  static int32_t DefaultThreads();

  // Lifetime activity counters, readable at any time (relaxed loads;
  // momentarily consistent, never torn). `queued` is the instantaneous
  // backlog; `executed` counts completed tasks; `steals` counts tasks a
  // worker took from a sibling's deque. The service layer republishes
  // these as gauges/counters at stats-collection time so the pool has
  // no dependency on the metrics registry.
  struct Stats {
    int64_t queued = 0;
    int64_t executed = 0;
    int64_t steals = 0;
  };
  Stats stats() const {
    return Stats{queued_.load(std::memory_order_relaxed),
                 executed_.load(std::memory_order_relaxed),
                 steals_.load(std::memory_order_relaxed)};
  }

  // Enqueues `fn`; the returned future rethrows anything `fn` throws.
  std::future<void> Submit(std::function<void()> fn);

  // Runs fn(i) for every i in [0, n), blocking until all invocations
  // finish. Indices are claimed dynamically (one shared cursor) so
  // uneven per-index costs balance across workers. If any invocation
  // throws, one of the thrown exceptions is rethrown here and indices
  // not yet claimed are abandoned.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops one task (own front, else steal a sibling's back) and runs it.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<int64_t> queued_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> steals_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_queue_{0};
};

}  // namespace s4

#endif  // S4_COMMON_THREAD_POOL_H_
