#ifndef S4_COMMON_TOPK_HEAP_H_
#define S4_COMMON_TOPK_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <queue>
#include <vector>

namespace s4 {

// Keeps the k items with the highest scores seen so far. Ties are broken
// by insertion order (earlier wins), which keeps strategy outputs
// deterministic across NAIVE / BASELINE / FASTTOPK when scores collide.
template <typename T>
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  // Offers (score, item); keeps it if it beats the current k-th score.
  void Offer(double score, T item) {
    Entry e{score, next_seq_++, std::move(item)};
    if (heap_.size() < k_) {
      heap_.push(std::move(e));
      return;
    }
    if (k_ == 0) return;
    const Entry& worst = heap_.top();
    if (e.score > worst.score ||
        (e.score == worst.score && e.seq < worst.seq)) {
      heap_.pop();
      heap_.push(std::move(e));
    }
  }

  size_t size() const { return heap_.size(); }
  bool Full() const { return heap_.size() >= k_; }

  // Score of the current k-th best item, or -inf if fewer than k items
  // have been offered. This is the `top_k{...}` of termination
  // condition (7) in the paper.
  double KthScore() const {
    if (!Full() || k_ == 0) return -std::numeric_limits<double>::infinity();
    return heap_.top().score;
  }

  // Extracts items sorted by descending score (stable in insertion order).
  std::vector<std::pair<double, T>> TakeSortedDescending() {
    std::vector<Entry> entries;
    entries.reserve(heap_.size());
    while (!heap_.empty()) {
      entries.push_back(heap_.top());
      heap_.pop();
    }
    std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                 const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.seq < b.seq;
    });
    std::vector<std::pair<double, T>> out;
    out.reserve(entries.size());
    for (auto& e : entries) out.emplace_back(e.score, std::move(e.item));
    return out;
  }

 private:
  struct Entry {
    double score;
    uint64_t seq;
    T item;
  };
  // Min-heap on (score, -seq): top() is the entry to evict first, i.e. the
  // lowest score, with later insertion losing ties.
  struct Worse {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.seq < b.seq;
    }
  };

  size_t k_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Worse> heap_;
};

}  // namespace s4

#endif  // S4_COMMON_TOPK_HEAP_H_
