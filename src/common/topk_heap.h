#ifndef S4_COMMON_TOPK_HEAP_H_
#define S4_COMMON_TOPK_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <queue>
#include <string>
#include <vector>

namespace s4 {

// Keeps the k items with the highest scores seen so far. Ties are broken
// by the caller-supplied canonical key (ascending; signatures for
// candidate queries), falling back to insertion order (earlier wins)
// when no key is given. A canonical key makes the selected set a total
// order over (score desc, key asc) — independent of evaluation order —
// so NAIVE / BASELINE / FASTTOPK, every thread count, and every
// candidate-space shard slice select the exact same boundary entries
// when scores collide (DESIGN.md "Distributed serving": the merge
// invariant needs this).
template <typename T>
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  // Offers (score, item); keeps it if it beats the current k-th entry
  // under (score desc, key asc, insertion order).
  void Offer(double score, T item, std::string key = {}) {
    Entry e{score, next_seq_++, std::move(key), std::move(item)};
    if (heap_.size() < k_) {
      heap_.push(std::move(e));
      return;
    }
    if (k_ == 0) return;
    const Entry& worst = heap_.top();
    if (Better(e, worst)) {
      heap_.pop();
      heap_.push(std::move(e));
    }
  }

  size_t size() const { return heap_.size(); }
  bool Full() const { return heap_.size() >= k_; }

  // Score of the current k-th best item, or -inf if fewer than k items
  // have been offered. This is the `top_k{...}` of termination
  // condition (7) in the paper.
  double KthScore() const {
    if (!Full() || k_ == 0) return -std::numeric_limits<double>::infinity();
    return heap_.top().score;
  }

  // Non-destructive copy of the current contents sorted by descending
  // score (canonical key, then insertion order, among ties). Costs one
  // heap copy of at most k entries; used by the progress-snapshot path,
  // never per offer.
  std::vector<std::pair<double, T>> SnapshotSortedDescending() const {
    auto copy = heap_;
    std::vector<Entry> entries;
    entries.reserve(copy.size());
    while (!copy.empty()) {
      entries.push_back(copy.top());
      copy.pop();
    }
    std::sort(entries.begin(), entries.end(), Better);
    std::vector<std::pair<double, T>> out;
    out.reserve(entries.size());
    for (auto& e : entries) out.emplace_back(e.score, std::move(e.item));
    return out;
  }

  // Extracts items sorted by descending score (canonical key, then
  // insertion order, among ties).
  std::vector<std::pair<double, T>> TakeSortedDescending() {
    std::vector<Entry> entries;
    entries.reserve(heap_.size());
    while (!heap_.empty()) {
      entries.push_back(heap_.top());
      heap_.pop();
    }
    std::sort(entries.begin(), entries.end(), Better);
    std::vector<std::pair<double, T>> out;
    out.reserve(entries.size());
    for (auto& e : entries) out.emplace_back(e.score, std::move(e.item));
    return out;
  }

 private:
  struct Entry {
    double score;
    uint64_t seq;
    std::string key;  // canonical tie-break; empty = insertion order only
    T item;
  };
  // The total rank order: score desc, key asc, seq asc.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  }
  // Min-heap: top() is the entry to evict first, i.e. the worst under
  // Better.
  struct Worse {
    bool operator()(const Entry& a, const Entry& b) const {
      return Better(a, b);
    }
  };

  size_t k_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Worse> heap_;
};

}  // namespace s4

#endif  // S4_COMMON_TOPK_HEAP_H_
