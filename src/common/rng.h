#ifndef S4_COMMON_RNG_H_
#define S4_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace s4 {

// Deterministic 64-bit PRNG (splitmix64 + xorshift). All workload
// generation and benchmarks seed explicitly so runs are reproducible
// across platforms — std::mt19937 distributions are not portable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5344534453445344ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    // splitmix64 to spread low-entropy seeds.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    state_ = z ^ (z >> 31);
    if (state_ == 0) state_ = 0x2545f4914f6cdd1dULL;
  }

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

// Samples from a Zipf distribution over ranks [0, n) with exponent `s`
// using a precomputed cumulative table (O(log n) per draw).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  // Returns a rank in [0, n); rank 0 is the most frequent.
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace s4

#endif  // S4_COMMON_RNG_H_
