#ifndef S4_COMMON_LATENCY_HISTOGRAM_H_
#define S4_COMMON_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace s4 {

// Lock-free latency histogram for the service layer: geometric buckets
// spanning 1 microsecond .. ~1 hour (~3.9% relative width), each an
// atomic counter, so Record() from many request threads is one relaxed
// fetch_add and never serializes the hot path. Percentile queries read a
// relaxed snapshot — good enough for reporting (QPS dashboards, bench
// output), not for cross-thread invariants.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 576;

  LatencyHistogram() = default;

  // Not copyable (atomics); snapshot() gives a value type.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(double seconds);

  // Plain-value copy of the counters for consistent multi-percentile
  // reporting.
  struct Snapshot {
    std::vector<int64_t> counts;  // kNumBuckets entries
    int64_t total = 0;
    double sum_seconds = 0.0;
    // Exact largest recorded sample (not bucket-quantized): tail reports
    // need the true max, which a ~3.9%-wide bucket midpoint would smear.
    double max_seconds = 0.0;

    // Latency at quantile q in [0, 1] (0.5 = median), as the geometric
    // midpoint of the bucket containing that rank; 0 when empty.
    double PercentileSeconds(double q) const;
    double MeanSeconds() const {
      return total == 0 ? 0.0 : sum_seconds / static_cast<double>(total);
    }

    // Folds `other` into this snapshot (bucket-wise sums, max of maxes):
    // per-event-loop histograms stay thread-local and lock-free, and
    // service-wide percentiles are computed from merged snapshots.
    void Merge(const Snapshot& other);
  };
  Snapshot snapshot() const;

  int64_t count() const { return total_.load(std::memory_order_relaxed); }

  // Lower bound of bucket `b` in seconds (exposed for tests).
  static double BucketLowerBound(int b);

 private:
  static int BucketIndex(double seconds);

  std::array<std::atomic<int64_t>, kNumBuckets> counts_{};
  std::atomic<int64_t> total_{0};
  // Sum / max in nanoseconds so the accumulators stay lock-free integers.
  std::atomic<int64_t> sum_nanos_{0};
  std::atomic<int64_t> max_nanos_{0};
};

}  // namespace s4

#endif  // S4_COMMON_LATENCY_HISTOGRAM_H_
