#include "common/thread_pool.h"

#include <algorithm>

namespace s4 {

int32_t ThreadPool::DefaultThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(int32_t num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreads();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int32_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  Worker& w = *workers_[next_queue_.fetch_add(1, std::memory_order_relaxed) %
                        workers_.size()];
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Pairing the notify with a (possibly empty) critical section on
  // idle_mu_ guarantees a worker between its predicate check and wait
  // cannot miss the new task.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_one();
  return fut;
}

bool ThreadPool::RunOneTask(size_t self) {
  std::packaged_task<void()> task;
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (!task.valid()) {
    for (size_t off = 1; off < workers_.size() && !task.valid(); ++off) {
      Worker& victim = *workers_[(self + off) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!task.valid()) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task();  // exceptions land in the task's future
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    // Drain remaining work even when stopping, then exit.
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
  };
  auto state = std::make_shared<ForState>();
  const size_t runners = std::min(n, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(runners);
  for (size_t r = 0; r < runners; ++r) {
    futures.push_back(Submit([state, n, &fn] {
      for (;;) {
        if (state->failed.load(std::memory_order_relaxed)) return;
        const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          state->failed.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    }));
  }
  std::exception_ptr error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace s4
