#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace s4 {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s,
                                      std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      std::string_view piece = StripWhitespace(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsAlphaNumeric(std::string_view s) {
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return !s.empty();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace s4
