#ifndef S4_COMMON_TABLE_PRINTER_H_
#define S4_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace s4 {

// Renders aligned ASCII tables for the benchmark harnesses so each bench
// binary prints the rows/series of the paper table or figure it
// reproduces.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  // Returns the rendered table.
  std::string ToString() const;

  // Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace s4

#endif  // S4_COMMON_TABLE_PRINTER_H_
