#ifndef S4_COMMON_STRING_UTIL_H_
#define S4_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace s4 {

// Returns a lowercased copy of `s` (ASCII only; the paper's tokenizer
// discards non-alphanumeric tokens so ASCII folding suffices).
std::string ToLowerAscii(std::string_view s);

// Splits `s` on any character of `delims`, dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view s,
                                      std::string_view delims);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// True iff every character of `s` is ASCII alphanumeric.
bool IsAlphaNumeric(std::string_view s);

// printf-like formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace s4

#endif  // S4_COMMON_STRING_UTIL_H_
