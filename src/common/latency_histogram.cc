#include "common/latency_histogram.h"

#include <algorithm>
#include <cmath>

namespace s4 {

namespace {

// Bucket b covers [kMinSeconds * kGrowth^b, kMinSeconds * kGrowth^(b+1)).
// With kGrowth ~ 1.039 and 576 buckets the range is 1us .. ~3900s and the
// quantile error is under 2%.
constexpr double kMinSeconds = 1e-6;
constexpr double kGrowth = 1.039;
const double kLogGrowth = std::log(kGrowth);

}  // namespace

int LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;
  const int b = static_cast<int>(std::log(seconds / kMinSeconds) / kLogGrowth);
  return std::min(b, kNumBuckets - 1);
}

double LatencyHistogram::BucketLowerBound(int b) {
  return kMinSeconds * std::pow(kGrowth, static_cast<double>(b));
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  counts_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nanos = static_cast<int64_t>(seconds * 1e9);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  int64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.counts.resize(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    s.counts[b] = counts_[b].load(std::memory_order_relaxed);
    s.total += s.counts[b];
  }
  s.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.max_seconds =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void LatencyHistogram::Snapshot::Merge(const Snapshot& other) {
  if (counts.empty()) counts.resize(kNumBuckets);
  for (size_t b = 0; b < counts.size() && b < other.counts.size(); ++b) {
    counts[b] += other.counts[b];
  }
  total += other.total;
  sum_seconds += other.sum_seconds;
  if (other.max_seconds > max_seconds) max_seconds = other.max_seconds;
}

double LatencyHistogram::Snapshot::PercentileSeconds(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among `total` ordered samples (1-based).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      return LatencyHistogram::BucketLowerBound(b) * std::sqrt(kGrowth);
    }
  }
  return LatencyHistogram::BucketLowerBound(kNumBuckets - 1);
}

}  // namespace s4
