#ifndef S4_COMMON_HASH_UTIL_H_
#define S4_COMMON_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace s4 {

// Combines `v`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
inline void HashCombine(uint64_t& seed, uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

template <typename T>
inline void HashCombineValue(uint64_t& seed, const T& v) {
  HashCombine(seed, static_cast<uint64_t>(std::hash<T>{}(v)));
}

// FNV-1a over a byte string; stable across platforms (used in canonical
// cache keys that tests compare against golden values).
inline uint64_t FingerprintString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace s4

#endif  // S4_COMMON_HASH_UTIL_H_
