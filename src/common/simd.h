#ifndef S4_COMMON_SIMD_H_
#define S4_COMMON_SIMD_H_

// Compile-time-dispatched 16-lane byte comparison, the primitive behind
// FlatMap64's tag-filtered probe walks. Exactly one backend is selected
// when this header is compiled:
//
//   - SSE2 on x86-64 (baseline for every 64-bit x86, no -m flags needed)
//   - NEON on AArch64
//   - a portable scalar loop everywhere else, or anywhere when the build
//     defines S4_DISABLE_SIMD (the CMake option of the same name). The
//     scalar path is the semantic reference: all backends return
//     identical masks for identical inputs, so switching backends can
//     never change a lookup result.
//
// The shim deliberately exposes only what the hash-table hot path needs:
// one 16-byte equality test returning a 16-bit lane mask, plus ffs-style
// mask iteration helpers.

#include <cstdint>

#if !defined(S4_DISABLE_SIMD) && (defined(__SSE2__) || defined(__x86_64__))
#define S4_SIMD_SSE2 1
#include <emmintrin.h>
#elif !defined(S4_DISABLE_SIMD) && defined(__aarch64__) && defined(__ARM_NEON)
#define S4_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace s4::simd {

// Lanes compared per call; FlatMap64 sizes its probe groups to match.
inline constexpr int kGroupWidth = 16;

// Name of the backend compiled in (surfaced by benches and tests so a
// run records which path it measured).
inline const char* BackendName() {
#if defined(S4_SIMD_SSE2)
  return "sse2";
#elif defined(S4_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// Bit i (i in [0, 16)) of the result is set iff p[i] == value. `p` need
// not be aligned; exactly 16 bytes are read.
inline uint32_t MatchByteMask16(const uint8_t* p, uint8_t value) {
#if defined(S4_SIMD_SSE2)
  const __m128i group =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i match =
      _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(value)));
  return static_cast<uint32_t>(_mm_movemask_epi8(match));
#elif defined(S4_SIMD_NEON)
  const uint8x16_t group = vld1q_u8(p);
  const uint8x16_t match = vceqq_u8(group, vdupq_n_u8(value));
  // movemask emulation: isolate bit (lane % 8) of each 0xFF lane, then
  // horizontally add each half — the per-lane bits are disjoint, so the
  // sums are the low/high 8 bits of the mask.
  const uint8x16_t bit = {1, 2, 4, 8, 16, 32, 64, 128,
                          1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t masked = vandq_u8(match, bit);
  return static_cast<uint32_t>(vaddv_u8(vget_low_u8(masked))) |
         (static_cast<uint32_t>(vaddv_u8(vget_high_u8(masked))) << 8);
#else
  uint32_t mask = 0;
  for (int i = 0; i < kGroupWidth; ++i) {
    mask |= static_cast<uint32_t>(p[i] == value) << i;
  }
  return mask;
#endif
}

// Index of the lowest set bit; `mask` must be nonzero.
inline int FirstLane(uint32_t mask) { return __builtin_ctz(mask); }

// Clears the lowest set bit.
inline uint32_t ClearFirstLane(uint32_t mask) { return mask & (mask - 1); }

}  // namespace s4::simd

#endif  // S4_COMMON_SIMD_H_
