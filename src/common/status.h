#ifndef S4_COMMON_STATUS_H_
#define S4_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace s4 {

// Error codes used across the library. Modeled after the usual database
// engine conventions (RocksDB / Arrow style): a small closed set of codes
// plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error result. Functions that can fail return
// Status (or StatusOr<T>) instead of throwing; hot paths stay
// exception-free per the database coding guides.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Either a value of type T or an error Status. Access to the value when
// holding an error aborts in debug builds (assert), mirroring the
// "check ok() first" contract of StatusOr in mainstream codebases.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return MakeFoo();` and `return status;`
  // both work, matching the ergonomics of absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define S4_RETURN_IF_ERROR(expr)           \
  do {                                     \
    ::s4::Status _s4_status = (expr);      \
    if (!_s4_status.ok()) return _s4_status; \
  } while (false)

}  // namespace s4

#endif  // S4_COMMON_STATUS_H_
