#ifndef S4_COMMON_TIMER_H_
#define S4_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace s4 {

// Monotonic wall-clock stopwatch used by benchmark harnesses and the
// per-phase timing breakdown (enumeration+upper-bound vs. evaluation).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates elapsed time across multiple start/stop intervals.
class AccumTimer {
 public:
  void Start() { t_.Restart(); }
  void Stop() { total_seconds_ += t_.ElapsedSeconds(); }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }

 private:
  WallTimer t_;
  double total_seconds_ = 0.0;
};

}  // namespace s4

#endif  // S4_COMMON_TIMER_H_
