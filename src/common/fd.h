#ifndef S4_COMMON_FD_H_
#define S4_COMMON_FD_H_

#include <unistd.h>

#include <utility>

namespace s4 {

// Move-only owner of a POSIX file descriptor (socket, epoll, eventfd).
// Every descriptor the network layer opens lives in one of these, so a
// connection teardown — normal, error, or exception path — can never
// leak an fd (the loopback integration test asserts /proc/self/fd counts
// before/after a full server+client lifecycle).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) Reset(other.Release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  // Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  // Closes the held descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace s4

#endif  // S4_COMMON_FD_H_
