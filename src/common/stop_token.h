#ifndef S4_COMMON_STOP_TOKEN_H_
#define S4_COMMON_STOP_TOKEN_H_

#include <atomic>
#include <chrono>

namespace s4 {

// Cooperative cancellation + deadline signal for a search request.
// The issuing side (a client holding the service ticket, or the service
// itself when the request carries a deadline) calls Cancel() or lets the
// deadline pass; the strategies poll ShouldStop() at batch/group
// boundaries and wind down, returning whatever partial top-k they have
// with SearchResult::interrupted set. Polling keeps the hot evaluation
// loops free of synchronization: a stop is observed at the next
// boundary, never mid-join.
//
// Thread-safe: any number of threads may poll while another cancels.
class StopToken {
 public:
  StopToken() = default;

  // A token that expires `deadline_seconds` from now (<= 0 expires
  // immediately). The atomic member makes the type immovable, so
  // deadlines are set at construction or via SetDeadline in place.
  explicit StopToken(double deadline_seconds) { SetDeadline(deadline_seconds); }

  // Arms (or re-arms) the deadline `seconds` from now.
  void SetDeadline(double seconds) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }

  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool deadline_expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  // True once the request should wind down (either trigger).
  bool ShouldStop() const { return cancelled() || deadline_expired(); }

 private:
  std::atomic<bool> cancelled_{false};
  // Written before the token is shared (SetDeadline happens-before any
  // poll via the mechanism that publishes the token), read-only after.
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace s4

#endif  // S4_COMMON_STOP_TOKEN_H_
