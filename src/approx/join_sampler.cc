#include "approx/join_sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hash_util.h"
#include "common/rng.h"
#include "index/column_ids.h"
#include "obs/trace.h"
#include "score/score_model.h"

namespace s4::approx {

namespace {

// Packs an (es_col, gid) pair the same way ScoreContext does.
uint64_t PairKey(int32_t es_col, int32_t gid) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(es_col)) << 32) |
         static_cast<uint32_t>(gid);
}

// Work caps, scaled with the sample budget so a bigger budget buys a
// bigger search but a hub-heavy candidate still escalates instead of
// devolving into a full exact evaluation done badly.
int64_t DiscoveryCap(int64_t sample_budget) {
  return std::max<int64_t>(int64_t{1} << 18, sample_budget * 64);
}
int64_t WalkCap(int64_t sample_budget) {
  return std::max<int64_t>(int64_t{1} << 16, sample_budget * 64);
}

// Cost gate for the non-deadline path: discovery + walking together may
// spend at most this fraction of the exact evaluator's work proxy (the
// summed row counts of the tree's tables — Stage II scans every row of
// every joined table to build its hash tables). Beyond it the candidate
// escalates, bounding the overhead of a failed sampling attempt at ~25%
// of the evaluation it falls back to, while candidates whose support is
// genuinely small relative to their tables resolve at a fraction of the
// exact cost. The floor keeps tiny candidates sampleable outright.
constexpr int64_t kCostGateFloor = 1024;
constexpr int64_t kCostGateDivisor = 4;

}  // namespace

struct JoinSampler::WalkCtx {
  const JoinTree* tree;
  const KfkSnapshot* snap;
  // Per tree node: the pair-sims tables of its bindings (in binding
  // order, so the accumulation order matches ComputeOwnSims) and its
  // children (storage order, matching the evaluator's child_tables).
  std::vector<std::vector<const PairSims*>> node_pairs;
  std::vector<std::vector<TreeNodeId>> children;
  size_t stride;
  // Two stride-wide buffers per tree level: one receives a child
  // subtree's scores, one holds the running max over a reverse-fk
  // child's rows. Reused across rows of a fan-out, so a walk allocates
  // nothing per visited row.
  double* scratch;
};

JoinSampler::JoinSampler(const ScoreContext& ctx, const ApproxParams& params)
    : ctx_(&ctx), params_(params) {
  for (int32_t es_col = 0; es_col < ctx.NumEsColumns(); ++es_col) {
    for (int32_t gid : ctx.CandidateColumns(es_col)) {
      PairSims& pair = pairs_[PairKey(es_col, gid)];
      BuildPair(es_col, gid, &pair);
    }
  }
}

// Mirrors Evaluator::ComputeOwnSims for a single binding across every
// ES row: identical postings, weights, spelling-group union semantics,
// and exact-match bonus, so a walked row's own similarities equal what
// the exact Stage-II row loop seeds its lanes with.
void JoinSampler::BuildPair(int32_t es_col, int32_t gid,
                            PairSims* out) const {
  const ResolvedSpreadsheet& rs = ctx_->resolved();
  const IndexSet& index = ctx_->index();
  const bool bonus = ctx_->params().exact_match_bonus != 0.0;
  const size_t stride = static_cast<size_t>(rs.num_rows);
  const std::vector<uint16_t>* lengths =
      bonus ? index.CellLengths(gid) : nullptr;

  auto slot_of = [&](int64_t row) -> double* {
    auto [it, fresh] = out->slot.try_emplace(
        row, static_cast<uint32_t>(out->slot.size()));
    if (fresh) out->sims.resize(out->slot.size() * stride, 0.0);
    return out->sims.data() + it->second * stride;
  };

  std::unordered_map<int64_t, int32_t> matchcnt;
  std::unordered_map<int64_t, double> group_best;
  for (int32_t t = 0; t < rs.num_rows; ++t) {
    const auto& groups = rs.cell_term_groups[t][es_col];
    if (groups.empty()) continue;
    if (bonus) matchcnt.clear();
    for (const std::vector<TermId>& group : groups) {
      const bool single = group.size() == 1;
      if (!single) group_best.clear();
      for (TermId w : group) {
        const std::vector<Posting>* plist = index.row_index().Find(w, gid);
        if (plist == nullptr) continue;
        const double weight = ctx_->TermWeight(w, gid);
        if (single) {
          for (const Posting& p : *plist) {
            slot_of(p.row)[t] += weight;
            if (bonus) ++matchcnt[p.row];
          }
        } else {
          for (const Posting& p : *plist) {
            double& best = group_best[p.row];
            best = std::max(best, weight);
          }
        }
      }
      if (!single) {
        for (const auto& [row, weight] : group_best) {
          slot_of(row)[t] += weight;
          if (bonus) ++matchcnt[row];
        }
      }
    }
    if (bonus && lengths != nullptr) {
      const int32_t cell_terms = rs.cell_num_terms[t][es_col];
      for (const auto& [row, cnt] : matchcnt) {
        if (cnt == cell_terms &&
            static_cast<int32_t>((*lengths)[row]) == cell_terms) {
          slot_of(row)[t] += ctx_->params().exact_match_bonus;
        }
      }
    }
  }

  out->rows_ascending.reserve(out->slot.size());
  for (const auto& [row, slot] : out->slot) {
    (void)slot;
    out->rows_ascending.push_back(row);
  }
  std::sort(out->rows_ascending.begin(), out->rows_ascending.end());

  // Per-ES-row max own-sim over all matched rows: the building block of
  // the admissible per-root-row bound the best-first resolver sorts by.
  out->max_sims.assign(stride, 0.0);
  for (size_t s = 0; s < out->slot.size(); ++s) {
    const double* sims = out->sims.data() + s * stride;
    for (size_t t = 0; t < stride; ++t) {
      out->max_sims[t] = std::max(out->max_sims[t], sims[t]);
    }
  }
}

const JoinSampler::PairSims* JoinSampler::FindPair(int32_t es_col,
                                                   int32_t gid) const {
  auto it = pairs_.find(PairKey(es_col, gid));
  return it == pairs_.end() ? nullptr : &it->second;
}

bool JoinSampler::DiscoverSupport(const CandidateQuery& cand,
                                  int64_t* work_budget,
                                  std::vector<int64_t>* support) const {
  const JoinTree& tree = cand.query.tree();
  const KfkSnapshot& snap = ctx_->index().snapshot();
  const ColumnIds& cols = ctx_->index().column_ids();
  int64_t& work_left = *work_budget;

  // Matched rows per binding node (union over that node's bindings).
  // Seeding is charged against the budget up front: a hub-heavy binding
  // with thousands of matched rows should escalate for the price of a
  // size lookup, not after materializing the hash sets.
  std::vector<std::unordered_set<int64_t>> seeds(tree.size());
  for (const ProjectionBinding& b : cand.query.bindings()) {
    const int32_t gid =
        cols.Gid(ColumnRef{tree.node(b.node).table, b.column});
    const PairSims* pair = FindPair(b.es_column, gid);
    if (pair == nullptr) continue;
    // Check before subtracting: a failed discovery should leave the
    // budget it did not spend to whoever tries next.
    if (static_cast<int64_t>(pair->rows_ascending.size()) > work_left) {
      return false;
    }
    work_left -= static_cast<int64_t>(pair->rows_ascending.size());
    seeds[b.node].insert(pair->rows_ascending.begin(),
                         pair->rows_ascending.end());
  }

  std::unordered_set<int64_t> roots;
  std::vector<int64_t> frontier;
  std::vector<int64_t> next;
  for (TreeNodeId u = 0; u < tree.size(); ++u) {
    if (seeds[u].empty()) continue;
    frontier.assign(seeds[u].begin(), seeds[u].end());
    std::sort(frontier.begin(), frontier.end());
    // Climb the parent chain: each step turns rows of the current node
    // into the parent rows they join with, root-ward only (sibling
    // subtrees are resolved by the walk, not here — the support is a
    // superset of the positively-scoring roots either way).
    TreeNodeId v = u;
    while (v != tree.root()) {
      const JoinTree::Node& n = tree.node(v);
      next.clear();
      if (n.parent_holds_fk) {
        // The parent's fk references this node: reverse-fk fan-in.
        const KfkSnapshot::ReverseFkIndex& rev =
            snap.ReverseFkOf(n.edge_to_parent);
        const std::vector<int64_t>& pks = snap.Pk(n.table);
        for (int64_t row : frontier) {
          if (--work_left < 0) return false;
          auto [lo, hi] = rev.RowsFor(pks[static_cast<size_t>(row)]);
          for (const uint32_t* p = lo; p != hi; ++p) {
            if (--work_left < 0) return false;
            next.push_back(static_cast<int64_t>(*p));
          }
        }
      } else {
        // This node holds the fk: at most one parent row per row.
        const std::vector<int64_t>& fks = snap.Fk(n.edge_to_parent);
        const std::vector<bool>& valid = snap.FkValidColumn(n.edge_to_parent);
        const TableId parent_table = tree.node(n.parent).table;
        for (int64_t row : frontier) {
          if (--work_left < 0) return false;
          if (!valid[static_cast<size_t>(row)]) continue;
          const int64_t prow =
              snap.RowOfPk(parent_table, fks[static_cast<size_t>(row)]);
          if (prow >= 0) next.push_back(prow);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      frontier.swap(next);
      if (frontier.empty()) break;
      v = n.parent;
    }
    if (v == tree.root()) {
      roots.insert(frontier.begin(), frontier.end());
    }
  }

  support->assign(roots.begin(), roots.end());
  std::sort(support->begin(), support->end());
  return true;
}

bool JoinSampler::WalkRow(const WalkCtx& w, TreeNodeId v, int64_t row,
                          int32_t depth, double* out, int64_t* visits_left,
                          bool* capped) const {
  if (--*visits_left < 0) {
    *capped = true;
    return false;
  }
  const size_t stride = w.stride;
  std::fill(out, out + stride, 0.0);
  for (const PairSims* pair : w.node_pairs[v]) {
    if (pair == nullptr) continue;
    const double* sims = pair->Find(row, stride);
    if (sims == nullptr) continue;
    for (size_t t = 0; t < stride; ++t) out[t] += sims[t];
  }
  const KfkSnapshot& snap = *w.snap;
  double* cbuf = w.scratch + static_cast<size_t>(2 * depth) * stride;
  double* best = cbuf + stride;
  for (TreeNodeId child : w.children[v]) {
    const JoinTree::Node& cn = w.tree->node(child);
    if (cn.parent_holds_fk) {
      // This node's fk points at the child: zero or one joining row,
      // and an invalid fk or missing key kills the row exactly like
      // the evaluator's lane death.
      if (!snap.FkValidColumn(cn.edge_to_parent)[static_cast<size_t>(row)]) {
        return false;
      }
      const int64_t crow = snap.RowOfPk(
          cn.table, snap.Fk(cn.edge_to_parent)[static_cast<size_t>(row)]);
      if (crow < 0) return false;
      if (!WalkRow(w, child, crow, depth + 1, cbuf, visits_left, capped)) {
        return false;
      }
      for (size_t t = 0; t < stride; ++t) out[t] += cbuf[t];
    } else {
      // The child holds the fk: max-merge over the fan-in, mirroring
      // the kByFk-keyed table the evaluator would have probed. A child
      // row that joins but scores zero still counts as alive (the
      // evaluator's InsertZero row), so inner-join semantics match
      // drop_zero_rows = false exactly.
      const KfkSnapshot::ReverseFkIndex& rev =
          snap.ReverseFkOf(cn.edge_to_parent);
      auto [lo, hi] = rev.RowsFor(
          snap.Pk(w.tree->node(v).table)[static_cast<size_t>(row)]);
      bool any = false;
      for (const uint32_t* p = lo; p != hi; ++p) {
        if (!WalkRow(w, child, static_cast<int64_t>(*p), depth + 1, cbuf,
                     visits_left, capped)) {
          if (*capped) return false;
          continue;
        }
        if (!any) {
          std::copy(cbuf, cbuf + stride, best);
          any = true;
        } else {
          for (size_t t = 0; t < stride; ++t) {
            best[t] = std::max(best[t], cbuf[t]);
          }
        }
      }
      if (!any) return false;
      for (size_t t = 0; t < stride; ++t) out[t] += best[t];
    }
  }
  return true;
}

bool JoinSampler::BestFirstResolve(const WalkCtx& w,
                                   const std::vector<int64_t>& support,
                                   bool full_support, int64_t* work_budget,
                                   CandidateEstimate* est) const {
  const size_t stride = w.stride;
  const size_t K = support.size();
  // Bound construction touches every support row (potential, sort,
  // suffix maxima): charge it before doing it.
  if (static_cast<int64_t>(K) > *work_budget) return false;
  *work_budget -= static_cast<int64_t>(K);

  // Per-ES-row cap on what any root row's subtree can add: each
  // non-root node contributes at most the max own-sim of each of its
  // bindings (max of a sum <= sum of maxes, and a dead join adds 0).
  std::vector<double> subtree_cap(stride, 0.0);
  for (TreeNodeId v = 0; v < w.tree->size(); ++v) {
    if (v == w.tree->root()) continue;
    for (const PairSims* pair : w.node_pairs[v]) {
      if (pair == nullptr) continue;
      for (size_t t = 0; t < stride; ++t) {
        subtree_cap[t] += pair->max_sims[t];
      }
    }
  }

  // Admissible potential of each support row: its own root sims plus
  // the subtree cap.
  std::vector<double> pot(K * stride);
  std::vector<double> potsum(K, 0.0);
  for (size_t i = 0; i < K; ++i) {
    double* p = pot.data() + i * stride;
    std::copy(subtree_cap.begin(), subtree_cap.end(), p);
    for (const PairSims* pair : w.node_pairs[w.tree->root()]) {
      if (pair == nullptr) continue;
      const double* sims = pair->Find(support[i], stride);
      if (sims == nullptr) continue;
      for (size_t t = 0; t < stride; ++t) p[t] += sims[t];
    }
    for (size_t t = 0; t < stride; ++t) potsum[i] += p[t];
  }

  // Highest potential first; row id breaks ties so the walk order — and
  // with it the estimate — is deterministic.
  std::vector<uint32_t> order(K);
  for (size_t i = 0; i < K; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (potsum[a] != potsum[b]) return potsum[a] > potsum[b];
    return support[a] < support[b];
  });

  // suffix[i * stride + t]: max potential among rows not yet walked
  // when the walk is about to visit order[i]. Without the full support
  // set, undiscovered rows (no root binding match) are forever
  // unwalked and bounded by the subtree cap, so it floors the suffix.
  std::vector<double> suffix((K + 1) * stride, 0.0);
  if (!full_support) {
    std::copy(subtree_cap.begin(), subtree_cap.end(),
              suffix.data() + K * stride);
  }
  for (size_t i = K; i-- > 0;) {
    const double* p = pot.data() + static_cast<size_t>(order[i]) * stride;
    const double* nxt = suffix.data() + (i + 1) * stride;
    double* s = suffix.data() + i * stride;
    for (size_t t = 0; t < stride; ++t) s[t] = std::max(nxt[t], p[t]);
  }

  const int64_t visits_init =
      std::min(WalkCap(params_.sample_budget), *work_budget);
  int64_t visits_left = visits_init;
  std::vector<double> lo_t(stride, 0.0);
  std::vector<double> row_buf(stride, 0.0);
  bool capped = false;
  bool proven = false;
  int64_t walked = 0;
  // If the proof hasn't fired after this many rows the potentials are
  // too flat for it to fire soon: give up while the attempt is still
  // cheap relative to the exact evaluation the caller falls back to.
  constexpr int64_t kRowCap = 64;
  for (size_t i = 0; i <= K; ++i) {
    const double* rem = suffix.data() + i * stride;
    bool dominated = true;
    for (size_t t = 0; t < stride; ++t) {
      if (lo_t[t] < rem[t]) {
        dominated = false;
        break;
      }
    }
    if (dominated) {
      proven = true;
      break;
    }
    if (i == K || static_cast<int64_t>(i) >= kRowCap) break;
    const bool alive =
        WalkRow(w, w.tree->root(), support[order[i]], 0, row_buf.data(),
                &visits_left, &capped);
    if (capped) break;
    ++walked;
    if (!alive) continue;
    for (size_t t = 0; t < stride; ++t) {
      lo_t[t] = std::max(lo_t[t], row_buf[t]);
    }
  }
  *work_budget -= visits_init - visits_left;
  if (!proven) return false;

  // The dominance proof fired: the per-ES-row maxima are the exact row
  // scores.
  est->interval.sampled = walked;
  double row_lo = 0.0;
  for (double v : lo_t) row_lo += v;
  est->row_score_lo = row_lo;
  est->row_scores = std::move(lo_t);
  return true;
}

CandidateEstimate JoinSampler::Estimate(const CandidateQuery& cand,
                                        bool best_effort,
                                        obs::Trace* trace) const {
  obs::SpanTimer span(trace, "approx", "sample_candidate");
  if (span.enabled()) {
    span.AddArg("query", cand.query.signature());
  }

  const JoinTree& tree = cand.query.tree();
  const int32_t T = ctx_->NumEsRows();
  const double alpha = ctx_->params().alpha;
  const double col = cand.column_score;
  const int32_t size = tree.size();

  CandidateEstimate est;
  est.interval.hi = cand.upper_bound;
  est.interval.confidence = 1.0;
  // Even with nothing sampled, row_score >= 0 certainly holds.
  est.row_score_lo = 0.0;
  est.interval.lo = CombineScore(0.0, col, alpha, size);

  // Exact-evaluation work proxy: Stage II scans every row of every
  // joined table to build its hash tables, so the summed table sizes
  // approximate what escalating costs. Outside the deadline fallback,
  // discovery and walking share a budget capped at a fraction of that
  // proxy — sampling either beats exact evaluation by a margin or gets
  // out of its way early. Best-effort keeps the generous global caps:
  // the bracket is the only answer the caller will get.
  int64_t cost_proxy = 0;
  for (TreeNodeId v = 0; v < tree.size(); ++v) {
    cost_proxy += ctx_->index().db().table(tree.node(v).table).NumRows();
  }
  int64_t work_left =
      best_effort
          ? DiscoveryCap(params_.sample_budget)
          : std::min(DiscoveryCap(params_.sample_budget),
                     std::max(kCostGateFloor, cost_proxy / kCostGateDivisor));

  WalkCtx w;
  w.tree = &tree;
  w.snap = &ctx_->index().snapshot();
  w.stride = static_cast<size_t>(T);
  w.node_pairs.resize(static_cast<size_t>(tree.size()));
  w.children.resize(static_cast<size_t>(tree.size()));
  const ColumnIds& cols = ctx_->index().column_ids();
  for (const ProjectionBinding& b : cand.query.bindings()) {
    const int32_t gid =
        cols.Gid(ColumnRef{tree.node(b.node).table, b.column});
    w.node_pairs[b.node].push_back(FindPair(b.es_column, gid));
  }
  for (TreeNodeId v = 0; v < tree.size(); ++v) {
    w.children[v] = tree.ChildrenOf(v);
  }
  std::vector<double> scratch(
      static_cast<size_t>(2 * (tree.size() + 1)) * w.stride, 0.0);
  w.scratch = scratch.data();

  // The best-first resolver gets its own allowance, decoupled from what
  // discovery spent: its failure mode is bounded by construction (one
  // pass over the candidate rows plus a capped number of walks), and a
  // success saves an entire exact evaluation, so it is worth a fresh
  // fraction of the work proxy even when discovery ate the shared gate.
  const int64_t bf_allowance =
      std::max(kCostGateFloor, cost_proxy / 2);
  auto best_first_exact = [&](const std::vector<int64_t>& rows,
                              bool full_support) -> bool {
    int64_t budget = std::max(work_left, bf_allowance);
    if (!BestFirstResolve(w, rows, full_support, &budget, &est)) return false;
    est.interval.lo = est.interval.hi =
        CombineScore(est.row_score_lo, col, alpha, size);
    est.interval.confidence = 1.0;
    if (span.enabled()) {
      span.AddArg("support", std::to_string(est.interval.support));
      span.AddArg("sampled", std::to_string(est.interval.sampled));
      span.AddArg("outcome", "best_first_exact");
    }
    return true;
  };

  std::vector<int64_t> support;
  if (!DiscoverSupport(cand, &work_left, &support)) {
    // Even mapping out the support is too expensive for this candidate
    // (hub-heavy bindings). One more shot, without discovery: walk the
    // root-matched rows best-potential-first and treat every
    // undiscovered row as bounded by the subtree cap — on quantized
    // similarity distributions the top row often attains the cap, which
    // proves the exact score from a handful of walks.
    if (!best_effort) {
      std::vector<int64_t> root_rows;
      for (const PairSims* pair : w.node_pairs[tree.root()]) {
        if (pair == nullptr) continue;
        root_rows.insert(root_rows.end(), pair->rows_ascending.begin(),
                         pair->rows_ascending.end());
      }
      std::sort(root_rows.begin(), root_rows.end());
      root_rows.erase(std::unique(root_rows.begin(), root_rows.end()),
                      root_rows.end());
      est.interval.support = static_cast<int64_t>(root_rows.size());
      if (best_first_exact(root_rows, /*full_support=*/false)) {
        return est;
      }
      est.interval.support = 0;
    }
    est.escalate = true;
    if (span.enabled()) span.AddArg("outcome", "discovery_capped");
    return est;
  }
  const int64_t K = static_cast<int64_t>(support.size());
  est.interval.support = K;

  if (K == 0) {
    // No root row can score: the row score is exactly 0.
    est.interval.lo = est.interval.hi = CombineScore(0.0, col, alpha, size);
    est.row_scores.assign(static_cast<size_t>(T), 0.0);
    if (span.enabled()) span.AddArg("outcome", "empty_support");
    return est;
  }

  // Coverage target: a uniform prefix of fraction f contains any fixed
  // row with probability f, so all T per-ES-row argmaxes are covered
  // with probability >= 1 - T * (1 - f); solving for the stated
  // confidence gives f >= 1 - (1 - confidence) / T.
  const double f_needed =
      1.0 - (1.0 - params_.confidence) / static_cast<double>(T);
  int64_t m_needed = static_cast<int64_t>(
      std::ceil(f_needed * static_cast<double>(K)));
  m_needed = std::clamp<int64_t>(m_needed, 1, K);

  if (m_needed > params_.sample_budget && !best_effort) {
    // Too much support to sample at the stated confidence — but a
    // best-first walk over the same support can still resolve *exactly*
    // when the highest-potential rows dominate the rest, which the
    // quantized similarity distributions of real corpora make common.
    if (best_first_exact(support, /*full_support=*/true)) {
      return est;
    }
    // The caller evaluates exactly; don't burn what's left of the
    // budget on a bound nobody will use.
    est.escalate = true;
    if (span.enabled()) {
      span.AddArg("support", std::to_string(K));
      span.AddArg("outcome", "budget_exceeded");
    }
    return est;
  }
  const int64_t m = std::min(m_needed, params_.sample_budget);

  // Deterministic per-candidate sample: Fisher-Yates prefix of the
  // sorted support under the signature-keyed rng stream.
  Rng rng(params_.rng_seed ^ FingerprintString(cand.query.signature()));
  for (int64_t i = 0; i < m; ++i) {
    const int64_t j =
        i + static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(K - i)));
    std::swap(support[static_cast<size_t>(i)], support[static_cast<size_t>(j)]);
  }

  std::vector<double> lo_t(static_cast<size_t>(T), 0.0);
  std::vector<double> row_buf(w.stride, 0.0);
  int64_t visits_left = best_effort
                            ? WalkCap(params_.sample_budget)
                            : std::min(WalkCap(params_.sample_budget),
                                       work_left);
  bool capped = false;
  int64_t walked = 0;
  for (int64_t i = 0; i < m; ++i) {
    const bool alive = WalkRow(w, tree.root(), support[static_cast<size_t>(i)],
                               0, row_buf.data(), &visits_left, &capped);
    if (capped) break;  // the partial row is discarded; lo stays certain
    ++walked;
    if (!alive) continue;
    for (int32_t t = 0; t < T; ++t) {
      lo_t[t] = std::max(lo_t[t], row_buf[static_cast<size_t>(t)]);
    }
  }
  est.interval.sampled = walked;

  double row_lo = 0.0;
  for (double v : lo_t) row_lo += v;
  est.row_score_lo = row_lo;
  est.interval.lo = CombineScore(row_lo, col, alpha, size);

  if (!capped && walked == K) {
    est.interval.hi = est.interval.lo;
    est.interval.confidence = 1.0;
    est.row_scores = std::move(lo_t);
  } else if (!capped && walked >= m_needed) {
    est.interval.hi = est.interval.lo;
    est.interval.confidence = params_.confidence;
  } else {
    // Unresolved: the deterministic Prop-2 bound stands.
    est.escalate = true;
  }

  if (span.enabled()) {
    span.AddArg("support", std::to_string(K));
    span.AddArg("sampled", std::to_string(walked));
    span.AddArg("outcome", est.escalate          ? "escalate"
                           : est.interval.exact() ? "exact"
                                                  : "resolved");
  }
  return est;
}

}  // namespace s4::approx
