#ifndef S4_APPROX_SCORE_INTERVAL_H_
#define S4_APPROX_SCORE_INTERVAL_H_

#include <cstdint>

namespace s4 {

// Confidence interval on a candidate PJ query's final CombineScore,
// produced by the sampling estimator (src/approx/join_sampler.h) or
// degenerate [score, score] for exactly evaluated candidates.
//
// Contract (DESIGN.md "Anytime approximate search"):
//   * `lo` is a certain lower bound: every sampled join-result row was
//     scored exactly, and scores are maxima of non-negative terms, so a
//     prefix of rows can only under-shoot.
//   * `hi` holds with probability >= `confidence`. While the sampled
//     fraction is below the coverage threshold, `hi` is the
//     deterministic Prop-2 upper bound (confidence 1); once the sampled
//     prefix covers enough of the support that every per-ES-row argmax
//     row was sampled with the stated probability, `hi` collapses onto
//     `lo`.
//   * `sampled == support` means the estimate is exhaustive: lo == hi
//     is the exact score and confidence is 1.
struct ScoreInterval {
  double lo = 0.0;
  double hi = 0.0;
  double confidence = 1.0;
  // Join-result support rows that could contribute a positive score,
  // and how many of them the estimator walked.
  int64_t support = 0;
  int64_t sampled = 0;

  double width() const { return hi - lo; }
  // The interval has pinned the score (possibly only at `confidence`).
  bool resolved() const { return hi <= lo; }
  // The estimate is the exact score with certainty.
  bool exact() const { return resolved() && confidence >= 1.0; }
};

}  // namespace s4

#endif  // S4_APPROX_SCORE_INTERVAL_H_
