#ifndef S4_APPROX_JOIN_SAMPLER_H_
#define S4_APPROX_JOIN_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "approx/score_interval.h"
#include "enumerate/enumerator.h"
#include "score/score_context.h"

namespace s4 {

namespace obs {
class Trace;
}  // namespace obs

namespace approx {

// Knobs of the anytime approximate mode, lifted verbatim from
// SearchOptions (see ValidateSearchOptions for the accepted ranges).
struct ApproxParams {
  double epsilon = 0.0;       // relative slack on the k-th score
  double confidence = 0.95;   // per-candidate interval confidence
  int64_t sample_budget = 4096;  // max join-result rows walked/candidate
  uint64_t rng_seed = 0x5344534453445344ULL;
};

// What one sampling pass over a candidate produced.
struct CandidateEstimate {
  ScoreInterval interval;
  // Certain lower bound on the Eq. 3 row score (the numerator the
  // interval's `lo` was combined from).
  double row_score_lo = 0.0;
  // The sampler could not resolve the interval within its caps (support
  // too large for the budget at the requested confidence, or a walk /
  // discovery cap fired): the caller should fall back to exact
  // evaluation unless it is in deadline-fallback mode, in which case the
  // interval is still a valid (certain-lo, deterministic-hi) bracket.
  bool escalate = false;
  // Exact per-ES-row containment scores, filled only when the walk was
  // exhaustive (interval.exact()); usable as a session record.
  std::vector<double> row_scores;
};

// Sampling-based score estimator (DESIGN.md "Anytime approximate
// search"). For a candidate PJ query it draws a uniform sample of the
// query's join-result *support* — the root rows that could possibly
// score, found by propagating the rows matched by each projection
// binding root-ward through the KfkSnapshot fk indexes — and walks each
// sampled root row top-down through the join tree, scoring it exactly.
//
// Because score(t | Q) is a *max* over join-result rows, any sampled
// prefix yields a certain lower bound, and a prefix that covered every
// per-ES-row argmax yields the exact score. A uniform random prefix of
// length m over support K contains any fixed row with probability
// f = m / K, so by a union bound over the T example rows the prefix
// pins all T maxima — and the lower bound *is* the score — with
// probability >= 1 - T * (1 - f). The sampler walks
// m = ceil((1 - (1 - confidence) / T) * K) rows (capped by the budget)
// and reports [lo, lo] at `confidence` when it got there, [lo, Prop-2
// upper bound] at confidence 1 otherwise.
//
// Determinism: the sample order is a Fisher-Yates prefix of the sorted
// support under an Rng seeded with rng_seed ^ FingerprintString of the
// candidate signature, so estimates are reproducible at any thread
// count, shard slicing, or evaluation order.
//
// Cost gate: outside the deadline fallback, discovery plus walking may
// spend at most a fraction of the exact evaluator's work proxy (the
// summed row counts of the tree's tables); a candidate whose resolution
// would cost more escalates early, so a failed sampling attempt never
// adds more than that fraction to the evaluation it falls back to. The
// best-first resolver gets its own, slightly larger allowance (half the
// proxy, still bounded by a 64-row walk cap) because a successful proof
// replaces the exact evaluation entirely instead of preceding it.
//
// Construction precomputes, per (ES column, candidate database column)
// pair, the per-row cell-similarity vectors ComputeOwnSims would
// produce — one posting scan per pair, the same work ScoreContext
// already did for the column-level bounds. A constructed sampler is
// immutable: Estimate is const and safe to call from pool workers.
class JoinSampler {
 public:
  JoinSampler(const ScoreContext& ctx, const ApproxParams& params);

  // Estimates `cand`'s score interval. With `best_effort` set (the
  // deadline fallback), the sampler always spends its budget and
  // returns the tightest bracket it found even when unresolved; without
  // it, it skips the walk when the interval provably cannot resolve
  // within the budget (the caller will evaluate exactly anyway).
  CandidateEstimate Estimate(const CandidateQuery& cand, bool best_effort,
                             obs::Trace* trace) const;

  const ApproxParams& params() const { return params_; }

 private:
  // Per-row similarity contributions of one (es_col -> gid) binding:
  // exactly the rows and values ComputeOwnSims adds for that binding,
  // stride num_es_rows per slot.
  struct PairSims {
    std::unordered_map<int64_t, uint32_t> slot;
    std::vector<double> sims;
    std::vector<int64_t> rows_ascending;  // support seeds
    std::vector<double> max_sims;         // per-ES-row max over all rows

    const double* Find(int64_t row, size_t stride) const {
      auto it = slot.find(row);
      return it == slot.end() ? nullptr : sims.data() + it->second * stride;
    }
  };

  struct WalkCtx;

  void BuildPair(int32_t es_col, int32_t gid, PairSims* out) const;
  const PairSims* FindPair(int32_t es_col, int32_t gid) const;

  // Root rows reachable root-ward from the bindings' matched rows (a
  // superset of the positively-scoring roots), sorted ascending. False
  // when `work_budget` (decremented per expansion) runs out.
  bool DiscoverSupport(const CandidateQuery& cand, int64_t* work_budget,
                       std::vector<int64_t>* support) const;

  // Exact per-ES-row scores of the join-result rows rooted at
  // `root_row`; returns false when the row is dead (some join failed)
  // or the visit cap fired (sets *capped).
  bool WalkRow(const WalkCtx& w, TreeNodeId v, int64_t row, int32_t depth,
               double* out, int64_t* visits_left, bool* capped) const;

  // Deterministic exact resolution for supports too large to sample at
  // the stated confidence: walks support rows in decreasing order of an
  // admissible per-row bound (the row's own root sims plus every other
  // node's max own-sims) and stops as soon as the achieved per-ES-row
  // maxima dominate every unwalked row's bound — at that point the
  // maxima ARE the exact row scores. On success fills est->row_scores,
  // est->row_score_lo, and est->interval.sampled and returns true;
  // returns false (leaving est untouched apart from budget spend) when
  // the proof does not fire within `work_budget`.
  // `support` holds the candidate rows to walk (the full discovered
  // support, or just the root-matched rows when discovery was skipped —
  // `full_support` false then floors the dominance check at the subtree
  // cap, since an undiscovered row can score at most that).
  bool BestFirstResolve(const WalkCtx& w, const std::vector<int64_t>& support,
                        bool full_support, int64_t* work_budget,
                        CandidateEstimate* est) const;

  const ScoreContext* ctx_;
  ApproxParams params_;
  std::unordered_map<uint64_t, PairSims> pairs_;  // Key(es_col, gid)
};

}  // namespace approx
}  // namespace s4

#endif  // S4_APPROX_JOIN_SAMPLER_H_
