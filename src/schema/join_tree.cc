#include "schema/join_tree.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "common/string_util.h"

namespace s4 {

JoinTree JoinTree::Single(TableId table) {
  JoinTree t;
  t.nodes_.push_back(Node{table, kNoNode, -1, false});
  return t;
}

JoinTree JoinTree::FromNodes(std::vector<Node> nodes) {
  JoinTree t;
  for (size_t i = 0; i < nodes.size(); ++i) {
    assert((i == 0) == (nodes[i].parent == kNoNode));
    assert(nodes[i].parent < static_cast<TreeNodeId>(i));
  }
  t.nodes_ = std::move(nodes);
  return t;
}

TreeNodeId JoinTree::AddChild(TreeNodeId parent, const SchemaGraph& graph,
                              SchemaEdgeId edge, EdgeDir dir) {
  assert(parent >= 0 && parent < size());
  const SchemaEdge& e = graph.edge(edge);
  Node n;
  n.parent = parent;
  n.edge_to_parent = edge;
  if (dir == EdgeDir::kForward) {
    // Traversal from FK side to PK side: parent holds the FK.
    assert(nodes_[parent].table == e.src);
    n.table = e.dst;
    n.parent_holds_fk = true;
  } else {
    assert(nodes_[parent].table == e.dst);
    n.table = e.src;
    n.parent_holds_fk = false;
  }
  nodes_.push_back(n);
  return static_cast<TreeNodeId>(nodes_.size() - 1);
}

std::vector<TreeNodeId> JoinTree::ChildrenOf(TreeNodeId id) const {
  std::vector<TreeNodeId> out;
  for (TreeNodeId i = 0; i < size(); ++i) {
    if (nodes_[i].parent == id) out.push_back(i);
  }
  return out;
}

int32_t JoinTree::Degree(TreeNodeId id) const {
  int32_t d = nodes_[id].parent == kNoNode ? 0 : 1;
  for (TreeNodeId i = 0; i < size(); ++i) {
    if (nodes_[i].parent == id) ++d;
  }
  return d;
}

std::vector<TreeNodeId> JoinTree::Leaves() const {
  std::vector<TreeNodeId> out;
  for (TreeNodeId i = 0; i < size(); ++i) {
    if (Degree(i) <= 1) out.push_back(i);
  }
  return out;
}

std::vector<TreeNodeId> JoinTree::DescendantsOf(TreeNodeId v) const {
  std::vector<bool> in(nodes_.size(), false);
  in[v] = true;
  std::vector<TreeNodeId> out{v};
  // Parents precede children in storage.
  for (TreeNodeId i = v + 1; i < size(); ++i) {
    if (nodes_[i].parent != kNoNode && in[nodes_[i].parent]) {
      in[i] = true;
      out.push_back(i);
    }
  }
  return out;
}

bool JoinTree::ContainsTable(TableId table) const {
  for (const Node& n : nodes_) {
    if (n.table == table) return true;
  }
  return false;
}

std::vector<std::vector<JoinTree::AdjEntry>> JoinTree::BuildAdjacency()
    const {
  std::vector<std::vector<AdjEntry>> adj(nodes_.size());
  for (TreeNodeId i = 0; i < size(); ++i) {
    const Node& n = nodes_[i];
    if (n.parent == kNoNode) continue;
    // From parent's viewpoint, this node holds the FK iff the parent does
    // not, and vice versa.
    adj[n.parent].push_back(AdjEntry{i, n.edge_to_parent, !n.parent_holds_fk});
    adj[i].push_back(AdjEntry{n.parent, n.edge_to_parent, n.parent_holds_fk});
  }
  return adj;
}

std::string JoinTree::SigFrom(const std::vector<std::vector<AdjEntry>>& adj,
                              const std::vector<Node>& nodes,
                              const std::vector<std::string>& annotations,
                              TreeNodeId v, TreeNodeId from) {
  std::vector<std::string> child_sigs;
  for (const AdjEntry& e : adj[v]) {
    if (e.neighbor == from) continue;
    std::string label = StrFormat("e%d%c", e.edge,
                                  e.neighbor_holds_fk ? '<' : '>');
    child_sigs.push_back(label +
                         SigFrom(adj, nodes, annotations, e.neighbor, v));
  }
  std::sort(child_sigs.begin(), child_sigs.end());
  std::string sig = StrFormat("(t%d", nodes[v].table);
  if (v < static_cast<TreeNodeId>(annotations.size()) &&
      !annotations[v].empty()) {
    sig += "|" + annotations[v];
  }
  for (const std::string& cs : child_sigs) sig += cs;
  sig += ")";
  return sig;
}

std::string JoinTree::RootedSignature(
    const std::vector<std::string>& annotations) const {
  auto adj = BuildAdjacency();
  return SigFrom(adj, nodes_, annotations, root(), kNoNode);
}

std::string JoinTree::UnrootedSignature(
    const std::vector<std::string>& annotations) const {
  auto adj = BuildAdjacency();
  std::string best;
  for (TreeNodeId r = 0; r < size(); ++r) {
    std::string sig = SigFrom(adj, nodes_, annotations, r, kNoNode);
    if (best.empty() || sig < best) best = sig;
  }
  return best;
}

JoinTree JoinTree::Canonicalize(const std::vector<std::string>& annotations,
                                std::vector<TreeNodeId>* remap,
                                const std::vector<int64_t>* root_weights)
    const {
  auto adj = BuildAdjacency();
  TreeNodeId best_root = 0;
  std::string best;
  int64_t best_weight = 0;
  for (TreeNodeId r = 0; r < size(); ++r) {
    const int64_t weight =
        root_weights == nullptr ? 0 : (*root_weights)[r];
    if (!best.empty() && weight > best_weight) continue;
    std::string sig = SigFrom(adj, nodes_, annotations, r, kNoNode);
    if (best.empty() || weight < best_weight ||
        (weight == best_weight && sig < best)) {
      best = std::move(sig);
      best_root = r;
      best_weight = weight;
    }
  }

  JoinTree out;
  out.nodes_.reserve(nodes_.size());
  std::vector<TreeNodeId> map(nodes_.size(), kNoNode);

  // Preorder DFS from the canonical root with children visited in
  // signature order.
  std::function<void(TreeNodeId, TreeNodeId, TreeNodeId)> visit =
      [&](TreeNodeId v, TreeNodeId from, TreeNodeId new_parent) {
        TreeNodeId new_id = static_cast<TreeNodeId>(out.nodes_.size());
        map[v] = new_id;
        Node n;
        n.table = nodes_[v].table;
        n.parent = new_parent;
        if (from != kNoNode) {
          for (const AdjEntry& e : adj[v]) {
            if (e.neighbor == from) {
              n.edge_to_parent = e.edge;
              // The parent holds the FK iff the FK side of the edge is
              // not this node; AdjEntry is from v's viewpoint looking at
              // the parent, so "neighbor_holds_fk" = parent holds FK.
              n.parent_holds_fk = e.neighbor_holds_fk;
              break;
            }
          }
        }
        out.nodes_.push_back(n);
        std::vector<std::pair<std::string, const AdjEntry*>> kids;
        for (const AdjEntry& e : adj[v]) {
          if (e.neighbor == from) continue;
          std::string label = StrFormat("e%d%c", e.edge,
                                        e.neighbor_holds_fk ? '<' : '>');
          kids.emplace_back(
              label + SigFrom(adj, nodes_, annotations, e.neighbor, v), &e);
        }
        std::sort(kids.begin(), kids.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [sig, e] : kids) {
          (void)sig;
          visit(e->neighbor, v, new_id);
        }
      };
  visit(best_root, kNoNode, kNoNode);
  if (remap != nullptr) *remap = std::move(map);
  return out;
}

JoinTree JoinTree::RootedSubtree(TreeNodeId v,
                                 std::vector<TreeNodeId>* remap) const {
  std::vector<TreeNodeId> map(nodes_.size(), kNoNode);
  JoinTree out;
  // Parents precede children in storage, so one forward pass collects the
  // whole subtree.
  for (TreeNodeId i = v; i < size(); ++i) {
    bool in_subtree =
        (i == v) || (nodes_[i].parent != kNoNode && map[nodes_[i].parent] != kNoNode);
    if (!in_subtree) continue;
    Node n = nodes_[i];
    if (i == v) {
      n.parent = kNoNode;
      n.edge_to_parent = -1;
      n.parent_holds_fk = false;
    } else {
      n.parent = map[n.parent];
    }
    map[i] = static_cast<TreeNodeId>(out.nodes_.size());
    out.nodes_.push_back(n);
  }
  if (remap != nullptr) *remap = std::move(map);
  return out;
}

JoinTree JoinTree::SubtreeWithParent(TreeNodeId v,
                                     std::vector<TreeNodeId>* remap) const {
  assert(nodes_[v].parent != kNoNode);
  TreeNodeId p = nodes_[v].parent;
  std::vector<TreeNodeId> map(nodes_.size(), kNoNode);
  JoinTree out;
  // New root: the parent, stripped of its own parent and other children.
  out.nodes_.push_back(Node{nodes_[p].table, kNoNode, -1, false});
  map[p] = 0;
  for (TreeNodeId i = v; i < size(); ++i) {
    bool in_subtree =
        (i == v) || (nodes_[i].parent != kNoNode && nodes_[i].parent != p &&
                     map[nodes_[i].parent] != kNoNode);
    if (!in_subtree) continue;
    Node n = nodes_[i];
    n.parent = map[n.parent];
    map[i] = static_cast<TreeNodeId>(out.nodes_.size());
    out.nodes_.push_back(n);
  }
  if (remap != nullptr) *remap = std::move(map);
  return out;
}

std::string JoinTree::ToString(const Database& db) const {
  std::string out;
  std::function<void(TreeNodeId, int)> visit = [&](TreeNodeId v, int depth) {
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    const Node& n = nodes_[v];
    out += db.table(n.table).name();
    if (n.parent != kNoNode) {
      out += n.parent_holds_fk ? "  [parent FK]" : "  [own FK]";
    }
    out += "\n";
    for (TreeNodeId c : ChildrenOf(v)) visit(c, depth + 1);
  };
  visit(root(), 0);
  return out;
}

}  // namespace s4
