#include "schema/schema_graph.h"

#include <deque>

#include "common/string_util.h"

namespace s4 {

SchemaGraph::SchemaGraph(const Database& db)
    : db_(&db), num_vertices_(db.NumTables()) {
  edges_.reserve(db.foreign_keys().size());
  incidence_.resize(num_vertices_);
  for (const ForeignKeyDef& fk : db.foreign_keys()) {
    SchemaEdgeId id = static_cast<SchemaEdgeId>(edges_.size());
    edges_.push_back(SchemaEdge{fk.src_table, fk.src_column, fk.dst_table,
                                fk.label});
    incidence_[fk.src_table].push_back(
        Incidence{id, EdgeDir::kForward, fk.dst_table});
    incidence_[fk.dst_table].push_back(
        Incidence{id, EdgeDir::kBackward, fk.src_table});
  }
}

int32_t SchemaGraph::UndirectedDistance(TableId a, TableId b) const {
  if (a == b) return 0;
  std::vector<int32_t> dist(num_vertices_, -1);
  dist[a] = 0;
  std::deque<TableId> queue{a};
  while (!queue.empty()) {
    TableId u = queue.front();
    queue.pop_front();
    for (const Incidence& inc : incidence_[u]) {
      if (dist[inc.neighbor] < 0) {
        dist[inc.neighbor] = dist[u] + 1;
        if (inc.neighbor == b) return dist[inc.neighbor];
        queue.push_back(inc.neighbor);
      }
    }
  }
  return -1;
}

std::string SchemaGraph::ToString() const {
  std::string out = StrFormat("SchemaGraph(%d vertices, %d edges)\n",
                              num_vertices_, NumEdges());
  for (const SchemaEdge& e : edges_) {
    out += "  " + db_->table(e.src).name() + "." + e.label + " -> " +
           db_->table(e.dst).name() + "\n";
  }
  return out;
}

}  // namespace s4
