#ifndef S4_SCHEMA_SCHEMA_GRAPH_H_
#define S4_SCHEMA_SCHEMA_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"

namespace s4 {

// Index of an edge within SchemaGraph::edges().
using SchemaEdgeId = int32_t;

// One directed edge of the schema graph G(V, E): src (the relation
// holding the foreign key) -> dst (the relation whose primary key is
// referenced). Multiple edges may connect the same pair of relations;
// they are distinguished by the FK column (`src_column` / `label`).
struct SchemaEdge {
  TableId src = kInvalidTableId;
  int32_t src_column = -1;
  TableId dst = kInvalidTableId;
  std::string label;
};

// Direction in which an edge is traversed when growing join trees: the
// schema graph is directed (FK -> PK) but join trees may traverse edges
// either way (Sec 2.2; candidate-network generation in [13]).
enum class EdgeDir : uint8_t {
  kForward = 0,   // from src (FK side) to dst (PK side)
  kBackward = 1,  // from dst (PK side) to src (FK side)
};

// In-memory directed schema graph over a finalized Database. Keeps, per
// relation, the incident edges in both directions for join-tree
// enumeration.
class SchemaGraph {
 public:
  // `db` must outlive the graph and be finalized.
  explicit SchemaGraph(const Database& db);

  const Database& db() const { return *db_; }
  int32_t NumVertices() const { return num_vertices_; }
  int32_t NumEdges() const { return static_cast<int32_t>(edges_.size()); }
  const SchemaEdge& edge(SchemaEdgeId id) const { return edges_[id]; }
  const std::vector<SchemaEdge>& edges() const { return edges_; }

  struct Incidence {
    SchemaEdgeId edge;
    EdgeDir dir;        // direction of traversal away from this vertex
    TableId neighbor;   // the vertex reached
  };
  // All edges incident to `table`, both orientations.
  const std::vector<Incidence>& IncidentEdges(TableId table) const {
    return incidence_[table];
  }

  // Unweighted hop distance between two relations ignoring direction;
  // -1 if disconnected. Used to bound join-tree search.
  int32_t UndirectedDistance(TableId a, TableId b) const;

  std::string ToString() const;

 private:
  const Database* db_;
  int32_t num_vertices_;
  std::vector<SchemaEdge> edges_;
  std::vector<std::vector<Incidence>> incidence_;
};

}  // namespace s4

#endif  // S4_SCHEMA_SCHEMA_GRAPH_H_
