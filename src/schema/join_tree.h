#ifndef S4_SCHEMA_JOIN_TREE_H_
#define S4_SCHEMA_JOIN_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/schema_graph.h"

namespace s4 {

// Node index within a JoinTree.
using TreeNodeId = int32_t;
inline constexpr TreeNodeId kNoNode = -1;

// A rooted join tree J (Def 2): a subtree of the schema graph whose nodes
// are *relation instances* (the same relation may occur more than once)
// and whose edges are schema-graph FK edges traversed in either
// orientation. Node 0 is always the root and every node's parent precedes
// it (topological storage), so copying a tree and growing it during
// enumeration is O(n).
class JoinTree {
 public:
  struct Node {
    TableId table = kInvalidTableId;
    TreeNodeId parent = kNoNode;          // kNoNode for the root
    SchemaEdgeId edge_to_parent = -1;     // schema edge linking to parent
    // True iff the parent relation holds the FK of `edge_to_parent`
    // (parent "points at" this node); false iff this node holds the FK.
    bool parent_holds_fk = false;
  };

  JoinTree() = default;

  // Creates a single-node tree rooted at `table`.
  static JoinTree Single(TableId table);

  // Constructs a tree from raw nodes. Requires node 0 to be the root and
  // every node's parent to precede it (asserted in debug builds).
  static JoinTree FromNodes(std::vector<Node> nodes);

  // Appends a child of `parent` reached over `edge` in direction `dir`
  // (as produced by SchemaGraph::IncidentEdges on the parent's table).
  // Returns the new node id.
  TreeNodeId AddChild(TreeNodeId parent, const SchemaGraph& graph,
                      SchemaEdgeId edge, EdgeDir dir);

  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }
  const Node& node(TreeNodeId id) const { return nodes_[id]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  TreeNodeId root() const { return 0; }

  // Children of `id`, in storage order.
  std::vector<TreeNodeId> ChildrenOf(TreeNodeId id) const;
  // Number of tree neighbors (degree d_J(R), used by the cost model and
  // the minimality check on degree-1 relations).
  int32_t Degree(TreeNodeId id) const;
  // Node ids with degree 1 (the root counts as degree = #children).
  std::vector<TreeNodeId> Leaves() const;

  // `v` plus all its descendants, ascending.
  std::vector<TreeNodeId> DescendantsOf(TreeNodeId v) const;

  // True if some node instance uses `table`.
  bool ContainsTable(TableId table) const;

  // -- Canonicalization ----------------------------------------------------
  // `annotations[i]` is an opaque per-node label (e.g. the projection
  // mapping of a PJ query) that participates in the signature so that
  // trees equal only up to an automorphism that permutes distinct
  // mappings are kept distinct.

  // Signature of the tree as rooted at its current root.
  std::string RootedSignature(const std::vector<std::string>& annotations) const;

  // Minimal signature over all possible roots; identifies the tree as an
  // unrooted object. Used to deduplicate enumerated candidates.
  std::string UnrootedSignature(const std::vector<std::string>& annotations) const;

  // Rebuilds the tree rooted at the canonical root with children in
  // canonical (signature-sorted) DFS order. `remap` receives old->new
  // node ids. The resulting tree has a deterministic layout: equal trees
  // (under `annotations`) become structurally identical.
  //
  // By default the root minimizes the rooted signature. When
  // `root_weights` (one value per node, e.g. the node relation's row
  // count) is supplied, the root minimizes (weight, signature) instead:
  // rooting at the cheapest relation pushes expensive relations into
  // subtrees whose materialized outputs the sub-PJ cache can share
  // across queries (Sec 5.3.2).
  JoinTree Canonicalize(const std::vector<std::string>& annotations,
                        std::vector<TreeNodeId>* remap,
                        const std::vector<int64_t>* root_weights =
                            nullptr) const;

  // -- Sub-PJ support (Def 4) ----------------------------------------------

  // Extracts the full rooted subtree at `v` (type-i sub-PJ tree).
  // `remap[old] = new or kNoNode`.
  JoinTree RootedSubtree(TreeNodeId v, std::vector<TreeNodeId>* remap) const;

  // Extracts the rooted subtree at `v` plus v's parent as new root with
  // single child v (type-ii sub-PJ tree). Requires v != root.
  JoinTree SubtreeWithParent(TreeNodeId v,
                             std::vector<TreeNodeId>* remap) const;

  // Human-readable rendering using the database catalog.
  std::string ToString(const Database& db) const;

 private:
  struct AdjEntry {
    TreeNodeId neighbor;
    SchemaEdgeId edge;
    bool neighbor_holds_fk;  // the FK side of `edge` is `neighbor`
  };
  std::vector<std::vector<AdjEntry>> BuildAdjacency() const;
  // Signature of the subtree reachable from `v` avoiding `from`, over the
  // undirected adjacency.
  static std::string SigFrom(const std::vector<std::vector<AdjEntry>>& adj,
                             const std::vector<Node>& nodes,
                             const std::vector<std::string>& annotations,
                             TreeNodeId v, TreeNodeId from);

  std::vector<Node> nodes_;
};

}  // namespace s4

#endif  // S4_SCHEMA_JOIN_TREE_H_
