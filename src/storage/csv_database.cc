#include "storage/csv_database.h"

#include <vector>

#include "common/string_util.h"
#include "storage/csv.h"

namespace s4 {

namespace {

bool LooksLikeKeyColumn(const std::string& name) {
  if (name.size() < 2) return false;
  const std::string tail2 = ToLowerAscii(name.substr(name.size() - 2));
  if (tail2 == "id") return true;
  return name.size() >= 3 &&
         ToLowerAscii(name.substr(name.size() - 3)) == "_id";
}

}  // namespace

StatusOr<Database> LoadCsvDatabase(const std::string& csv_dir,
                                   const std::string& schema_spec) {
  Database db;
  struct PendingFk {
    std::string src_table, src_column, dst_table;
  };
  std::vector<PendingFk> fks;

  for (const std::string& raw_line : SplitAndTrim(schema_spec, "\n")) {
    std::vector<std::string> parts = SplitAndTrim(raw_line, " \t");
    if (parts.empty() || parts[0][0] == '#') continue;
    if (parts[0] == "table" && parts.size() == 4) {
      auto csv = ReadFile(csv_dir + "/" + parts[2]);
      if (!csv.ok()) return csv.status();
      auto parsed = ParseCsv(*csv);
      if (!parsed.ok()) return parsed.status();
      if (parsed->empty()) {
        return Status::InvalidArgument("empty csv " + parts[2]);
      }
      auto t = db.AddTable(parts[1]);
      if (!t.ok()) return t.status();
      bool has_pk = false;
      for (const std::string& col : (*parsed)[0]) {
        const bool is_key = col == parts[3] || LooksLikeKeyColumn(col);
        S4_RETURN_IF_ERROR(
            (*t)->AddColumn(col, is_key ? ColumnType::kInt64
                                        : ColumnType::kText)
                .status());
        has_pk = has_pk || col == parts[3];
      }
      if (!has_pk) {
        return Status::InvalidArgument("pk column " + parts[3] +
                                       " missing from " + parts[2]);
      }
      S4_RETURN_IF_ERROR((*t)->SetPrimaryKey((*t)->ColumnIndex(parts[3])));
      S4_RETURN_IF_ERROR(LoadCsvInto(*csv, *t));
    } else if (parts[0] == "fk" && parts.size() == 4 && parts[2] == "->") {
      std::vector<std::string> ref = SplitAndTrim(parts[1], ".");
      if (ref.size() != 2) {
        return Status::InvalidArgument("bad fk spec: " + raw_line);
      }
      fks.push_back(PendingFk{ref[0], ref[1], parts[3]});
    } else {
      return Status::InvalidArgument("bad schema line: " + raw_line);
    }
  }
  for (const PendingFk& fk : fks) {
    S4_RETURN_IF_ERROR(
        db.AddForeignKey(fk.src_table, fk.src_column, fk.dst_table));
  }
  S4_RETURN_IF_ERROR(db.Finalize(/*check_integrity=*/true));
  return db;
}

StatusOr<Database> LoadCsvDatabaseFromFile(const std::string& csv_dir,
                                           const std::string& schema_path) {
  auto spec = ReadFile(schema_path);
  if (!spec.ok()) return spec.status();
  return LoadCsvDatabase(csv_dir, *spec);
}

}  // namespace s4
