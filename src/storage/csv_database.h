#ifndef S4_STORAGE_CSV_DATABASE_H_
#define S4_STORAGE_CSV_DATABASE_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace s4 {

// Builds a Database from a directory of CSV files plus a plain-text
// schema specification — the bring-your-own-data entry point.
//
// Schema spec, one directive per line ('#' comments allowed):
//
//   table <name> <csv-file> <pk-column>
//   fk <table>.<column> -> <table>
//
// Column types are inferred from the CSV header: the primary-key column
// and any column named like a key (ending in "Id"/"ID"/"_id") load as
// INT64; everything else loads as TEXT. Empty fields are NULL. The
// returned database is finalized with full referential checking.
StatusOr<Database> LoadCsvDatabase(const std::string& csv_dir,
                                   const std::string& schema_spec);

// Same, but reads the schema spec from a file.
StatusOr<Database> LoadCsvDatabaseFromFile(const std::string& csv_dir,
                                           const std::string& schema_path);

}  // namespace s4

#endif  // S4_STORAGE_CSV_DATABASE_H_
