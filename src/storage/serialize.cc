#include "storage/serialize.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/string_util.h"

namespace s4 {

namespace {

constexpr char kMagic[4] = {'S', '4', 'D', 'B'};
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  void Raw(const void* data, size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
  }
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void I32(int32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void I64(int64_t v) { Raw(&v, 8); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      file_size_ = static_cast<uint64_t>(in_.tellg());
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_) && !failed_; }
  // Every deserialized count must be plausible given the file size;
  // callers use this to reject corrupt counts before allocating.
  uint64_t file_size() const { return file_size_; }

  void Raw(void* data, size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (in_.gcount() != static_cast<std::streamsize>(bytes)) failed_ = true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, 1);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  int64_t I64() {
    int64_t v = 0;
    Raw(&v, 8);
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (failed_ || n > file_size_) {
      failed_ = true;
      return {};
    }
    std::string s(n, '\0');
    Raw(s.data(), n);
    return s;
  }

 private:
  std::ifstream in_;
  uint64_t file_size_ = 0;
  bool failed_ = false;
};

}  // namespace

Status SaveDatabase(const Database& db, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::Internal("cannot open " + path);
  w.Raw(kMagic, 4);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(db.NumTables()));
  for (TableId t = 0; t < db.NumTables(); ++t) {
    const Table& table = db.table(t);
    w.Str(table.name());
    w.U32(static_cast<uint32_t>(table.NumColumns()));
    for (int32_t c = 0; c < table.NumColumns(); ++c) {
      w.Str(table.column(c).name);
      w.U8(static_cast<uint8_t>(table.column(c).type));
    }
    w.I32(table.primary_key_column());
    w.U64(static_cast<uint64_t>(table.NumRows()));
    for (int32_t c = 0; c < table.NumColumns(); ++c) {
      // Validity bitmap, one bit per row.
      std::vector<uint8_t> bits((table.NumRows() + 7) / 8, 0);
      for (int64_t r = 0; r < table.NumRows(); ++r) {
        if (!table.IsNull(r, c)) {
          bits[static_cast<size_t>(r / 8)] |=
              static_cast<uint8_t>(1u << (r % 8));
        }
      }
      w.Raw(bits.data(), bits.size());
      if (table.column(c).type == ColumnType::kInt64) {
        for (int64_t r = 0; r < table.NumRows(); ++r) {
          w.I64(table.IsNull(r, c) ? 0 : table.GetInt(r, c));
        }
      } else {
        for (int64_t r = 0; r < table.NumRows(); ++r) {
          w.Str(table.IsNull(r, c) ? std::string() : table.GetText(r, c));
        }
      }
    }
  }
  w.U32(static_cast<uint32_t>(db.foreign_keys().size()));
  for (const ForeignKeyDef& fk : db.foreign_keys()) {
    w.U32(static_cast<uint32_t>(fk.src_table));
    w.I32(fk.src_column);
    w.U32(static_cast<uint32_t>(fk.dst_table));
  }
  if (!w.ok()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<Database> LoadDatabase(const std::string& path) {
  Reader r(path);
  if (!r.ok()) return Status::NotFound("cannot open " + path);
  char magic[4];
  r.Raw(magic, 4);
  if (!r.ok() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument("not an S4DB file: " + path);
  }
  const uint32_t version = r.U32();
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported S4DB version %u", version));
  }

  Database db;
  const uint32_t num_tables = r.U32();
  if (!r.ok() || num_tables > (1u << 20)) {
    return Status::InvalidArgument("corrupt table count");
  }
  for (uint32_t t = 0; t < num_tables; ++t) {
    std::string name = r.Str();
    auto table = db.AddTable(name);
    if (!table.ok()) return table.status();
    const uint32_t num_cols = r.U32();
    if (!r.ok() || num_cols > (1u << 16)) {
      return Status::InvalidArgument("corrupt column count");
    }
    std::vector<ColumnType> types;
    for (uint32_t c = 0; c < num_cols; ++c) {
      std::string col_name = r.Str();
      ColumnType type = static_cast<ColumnType>(r.U8());
      if (type != ColumnType::kInt64 && type != ColumnType::kText) {
        return Status::InvalidArgument("corrupt column type");
      }
      types.push_back(type);
      S4_RETURN_IF_ERROR((*table)->AddColumn(col_name, type).status());
    }
    const int32_t pk = r.I32();
    S4_RETURN_IF_ERROR((*table)->SetPrimaryKey(pk));
    const uint64_t num_rows = r.U64();
    // Every row stores at least the 8-byte primary key, so a plausible
    // row count is bounded by the file size.
    if (!r.ok() || num_rows > r.file_size() / 8) {
      return Status::InvalidArgument("corrupt row count");
    }
    // Column-major on disk -> buffer all columns, then append row-wise.
    std::vector<std::vector<Value>> columns(num_cols);
    for (uint32_t c = 0; c < num_cols; ++c) {
      std::vector<uint8_t> bits((num_rows + 7) / 8, 0);
      r.Raw(bits.data(), bits.size());
      columns[c].reserve(num_rows);
      for (uint64_t row = 0; row < num_rows; ++row) {
        const bool valid =
            (bits[static_cast<size_t>(row / 8)] >> (row % 8)) & 1u;
        if (types[c] == ColumnType::kInt64) {
          int64_t v = r.I64();
          columns[c].push_back(valid ? Value::Int(v) : Value::Null());
        } else {
          std::string v = r.Str();
          columns[c].push_back(valid ? Value::Text(std::move(v))
                                     : Value::Null());
        }
      }
      if (!r.ok()) return Status::InvalidArgument("truncated column data");
    }
    std::vector<Value> row_values(num_cols);
    for (uint64_t row = 0; row < num_rows; ++row) {
      for (uint32_t c = 0; c < num_cols; ++c) {
        row_values[c] = columns[c][row];
      }
      S4_RETURN_IF_ERROR((*table)->AppendRow(row_values));
    }
  }
  const uint32_t num_fks = r.U32();
  if (!r.ok() || num_fks > (1u << 20)) {
    return Status::InvalidArgument("corrupt fk count");
  }
  for (uint32_t i = 0; i < num_fks; ++i) {
    const uint32_t src = r.U32();
    const int32_t col = r.I32();
    const uint32_t dst = r.U32();
    if (!r.ok() || src >= num_tables || dst >= num_tables || col < 0 ||
        col >= db.table(static_cast<TableId>(src)).NumColumns()) {
      return Status::InvalidArgument("corrupt foreign key");
    }
    S4_RETURN_IF_ERROR(db.AddForeignKey(
        db.table(static_cast<TableId>(src)).name(),
        db.table(static_cast<TableId>(src)).column(col).name,
        db.table(static_cast<TableId>(dst)).name()));
  }
  S4_RETURN_IF_ERROR(db.Finalize(/*check_integrity=*/false));
  return db;
}

}  // namespace s4
