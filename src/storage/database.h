#ifndef S4_STORAGE_DATABASE_H_
#define S4_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace s4 {

// A declared foreign-key reference: the INT64 column
// `src_table[src_column]` references the primary key of `dst_table`.
// These are the edges E of the directed schema graph G(V, E) (Sec 2.1);
// `label` names the FK attribute (multiple edges may connect the same
// pair of relations).
struct ForeignKeyDef {
  TableId src_table = kInvalidTableId;
  int32_t src_column = -1;
  TableId dst_table = kInvalidTableId;
  std::string label;

  bool operator==(const ForeignKeyDef&) const = default;
};

// The database D: a catalog of relations plus declared foreign keys.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Creates an empty table; names must be unique.
  StatusOr<Table*> AddTable(const std::string& name);

  int32_t NumTables() const { return static_cast<int32_t>(tables_.size()); }
  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }

  // Table by name, or nullptr.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  // Declares src_table.src_column -> dst_table (primary key). The label
  // defaults to the source column name.
  Status AddForeignKey(const std::string& src_table,
                       const std::string& src_column,
                       const std::string& dst_table);

  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }

  // Validates referential declarations and builds every table's PK index;
  // call once after loading data, before index building or query
  // evaluation. `check_integrity` additionally verifies that every
  // non-NULL FK value resolves to an existing row (O(total rows)).
  Status Finalize(bool check_integrity = true);
  bool finalized() const { return finalized_; }

  // Deep copy of the catalog and all table data (explicit — the copy
  // constructor is deleted). Used by the live subsystem's tests to
  // rebuild a reference database from a mutated master.
  Database Clone() const;

  // Human-readable "R.c" for a column reference.
  std::string ColumnName(const ColumnRef& ref) const;

  // Total data footprint (approximate bytes) of all tables.
  size_t ByteSize() const;

  // Total number of declared text columns across all tables.
  int64_t NumTextColumns() const;

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> table_by_name_;
  std::vector<ForeignKeyDef> foreign_keys_;
  bool finalized_ = false;
};

}  // namespace s4

#endif  // S4_STORAGE_DATABASE_H_
