#ifndef S4_STORAGE_CSV_H_
#define S4_STORAGE_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace s4 {

// Minimal RFC-4180-ish CSV support used by the example programs to load
// user data into tables and to dump query outputs. Quoted fields with
// embedded commas/quotes/newlines are handled; all parsed fields are
// strings and are coerced per the target column type ("" -> NULL).

// Parses CSV text into rows of string fields.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

// Appends all data rows of `text` (first line = header, must match the
// table's column names in order) to `table`.
Status LoadCsvInto(const std::string& text, Table* table);

// Reads a file fully into a string.
StatusOr<std::string> ReadFile(const std::string& path);

// Serializes rows of string fields to CSV (quoting where needed).
std::string ToCsv(const std::vector<std::vector<std::string>>& rows);

}  // namespace s4

#endif  // S4_STORAGE_CSV_H_
