#include "storage/database.h"

#include "common/string_util.h"

namespace s4 {

StatusOr<Table*> Database::AddTable(const std::string& name) {
  if (table_by_name_.count(name) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  TableId id = NumTables();
  tables_.push_back(std::make_unique<Table>(id, name));
  table_by_name_[name] = id;
  finalized_ = false;
  return tables_.back().get();
}

Table* Database::FindTable(const std::string& name) {
  auto it = table_by_name_.find(name);
  return it == table_by_name_.end() ? nullptr : tables_[it->second].get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = table_by_name_.find(name);
  return it == table_by_name_.end() ? nullptr : tables_[it->second].get();
}

Status Database::AddForeignKey(const std::string& src_table,
                               const std::string& src_column,
                               const std::string& dst_table) {
  Table* src = FindTable(src_table);
  if (src == nullptr) return Status::NotFound("table " + src_table);
  Table* dst = FindTable(dst_table);
  if (dst == nullptr) return Status::NotFound("table " + dst_table);
  int32_t col = src->ColumnIndex(src_column);
  if (col < 0) {
    return Status::NotFound("column " + src_column + " in " + src_table);
  }
  if (src->column(col).type != ColumnType::kInt64) {
    return Status::InvalidArgument("foreign key column must be INT64: " +
                                   src_table + "." + src_column);
  }
  for (const ForeignKeyDef& fk : foreign_keys_) {
    if (fk.src_table == src->id() && fk.src_column == col) {
      return Status::AlreadyExists("foreign key on " + src_table + "." +
                                   src_column);
    }
  }
  foreign_keys_.push_back(
      ForeignKeyDef{src->id(), col, dst->id(), src_column});
  finalized_ = false;
  return Status::OK();
}

Status Database::Finalize(bool check_integrity) {
  for (auto& t : tables_) {
    if (!t->HasPrimaryKey()) {
      return Status::FailedPrecondition("table " + t->name() +
                                        " has no primary key");
    }
    S4_RETURN_IF_ERROR(t->BuildPkIndex());
  }
  if (check_integrity) {
    for (const ForeignKeyDef& fk : foreign_keys_) {
      const Table& src = table(fk.src_table);
      const Table& dst = table(fk.dst_table);
      const auto& fks = src.IntColumn(fk.src_column);
      for (int64_t r = 0; r < src.NumRows(); ++r) {
        if (src.IsNull(r, fk.src_column)) continue;
        if (dst.FindByPk(fks[r]) < 0) {
          return Status::InvalidArgument(StrFormat(
              "dangling foreign key %lld in %s.%s",
              static_cast<long long>(fks[r]), src.name().c_str(),
              fk.label.c_str()));
        }
      }
    }
  }
  finalized_ = true;
  return Status::OK();
}

Database Database::Clone() const {
  Database db;
  db.tables_.reserve(tables_.size());
  for (const auto& t : tables_) {
    db.tables_.push_back(std::make_unique<Table>(t->Clone()));
  }
  db.table_by_name_ = table_by_name_;
  db.foreign_keys_ = foreign_keys_;
  db.finalized_ = finalized_;
  return db;
}

std::string Database::ColumnName(const ColumnRef& ref) const {
  if (!ref.valid() || ref.table_id >= NumTables()) return "<invalid>";
  const Table& t = table(ref.table_id);
  if (ref.column_index >= t.NumColumns()) return t.name() + ".<invalid>";
  return t.name() + "." + t.column(ref.column_index).name;
}

size_t Database::ByteSize() const {
  size_t bytes = 0;
  for (const auto& t : tables_) bytes += t->ByteSize();
  return bytes;
}

int64_t Database::NumTextColumns() const {
  int64_t n = 0;
  for (const auto& t : tables_) {
    n += static_cast<int64_t>(t->TextColumnIndexes().size());
  }
  return n;
}

}  // namespace s4
