#ifndef S4_STORAGE_TABLE_H_
#define S4_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace s4 {

// Identifies a relation within a Database.
using TableId = int32_t;
inline constexpr TableId kInvalidTableId = -1;

// Identifies a column of a relation: R[j] in the paper's notation.
struct ColumnRef {
  TableId table_id = kInvalidTableId;
  int32_t column_index = -1;

  bool valid() const { return table_id >= 0 && column_index >= 0; }
  bool operator==(const ColumnRef&) const = default;
  // Orders by (table, column); used for canonical signatures.
  auto operator<=>(const ColumnRef&) const = default;
};

struct ColumnRefHash {
  size_t operator()(const ColumnRef& c) const {
    return (static_cast<size_t>(c.table_id) << 20) ^
           static_cast<size_t>(c.column_index);
  }
};

// Definition of one column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
};

// One relation: columnar in-memory storage. Text columns are stored as
// strings; INT64 columns back primary keys, foreign keys, and numeric
// attributes. NULL is represented per-column by a validity bitmap.
class Table {
 public:
  Table(TableId id, std::string name) : id_(id), name_(std::move(name)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Appends a column; returns its index. Column names must be unique
  // within the table.
  StatusOr<int32_t> AddColumn(const std::string& name, ColumnType type);

  // Declares `column_index` as the (single-column, INT64) primary key.
  Status SetPrimaryKey(int32_t column_index);
  int32_t primary_key_column() const { return pk_column_; }
  bool HasPrimaryKey() const { return pk_column_ >= 0; }

  int32_t NumColumns() const { return static_cast<int32_t>(columns_.size()); }
  int64_t NumRows() const { return num_rows_; }
  const ColumnDef& column(int32_t idx) const { return columns_[idx]; }

  // Index of the column named `name`, or -1.
  int32_t ColumnIndex(const std::string& name) const;

  // Appends a row; `values` must match the column count and types
  // (NULLs allowed anywhere except the primary key). When the pk index
  // is built (live tables), duplicates are rejected up front and the
  // index is maintained incrementally; bulk loads (index not yet built)
  // defer duplicate detection to BuildPkIndex as before.
  Status AppendRow(const std::vector<Value>& values);

  // Overwrites one cell in place. The value must match the column type
  // (or be NULL); the primary-key column cannot be changed this way —
  // a row's pk is its identity (delete + insert instead).
  Status SetCell(int64_t row, int32_t col, const Value& v);

  // Deletes `row` by moving the last row into its slot and shrinking by
  // one (O(columns), not O(rows)). Dense row ids stay dense; the caller
  // owns re-indexing anything keyed by the moved row's old id. The pk
  // index, when built, is maintained incrementally.
  Status RemoveRowSwapLast(int64_t row);

  // Deep copy (the copy constructor is deleted to keep accidental
  // copies of large relations out of hot paths; cloning is explicit).
  Table Clone() const;

  // Cell accessors. Row ids are dense [0, NumRows).
  bool IsNull(int64_t row, int32_t col) const { return !valid_[col][row]; }
  int64_t GetInt(int64_t row, int32_t col) const {
    return int_data_[col][row];
  }
  const std::string& GetText(int64_t row, int32_t col) const {
    return text_data_[col][row];
  }
  Value GetValue(int64_t row, int32_t col) const;

  // Raw columnar access (valid entries only meaningful where !IsNull).
  const std::vector<int64_t>& IntColumn(int32_t col) const {
    return int_data_[col];
  }
  const std::vector<std::string>& TextColumn(int32_t col) const {
    return text_data_[col];
  }

  // Builds (or rebuilds) the primary-key hash index; required before
  // FindByPk. Fails if duplicate or NULL keys exist.
  Status BuildPkIndex();
  // Row id holding primary key `pk`, or -1. Requires BuildPkIndex().
  int64_t FindByPk(int64_t pk) const;

  // Approximate memory footprint of the table data in bytes.
  size_t ByteSize() const;

  // Column indices whose type is kText — the paper's "text columns".
  std::vector<int32_t> TextColumnIndexes() const;

 private:
  TableId id_;
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, int32_t> column_by_name_;
  int32_t pk_column_ = -1;
  int64_t num_rows_ = 0;

  // Parallel per-column storage; only the vector matching the column type
  // is populated.
  std::vector<std::vector<int64_t>> int_data_;
  std::vector<std::vector<std::string>> text_data_;
  std::vector<std::vector<bool>> valid_;

  std::unordered_map<int64_t, int64_t> pk_index_;
  bool pk_index_built_ = false;
};

}  // namespace s4

#endif  // S4_STORAGE_TABLE_H_
