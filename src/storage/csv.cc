#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace s4 {

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    // Skip fully empty lines.
    if (!(row.size() == 1 && row[0].empty())) rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

Status LoadCsvInto(const std::string& text, Table* table) {
  auto parsed = ParseCsv(text);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = *parsed;
  if (rows.empty()) return Status::InvalidArgument("empty CSV");

  const auto& header = rows[0];
  if (static_cast<int32_t>(header.size()) != table->NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("CSV has %zu columns, table %s has %d", header.size(),
                  table->name().c_str(), table->NumColumns()));
  }
  for (int32_t c = 0; c < table->NumColumns(); ++c) {
    if (header[c] != table->column(c).name) {
      return Status::InvalidArgument("CSV header mismatch at column " +
                                     header[c]);
    }
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("CSV row %zu has %zu fields, want %zu", r,
                    rows[r].size(), header.size()));
    }
    std::vector<Value> values;
    values.reserve(rows[r].size());
    for (int32_t c = 0; c < table->NumColumns(); ++c) {
      const std::string& f = rows[r][c];
      if (f.empty()) {
        values.push_back(Value::Null());
      } else if (table->column(c).type == ColumnType::kInt64) {
        char* end = nullptr;
        long long v = std::strtoll(f.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("non-integer value '" + f +
                                         "' for INT64 column");
        }
        values.push_back(Value::Int(v));
      } else {
        values.push_back(Value::Text(f));
      }
    }
    S4_RETURN_IF_ERROR(table->AppendRow(values));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string ToCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      const std::string& f = row[c];
      bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
      if (needs_quotes) {
        out.push_back('"');
        for (char ch : f) {
          if (ch == '"') out.push_back('"');
          out.push_back(ch);
        }
        out.push_back('"');
      } else {
        out.append(f);
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace s4
