#ifndef S4_STORAGE_VALUE_H_
#define S4_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace s4 {

// Column types of the in-memory store. The paper's algorithms only touch
// text columns and primary/foreign key columns (Sec 2.1), so the type
// system is deliberately small: 64-bit keys/ints and strings.
enum class ColumnType {
  kInt64,  // primary keys, foreign keys, numeric attributes
  kText,   // free text; the only type that is tokenized and indexed
};

const char* ColumnTypeName(ColumnType type);

// A single cell value: NULL, int64, or string.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Text(std::string v) { return Value(std::move(v)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  const std::string& AsText() const { return std::get<std::string>(v_); }

  // Debug rendering: "NULL", the integer, or the quoted string.
  std::string ToString() const;

  // Approximate heap + inline footprint, used for Table 1 style size
  // accounting.
  size_t ByteSize() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  std::variant<std::monostate, int64_t, std::string> v_;
};

}  // namespace s4

#endif  // S4_STORAGE_VALUE_H_
