#include "storage/value.h"

#include "common/string_util.h"

namespace s4 {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kText:
      return "TEXT";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return StrFormat("%lld", static_cast<long long>(AsInt()));
  return "'" + AsText() + "'";
}

size_t Value::ByteSize() const {
  if (is_text()) return sizeof(Value) + AsText().capacity();
  return sizeof(Value);
}

}  // namespace s4
