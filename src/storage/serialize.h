#ifndef S4_STORAGE_SERIALIZE_H_
#define S4_STORAGE_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace s4 {

// Binary (de)serialization of a Database — schema, foreign keys and all
// row data — so the offline phase (load + index build) can run against a
// durable snapshot instead of re-generating or re-importing data.
//
// Format (little-endian, version-tagged):
//   "S4DB" u32-version
//   u32 table-count, then per table:
//     string name, u32 column-count, per column (string name, u8 type),
//     i32 pk-column, u64 row-count,
//     per column: validity bitmap + raw i64 values or length-prefixed
//     strings
//   u32 fk-count, per fk: u32 src-table, i32 src-column, u32 dst-table
//
// The loaded database is returned finalized (without re-running the
// O(rows) referential check; the snapshot is trusted).

Status SaveDatabase(const Database& db, const std::string& path);
StatusOr<Database> LoadDatabase(const std::string& path);

}  // namespace s4

#endif  // S4_STORAGE_SERIALIZE_H_
