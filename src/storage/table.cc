#include "storage/table.h"

#include "common/string_util.h"

namespace s4 {

StatusOr<int32_t> Table::AddColumn(const std::string& name, ColumnType type) {
  if (num_rows_ > 0) {
    return Status::FailedPrecondition(
        "cannot add column to non-empty table " + name_);
  }
  if (column_by_name_.count(name) > 0) {
    return Status::AlreadyExists("column " + name + " in table " + name_);
  }
  int32_t idx = NumColumns();
  columns_.push_back(ColumnDef{name, type});
  column_by_name_[name] = idx;
  int_data_.emplace_back();
  text_data_.emplace_back();
  valid_.emplace_back();
  return idx;
}

Status Table::SetPrimaryKey(int32_t column_index) {
  if (column_index < 0 || column_index >= NumColumns()) {
    return Status::OutOfRange(
        StrFormat("pk column %d out of range in %s", column_index,
                  name_.c_str()));
  }
  if (columns_[column_index].type != ColumnType::kInt64) {
    return Status::InvalidArgument("primary key must be INT64 in " + name_);
  }
  pk_column_ = column_index;
  return Status::OK();
}

int32_t Table::ColumnIndex(const std::string& name) const {
  auto it = column_by_name_.find(name);
  return it == column_by_name_.end() ? -1 : it->second;
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (static_cast<int32_t>(values.size()) != NumColumns()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu != %d columns in %s", values.size(),
                  NumColumns(), name_.c_str()));
  }
  for (int32_t c = 0; c < NumColumns(); ++c) {
    const Value& v = values[c];
    if (v.is_null()) {
      if (c == pk_column_) {
        return Status::InvalidArgument("NULL primary key in " + name_);
      }
      continue;
    }
    bool type_ok = (columns_[c].type == ColumnType::kInt64 && v.is_int()) ||
                   (columns_[c].type == ColumnType::kText && v.is_text());
    if (!type_ok) {
      return Status::InvalidArgument(
          StrFormat("type mismatch at column %d of %s", c, name_.c_str()));
    }
  }
  if (pk_index_built_ && pk_column_ >= 0 &&
      pk_index_.count(values[pk_column_].AsInt()) > 0) {
    return Status::AlreadyExists(
        StrFormat("primary key %lld already exists in %s",
                  static_cast<long long>(values[pk_column_].AsInt()),
                  name_.c_str()));
  }
  for (int32_t c = 0; c < NumColumns(); ++c) {
    const Value& v = values[c];
    valid_[c].push_back(!v.is_null());
    if (columns_[c].type == ColumnType::kInt64) {
      int_data_[c].push_back(v.is_int() ? v.AsInt() : 0);
    } else {
      text_data_[c].push_back(v.is_text() ? v.AsText() : std::string());
    }
  }
  if (pk_index_built_) {
    pk_index_.emplace(int_data_[pk_column_][num_rows_], num_rows_);
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::SetCell(int64_t row, int32_t col, const Value& v) {
  if (row < 0 || row >= num_rows_ || col < 0 || col >= NumColumns()) {
    return Status::OutOfRange(
        StrFormat("cell (%lld, %d) out of range in %s",
                  static_cast<long long>(row), col, name_.c_str()));
  }
  if (col == pk_column_) {
    return Status::InvalidArgument(
        "cannot update the primary key of " + name_ +
        "; delete and re-insert the row instead");
  }
  if (!v.is_null()) {
    const bool type_ok =
        (columns_[col].type == ColumnType::kInt64 && v.is_int()) ||
        (columns_[col].type == ColumnType::kText && v.is_text());
    if (!type_ok) {
      return Status::InvalidArgument(
          StrFormat("type mismatch at column %d of %s", col, name_.c_str()));
    }
  }
  valid_[col][row] = !v.is_null();
  if (columns_[col].type == ColumnType::kInt64) {
    int_data_[col][row] = v.is_int() ? v.AsInt() : 0;
  } else {
    text_data_[col][row] = v.is_text() ? v.AsText() : std::string();
  }
  return Status::OK();
}

Status Table::RemoveRowSwapLast(int64_t row) {
  if (row < 0 || row >= num_rows_) {
    return Status::OutOfRange(
        StrFormat("row %lld out of range in %s",
                  static_cast<long long>(row), name_.c_str()));
  }
  const int64_t last = num_rows_ - 1;
  if (pk_index_built_ && pk_column_ >= 0) {
    pk_index_.erase(int_data_[pk_column_][row]);
    if (row != last) pk_index_[int_data_[pk_column_][last]] = row;
  }
  for (int32_t c = 0; c < NumColumns(); ++c) {
    if (row != last) {
      valid_[c][row] = valid_[c][last];
      if (columns_[c].type == ColumnType::kInt64) {
        int_data_[c][row] = int_data_[c][last];
      } else {
        text_data_[c][row] = std::move(text_data_[c][last]);
      }
    }
    valid_[c].pop_back();
    if (columns_[c].type == ColumnType::kInt64) {
      int_data_[c].pop_back();
    } else {
      text_data_[c].pop_back();
    }
  }
  --num_rows_;
  return Status::OK();
}

Table Table::Clone() const {
  Table t(id_, name_);
  t.columns_ = columns_;
  t.column_by_name_ = column_by_name_;
  t.pk_column_ = pk_column_;
  t.num_rows_ = num_rows_;
  t.int_data_ = int_data_;
  t.text_data_ = text_data_;
  t.valid_ = valid_;
  t.pk_index_ = pk_index_;
  t.pk_index_built_ = pk_index_built_;
  return t;
}

Value Table::GetValue(int64_t row, int32_t col) const {
  if (IsNull(row, col)) return Value::Null();
  if (columns_[col].type == ColumnType::kInt64) {
    return Value::Int(GetInt(row, col));
  }
  return Value::Text(GetText(row, col));
}

Status Table::BuildPkIndex() {
  if (pk_column_ < 0) {
    return Status::FailedPrecondition("no primary key on " + name_);
  }
  pk_index_.clear();
  pk_index_.reserve(static_cast<size_t>(num_rows_));
  const auto& keys = int_data_[pk_column_];
  for (int64_t r = 0; r < num_rows_; ++r) {
    auto [it, inserted] = pk_index_.emplace(keys[r], r);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument(
          StrFormat("duplicate primary key %lld in %s",
                    static_cast<long long>(keys[r]), name_.c_str()));
    }
  }
  pk_index_built_ = true;
  return Status::OK();
}

int64_t Table::FindByPk(int64_t pk) const {
  auto it = pk_index_.find(pk);
  return it == pk_index_.end() ? -1 : it->second;
}

size_t Table::ByteSize() const {
  size_t bytes = 0;
  for (int32_t c = 0; c < NumColumns(); ++c) {
    bytes += int_data_[c].capacity() * sizeof(int64_t);
    bytes += valid_[c].capacity() / 8;
    for (const std::string& s : text_data_[c]) {
      bytes += sizeof(std::string) + s.capacity();
    }
  }
  return bytes;
}

std::vector<int32_t> Table::TextColumnIndexes() const {
  std::vector<int32_t> out;
  for (int32_t c = 0; c < NumColumns(); ++c) {
    if (columns_[c].type == ColumnType::kText) out.push_back(c);
  }
  return out;
}

}  // namespace s4
