#ifndef S4_DATAGEN_NAMES_H_
#define S4_DATAGEN_NAMES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace s4::datagen {

// Word pools for the synthetic datasets. Each accessor returns a stable
// span of lowercase-free display words; generators compose names from
// them with Zipf-distributed ranks so the corpus has realistic head/tail
// term frequencies (needed for the paper's low/medium/high ES buckets).
const std::vector<std::string_view>& FirstNames();
const std::vector<std::string_view>& LastNames();
const std::vector<std::string_view>& CompanyWords();
const std::vector<std::string_view>& ProductWords();
const std::vector<std::string_view>& SupportWords();   // ticket subjects
const std::vector<std::string_view>& MovieWords();
const std::vector<std::string_view>& Countries();
const std::vector<std::string_view>& Cities();
const std::vector<std::string_view>& Colors();

// Draws a full name "<First> <Last>" with Zipf-ranked components.
std::string ZipfFullName(Rng& rng, const ZipfSampler& first,
                         const ZipfSampler& last);

// Draws `count` words from `pool` using `sampler`, joined by spaces.
std::string ZipfPhrase(Rng& rng, const ZipfSampler& sampler,
                       const std::vector<std::string_view>& pool,
                       int32_t count);

}  // namespace s4::datagen

#endif  // S4_DATAGEN_NAMES_H_
