#include "datagen/names.h"

namespace s4::datagen {

namespace {

std::vector<std::string_view> MakeFirstNames() {
  return {
      "James",   "Mary",    "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",   "David",   "Elizabeth", "William", "Barbara",
      "Richard", "Susan",   "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",   "Chris",   "Lisa",     "Daniel",  "Nancy",
      "Matthew", "Betty",   "Anthony", "Margaret", "Mark",    "Sandra",
      "Donald",  "Ashley",  "Steven",  "Kimberly", "Paul",    "Emily",
      "Andrew",  "Donna",   "Joshua",  "Michelle", "Kenneth", "Carol",
      "Kevin",   "Amanda",  "Brian",   "Dorothy",  "George",  "Melissa",
      "Edward",  "Deborah", "Ronald",  "Stephanie", "Timothy", "Rebecca",
      "Jason",   "Sharon",  "Jeffrey", "Laura",    "Ryan",    "Cynthia",
      "Jacob",   "Kathleen", "Gary",   "Amy",      "Nicholas", "Angela",
      "Eric",    "Shirley", "Jonathan", "Anna",    "Stephen", "Brenda",
      "Larry",   "Pamela",  "Justin",  "Emma",     "Scott",   "Nicole",
      "Brandon", "Helen",   "Benjamin", "Samantha", "Samuel",  "Katherine",
      "Gregory", "Christine", "Frank", "Debra",    "Alexander", "Rachel",
      "Raymond", "Carolyn", "Patrick", "Janet",    "Jack",    "Catherine",
      "Dennis",  "Maria",   "Jerry",   "Heather",  "Tyler",   "Diane",
      "Aaron",   "Ruth",    "Jose",    "Julie",    "Adam",    "Olivia",
      "Nathan",  "Joyce",   "Henry",   "Virginia", "Douglas", "Victoria",
      "Zachary", "Kelly",   "Peter",   "Lauren",   "Kyle",    "Christina",
      "Ethan",   "Joan",    "Walter",  "Evelyn",   "Noah",    "Judith",
      "Jeremy",  "Megan",   "Christian", "Andrea", "Keith",   "Cheryl",
      "Roger",   "Hannah",  "Terry",   "Jacqueline", "Gerald", "Martha",
      "Harold",  "Gloria",  "Sean",    "Teresa",   "Austin",  "Ann",
      "Carl",    "Sara",    "Arthur",  "Madison",  "Lawrence", "Frances",
      "Dylan",   "Kathryn", "Jesse",   "Janice",   "Jordan",  "Jean",
      "Bryan",   "Abigail", "Billy",   "Alice",    "Joe",     "Julia",
      "Bruce",   "Judy",    "Gabriel", "Sophia",   "Logan",   "Grace",
      "Albert",  "Denise",  "Willie",  "Amber",    "Alan",    "Doris",
      "Juan",    "Marilyn", "Wayne",   "Danielle", "Elijah",  "Beverly",
      "Randy",   "Isabella", "Roy",    "Theresa",  "Vincent", "Diana",
      "Ralph",   "Natalie", "Eugene",  "Brittany", "Russell", "Charlotte",
      "Bobby",   "Marie",   "Mason",   "Kayla",    "Philip",  "Alexis",
      "Louis",   "Lori",    "Rick",    "Tina",
  };
}

std::vector<std::string_view> MakeLastNames() {
  return {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",
      "Garcia",   "Miller",   "Davis",    "Rodriguez", "Martinez",
      "Hernandez", "Lopez",   "Gonzalez", "Wilson",   "Anderson",
      "Thomas",   "Taylor",   "Moore",    "Jackson",  "Martin",
      "Lee",      "Perez",    "Thompson", "White",    "Harris",
      "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",
      "Scott",    "Torres",   "Nguyen",   "Hill",     "Flores",
      "Green",    "Adams",    "Nelson",   "Baker",    "Hall",
      "Rivera",   "Campbell", "Mitchell", "Carter",   "Roberts",
      "Gomez",    "Phillips", "Evans",    "Turner",   "Diaz",
      "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes",
      "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",
      "Rogers",   "Gutierrez", "Ortiz",   "Morgan",   "Cooper",
      "Peterson", "Bailey",   "Reed",     "Kelly",    "Howard",
      "Ramos",    "Kim",      "Cox",      "Ward",     "Richardson",
      "Watson",   "Brooks",   "Chavez",   "Wood",     "James",
      "Bennett",  "Gray",     "Mendoza",  "Ruiz",     "Hughes",
      "Price",    "Alvarez",  "Castillo", "Sanders",  "Patel",
      "Myers",    "Long",     "Ross",     "Foster",   "Jimenez",
      "Powell",   "Jenkins",  "Perry",    "Russell",  "Sullivan",
      "Bell",     "Coleman",  "Butler",   "Henderson", "Barnes",
      "Gonzales", "Fisher",   "Vasquez",  "Simmons",  "Romero",
      "Jordan",   "Patterson", "Alexander", "Hamilton", "Graham",
      "Reynolds", "Griffin",  "Wallace",  "Moreno",   "West",
      "Cole",     "Hayes",    "Bryant",   "Herrera",  "Gibson",
      "Ellis",    "Tran",     "Medina",   "Aguilar",  "Stevens",
      "Murray",   "Ford",     "Castro",   "Marshall", "Owens",
      "Harrison", "Fernandez", "McDonald", "Woods",   "Washington",
      "Kennedy",  "Wells",    "Vargas",   "Henry",    "Chen",
      "Freeman",  "Webb",     "Tucker",   "Guzman",   "Burns",
      "Crawford", "Olson",    "Simpson",  "Porter",   "Hunter",
      "Gordon",   "Mendez",   "Silva",    "Shaw",     "Snyder",
      "Mason",    "Dixon",    "Munoz",    "Hunt",     "Hicks",
      "Holmes",   "Palmer",   "Wagner",   "Black",    "Robertson",
  };
}

std::vector<std::string_view> MakeCompanyWords() {
  return {
      "Century",  "Global",   "Pioneer",  "Summit",    "Apex",
      "Vertex",   "Quantum",  "Stellar",  "Horizon",   "Cascade",
      "Fusion",   "Vanguard", "Beacon",   "Crescent",  "Nimbus",
      "Electronics", "Trading", "Logistics", "Systems", "Dynamics",
      "Industries", "Solutions", "Partners", "Holdings", "Networks",
      "Pacific",  "Atlantic", "Northern", "Southern",  "Eastern",
      "Western",  "United",   "Premier",  "Prime",     "Elite",
      "Shenzhen", "Welton",   "Orion",    "Atlas",     "Titan",
      "Zenith",   "Nova",     "Pulse",    "Vector",    "Matrix",
      "Cobalt",   "Sterling", "Granite",  "Redwood",   "Ironwood",
  };
}

std::vector<std::string_view> MakeProductWords() {
  return {
      "Xbox",    "One",     "iPhone",   "Galaxy",   "Samsung",
      "Surface", "Pro",     "Air",      "Max",      "Ultra",
      "Laptop",  "Tablet",  "Phone",    "Monitor",  "Keyboard",
      "Mouse",   "Headset", "Camera",   "Drone",    "Speaker",
      "Router",  "Switch",  "Server",   "Printer",  "Scanner",
      "Charger", "Adapter", "Cable",    "Dock",     "Stand",
      "Mini",    "Plus",    "Lite",     "Edge",     "Note",
      "Elite",   "Flex",    "Fold",     "Slim",     "Turbo",
      "Classic", "Sport",   "Studio",   "Vision",   "Pixel",
      "Core",    "Neo",     "Prime",    "Wave",     "Spark",
      "Blade",   "Storm",   "Fusion",   "Nitro",    "Omen",
      "Aspire",  "Envy",    "Pavilion", "Inspiron", "Latitude",
  };
}

std::vector<std::string_view> MakeSupportWords() {
  return {
      "login",    "crash",    "error",     "timeout",   "billing",
      "refund",   "upgrade",  "install",   "update",    "password",
      "reset",    "account",  "locked",    "slow",      "freeze",
      "blue",     "screen",   "network",   "wifi",      "sync",
      "email",    "spam",     "license",   "activation", "warranty",
      "shipping", "delivery", "damaged",   "missing",   "return",
      "exchange", "invoice",  "payment",   "declined",  "subscription",
      "cancel",   "renewal",  "charge",    "duplicate", "failed",
      "restore",  "backup",   "data",      "loss",      "corrupt",
      "driver",   "firmware", "bluetooth", "pairing",   "battery",
      "overheat", "noise",    "display",   "flicker",   "pixel",
      "dead",     "broken",   "cracked",   "replace",   "repair",
  };
}

std::vector<std::string_view> MakeMovieWords() {
  return {
      "Dark",    "Night",   "Return",  "Kingdom", "Lost",
      "City",    "Shadow",  "Empire",  "Last",    "First",
      "Blood",   "Moon",    "Star",    "War",     "Love",
      "Story",   "Dream",   "Edge",    "Fire",    "Ice",
      "Storm",   "Silent",  "Broken",  "Hidden",  "Golden",
      "Iron",    "Steel",   "Glass",   "Paper",   "Stone",
      "River",   "Mountain", "Ocean",  "Desert",  "Forest",
      "Winter",  "Summer",  "Autumn",  "Spring",  "Midnight",
      "Dawn",    "Dusk",    "Eternal", "Final",   "Rising",
      "Falling", "Running", "Burning", "Frozen",  "Forgotten",
      "Secret",  "Crown",   "Throne",  "Sword",   "Arrow",
      "Ghost",   "Angel",   "Demon",   "Dragon",  "Phoenix",
  };
}

std::vector<std::string_view> MakeCountries() {
  return {
      "USA",       "Canada",   "China",    "Japan",     "Germany",
      "France",    "Brazil",   "India",    "Mexico",    "Italy",
      "Spain",     "Korea",    "Australia", "Netherlands", "Sweden",
      "Norway",    "Poland",   "Turkey",   "Argentina", "Chile",
      "Egypt",     "Kenya",    "Nigeria",  "Vietnam",   "Thailand",
      "Singapore", "Ireland",  "Austria",  "Belgium",   "Portugal",
      "Greece",    "Finland",  "Denmark",  "Hungary",   "Romania",
      "Peru",      "Colombia", "Malaysia", "Indonesia", "Philippines",
  };
}

std::vector<std::string_view> MakeCities() {
  return {
      "Seattle",   "Portland", "Austin",   "Denver",    "Chicago",
      "Boston",    "Atlanta",  "Dallas",   "Houston",   "Phoenix",
      "Toronto",   "Vancouver", "Montreal", "Shanghai",  "Beijing",
      "Tokyo",     "Osaka",    "Berlin",   "Munich",    "Paris",
      "Lyon",      "Madrid",   "Barcelona", "Rome",     "Milan",
      "London",    "Dublin",   "Amsterdam", "Stockholm", "Oslo",
      "Warsaw",    "Istanbul", "Mumbai",   "Delhi",     "Bangalore",
      "Sydney",    "Melbourne", "Auckland", "Santiago", "Lima",
      "Bogota",    "Cairo",    "Nairobi",  "Lagos",     "Hanoi",
      "Bangkok",   "Jakarta",  "Manila",   "Seoul",     "Busan",
  };
}

std::vector<std::string_view> MakeColors() {
  return {
      "Red",    "Blue",   "Green",  "Black",  "White",
      "Silver", "Gold",   "Purple", "Orange", "Yellow",
      "Gray",   "Pink",   "Teal",   "Navy",   "Maroon",
  };
}

}  // namespace

#define S4_DEFINE_POOL(Name)                                  \
  const std::vector<std::string_view>& Name() {               \
    static const std::vector<std::string_view>& pool =        \
        *new std::vector<std::string_view>(Make##Name());     \
    return pool;                                              \
  }

S4_DEFINE_POOL(FirstNames)
S4_DEFINE_POOL(LastNames)
S4_DEFINE_POOL(CompanyWords)
S4_DEFINE_POOL(ProductWords)
S4_DEFINE_POOL(SupportWords)
S4_DEFINE_POOL(MovieWords)
S4_DEFINE_POOL(Countries)
S4_DEFINE_POOL(Cities)
S4_DEFINE_POOL(Colors)

#undef S4_DEFINE_POOL

std::string ZipfFullName(Rng& rng, const ZipfSampler& first,
                         const ZipfSampler& last) {
  std::string out(FirstNames()[first.Sample(rng) % FirstNames().size()]);
  out += " ";
  out += LastNames()[last.Sample(rng) % LastNames().size()];
  return out;
}

std::string ZipfPhrase(Rng& rng, const ZipfSampler& sampler,
                       const std::vector<std::string_view>& pool,
                       int32_t count) {
  std::string out;
  for (int32_t i = 0; i < count; ++i) {
    if (i > 0) out += " ";
    out += pool[sampler.Sample(rng) % pool.size()];
  }
  return out;
}

}  // namespace s4::datagen
