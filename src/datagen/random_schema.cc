#include "datagen/random_schema.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace s4::datagen {

StatusOr<Database> MakeRandomSchema(const RandomSchemaOptions& options) {
  Rng rng(options.seed);
  Database db;

  struct FkSpec {
    int32_t src_table;
    std::string column;
    int32_t dst_table;
  };
  std::vector<FkSpec> fks;
  std::vector<std::vector<std::string>> fk_columns(options.num_tables);

  // Pick the FK topology first (column layout depends on it). Table i>0
  // references some earlier table, keeping the schema connected; extra,
  // duplicate and self edges are sprinkled in.
  for (int32_t i = 0; i < options.num_tables; ++i) {
    std::vector<int32_t> targets;
    if (i > 0) {
      targets.push_back(
          static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(i))));
      if (rng.Bernoulli(options.extra_edge_prob)) {
        if (rng.Bernoulli(options.multi_edge_prob)) {
          targets.push_back(targets[0]);  // multi-edge to the same table
        } else {
          targets.push_back(
              static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(i))));
        }
      }
    }
    if (rng.Bernoulli(options.self_edge_prob)) targets.push_back(i);
    for (size_t k = 0; k < targets.size(); ++k) {
      std::string col = StrFormat("Fk%zu_T%d", k, targets[k]);
      fks.push_back(FkSpec{i, col, targets[k]});
      fk_columns[i].push_back(col);
    }
  }

  // Create tables: pk, 1-2 text columns, fk columns.
  std::vector<int32_t> num_text(options.num_tables);
  for (int32_t i = 0; i < options.num_tables; ++i) {
    auto t = db.AddTable(StrFormat("T%d", i));
    if (!t.ok()) return t.status();
    S4_RETURN_IF_ERROR((*t)->AddColumn("Id", ColumnType::kInt64).status());
    num_text[i] = 1 + static_cast<int32_t>(rng.Uniform(2));
    for (int32_t c = 0; c < num_text[i]; ++c) {
      S4_RETURN_IF_ERROR(
          (*t)->AddColumn(StrFormat("Text%d", c), ColumnType::kText)
              .status());
    }
    for (const std::string& col : fk_columns[i]) {
      S4_RETURN_IF_ERROR(
          (*t)->AddColumn(col, ColumnType::kInt64).status());
    }
    S4_RETURN_IF_ERROR((*t)->SetPrimaryKey(0));
  }

  // Populate rows. Row counts vary per table (possibly zero).
  ZipfSampler zipf(static_cast<size_t>(options.vocab_size), 0.9);
  std::vector<int64_t> rows_per_table(options.num_tables);
  for (int32_t i = 0; i < options.num_tables; ++i) {
    rows_per_table[i] = options.min_rows +
                        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
                            options.max_rows - options.min_rows + 1)));
  }
  for (int32_t i = 0; i < options.num_tables; ++i) {
    Table* t = db.FindTable(StrFormat("T%d", i));
    for (int64_t r = 0; r < rows_per_table[i]; ++r) {
      std::vector<Value> row;
      row.push_back(Value::Int(r + 1));
      for (int32_t c = 0; c < num_text[i]; ++c) {
        std::string text;
        const int32_t terms =
            1 + static_cast<int32_t>(
                    rng.Uniform(static_cast<uint64_t>(
                        options.max_terms_per_cell)));
        for (int32_t w = 0; w < terms; ++w) {
          if (w > 0) text += " ";
          text += StrFormat("w%zu", zipf.Sample(rng));
        }
        row.push_back(Value::Text(text));
      }
      for (const std::string& col : fk_columns[i]) {
        (void)col;
        // Target table decided by the FkSpec order below; fill after.
        row.push_back(Value::Null());
      }
      S4_RETURN_IF_ERROR(t->AppendRow(row));
    }
  }
  // PK indexes are needed to validate FK targets exist; fill FKs with
  // direct assignment via a second pass using AppendRow is not possible,
  // so instead rebuild rows... simpler: FKs were appended as NULL; since
  // Table has no update API, regenerate the tables with FKs now that row
  // counts are fixed.
  Database final_db;
  for (int32_t i = 0; i < options.num_tables; ++i) {
    auto t = final_db.AddTable(StrFormat("T%d", i));
    if (!t.ok()) return t.status();
    S4_RETURN_IF_ERROR((*t)->AddColumn("Id", ColumnType::kInt64).status());
    for (int32_t c = 0; c < num_text[i]; ++c) {
      S4_RETURN_IF_ERROR(
          (*t)->AddColumn(StrFormat("Text%d", c), ColumnType::kText)
              .status());
    }
    for (const std::string& col : fk_columns[i]) {
      S4_RETURN_IF_ERROR(
          (*t)->AddColumn(col, ColumnType::kInt64).status());
    }
    S4_RETURN_IF_ERROR((*t)->SetPrimaryKey(0));

    const Table* src = db.FindTable(StrFormat("T%d", i));
    for (int64_t r = 0; r < src->NumRows(); ++r) {
      std::vector<Value> row;
      for (int32_t c = 0; c < 1 + num_text[i]; ++c) {
        row.push_back(src->GetValue(r, c));
      }
      for (const std::string& col : fk_columns[i]) {
        // Find this column's FK target.
        int32_t dst = -1;
        for (const FkSpec& fk : fks) {
          if (fk.src_table == i && fk.column == col) dst = fk.dst_table;
        }
        const int64_t dst_rows = rows_per_table[dst];
        if (dst_rows == 0 || rng.Bernoulli(options.null_fk_prob)) {
          row.push_back(Value::Null());
        } else {
          row.push_back(Value::Int(
              static_cast<int64_t>(rng.Uniform(
                  static_cast<uint64_t>(dst_rows))) +
              1));
        }
      }
      S4_RETURN_IF_ERROR((*t)->AppendRow(row));
    }
  }
  for (const FkSpec& fk : fks) {
    S4_RETURN_IF_ERROR(final_db.AddForeignKey(
        StrFormat("T%d", fk.src_table), fk.column,
        StrFormat("T%d", fk.dst_table)));
  }
  S4_RETURN_IF_ERROR(final_db.Finalize(/*check_integrity=*/true));
  return final_db;
}

}  // namespace s4::datagen
