#ifndef S4_DATAGEN_ES_GEN_H_
#define S4_DATAGEN_ES_GEN_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "index/index_set.h"
#include "query/pj_query.h"
#include "query/spreadsheet.h"
#include "schema/schema_graph.h"

namespace s4::datagen {

// Workload generator reproducing Sec 6.1's example-spreadsheet (ES)
// recipe: pick a semantically meaningful join query, execute it (here:
// sample its output by random joint walks instead of materializing the
// join), project random rows/columns, keep only the first token of each
// cell, and inject relationship errors by swapping in values from other
// output rows of the same column.
struct EsGenOptions {
  int32_t num_rows = 3;             // m
  int32_t num_cols = 3;             // n
  int32_t relationship_errors = 2;  // Table 2 default
  int32_t domain_errors = 0;        // extension: out-of-domain substitutions
};

struct GeneratedEs {
  ExampleSpreadsheet sheet;
  // The generating query, minimized per Def 3 (unprojected degree-1
  // relations dropped); the synthetic user study treats a result as
  // relevant iff it matches this signature.
  PJQuery source_query;
  // Total row-level posting length of the sheet's terms; the bucketing
  // key of Sec 6.1.
  int64_t term_frequency = 0;
};

enum class EsBucket { kLow = 0, kMedium = 1, kHigh = 2 };
const char* EsBucketName(EsBucket bucket);

class EsGenerator {
 public:
  EsGenerator(const IndexSet& index, const SchemaGraph& graph, uint64_t seed);

  // Discovers the pool of source join queries: connected join trees of
  // 2..max_tree_size relations carrying at least `min_text_columns`
  // text columns. Fails if none exist.
  Status Init(int32_t min_text_columns = 6, int32_t max_tree_size = 4,
              int32_t pool_size = 10);

  // Generates one ES; deterministic given the constructor seed and call
  // sequence.
  StatusOr<GeneratedEs> Generate(const EsGenOptions& options = {});

  // Generates `count` ESs, skipping occasional sampling failures.
  StatusOr<std::vector<GeneratedEs>> GenerateMany(
      int32_t count, const EsGenOptions& options = {});

  // Buckets by ascending term frequency: bottom 50% low, next 30%
  // medium, top 20% high (the 25/15/10 split of the paper's 50 ESs).
  static std::vector<EsBucket> AssignBuckets(
      const std::vector<GeneratedEs>& es);

 private:
  struct SourceQuery {
    JoinTree tree;
    std::vector<std::pair<TreeNodeId, int32_t>> text_columns;
  };

  // Rows of `edge`'s source table whose FK equals `pk` (lazily built).
  const std::vector<int32_t>& ReverseRows(SchemaEdgeId edge, int64_t pk);

  // Samples one joint row assignment for `tree` (row id per node), or
  // empty on dead-end.
  std::vector<int64_t> SampleJoinRow(const JoinTree& tree);

  // First word token of the cell, or empty.
  std::string FirstToken(TableId table, int64_t row, int32_t col) const;

  const IndexSet* index_;
  const SchemaGraph* graph_;
  Rng rng_;
  std::vector<SourceQuery> pool_;
  std::unordered_map<SchemaEdgeId,
                     std::unordered_map<int64_t, std::vector<int32_t>>>
      reverse_fk_;
  std::vector<int32_t> empty_rows_;
};

}  // namespace s4::datagen

#endif  // S4_DATAGEN_ES_GEN_H_
