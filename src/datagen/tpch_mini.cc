#include "datagen/tpch_mini.h"

namespace s4::datagen {

namespace {

Status Build(Database* db) {
  // Nation(NatId, NatName)
  {
    auto t = db->AddTable("Nation");
    if (!t.ok()) return t.status();
    Table* nation = *t;
    S4_RETURN_IF_ERROR(nation->AddColumn("NatId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(
        nation->AddColumn("NatName", ColumnType::kText).status());
    S4_RETURN_IF_ERROR(nation->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(
        nation->AppendRow({Value::Int(1), Value::Text("USA")}));
    S4_RETURN_IF_ERROR(
        nation->AppendRow({Value::Int(2), Value::Text("Canada")}));
    S4_RETURN_IF_ERROR(
        nation->AppendRow({Value::Int(3), Value::Text("China")}));
  }
  // Customer(CustId, CustName, NatId)
  {
    auto t = db->AddTable("Customer");
    if (!t.ok()) return t.status();
    Table* cust = *t;
    S4_RETURN_IF_ERROR(cust->AddColumn("CustId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(
        cust->AddColumn("CustName", ColumnType::kText).status());
    S4_RETURN_IF_ERROR(cust->AddColumn("NatId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(cust->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(cust->AppendRow(
        {Value::Int(1), Value::Text("Rick Miller"), Value::Int(1)}));
    S4_RETURN_IF_ERROR(cust->AppendRow(
        {Value::Int(2), Value::Text("Julie Smith"), Value::Int(1)}));
    S4_RETURN_IF_ERROR(cust->AppendRow(
        {Value::Int(3), Value::Text("Kevin Chen"), Value::Int(2)}));
  }
  // Orders(OId, CustId, Clerk)
  {
    auto t = db->AddTable("Orders");
    if (!t.ok()) return t.status();
    Table* orders = *t;
    S4_RETURN_IF_ERROR(orders->AddColumn("OId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(
        orders->AddColumn("CustId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(orders->AddColumn("Clerk", ColumnType::kText).status());
    S4_RETURN_IF_ERROR(orders->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(orders->AppendRow(
        {Value::Int(1), Value::Int(1), Value::Text("Julie")}));
    S4_RETURN_IF_ERROR(orders->AppendRow(
        {Value::Int(2), Value::Int(2), Value::Text("Kevin")}));
    S4_RETURN_IF_ERROR(orders->AppendRow(
        {Value::Int(3), Value::Int(3), Value::Text("Rick")}));
  }
  // Part(PartId, PartName)
  {
    auto t = db->AddTable("Part");
    if (!t.ok()) return t.status();
    Table* part = *t;
    S4_RETURN_IF_ERROR(part->AddColumn("PartId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(
        part->AddColumn("PartName", ColumnType::kText).status());
    S4_RETURN_IF_ERROR(part->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(
        part->AppendRow({Value::Int(1), Value::Text("Xbox One")}));
    S4_RETURN_IF_ERROR(
        part->AppendRow({Value::Int(2), Value::Text("iPhone 6")}));
    S4_RETURN_IF_ERROR(
        part->AppendRow({Value::Int(3), Value::Text("Samsung Galaxy")}));
  }
  // LineItem(LId, OId, PartId)
  {
    auto t = db->AddTable("LineItem");
    if (!t.ok()) return t.status();
    Table* li = *t;
    S4_RETURN_IF_ERROR(li->AddColumn("LId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(li->AddColumn("OId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(li->AddColumn("PartId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(li->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(
        li->AppendRow({Value::Int(1), Value::Int(1), Value::Int(1)}));
    S4_RETURN_IF_ERROR(
        li->AppendRow({Value::Int(2), Value::Int(1), Value::Int(3)}));
    S4_RETURN_IF_ERROR(
        li->AppendRow({Value::Int(3), Value::Int(2), Value::Int(2)}));
    S4_RETURN_IF_ERROR(
        li->AppendRow({Value::Int(4), Value::Int(3), Value::Int(2)}));
  }
  // Supplier(SuppId, SuppName, NatId)
  {
    auto t = db->AddTable("Supplier");
    if (!t.ok()) return t.status();
    Table* supp = *t;
    S4_RETURN_IF_ERROR(supp->AddColumn("SuppId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(
        supp->AddColumn("SuppName", ColumnType::kText).status());
    S4_RETURN_IF_ERROR(supp->AddColumn("NatId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(supp->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(supp->AppendRow(
        {Value::Int(1), Value::Text("Century Electronics"), Value::Int(1)}));
    S4_RETURN_IF_ERROR(supp->AppendRow(
        {Value::Int(2), Value::Text("Kevin Brown"), Value::Int(2)}));
    S4_RETURN_IF_ERROR(supp->AppendRow(
        {Value::Int(3), Value::Text("Shenzhen Trading"), Value::Int(3)}));
  }
  // PartSupp(PsId, PartId, SuppId)
  {
    auto t = db->AddTable("PartSupp");
    if (!t.ok()) return t.status();
    Table* ps = *t;
    S4_RETURN_IF_ERROR(ps->AddColumn("PsId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(ps->AddColumn("PartId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(ps->AddColumn("SuppId", ColumnType::kInt64).status());
    S4_RETURN_IF_ERROR(ps->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(
        ps->AppendRow({Value::Int(1), Value::Int(1), Value::Int(1)}));
    S4_RETURN_IF_ERROR(
        ps->AppendRow({Value::Int(2), Value::Int(1), Value::Int(2)}));
    S4_RETURN_IF_ERROR(
        ps->AppendRow({Value::Int(3), Value::Int(2), Value::Int(1)}));
    S4_RETURN_IF_ERROR(
        ps->AppendRow({Value::Int(4), Value::Int(3), Value::Int(3)}));
  }

  S4_RETURN_IF_ERROR(db->AddForeignKey("Customer", "NatId", "Nation"));
  S4_RETURN_IF_ERROR(db->AddForeignKey("Orders", "CustId", "Customer"));
  S4_RETURN_IF_ERROR(db->AddForeignKey("LineItem", "OId", "Orders"));
  S4_RETURN_IF_ERROR(db->AddForeignKey("LineItem", "PartId", "Part"));
  S4_RETURN_IF_ERROR(db->AddForeignKey("PartSupp", "PartId", "Part"));
  S4_RETURN_IF_ERROR(db->AddForeignKey("PartSupp", "SuppId", "Supplier"));
  S4_RETURN_IF_ERROR(db->AddForeignKey("Supplier", "NatId", "Nation"));
  return db->Finalize();
}

}  // namespace

StatusOr<Database> MakeTpchMini() {
  Database db;
  Status s = Build(&db);
  if (!s.ok()) return s;
  return db;
}

}  // namespace s4::datagen
