#ifndef S4_DATAGEN_RANDOM_SCHEMA_H_
#define S4_DATAGEN_RANDOM_SCHEMA_H_

#include <cstdint>

#include "common/status.h"
#include "storage/database.h"

namespace s4::datagen {

// Random connected schema generator for adversarial property testing:
// arbitrary FK topologies (chains, stars, diamonds), multi-edges between
// the same relation pair, nullable FKs, self-referencing FKs, shared
// term vocabulary across all text columns (maximal column-mapping
// ambiguity), and tables of wildly different sizes including empty ones.
struct RandomSchemaOptions {
  uint64_t seed = 1;
  int32_t num_tables = 6;
  int32_t min_rows = 0;            // empty tables allowed by default
  int32_t max_rows = 15;           // kept small: tests brute-force joins
  int32_t vocab_size = 25;         // shared term universe "w0".."wN"
  int32_t max_terms_per_cell = 3;
  double extra_edge_prob = 0.4;    // chance of a second outgoing FK
  double multi_edge_prob = 0.2;    // chance the extra FK repeats a target
  double self_edge_prob = 0.25;    // chance of a self-referencing FK
  double null_fk_prob = 0.15;
};

StatusOr<Database> MakeRandomSchema(const RandomSchemaOptions& options = {});

}  // namespace s4::datagen

#endif  // S4_DATAGEN_RANDOM_SCHEMA_H_
