#include "datagen/es_gen.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace s4::datagen {

namespace {

// Drops unprojected degree-1 relations until the query is minimal
// (Prop 1): the paper's source queries project onto a random column
// subset, which can leave dangling relations. A dropped leaf may expose
// a new unbound leaf, so iterate to a fixpoint. If the root itself
// becomes an unbound degree-1 node, re-rooting is handled by PJQuery's
// canonicalization, so we only need to prune childless non-roots plus an
// unbound root with exactly one child (by promoting the child).
PJQuery MinimizeSourceQuery(JoinTree tree,
                            std::vector<ProjectionBinding> bindings) {
  while (true) {
    std::vector<bool> bound(tree.size(), false);
    for (const ProjectionBinding& b : bindings) bound[b.node] = true;

    // Childless, unbound, non-root victim?
    TreeNodeId victim = kNoNode;
    for (TreeNodeId v = tree.size() - 1; v > 0; --v) {
      if (!bound[v] && tree.ChildrenOf(v).empty()) {
        victim = v;
        break;
      }
    }
    if (victim != kNoNode) {
      std::vector<JoinTree::Node> nodes;
      std::vector<TreeNodeId> remap(tree.size(), kNoNode);
      for (TreeNodeId v = 0; v < tree.size(); ++v) {
        if (v == victim) continue;
        JoinTree::Node n = tree.node(v);
        if (n.parent != kNoNode) n.parent = remap[n.parent];
        remap[v] = static_cast<TreeNodeId>(nodes.size());
        nodes.push_back(n);
      }
      tree = JoinTree::FromNodes(std::move(nodes));
      for (ProjectionBinding& b : bindings) b.node = remap[b.node];
      continue;
    }

    // Unbound root with a single child: promote the child to root.
    if (!bound[0] && tree.size() > 1 && tree.ChildrenOf(0).size() == 1 &&
        tree.Degree(0) == 1) {
      std::vector<TreeNodeId> remap;
      TreeNodeId child = tree.ChildrenOf(0)[0];
      JoinTree sub = tree.RootedSubtree(child, &remap);
      tree = std::move(sub);
      for (ProjectionBinding& b : bindings) b.node = remap[b.node];
      continue;
    }
    break;
  }
  return PJQuery(std::move(tree), std::move(bindings));
}

}  // namespace

const char* EsBucketName(EsBucket bucket) {
  switch (bucket) {
    case EsBucket::kLow:
      return "low";
    case EsBucket::kMedium:
      return "medium";
    case EsBucket::kHigh:
      return "high";
  }
  return "?";
}

EsGenerator::EsGenerator(const IndexSet& index, const SchemaGraph& graph,
                         uint64_t seed)
    : index_(&index), graph_(&graph), rng_(seed) {}

Status EsGenerator::Init(int32_t min_text_columns, int32_t max_tree_size,
                         int32_t pool_size) {
  pool_.clear();
  const Database& db = index_->db();

  // Enumerate distinct connected join trees up to max_tree_size whose
  // nodes jointly expose enough text columns.
  std::deque<JoinTree> queue;
  std::unordered_set<std::string> seen;
  for (TableId t = 0; t < db.NumTables(); ++t) {
    JoinTree tree = JoinTree::Single(t);
    if (seen.insert(tree.UnrootedSignature({std::string()})).second) {
      queue.push_back(std::move(tree));
    }
  }
  std::vector<SourceQuery> eligible;
  int64_t explored = 0;
  while (!queue.empty() && explored < 20000) {
    JoinTree tree = std::move(queue.front());
    queue.pop_front();
    ++explored;

    SourceQuery sq;
    sq.tree = tree;
    for (TreeNodeId v = 0; v < tree.size(); ++v) {
      for (int32_t c : db.table(tree.node(v).table).TextColumnIndexes()) {
        sq.text_columns.emplace_back(v, c);
      }
    }
    if (tree.size() >= 2 &&
        static_cast<int32_t>(sq.text_columns.size()) >= min_text_columns) {
      eligible.push_back(std::move(sq));
    }

    if (tree.size() >= max_tree_size) continue;
    for (TreeNodeId v = 0; v < tree.size(); ++v) {
      for (const SchemaGraph::Incidence& inc :
           graph_->IncidentEdges(tree.node(v).table)) {
        JoinTree grown = tree;
        grown.AddChild(v, *graph_, inc.edge, inc.dir);
        std::string sig =
            grown.UnrootedSignature(std::vector<std::string>(grown.size()));
        if (seen.insert(sig).second) queue.push_back(std::move(grown));
      }
    }
  }
  if (eligible.empty()) {
    return Status::NotFound(
        "no join tree offers enough text columns; lower min_text_columns");
  }
  rng_.Shuffle(eligible);
  const size_t keep =
      std::min<size_t>(eligible.size(), static_cast<size_t>(pool_size));
  pool_.assign(std::make_move_iterator(eligible.begin()),
               std::make_move_iterator(eligible.begin() + keep));
  return Status::OK();
}

const std::vector<int32_t>& EsGenerator::ReverseRows(SchemaEdgeId edge,
                                                     int64_t pk) {
  auto& per_edge = reverse_fk_[edge];
  if (per_edge.empty()) {
    const KfkSnapshot& snap = index_->snapshot();
    const std::vector<int64_t>& fks = snap.Fk(edge);
    for (size_t r = 0; r < fks.size(); ++r) {
      if (snap.FkValid(edge, static_cast<int64_t>(r))) {
        per_edge[fks[r]].push_back(static_cast<int32_t>(r));
      }
    }
  }
  auto it = per_edge.find(pk);
  return it == per_edge.end() ? empty_rows_ : it->second;
}

std::vector<int64_t> EsGenerator::SampleJoinRow(const JoinTree& tree) {
  const KfkSnapshot& snap = index_->snapshot();
  const Database& db = index_->db();
  std::vector<int64_t> rows(tree.size(), -1);
  const TableId root_table = tree.node(0).table;
  if (snap.NumRows(root_table) == 0) return {};
  rows[0] = static_cast<int64_t>(
      rng_.Uniform(static_cast<uint64_t>(snap.NumRows(root_table))));
  for (TreeNodeId v = 1; v < tree.size(); ++v) {
    const JoinTree::Node& n = tree.node(v);
    const int64_t parent_row = rows[n.parent];
    if (n.parent_holds_fk) {
      // Parent references this node: follow the FK.
      if (!snap.FkValid(n.edge_to_parent, parent_row)) return {};
      const int64_t pk = snap.Fk(n.edge_to_parent)[parent_row];
      const int64_t r = db.table(n.table).FindByPk(pk);
      if (r < 0) return {};
      rows[v] = r;
    } else {
      // This node references the parent: pick among the referencing rows.
      const int64_t parent_pk =
          snap.Pk(tree.node(n.parent).table)[parent_row];
      const std::vector<int32_t>& candidates =
          ReverseRows(n.edge_to_parent, parent_pk);
      if (candidates.empty()) return {};
      rows[v] = candidates[rng_.Uniform(candidates.size())];
    }
  }
  return rows;
}

std::string EsGenerator::FirstToken(TableId table, int64_t row,
                                    int32_t col) const {
  const Table& t = index_->db().table(table);
  if (t.IsNull(row, col)) return {};
  std::vector<std::string> tokens =
      index_->tokenizer().Tokenize(t.GetText(row, col));
  return tokens.empty() ? std::string() : tokens[0];
}

StatusOr<GeneratedEs> EsGenerator::Generate(const EsGenOptions& options) {
  if (pool_.empty()) {
    return Status::FailedPrecondition("call Init() first");
  }
  constexpr int32_t kMaxAttempts = 300;
  for (int32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const SourceQuery& sq = pool_[rng_.Uniform(pool_.size())];
    if (static_cast<int32_t>(sq.text_columns.size()) < options.num_cols) {
      continue;
    }
    // Random column subset (paper: random n of the projected text cols).
    std::vector<std::pair<TreeNodeId, int32_t>> cols = sq.text_columns;
    rng_.Shuffle(cols);
    cols.resize(static_cast<size_t>(options.num_cols));

    // Sample m output rows and keep first tokens.
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(options.num_rows));
    bool ok = true;
    for (int32_t m = 0; m < options.num_rows && ok; ++m) {
      std::vector<int64_t> rows = SampleJoinRow(sq.tree);
      if (rows.empty()) {
        ok = false;
        break;
      }
      for (const auto& [node, col] : cols) {
        std::string tok =
            FirstToken(sq.tree.node(node).table, rows[node], col);
        if (tok.empty()) {
          ok = false;
          break;
        }
        cells[m].push_back(std::move(tok));
      }
    }
    if (!ok) continue;

    // Relationship errors: replace random cells with the same column's
    // value from a different output row.
    const int32_t total_cells = options.num_rows * options.num_cols;
    const int32_t rel_errors =
        std::min(options.relationship_errors, total_cells);
    std::vector<int32_t> cell_order(total_cells);
    for (int32_t i = 0; i < total_cells; ++i) cell_order[i] = i;
    rng_.Shuffle(cell_order);
    int32_t injected = 0;
    for (int32_t i = 0; i < total_cells && injected < rel_errors; ++i) {
      const int32_t m = cell_order[i] / options.num_cols;
      const int32_t c = cell_order[i] % options.num_cols;
      std::vector<int64_t> other = SampleJoinRow(sq.tree);
      if (other.empty()) continue;
      const auto& [node, col] = cols[c];
      std::string tok = FirstToken(sq.tree.node(node).table, other[node], col);
      if (tok.empty() || tok == cells[m][c]) continue;
      cells[m][c] = std::move(tok);
      ++injected;
    }
    if (injected < rel_errors) continue;

    // Domain errors (extension): replace random cells with a token from
    // an unrelated table's text column.
    int32_t dom_injected = 0;
    const Database& db = index_->db();
    for (int32_t i = total_cells - 1;
         i >= 0 && dom_injected < options.domain_errors; --i) {
      const int32_t m = cell_order[i] / options.num_cols;
      const int32_t c = cell_order[i] % options.num_cols;
      const TableId home = sq.tree.node(cols[c].first).table;
      for (int32_t tries = 0; tries < 50; ++tries) {
        const TableId t =
            static_cast<TableId>(rng_.Uniform(db.NumTables()));
        if (t == home || db.table(t).NumRows() == 0) continue;
        std::vector<int32_t> tcols = db.table(t).TextColumnIndexes();
        if (tcols.empty()) continue;
        const int32_t col = tcols[rng_.Uniform(tcols.size())];
        const int64_t row = static_cast<int64_t>(
            rng_.Uniform(static_cast<uint64_t>(db.table(t).NumRows())));
        std::string tok = FirstToken(t, row, col);
        if (tok.empty() || tok == cells[m][c]) continue;
        cells[m][c] = std::move(tok);
        ++dom_injected;
        break;
      }
    }

    auto sheet = ExampleSpreadsheet::FromCells(cells, index_->tokenizer());
    if (!sheet.ok() || !sheet->Validate().ok()) continue;

    GeneratedEs out{std::move(sheet).value(), PJQuery(), 0};
    // Source query for relevance judging: tree + chosen columns,
    // minimized per Prop 1.
    std::vector<ProjectionBinding> bindings;
    for (int32_t c = 0; c < options.num_cols; ++c) {
      bindings.push_back(ProjectionBinding{c, cols[c].first, cols[c].second});
    }
    out.source_query = MinimizeSourceQuery(sq.tree, std::move(bindings));

    // Bucketing key: total row-level posting length of the sheet terms.
    for (int32_t col = 0; col < out.sheet.NumColumns(); ++col) {
      for (const std::string& term : out.sheet.ColumnTerms(col)) {
        TermId id = index_->dict().Lookup(term);
        if (id == kInvalidTermId) continue;
        const std::vector<int32_t>* gids = index_->column_index().Find(id);
        if (gids == nullptr) continue;
        for (int32_t gid : *gids) {
          out.term_frequency += index_->row_index().PostingLength(id, gid);
        }
      }
    }
    return out;
  }
  return Status::Internal("ES sampling failed repeatedly");
}

StatusOr<std::vector<GeneratedEs>> EsGenerator::GenerateMany(
    int32_t count, const EsGenOptions& options) {
  std::vector<GeneratedEs> out;
  out.reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    auto es = Generate(options);
    if (!es.ok()) return es.status();
    out.push_back(std::move(es).value());
  }
  return out;
}

std::vector<EsBucket> EsGenerator::AssignBuckets(
    const std::vector<GeneratedEs>& es) {
  std::vector<size_t> order(es.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return es[a].term_frequency < es[b].term_frequency;
  });
  std::vector<EsBucket> buckets(es.size(), EsBucket::kLow);
  const size_t n = es.size();
  for (size_t rank = 0; rank < n; ++rank) {
    EsBucket b = EsBucket::kLow;
    if (rank >= n * 8 / 10) {
      b = EsBucket::kHigh;
    } else if (rank >= n / 2) {
      b = EsBucket::kMedium;
    }
    buckets[order[rank]] = b;
  }
  return buckets;
}

}  // namespace s4::datagen
