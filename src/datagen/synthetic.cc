#include "datagen/synthetic.h"

#include <cassert>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/names.h"

namespace s4::datagen {

namespace {

// Generators are internal and schemas are static, so schema-building
// failures are programming errors: crash loudly instead of plumbing
// Status through every call.
Table* MustTable(Database* db, const std::string& name,
                 const std::vector<std::pair<std::string, ColumnType>>& cols) {
  auto t = db->AddTable(name);
  assert(t.ok());
  for (const auto& [col_name, type] : cols) {
    auto c = (*t)->AddColumn(col_name, type);
    assert(c.ok());
    (void)c;
  }
  Status s = (*t)->SetPrimaryKey(0);
  assert(s.ok());
  (void)s;
  return *t;
}

void MustRow(Table* t, const std::vector<Value>& values) {
  Status s = t->AppendRow(values);
  assert(s.ok());
  (void)s;
}

void MustFk(Database* db, const std::string& src, const std::string& col,
            const std::string& dst) {
  Status s = db->AddForeignKey(src, col, dst);
  assert(s.ok());
  (void)s;
}

}  // namespace

StatusOr<Database> MakeCsuppSim(const CsuppSimOptions& options) {
  Database db;
  Rng rng(options.seed);
  const int32_t s = std::max(1, options.scale);

  Table* region = MustTable(&db, "Region",
                            {{"RegionId", ColumnType::kInt64},
                             {"RegionName", ColumnType::kText}});
  Table* country = MustTable(&db, "Country",
                             {{"CountryId", ColumnType::kInt64},
                              {"CountryName", ColumnType::kText},
                              {"RegionId", ColumnType::kInt64}});
  Table* city = MustTable(&db, "City",
                          {{"CityId", ColumnType::kInt64},
                           {"CityName", ColumnType::kText},
                           {"CountryId", ColumnType::kInt64}});
  Table* customer = MustTable(&db, "Customer",
                              {{"CustId", ColumnType::kInt64},
                               {"CustName", ColumnType::kText},
                               {"Contact", ColumnType::kText},
                               {"Segment", ColumnType::kText},
                               {"CityId", ColumnType::kInt64}});
  Table* category = MustTable(&db, "Category",
                              {{"CatId", ColumnType::kInt64},
                               {"CatName", ColumnType::kText}});
  Table* product = MustTable(&db, "Product",
                             {{"ProdId", ColumnType::kInt64},
                              {"ProdName", ColumnType::kText},
                              {"ProdDesc", ColumnType::kText},
                              {"CatId", ColumnType::kInt64}});
  Table* team = MustTable(&db, "Team",
                          {{"TeamId", ColumnType::kInt64},
                           {"TeamName", ColumnType::kText},
                           {"LeadName", ColumnType::kText}});
  Table* agent = MustTable(&db, "Agent",
                           {{"AgentId", ColumnType::kInt64},
                            {"AgentName", ColumnType::kText},
                            {"Title", ColumnType::kText},
                            {"TeamId", ColumnType::kInt64}});
  Table* severity = MustTable(&db, "Severity",
                              {{"SevId", ColumnType::kInt64},
                               {"SevName", ColumnType::kText}});
  Table* ticket = MustTable(&db, "Ticket",
                            {{"TicketId", ColumnType::kInt64},
                             {"Subject", ColumnType::kText},
                             {"Resolution", ColumnType::kText},
                             {"CustId", ColumnType::kInt64},
                             {"ProdId", ColumnType::kInt64},
                             {"AgentId", ColumnType::kInt64},
                             {"SevId", ColumnType::kInt64}});
  Table* note = MustTable(&db, "TicketNote",
                          {{"NoteId", ColumnType::kInt64},
                           {"NoteText", ColumnType::kText},
                           {"TicketId", ColumnType::kInt64},
                           {"AgentId", ColumnType::kInt64}});

  const auto& regions = std::vector<std::string>{
      "North America", "Europe", "Asia Pacific", "Latin America",
      "Middle East Africa"};
  for (size_t i = 0; i < regions.size(); ++i) {
    MustRow(region, {Value::Int(static_cast<int64_t>(i + 1)),
                     Value::Text(regions[i])});
  }
  const auto& countries = Countries();
  for (size_t i = 0; i < countries.size(); ++i) {
    MustRow(country, {Value::Int(static_cast<int64_t>(i + 1)),
                      Value::Text(std::string(countries[i])),
                      Value::Int(static_cast<int64_t>(
                          rng.Uniform(regions.size()) + 1))});
  }
  ZipfSampler city_zipf(Cities().size(), 0.8);
  const int32_t num_cities = options.num_cities * s;
  for (int32_t i = 0; i < num_cities; ++i) {
    std::string name(Cities()[city_zipf.Sample(rng)]);
    if (i >= static_cast<int32_t>(Cities().size())) {
      name += StrFormat(" %d", i);  // keep head tokens frequent, tail rare
    }
    MustRow(city, {Value::Int(i + 1), Value::Text(name),
                   Value::Int(static_cast<int64_t>(
                       rng.Uniform(countries.size()) + 1))});
  }

  ZipfSampler first_zipf(FirstNames().size(), 0.9);
  ZipfSampler last_zipf(LastNames().size(), 0.9);
  const std::vector<std::string> segments{"Enterprise", "Consumer",
                                          "Education", "Government",
                                          "Startup"};
  const int32_t num_customers = options.num_customers * s;
  for (int32_t i = 0; i < num_customers; ++i) {
    MustRow(customer,
            {Value::Int(i + 1),
             Value::Text(ZipfFullName(rng, first_zipf, last_zipf)),
             Value::Text(ZipfFullName(rng, first_zipf, last_zipf)),
             Value::Text(segments[rng.Uniform(segments.size())]),
             Value::Int(static_cast<int64_t>(rng.Uniform(num_cities) + 1))});
  }

  const std::vector<std::string> categories{
      "Hardware", "Software", "Networking", "Storage", "Cloud",
      "Peripherals", "Mobile", "Security", "Audio", "Displays"};
  for (size_t i = 0; i < categories.size(); ++i) {
    MustRow(category, {Value::Int(static_cast<int64_t>(i + 1)),
                       Value::Text(categories[i])});
  }
  ZipfSampler prod_zipf(ProductWords().size(), 0.85);
  const int32_t num_products = options.num_products * s;
  for (int32_t i = 0; i < num_products; ++i) {
    MustRow(product,
            {Value::Int(i + 1),
             Value::Text(ZipfPhrase(rng, prod_zipf, ProductWords(), 2)),
             Value::Text(ZipfPhrase(rng, prod_zipf, ProductWords(), 4)),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(categories.size()) + 1))});
  }

  ZipfSampler company_zipf(CompanyWords().size(), 0.8);
  const int32_t num_teams = 18;
  for (int32_t i = 0; i < num_teams; ++i) {
    MustRow(team, {Value::Int(i + 1),
                   Value::Text(ZipfPhrase(rng, company_zipf, CompanyWords(),
                                          2)),
                   Value::Text(ZipfFullName(rng, first_zipf, last_zipf))});
  }
  const std::vector<std::string> titles{"Support Engineer", "Senior Engineer",
                                        "Escalation Lead", "Field Technician",
                                        "Account Manager"};
  const int32_t num_agents = options.num_agents * s;
  for (int32_t i = 0; i < num_agents; ++i) {
    MustRow(agent, {Value::Int(i + 1),
                    Value::Text(ZipfFullName(rng, first_zipf, last_zipf)),
                    Value::Text(titles[rng.Uniform(titles.size())]),
                    Value::Int(static_cast<int64_t>(
                        rng.Uniform(num_teams) + 1))});
  }

  const std::vector<std::string> severities{"Critical", "High", "Medium",
                                            "Low", "Informational"};
  for (size_t i = 0; i < severities.size(); ++i) {
    MustRow(severity, {Value::Int(static_cast<int64_t>(i + 1)),
                       Value::Text(severities[i])});
  }

  ZipfSampler support_zipf(SupportWords().size(), 0.95);
  const int32_t num_tickets = options.num_tickets * s;
  for (int32_t i = 0; i < num_tickets; ++i) {
    MustRow(ticket,
            {Value::Int(i + 1),
             Value::Text(ZipfPhrase(rng, support_zipf, SupportWords(),
                                    static_cast<int32_t>(
                                        3 + rng.Uniform(3)))),
             Value::Text(ZipfPhrase(rng, support_zipf, SupportWords(),
                                    static_cast<int32_t>(
                                        2 + rng.Uniform(3)))),
             Value::Int(static_cast<int64_t>(rng.Uniform(num_customers) + 1)),
             Value::Int(static_cast<int64_t>(rng.Uniform(num_products) + 1)),
             Value::Int(static_cast<int64_t>(rng.Uniform(num_agents) + 1)),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(severities.size()) + 1))});
  }
  const int32_t num_notes = options.num_notes * s;
  for (int32_t i = 0; i < num_notes; ++i) {
    MustRow(note,
            {Value::Int(i + 1),
             Value::Text(ZipfPhrase(rng, support_zipf, SupportWords(),
                                    static_cast<int32_t>(
                                        4 + rng.Uniform(4)))),
             Value::Int(static_cast<int64_t>(rng.Uniform(num_tickets) + 1)),
             Value::Int(static_cast<int64_t>(rng.Uniform(num_agents) + 1))});
  }

  MustFk(&db, "Country", "RegionId", "Region");
  MustFk(&db, "City", "CountryId", "Country");
  MustFk(&db, "Customer", "CityId", "City");
  MustFk(&db, "Product", "CatId", "Category");
  MustFk(&db, "Agent", "TeamId", "Team");
  MustFk(&db, "Ticket", "CustId", "Customer");
  MustFk(&db, "Ticket", "ProdId", "Product");
  MustFk(&db, "Ticket", "AgentId", "Agent");
  MustFk(&db, "Ticket", "SevId", "Severity");
  MustFk(&db, "TicketNote", "TicketId", "Ticket");
  MustFk(&db, "TicketNote", "AgentId", "Agent");

  Status st = db.Finalize(/*check_integrity=*/false);
  if (!st.ok()) return st;
  return db;
}

StatusOr<Database> MakeAdvwSim(const AdvwSimOptions& options) {
  Database db;
  Rng rng(options.seed);

  Table* cat = MustTable(&db, "DimCategory",
                         {{"CatId", ColumnType::kInt64},
                          {"CatName", ColumnType::kText}});
  Table* subcat = MustTable(&db, "DimSubcategory",
                            {{"SubcatId", ColumnType::kInt64},
                             {"SubcatName", ColumnType::kText},
                             {"CatId", ColumnType::kInt64}});
  Table* prod = MustTable(&db, "DimProduct",
                          {{"ProductId", ColumnType::kInt64},
                           {"ProductName", ColumnType::kText},
                           {"Color", ColumnType::kText},
                           {"SubcatId", ColumnType::kInt64}});
  Table* geo = MustTable(&db, "DimGeography",
                         {{"GeoId", ColumnType::kInt64},
                          {"CityName", ColumnType::kText},
                          {"CountryName", ColumnType::kText}});
  Table* cust = MustTable(&db, "DimCustomer",
                          {{"CustId", ColumnType::kInt64},
                           {"CustName", ColumnType::kText},
                           {"GeoId", ColumnType::kInt64}});
  Table* emp = MustTable(&db, "DimEmployee",
                         {{"EmpId", ColumnType::kInt64},
                          {"EmpName", ColumnType::kText},
                          {"Title", ColumnType::kText}});
  Table* promo = MustTable(&db, "DimPromotion",
                           {{"PromoId", ColumnType::kInt64},
                            {"PromoName", ColumnType::kText}});
  Table* sales = MustTable(&db, "FactSales",
                           {{"SalesId", ColumnType::kInt64},
                            {"ProductId", ColumnType::kInt64},
                            {"CustId", ColumnType::kInt64},
                            {"EmpId", ColumnType::kInt64},
                            {"PromoId", ColumnType::kInt64}});

  const std::vector<std::string> cats{"Bikes", "Components", "Clothing",
                                      "Accessories"};
  for (size_t i = 0; i < cats.size(); ++i) {
    MustRow(cat, {Value::Int(static_cast<int64_t>(i + 1)),
                  Value::Text(cats[i])});
  }
  const int32_t num_subcats = 24;
  ZipfSampler prod_zipf(ProductWords().size(), 0.8);
  for (int32_t i = 0; i < num_subcats; ++i) {
    MustRow(subcat, {Value::Int(i + 1),
                     Value::Text(ZipfPhrase(rng, prod_zipf, ProductWords(),
                                            1)),
                     Value::Int(static_cast<int64_t>(
                         rng.Uniform(cats.size()) + 1))});
  }

  struct DimSpec {
    Table* table;
    int32_t base_rows;
  };

  ZipfSampler first_zipf(FirstNames().size(), 0.9);
  ZipfSampler last_zipf(LastNames().size(), 0.9);
  ZipfSampler city_zipf(Cities().size(), 0.8);
  ZipfSampler color_zipf(Colors().size(), 0.7);

  for (int32_t i = 0; i < options.num_products; ++i) {
    MustRow(prod, {Value::Int(i + 1),
                   Value::Text(ZipfPhrase(rng, prod_zipf, ProductWords(), 2)),
                   Value::Text(std::string(
                       Colors()[color_zipf.Sample(rng)])),
                   Value::Int(static_cast<int64_t>(
                       rng.Uniform(num_subcats) + 1))});
  }
  const int32_t num_geo = 100;
  for (int32_t i = 0; i < num_geo; ++i) {
    MustRow(geo, {Value::Int(i + 1),
                  Value::Text(std::string(Cities()[city_zipf.Sample(rng)])),
                  Value::Text(std::string(
                      Countries()[rng.Uniform(Countries().size())]))});
  }
  for (int32_t i = 0; i < options.num_customers; ++i) {
    MustRow(cust, {Value::Int(i + 1),
                   Value::Text(ZipfFullName(rng, first_zipf, last_zipf)),
                   Value::Int(static_cast<int64_t>(rng.Uniform(num_geo) + 1))});
  }
  const std::vector<std::string> titles{"Sales Representative",
                                        "Sales Manager", "Regional Director",
                                        "Account Executive"};
  for (int32_t i = 0; i < options.num_employees; ++i) {
    MustRow(emp, {Value::Int(i + 1),
                  Value::Text(ZipfFullName(rng, first_zipf, last_zipf)),
                  Value::Text(titles[rng.Uniform(titles.size())])});
  }
  ZipfSampler company_zipf(CompanyWords().size(), 0.8);
  for (int32_t i = 0; i < options.num_promotions; ++i) {
    MustRow(promo, {Value::Int(i + 1),
                    Value::Text(ZipfPhrase(rng, company_zipf, CompanyWords(),
                                           2))});
  }
  for (int32_t i = 0; i < options.num_sales; ++i) {
    MustRow(sales,
            {Value::Int(i + 1),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(options.num_products) + 1)),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(options.num_customers) + 1)),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(options.num_employees) + 1)),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(options.num_promotions) + 1))});
  }

  // Dimension scale-up: copies of existing dimension rows with fresh ids
  // that no fact row references (Fig 10a).
  if (options.dim_scale > 1) {
    struct CopySpec {
      Table* table;
      int32_t base_rows;
    };
    for (const CopySpec& spec :
         {CopySpec{prod, options.num_products},
          CopySpec{cust, options.num_customers},
          CopySpec{emp, options.num_employees},
          CopySpec{promo, options.num_promotions}}) {
      int64_t next_id = spec.base_rows + 1;
      for (int32_t copy = 1; copy < options.dim_scale; ++copy) {
        for (int32_t r = 0; r < spec.base_rows; ++r) {
          std::vector<Value> row;
          row.reserve(spec.table->NumColumns());
          row.push_back(Value::Int(next_id++));
          for (int32_t c2 = 1; c2 < spec.table->NumColumns(); ++c2) {
            row.push_back(spec.table->GetValue(r, c2));
          }
          MustRow(spec.table, row);
        }
      }
    }
  }

  // Fact scale-up: copies of existing fact rows referencing the same
  // dimension rows (Fig 10b).
  if (options.fact_scale > 1) {
    int64_t next_id = options.num_sales + 1;
    for (int32_t copy = 1; copy < options.fact_scale; ++copy) {
      for (int32_t r = 0; r < options.num_sales; ++r) {
        std::vector<Value> row;
        row.push_back(Value::Int(next_id++));
        for (int32_t c2 = 1; c2 < sales->NumColumns(); ++c2) {
          row.push_back(sales->GetValue(r, c2));
        }
        MustRow(sales, row);
      }
    }
  }

  MustFk(&db, "DimSubcategory", "CatId", "DimCategory");
  MustFk(&db, "DimProduct", "SubcatId", "DimSubcategory");
  MustFk(&db, "DimCustomer", "GeoId", "DimGeography");
  MustFk(&db, "FactSales", "ProductId", "DimProduct");
  MustFk(&db, "FactSales", "CustId", "DimCustomer");
  MustFk(&db, "FactSales", "EmpId", "DimEmployee");
  MustFk(&db, "FactSales", "PromoId", "DimPromotion");

  Status st = db.Finalize(/*check_integrity=*/false);
  if (!st.ok()) return st;
  return db;
}

StatusOr<Database> MakeImdbSim(const ImdbSimOptions& options) {
  Database db;
  Rng rng(options.seed);

  Table* studio = MustTable(&db, "Studio",
                            {{"StudioId", ColumnType::kInt64},
                             {"StudioName", ColumnType::kText}});
  Table* genre = MustTable(&db, "Genre",
                           {{"GenreId", ColumnType::kInt64},
                            {"GenreName", ColumnType::kText}});
  Table* movie = MustTable(&db, "Movie",
                           {{"MovieId", ColumnType::kInt64},
                            {"Title", ColumnType::kText},
                            {"StudioId", ColumnType::kInt64}});
  Table* person = MustTable(&db, "Person",
                            {{"PersonId", ColumnType::kInt64},
                             {"PersonName", ColumnType::kText}});
  Table* cast = MustTable(&db, "CastRole",
                          {{"CastId", ColumnType::kInt64},
                           {"RoleName", ColumnType::kText},
                           {"MovieId", ColumnType::kInt64},
                           {"PersonId", ColumnType::kInt64}});
  Table* movie_genre = MustTable(&db, "MovieGenre",
                                 {{"MgId", ColumnType::kInt64},
                                  {"MovieId", ColumnType::kInt64},
                                  {"GenreId", ColumnType::kInt64}});

  ZipfSampler company_zipf(CompanyWords().size(), 0.8);
  for (int32_t i = 0; i < options.num_studios; ++i) {
    MustRow(studio, {Value::Int(i + 1),
                     Value::Text(ZipfPhrase(rng, company_zipf, CompanyWords(),
                                            2))});
  }
  const std::vector<std::string> genres{
      "Drama", "Comedy", "Action", "Thriller", "Horror", "Romance",
      "Documentary", "Animation", "Fantasy", "Mystery", "Crime", "Western"};
  for (size_t i = 0; i < genres.size(); ++i) {
    MustRow(genre, {Value::Int(static_cast<int64_t>(i + 1)),
                    Value::Text(genres[i])});
  }
  ZipfSampler movie_zipf(MovieWords().size(), 0.9);
  for (int32_t i = 0; i < options.num_movies; ++i) {
    MustRow(movie,
            {Value::Int(i + 1),
             Value::Text(ZipfPhrase(rng, movie_zipf, MovieWords(),
                                    static_cast<int32_t>(2 + rng.Uniform(2)))),
             Value::Int(static_cast<int64_t>(
                 rng.Uniform(options.num_studios) + 1))});
  }
  ZipfSampler first_zipf(FirstNames().size(), 0.9);
  ZipfSampler last_zipf(LastNames().size(), 0.9);
  for (int32_t i = 0; i < options.num_people; ++i) {
    MustRow(person, {Value::Int(i + 1),
                     Value::Text(ZipfFullName(rng, first_zipf, last_zipf))});
  }
  const std::vector<std::string> roles{"Director", "Producer", "Writer",
                                       "Lead Actor", "Supporting Actor",
                                       "Composer", "Editor"};
  for (int32_t i = 0; i < options.num_cast; ++i) {
    MustRow(cast, {Value::Int(i + 1),
                   Value::Text(roles[rng.Uniform(roles.size())]),
                   Value::Int(static_cast<int64_t>(
                       rng.Uniform(options.num_movies) + 1)),
                   Value::Int(static_cast<int64_t>(
                       rng.Uniform(options.num_people) + 1))});
  }
  int64_t mg_id = 1;
  for (int32_t m = 1; m <= options.num_movies; ++m) {
    const int32_t count = static_cast<int32_t>(1 + rng.Uniform(3));
    for (int32_t g = 0; g < count; ++g) {
      MustRow(movie_genre,
              {Value::Int(mg_id++), Value::Int(m),
               Value::Int(static_cast<int64_t>(
                   rng.Uniform(genres.size()) + 1))});
    }
  }

  MustFk(&db, "Movie", "StudioId", "Studio");
  MustFk(&db, "CastRole", "MovieId", "Movie");
  MustFk(&db, "CastRole", "PersonId", "Person");
  MustFk(&db, "MovieGenre", "MovieId", "Movie");
  MustFk(&db, "MovieGenre", "GenreId", "Genre");

  Status st = db.Finalize(/*check_integrity=*/false);
  if (!st.ok()) return st;
  return db;
}

}  // namespace s4::datagen
