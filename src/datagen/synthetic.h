#ifndef S4_DATAGEN_SYNTHETIC_H_
#define S4_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "common/status.h"
#include "storage/database.h"

namespace s4::datagen {

// ---------------------------------------------------------------------------
// CSUPP-sim: stands in for the paper's proprietary 95 GB Fortune-500
// customer-service/IT-support database. A snowflake schema of 11
// relations (regions -> countries -> cities -> customers; product
// catalog; agents/teams; ticket + ticket-note fact tables) with
// Zipf-distributed text so term frequencies span the low/medium/high
// buckets of Sec 6.1. `scale` multiplies the dimension and fact row
// counts; the default fits comfortably in memory while keeping join
// fan-outs realistic.
// ---------------------------------------------------------------------------
struct CsuppSimOptions {
  uint64_t seed = 42;
  int32_t scale = 1;
  // Base row counts at scale 1.
  int32_t num_cities = 120;
  int32_t num_customers = 900;
  int32_t num_products = 250;
  int32_t num_agents = 120;
  int32_t num_tickets = 4000;
  int32_t num_notes = 6000;
};
StatusOr<Database> MakeCsuppSim(const CsuppSimOptions& options = {});

// ---------------------------------------------------------------------------
// ADVW-sim: AdventureWorks-like star schema used by the scale-up
// experiment (Fig 10). `dim_scale` appends copies of each dimension row
// with fresh ids that no fact row references (the paper's dimension
// scale-up); `fact_scale` appends copies of each fact row referencing
// the same dimension rows (the fact scale-up).
// ---------------------------------------------------------------------------
struct AdvwSimOptions {
  uint64_t seed = 7;
  int32_t dim_scale = 1;
  int32_t fact_scale = 1;
  // Base row counts.
  int32_t num_products = 300;
  int32_t num_customers = 400;
  int32_t num_employees = 80;
  int32_t num_promotions = 40;
  int32_t num_sales = 3000;
};
StatusOr<Database> MakeAdvwSim(const AdvwSimOptions& options = {});

// ---------------------------------------------------------------------------
// IMDB-sim: movie database standing in for the IMDB snapshot of the user
// study (Sec 6.3): movies, people, cast roles, genres, studios.
// ---------------------------------------------------------------------------
struct ImdbSimOptions {
  uint64_t seed = 11;
  int32_t num_movies = 800;
  int32_t num_people = 1200;
  int32_t num_studios = 60;
  int32_t num_cast = 4000;
};
StatusOr<Database> MakeImdbSim(const ImdbSimOptions& options = {});

}  // namespace s4::datagen

#endif  // S4_DATAGEN_SYNTHETIC_H_
