#ifndef S4_DATAGEN_TPCH_MINI_H_
#define S4_DATAGEN_TPCH_MINI_H_

#include "common/status.h"
#include "storage/database.h"

namespace s4::datagen {

// The exact sample database of Figure 1 of the paper: a TPC-H subschema
// with Customer, Nation, Orders, LineItem, Part, PartSupp and Supplier,
// including the three customers Rick Miller / Julie Smith / Kevin Chen,
// parts Xbox One / iPhone 6 / Samsung Galaxy, and suppliers
// Century Electronics / Kevin Brown / Shenzhen Trading. Used by the
// quickstart example and by tests that verify the paper's worked
// Examples 2-3 verbatim.
StatusOr<Database> MakeTpchMini();

}  // namespace s4::datagen

#endif  // S4_DATAGEN_TPCH_MINI_H_
