#include "s4/s4.h"

#include "common/string_util.h"

namespace s4 {

StatusOr<std::unique_ptr<S4System>> S4System::Create(
    const Database& db, IndexBuildOptions index_options) {
  auto index = IndexSet::Build(db, index_options);
  if (!index.ok()) return index.status();
  return std::unique_ptr<S4System>(
      new S4System(std::move(index).value()));
}

StatusOr<SearchResult> S4System::Search(
    const std::vector<std::vector<std::string>>& cells,
    const SearchOptions& options, Strategy strategy) const {
  S4_RETURN_IF_ERROR(ValidateSearchOptions(options));
  auto sheet = MakeSpreadsheet(cells);
  if (!sheet.ok()) return sheet.status();
  S4_RETURN_IF_ERROR(sheet->Validate());
  // A requested deadline without a caller-armed token gets one here, so
  // one-shot searches honor deadlines without going through S4Service.
  if (options.deadline_seconds > 0.0 && options.stop == nullptr) {
    StopToken token(options.deadline_seconds);
    SearchOptions timed = options;
    timed.stop = &token;
    SearchResult result = Search(*sheet, timed, strategy);
    if (result.interrupted) {
      return Status::DeadlineExceeded(
          StrFormat("search exceeded its %.3fs deadline",
                    options.deadline_seconds));
    }
    return result;
  }
  SearchResult result = Search(*sheet, options, strategy);
  if (result.interrupted && options.stop != nullptr) {
    if (options.stop->cancelled()) {
      return Status::Cancelled("search cancelled by caller");
    }
    return Status::DeadlineExceeded("search exceeded its deadline");
  }
  return result;
}

SearchResult S4System::Search(const ExampleSpreadsheet& sheet,
                              const SearchOptions& options,
                              Strategy strategy) const {
  switch (strategy) {
    case Strategy::kNaive:
      return SearchNaive(*index_, graph_, sheet, options);
    case Strategy::kBaseline:
      return SearchBaseline(*index_, graph_, sheet, options);
    case Strategy::kFastTopK:
      break;
  }
  return SearchFastTopK(*index_, graph_, sheet, options);
}

SearchResult S4System::SearchOr(const ExampleSpreadsheet& sheet,
                                const SearchOptions& options) const {
  return SearchOrSemantics(*index_, graph_, sheet, options);
}

StatusOr<QueryOutput> S4System::Preview(const PJQuery& query,
                                        const ExampleSpreadsheet& sheet,
                                        const OutputOptions& options) const {
  ScoreContext ctx(*index_, sheet, ScoreParams{});
  return ExecuteQuery(query, ctx, options);
}

std::string S4System::FormatResults(const SearchResult& result,
                                    int32_t max_sql) const {
  std::string out;
  out += StrFormat(
      "top-%zu of %lld candidates (%lld evaluated, %.1f ms enum+ub, "
      "%.1f ms eval)\n",
      result.topk.size(),
      static_cast<long long>(result.stats.queries_enumerated),
      static_cast<long long>(result.stats.queries_evaluated),
      result.stats.enum_seconds * 1e3, result.stats.eval_seconds * 1e3);
  int32_t rank = 0;
  for (const ScoredQuery& sq : result.topk) {
    ++rank;
    out += StrFormat("#%d  score=%.3f (row=%.1f col=%.1f ub=%.3f)  %s\n",
                     rank, sq.score, sq.row_score, sq.column_score,
                     sq.upper_bound, sq.query.ToString(db()).c_str());
    if (rank <= max_sql) {
      std::string sql = sq.query.ToSql(db());
      // Indent the SQL block.
      out += "      ";
      for (char ch : sql) {
        out.push_back(ch);
        if (ch == '\n') out += "      ";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace s4
