#ifndef S4_S4_S4_H_
#define S4_S4_S4_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/query_output.h"
#include "strategy/incremental.h"
#include "strategy/or_semantics.h"
#include "strategy/strategy.h"

namespace s4 {

// Top-level entry point of the library: owns the offline-built indexes
// and schema graph over a user database (Sec 3.1) and exposes the online
// top-k PJ-query search (Sec 3.2).
//
//   Database db = ...;                       // load data, declare FKs
//   db.Finalize();
//   auto s4 = S4System::Create(db).value();
//   auto result = s4->Search({{"Rick", "USA", "Xbox"},
//                             {"Julie", "", "iPhone"},
//                             {"Kevin", "Canada", ""}});
//   for (const ScoredQuery& q : result->topk)
//     std::cout << q.query.ToSql(db) << "\n";
class S4System {
 public:
  enum class Strategy {
    kNaive,
    kBaseline,
    kFastTopK,
  };

  // Builds all offline indexes. `db` must be finalized and outlive the
  // returned system.
  static StatusOr<std::unique_ptr<S4System>> Create(
      const Database& db, IndexBuildOptions index_options = {});

  // Adopts an already-built IndexSet (the live mutation subsystem
  // publishes each epoch this way). The database the IndexSet was built
  // over must outlive the returned system.
  static std::unique_ptr<S4System> FromIndex(
      std::unique_ptr<IndexSet> index) {
    return std::unique_ptr<S4System>(new S4System(std::move(index)));
  }

  const Database& db() const { return index_->db(); }
  const IndexSet& index() const { return *index_; }
  const SchemaGraph& graph() const { return graph_; }
  IndexStats index_stats() const { return index_->stats(); }

  // One-shot top-k search from raw spreadsheet cells (rows x columns;
  // empty strings are empty cells). Validates Def 1.
  // SearchOptions::num_threads controls Stage-II evaluation parallelism
  // for all Search/SearchOr/session entry points; every thread count
  // returns the same top-k sets and scores.
  StatusOr<SearchResult> Search(
      const std::vector<std::vector<std::string>>& cells,
      const SearchOptions& options = {},
      Strategy strategy = Strategy::kFastTopK) const;

  // Top-k search over a pre-built spreadsheet.
  SearchResult Search(const ExampleSpreadsheet& sheet,
                      const SearchOptions& options = {},
                      Strategy strategy = Strategy::kFastTopK) const;

  // OR-column-mapping search (Appendix A.3).
  SearchResult SearchOr(const ExampleSpreadsheet& sheet,
                        const SearchOptions& options = {}) const;

  // Starts an incremental session (Sec 5.4) that reuses evaluation
  // results across spreadsheet edits.
  SearchSession NewSession(const SearchOptions& options = {}) const {
    return SearchSession(*index_, graph_, options);
  }

  // Builds a spreadsheet with this system's tokenizer.
  StatusOr<ExampleSpreadsheet> MakeSpreadsheet(
      const std::vector<std::vector<std::string>>& cells) const {
    return ExampleSpreadsheet::FromCells(cells, index_->tokenizer());
  }

  // Human-readable report of the top-k (scores, mappings, SQL).
  std::string FormatResults(const SearchResult& result,
                            int32_t max_sql = 3) const;

  // Materializes (a prefix of) a discovered query's output relation with
  // the best-matching row of each example tuple marked — the Fig 2(b)
  // view a UI would render next to the SQL.
  StatusOr<QueryOutput> Preview(const PJQuery& query,
                                const ExampleSpreadsheet& sheet,
                                const OutputOptions& options = {}) const;

 private:
  S4System(std::unique_ptr<IndexSet> index)
      : index_(std::move(index)), graph_(index_->db()) {}

  std::unique_ptr<IndexSet> index_;
  SchemaGraph graph_;
};

}  // namespace s4

#endif  // S4_S4_S4_H_
