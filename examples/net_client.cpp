// Command-line client for a running net_server: type spreadsheet cells
// on the command line, get back the top-k SQL queries that could have
// produced them — over the wire, from another process.
//
//   ./net_server --port 4321 &
//   ./net_client --port 4321 "The Matrix" "Keanu Reeves"
//   ./net_client --port 4321 --k 3 "The Matrix" / "Speed"
//   ./net_client --port 4321 --trace-out trace.json "The Matrix"
//
// A bare "/" argument starts a new spreadsheet row; everything else is a
// cell. --ping just checks liveness and exits. --trace-out FILE fetches
// the server-side trace of this search (server must run --trace) and
// writes Chrome-trace JSON loadable in Perfetto / chrome://tracing.
//
// Anytime approximate search: --epsilon E (relative slack on the k-th
// score, e.g. 0.05) lets the server resolve low-impact candidates by
// sampling instead of exact evaluation; --confidence C (default 0.95)
// sets the per-candidate confidence of the sampled intervals; --budget N
// caps join-result rows walked per candidate. --deadline S (seconds)
// bounds server-side search time; with a nonzero epsilon the server
// degrades to bounded-error sampling instead of truncating. Approximate
// hits print their score bracket:
//   ./net_client --port 4321 --epsilon 0.05 "The Matrix" "Keanu Reeves"
//   ./net_client --port 4321 --epsilon 0.05 --deadline 0.005 "The Matrix"
//
// Profiling (DESIGN.md "Observability"): --profile asks the server for
// the request's QueryProfile — end-to-end timing envelope, enumeration/
// evaluation work, cache traffic, sampler activity — and prints it
// after the hits, with approximate hits shown as score brackets:
//   ./net_client --port 4321 --profile "The Matrix" "Keanu Reeves"
// --slow-log fetches the server's slow-query ring as JSON (server must
// run --slow-log) and exits:
//   ./net_client --port 4321 --slow-log
//
// Write path (server must run --live): each flag below adds one
// operation to a single batch, applied in order by one request:
//   ./net_client --port 4321 --insert "movies,8,The Matrix 4,2026"
//   ./net_client --port 4321 --update "movies,8,title,The Matrix Four"
//   ./net_client --port 4321 --delete movies,8
// Insert values are comma-separated in schema order; "NULL" is the SQL
// null, digit-only tokens are integers, everything else is text.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"
#include "obs/profile.h"

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts(1);
  for (char c : s) {
    if (c == ',') {
      parts.emplace_back();
    } else {
      parts.back().push_back(c);
    }
  }
  return parts;
}

s4::Value ParseValue(const std::string& token) {
  if (token == "NULL") return s4::Value::Null();
  if (!token.empty() &&
      token.find_first_not_of("-0123456789") == std::string::npos) {
    return s4::Value::Int(std::atoll(token.c_str()));
  }
  return s4::Value::Text(token);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace s4;

  net::ClientOptions copts;
  copts.port = 4321;
  SearchOptions options;
  options.k = 5;
  bool ping_only = false;
  bool want_profile = false;
  bool slow_log_only = false;
  double deadline_seconds = 0.0;
  const char* trace_out = nullptr;
  std::vector<Mutation> mutations;
  std::vector<std::vector<std::string>> cells(1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      copts.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      copts.host = argv[++i];
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      options.k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--epsilon") == 0 && i + 1 < argc) {
      options.approx_epsilon = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--confidence") == 0 && i + 1 < argc) {
      options.approx_confidence = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      options.sample_budget = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
      deadline_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--insert") == 0 && i + 1 < argc) {
      std::vector<std::string> parts = SplitCommas(argv[++i]);
      if (parts.size() < 2) {
        std::fprintf(stderr, "--insert needs \"table,v1[,v2...]\"\n");
        return 2;
      }
      std::vector<Value> values;
      for (size_t j = 1; j < parts.size(); ++j) {
        values.push_back(ParseValue(parts[j]));
      }
      mutations.push_back(Mutation::Insert(parts[0], std::move(values)));
    } else if (std::strcmp(argv[i], "--delete") == 0 && i + 1 < argc) {
      std::vector<std::string> parts = SplitCommas(argv[++i]);
      if (parts.size() != 2) {
        std::fprintf(stderr, "--delete needs \"table,pk\"\n");
        return 2;
      }
      mutations.push_back(
          Mutation::Delete(parts[0], std::atoll(parts[1].c_str())));
    } else if (std::strcmp(argv[i], "--update") == 0 && i + 1 < argc) {
      std::vector<std::string> parts = SplitCommas(argv[++i]);
      if (parts.size() < 4) {
        std::fprintf(stderr, "--update needs \"table,pk,column,value\"\n");
        return 2;
      }
      // The value may itself contain commas: rejoin everything past the
      // third separator.
      std::string value = parts[3];
      for (size_t j = 4; j < parts.size(); ++j) value += "," + parts[j];
      mutations.push_back(Mutation::Update(parts[0],
                                           std::atoll(parts[1].c_str()),
                                           parts[2], ParseValue(value)));
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping_only = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      want_profile = true;
    } else if (std::strcmp(argv[i], "--slow-log") == 0) {
      slow_log_only = true;
    } else if (std::strcmp(argv[i], "/") == 0) {
      if (!cells.back().empty()) cells.emplace_back();
    } else {
      cells.back().push_back(argv[i]);
    }
  }

  net::S4Client client(copts);
  if (ping_only) {
    Status st = client.Ping();
    std::printf("ping %s:%u -> %s\n", copts.host.c_str(), copts.port,
                st.ToString().c_str());
    return st.ok() ? 0 : 1;
  }
  if (slow_log_only) {
    auto json = client.FetchSlowLog();
    if (!json.ok()) {
      std::fprintf(stderr,
                   "slow-log fetch failed: %s\n(is the server running"
                   " with --slow-log?)\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
    return 0;
  }

  if (!mutations.empty()) {
    auto resp = client.Mutate(mutations);
    if (!resp.ok()) {
      std::fprintf(stderr, "mutate failed: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    std::printf("applied %lld/%zu operation(s), now at epoch %llu"
                " (%.1f ms server time)%s%s\n",
                static_cast<long long>(resp->applied), mutations.size(),
                static_cast<unsigned long long>(resp->epoch),
                1e3 * resp->server_seconds,
                resp->interrupted ? " [interrupted]" : "",
                resp->error.empty()
                    ? ""
                    : (" — stopped at: " + resp->error).c_str());
    if (resp->applied != static_cast<int64_t>(mutations.size())) return 1;
  }

  if (cells.back().empty()) cells.pop_back();
  if (cells.empty()) {
    if (!mutations.empty()) return 0;  // write-only invocation
    std::fprintf(stderr,
                 "usage: net_client [--host H] [--port P] [--k K]"
                 " [--epsilon E] [--confidence C] [--budget N]"
                 " [--deadline S] [--profile] cell"
                 " [cell ...] [/ cell ...]\n"
                 "       net_client [--slow-log]\n"
                 "       net_client [--insert \"table,v1,...\"]"
                 " [--delete \"table,pk\"]"
                 " [--update \"table,pk,col,value\"]\n");
    return 2;
  }

  uint64_t request_id = 0;
  net::NetSearchRequest request = net::NetSearchRequest::From(
      cells, options, S4System::Strategy::kFastTopK,
      /*priority=*/0, deadline_seconds);
  request.want_profile = want_profile;
  auto result = client.Search(request, &request_id);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("top-%zu in %.1f ms server time (%lld queries evaluated,"
              " %lld cache hits)%s:\n",
              result->topk.size(), 1e3 * result->server_seconds,
              static_cast<long long>(result->queries_evaluated),
              static_cast<long long>(result->cache_hits),
              result->interrupted
                  ? " [interrupted]"
                  : (result->approximate ? " [approximate]" : ""));
  int rank = 1;
  for (const net::NetTopkEntry& e : result->topk) {
    if (e.approximate) {
      std::printf("%2d. score=%.4f in [%.4f, %.4f] @ %.0f%% conf\n    %s\n",
                  rank++, e.score, e.interval_lo, e.interval_hi,
                  1e2 * e.interval_confidence, e.sql.c_str());
    } else {
      std::printf("%2d. score=%.4f\n    %s\n", rank++, e.score,
                  e.sql.c_str());
    }
  }

  if (want_profile) {
    if (!result->has_profile) {
      std::fprintf(stderr, "server sent no profile (pre-v3 peer?)\n");
      return 1;
    }
    std::vector<obs::ProfileHit> hits;
    hits.reserve(result->topk.size());
    for (const net::NetTopkEntry& e : result->topk) {
      obs::ProfileHit h;
      h.score = e.score;
      h.interval_lo = e.interval_lo;
      h.interval_hi = e.interval_hi;
      h.interval_confidence = e.interval_confidence;
      h.approximate = e.approximate;
      h.label = e.sql;
      hits.push_back(std::move(h));
    }
    std::printf("\n%s", obs::FormatProfile(result->profile, hits).c_str());
  }

  if (trace_out != nullptr) {
    auto trace_json = client.FetchTrace(request_id);
    if (!trace_json.ok()) {
      std::fprintf(stderr,
                   "trace fetch failed: %s\n(is the server running"
                   " with --trace?)\n",
                   trace_json.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(trace_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out);
      return 1;
    }
    std::fwrite(trace_json->data(), 1, trace_json->size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes of Chrome-trace JSON to %s"
                " (open in Perfetto or chrome://tracing)\n",
                trace_json->size(), trace_out);
  }
  return 0;
}
