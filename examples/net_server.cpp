// Network server over the movie dataset: builds the IMDB-sim database,
// wraps it in an S4Service, and serves the S4 wire protocol on loopback
// so examples/net_client (or any wire-speaking client) can discover
// queries from another process.
//
//   ./net_server --port 4321        # serve until stdin closes
//   ./net_server --self-test       # start, round-trip one search
//                                  # through a real socket, exit
//
// The self-test mode is what ctest runs: it crosses the full stack
// (framing, epoll loops, admission queue, completion marshalling) in a
// few seconds with no free port or second process required.
#include <cstdio>
#include <cstring>
#include <string>

#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/server.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;

  uint16_t port = 4321;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
      port = 0;  // kernel-assigned; nothing else needs to know it
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    }
  }

  std::printf("building the movie database + indexes...\n");
  auto db = datagen::MakeImdbSim();
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto system = S4System::Create(*db);
  if (!system.ok()) {
    std::fprintf(stderr, "indexes: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.max_queue = 32;
  S4Service service(**system, sopts);

  net::ServerOptions nopts;
  nopts.port = port;
  net::S4Server server(&service, nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving the S4 wire protocol on 127.0.0.1:%u\n",
              server.port());

  if (self_test) {
    // Borrow a movie title and an actor the database is known to hold,
    // exactly like net_client would type them.
    const Table* movie = db->FindTable("Movie");
    const Table* person = db->FindTable("Person");
    const std::string title = movie->GetText(0, 1);
    const std::string actor = person->GetText(3, 1);
    std::printf("self-test: searching for {\"%s\", \"%s\"}\n", title.c_str(),
                actor.c_str());

    net::ClientOptions copts;
    copts.port = server.port();
    net::S4Client client(copts);
    if (Status st = client.Ping(); !st.ok()) {
      std::fprintf(stderr, "ping: %s\n", st.ToString().c_str());
      return 1;
    }
    SearchOptions options;
    options.k = 3;
    auto result = client.Search(net::NetSearchRequest::From(
        {{title, actor}}, options, S4System::Strategy::kFastTopK));
    if (!result.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("got %zu queries in %.1f ms server time; best:\n%s\n",
                result->topk.size(), 1e3 * result->server_seconds,
                result->topk.empty() ? "(none)"
                                     : result->topk[0].sql.c_str());
    server.Stop();
    const net::NetServerCounters& c = server.counters();
    std::printf("frames=%lld responses=%lld errors=%lld\n",
                static_cast<long long>(c.frames_received.load()),
                static_cast<long long>(c.responses_sent.load()),
                static_cast<long long>(c.errors_sent.load()));
    return result->topk.empty() ? 1 : 0;
  }

  std::printf("try: ./net_client --port %u \"<movie title>\" \"<actor>\"\n",
              server.port());
  std::printf("serving until stdin closes...\n");
  while (std::getchar() != EOF) {
  }
  server.Stop();
  return 0;
}
