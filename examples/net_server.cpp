// Network server over the movie dataset: builds the IMDB-sim database,
// wraps it in an S4Service, and serves the S4 wire protocol on loopback
// so examples/net_client (or any wire-speaking client) can discover
// queries from another process.
//
//   ./net_server --port 4321        # serve until stdin closes
//   ./net_server --port 4321 --trace --verbose --stats-port 9090
//   ./net_server --self-test       # start, round-trip one search
//                                  # through a real socket, exit
//
// Observability flags:
//   --trace        keep per-request Chrome-trace JSON, retrievable with
//                  net_client --trace-out (or a kTraceRequest frame)
//   --verbose      one-line summary per completed request on stderr
//   --stats-port P plain-text scrape endpoint (curl P/metrics) serving
//                  the Prometheus dump of the metrics registry
//
// The self-test mode is what ctest runs: it crosses the full stack
// (framing, epoll loops, admission queue, completion marshalling, the
// stats/trace wire surface) in a few seconds with no free port or
// second process required.
#include <cstdio>
#include <cstring>
#include <string>

#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/server.h"
#include "net/stats_endpoint.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;

  uint16_t port = 4321;
  int stats_port = -1;  // <0 = disabled; 0 = kernel-assigned
  bool self_test = false;
  bool trace = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
      port = 0;  // kernel-assigned; nothing else needs to know it
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--stats-port") == 0 && i + 1 < argc) {
      stats_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    }
  }
  if (self_test) {
    // The self-test exercises every observability surface.
    trace = true;
    verbose = true;
    if (stats_port < 0) stats_port = 0;
  }

  std::printf("building the movie database + indexes...\n");
  auto db = datagen::MakeImdbSim();
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto system = S4System::Create(*db);
  if (!system.ok()) {
    std::fprintf(stderr, "indexes: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.max_queue = 32;
  S4Service service(**system, sopts);

  net::ServerOptions nopts;
  nopts.port = port;
  nopts.enable_tracing = trace;
  nopts.verbose = verbose;
  net::S4Server server(&service, nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving the S4 wire protocol on 127.0.0.1:%u%s%s\n",
              server.port(), trace ? " [tracing]" : "",
              verbose ? " [verbose]" : "");

  net::StatsTextServer stats_server;
  if (stats_port >= 0) {
    if (Status st = stats_server.Start(
            "127.0.0.1", static_cast<uint16_t>(stats_port),
            [&server] { return server.CollectStatsText(); });
        !st.ok()) {
      std::fprintf(stderr, "stats endpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("metrics scrape endpoint on 127.0.0.1:%u\n",
                stats_server.port());
  }

  if (self_test) {
    // Borrow a movie title and an actor the database is known to hold,
    // exactly like net_client would type them.
    const Table* movie = db->FindTable("Movie");
    const Table* person = db->FindTable("Person");
    const std::string title = movie->GetText(0, 1);
    const std::string actor = person->GetText(3, 1);
    std::printf("self-test: searching for {\"%s\", \"%s\"}\n", title.c_str(),
                actor.c_str());

    net::ClientOptions copts;
    copts.port = server.port();
    net::S4Client client(copts);
    if (Status st = client.Ping(); !st.ok()) {
      std::fprintf(stderr, "ping: %s\n", st.ToString().c_str());
      return 1;
    }
    SearchOptions options;
    options.k = 3;
    uint64_t request_id = 0;
    auto result = client.Search(
        net::NetSearchRequest::From({{title, actor}}, options,
                                    S4System::Strategy::kFastTopK),
        &request_id);
    if (!result.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("got %zu queries in %.1f ms server time; best:\n%s\n",
                result->topk.size(), 1e3 * result->server_seconds,
                result->topk.empty() ? "(none)"
                                     : result->topk[0].sql.c_str());

    // Stats over the wire must reflect the search that just completed.
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (stats->find("s4_candidates_evaluated_total") == std::string::npos ||
        stats->find("s4_searches_total") == std::string::npos) {
      std::fprintf(stderr, "stats dump is missing search counters:\n%s\n",
                   stats->c_str());
      return 1;
    }
    std::printf("stats dump: %zu bytes of Prometheus text\n", stats->size());

    // The trace for that request must come back as Chrome-trace JSON
    // with the spans the wire path is responsible for.
    auto trace_json = client.FetchTrace(request_id);
    if (!trace_json.ok()) {
      std::fprintf(stderr, "trace: %s\n",
                   trace_json.status().ToString().c_str());
      return 1;
    }
    if (trace_json->find("\"traceEvents\"") == std::string::npos ||
        trace_json->find("frame_decode") == std::string::npos ||
        trace_json->find("evaluate_candidate") == std::string::npos ||
        trace_json->find("cache_probe") == std::string::npos ||
        trace_json->find("enumerate") == std::string::npos) {
      std::fprintf(stderr, "trace JSON is missing expected spans:\n%s\n",
                   trace_json->c_str());
      return 1;
    }
    std::printf("trace JSON: %zu bytes, spans present\n",
                trace_json->size());

    // An unknown id must answer NotFound without dropping the stream.
    auto missing = client.FetchTrace(request_id + 12345);
    if (missing.ok() ||
        missing.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "expected NotFound for an unknown trace id\n");
      return 1;
    }
    if (Status st = client.Ping(); !st.ok()) {
      std::fprintf(stderr, "ping after NotFound: %s\n",
                   st.ToString().c_str());
      return 1;
    }

    stats_server.Stop();
    server.Stop();
    const net::NetServerCounters& c = server.counters();
    std::printf("frames=%lld responses=%lld errors=%lld stats_reqs=%lld"
                " trace_reqs=%lld\n",
                static_cast<long long>(c.frames_received.load()),
                static_cast<long long>(c.responses_sent.load()),
                static_cast<long long>(c.errors_sent.load()),
                static_cast<long long>(c.stats_requests.load()),
                static_cast<long long>(c.trace_requests.load()));
    return result->topk.empty() ? 1 : 0;
  }

  std::printf("try: ./net_client --port %u \"<movie title>\" \"<actor>\"\n",
              server.port());
  std::printf("serving until stdin closes...\n");
  while (std::getchar() != EOF) {
  }
  stats_server.Stop();
  server.Stop();
  return 0;
}
