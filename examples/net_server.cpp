// Network server over the movie dataset: builds the IMDB-sim database,
// wraps it in an S4Service, and serves the S4 wire protocol on loopback
// so examples/net_client (or any wire-speaking client) can discover
// queries from another process.
//
//   ./net_server --port 4321        # serve until stdin closes
//   ./net_server --port 4321 --live # accept kMutateRequest writes too
//   ./net_server --port 4321 --trace --verbose --stats-port 9090
//   ./net_server --self-test       # start, round-trip one search
//                                  # (and, with --live, one write)
//                                  # through a real socket, exit
//
// Observability flags:
//   --trace        keep per-request Chrome-trace JSON, retrievable with
//                  net_client --trace-out (or a kTraceRequest frame)
//   --verbose      one-line summary per completed request on stderr
//   --stats-port P plain-text scrape endpoint (curl P/metrics) serving
//                  the Prometheus dump of the metrics registry
//   --slow-log     keep the 32 slowest requests (any latency qualifies;
//                  tune in code via ServiceOptions), dumped as JSON by
//                  net_client --slow-log (or a kSlowLogRequest frame)
//
// The self-test mode is what ctest runs: it crosses the full stack
// (framing, epoll loops, admission queue, completion marshalling, the
// stats/trace wire surface) in a few seconds with no free port or
// second process required.
#include <cstdio>
#include <cstring>
#include <string>

#include "datagen/synthetic.h"
#include "live/live_s4.h"
#include "net/client.h"
#include "net/server.h"
#include "net/stats_endpoint.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;

  uint16_t port = 4321;
  int stats_port = -1;  // <0 = disabled; 0 = kernel-assigned
  bool self_test = false;
  bool trace = false;
  bool verbose = false;
  bool live = false;
  bool slow_log = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
      port = 0;  // kernel-assigned; nothing else needs to know it
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--stats-port") == 0 && i + 1 < argc) {
      stats_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--live") == 0) {
      live = true;
    } else if (std::strcmp(argv[i], "--slow-log") == 0) {
      slow_log = true;
    }
  }
  if (self_test) {
    // The self-test exercises every observability surface.
    trace = true;
    verbose = true;
    slow_log = true;
    if (stats_port < 0) stats_port = 0;
  }

  std::printf("building the movie database + indexes...\n");
  auto db = datagen::MakeImdbSim();
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 1;
  }

  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.max_queue = 32;
  if (slow_log) {
    // Threshold 0: every completed request competes for a ring slot, so
    // the log is always the 32 slowest seen. Production deployments
    // would set a real threshold (say 0.1s) to skip the fast majority.
    sopts.slow_log_size = 32;
    sopts.slow_log_threshold_seconds = 0.0;
  }

  // --live hands the database to a LiveS4System (epoch-publishing,
  // accepts kMutateRequest); otherwise a plain immutable S4System.
  std::unique_ptr<S4System> system;
  std::unique_ptr<LiveS4System> live_system;
  std::unique_ptr<S4Service> service;
  const Database* served_db = nullptr;
  if (live) {
    auto ls = LiveS4System::Create(std::move(*db));
    if (!ls.ok()) {
      std::fprintf(stderr, "indexes: %s\n", ls.status().ToString().c_str());
      return 1;
    }
    live_system = std::move(*ls);
    served_db = &live_system->db();
    service = std::make_unique<S4Service>(*live_system, sopts);
  } else {
    auto sys = S4System::Create(*db);
    if (!sys.ok()) {
      std::fprintf(stderr, "indexes: %s\n",
                   sys.status().ToString().c_str());
      return 1;
    }
    system = std::move(*sys);
    served_db = &*db;
    service = std::make_unique<S4Service>(*system, sopts);
  }

  net::ServerOptions nopts;
  nopts.port = port;
  nopts.enable_tracing = trace;
  nopts.verbose = verbose;
  net::S4Server server(service.get(), nopts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving the S4 wire protocol on 127.0.0.1:%u%s%s%s%s\n",
              server.port(), live ? " [live]" : "",
              trace ? " [tracing]" : "", verbose ? " [verbose]" : "",
              slow_log ? " [slow-log]" : "");

  net::StatsTextServer stats_server;
  if (stats_port >= 0) {
    if (Status st = stats_server.Start(
            "127.0.0.1", static_cast<uint16_t>(stats_port),
            [&server] { return server.CollectStatsText(); });
        !st.ok()) {
      std::fprintf(stderr, "stats endpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("metrics scrape endpoint on 127.0.0.1:%u\n",
                stats_server.port());
  }

  if (self_test) {
    // Borrow a movie title and an actor the database is known to hold,
    // exactly like net_client would type them.
    const Table* movie = served_db->FindTable("Movie");
    const Table* person = served_db->FindTable("Person");
    const std::string title = movie->GetText(0, 1);
    const std::string actor = person->GetText(3, 1);
    std::printf("self-test: searching for {\"%s\", \"%s\"}\n", title.c_str(),
                actor.c_str());

    net::ClientOptions copts;
    copts.port = server.port();
    net::S4Client client(copts);
    if (Status st = client.Ping(); !st.ok()) {
      std::fprintf(stderr, "ping: %s\n", st.ToString().c_str());
      return 1;
    }
    SearchOptions options;
    options.k = 3;
    uint64_t request_id = 0;
    net::NetSearchRequest req = net::NetSearchRequest::From(
        {{title, actor}}, options, S4System::Strategy::kFastTopK);
    req.want_profile = true;
    auto result = client.Search(req, &request_id);
    if (!result.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("got %zu queries in %.1f ms server time; best:\n%s\n",
                result->topk.size(), 1e3 * result->server_seconds,
                result->topk.empty() ? "(none)"
                                     : result->topk[0].sql.c_str());

    // The QueryProfile must come back and reconcile with the response's
    // own counters (both views come from the same RunStats).
    if (!result->has_profile) {
      std::fprintf(stderr, "response is missing the requested profile\n");
      return 1;
    }
    const obs::QueryProfile& prof = result->profile;
    if (prof.candidates_evaluated != result->queries_evaluated ||
        prof.candidates_enumerated != result->queries_enumerated ||
        prof.cache_hits != result->cache_hits ||
        prof.total_seconds <= 0.0 ||
        prof.total_seconds < prof.queue_seconds) {
      std::fprintf(stderr,
                   "profile does not reconcile: evaluated %lld vs %lld, "
                   "enumerated %lld vs %lld, total=%.6f queue=%.6f\n",
                   static_cast<long long>(prof.candidates_evaluated),
                   static_cast<long long>(result->queries_evaluated),
                   static_cast<long long>(prof.candidates_enumerated),
                   static_cast<long long>(result->queries_enumerated),
                   prof.total_seconds, prof.queue_seconds);
      return 1;
    }
    std::printf("profile: total=%.3f ms (queued %.3f ms), %lld evaluated\n",
                1e3 * prof.total_seconds, 1e3 * prof.queue_seconds,
                static_cast<long long>(prof.candidates_evaluated));

    // Stats over the wire must reflect the search that just completed.
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (stats->find("s4_candidates_evaluated_total") == std::string::npos ||
        stats->find("s4_searches_total") == std::string::npos) {
      std::fprintf(stderr, "stats dump is missing search counters:\n%s\n",
                   stats->c_str());
      return 1;
    }
    std::printf("stats dump: %zu bytes of Prometheus text\n", stats->size());

    // The trace for that request must come back as Chrome-trace JSON
    // with the spans the wire path is responsible for.
    auto trace_json = client.FetchTrace(request_id);
    if (!trace_json.ok()) {
      std::fprintf(stderr, "trace: %s\n",
                   trace_json.status().ToString().c_str());
      return 1;
    }
    if (trace_json->find("\"traceEvents\"") == std::string::npos ||
        trace_json->find("frame_decode") == std::string::npos ||
        trace_json->find("evaluate_candidate") == std::string::npos ||
        trace_json->find("cache_probe") == std::string::npos ||
        trace_json->find("enumerate") == std::string::npos) {
      std::fprintf(stderr, "trace JSON is missing expected spans:\n%s\n",
                   trace_json->c_str());
      return 1;
    }
    std::printf("trace JSON: %zu bytes, spans present\n",
                trace_json->size());

    // The slow-query log must hold the completed search (threshold 0 in
    // self-test mode) with the documented JSON shape.
    auto slow_json = client.FetchSlowLog();
    if (!slow_json.ok()) {
      std::fprintf(stderr, "slow log: %s\n",
                   slow_json.status().ToString().c_str());
      return 1;
    }
    if (slow_json->find("\"slow_log\":[") == std::string::npos ||
        slow_json->find("\"elapsed_ms\"") == std::string::npos ||
        slow_json->find("\"strategy\":\"fasttopk\"") == std::string::npos ||
        slow_json->find("\"profile\":{") == std::string::npos) {
      std::fprintf(stderr, "slow-log JSON has the wrong shape:\n%s\n",
                   slow_json->c_str());
      return 1;
    }
    std::printf("slow log: %zu bytes of JSON, shape ok\n",
                slow_json->size());

    // With --live, drive the write path over the wire: insert a movie
    // with a nonsense title, search for it, then clean it up.
    if (live) {
      const int64_t pk = 900000001;
      auto mut = client.Mutate(
          {Mutation::Insert("Movie",
                            {Value::Int(pk),
                             Value::Text("zelkova quasar tangerine"),
                             Value::Null()})});
      if (!mut.ok() || mut->applied != 1) {
        std::fprintf(stderr, "mutate: %s (applied=%lld)\n",
                     mut.ok() ? mut->error.c_str()
                              : mut.status().ToString().c_str(),
                     mut.ok() ? static_cast<long long>(mut->applied) : 0);
        return 1;
      }
      std::printf("wrote 1 row, now at epoch %llu\n",
                  static_cast<unsigned long long>(mut->epoch));
      auto found = client.Search(
          net::NetSearchRequest::From({{"zelkova quasar tangerine"}},
                                      options,
                                      S4System::Strategy::kFastTopK));
      if (!found.ok() || found->topk.empty()) {
        std::fprintf(stderr, "inserted row not searchable: %s\n",
                     found.ok() ? "(empty top-k)"
                                : found.status().ToString().c_str());
        return 1;
      }
      std::printf("inserted row found, best score=%.4f\n",
                  found->topk[0].score);
      auto del = client.Mutate({Mutation::Delete("Movie", pk)});
      if (!del.ok() || del->applied != 1) {
        std::fprintf(stderr, "delete failed\n");
        return 1;
      }
    } else {
      // Writes against an immutable deployment must be rejected with
      // the typed error, not a dropped connection.
      auto mut = client.Mutate({Mutation::Delete("Movie", 1)});
      if (mut.ok() ||
          mut.status().code() != StatusCode::kFailedPrecondition) {
        std::fprintf(stderr,
                     "expected FailedPrecondition for a write to an "
                     "immutable server\n");
        return 1;
      }
    }

    // An unknown id must answer NotFound without dropping the stream.
    auto missing = client.FetchTrace(request_id + 12345);
    if (missing.ok() ||
        missing.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "expected NotFound for an unknown trace id\n");
      return 1;
    }
    if (Status st = client.Ping(); !st.ok()) {
      std::fprintf(stderr, "ping after NotFound: %s\n",
                   st.ToString().c_str());
      return 1;
    }

    stats_server.Stop();
    server.Stop();
    const net::NetServerCounters& c = server.counters();
    std::printf("frames=%lld responses=%lld errors=%lld stats_reqs=%lld"
                " trace_reqs=%lld slow_log_reqs=%lld\n",
                static_cast<long long>(c.frames_received.load()),
                static_cast<long long>(c.responses_sent.load()),
                static_cast<long long>(c.errors_sent.load()),
                static_cast<long long>(c.stats_requests.load()),
                static_cast<long long>(c.trace_requests.load()),
                static_cast<long long>(c.slow_log_requests.load()));
    return result->topk.empty() ? 1 : 0;
  }

  std::printf("try: ./net_client --port %u \"<movie title>\" \"<actor>\"\n",
              server.port());
  std::printf("serving until stdin closes...\n");
  while (std::getchar() != EOF) {
  }
  stats_server.Stop();
  server.Stop();
  return 0;
}
