// Movie query discovery (the paper's user-study domain, Sec 6.3): the
// user half-remembers facts from the web — an actor, a genre, a studio —
// some of which may not be mappable at all. Demonstrates OR-column
// mapping (Appendix A.3) and the fuzzy n-gram index (Appendix A.2).
#include <cstdio>

#include "datagen/synthetic.h"
#include "s4/s4.h"

int main() {
  using namespace s4;

  auto db = datagen::MakeImdbSim();
  if (!db.ok()) return 1;

  // --- Word index + OR semantics --------------------------------------
  auto s4 = S4System::Create(*db);
  if (!s4.ok()) return 1;

  const Table* movie = db->FindTable("Movie");
  const Table* person = db->FindTable("Person");
  std::string some_title = movie->GetText(0, 1);
  std::string some_actor = person->GetText(3, 1);

  std::printf("Looking for: movie \"%s\", person \"%s\","
              " plus a column of gibberish the database cannot match.\n\n",
              some_title.c_str(), some_actor.c_str());

  auto sheet = (*s4)->MakeSpreadsheet(
      {{some_title, some_actor, "zzzunmatchable"}});
  if (!sheet.ok()) return 1;

  SearchOptions options;
  options.k = 3;
  SearchResult and_result = (*s4)->Search(*sheet, options);
  std::printf("AND semantics (every column must map): %zu results\n",
              and_result.topk.size());

  SearchResult or_result = (*s4)->SearchOr(*sheet, options);
  std::printf("OR semantics (columns may stay unmapped): %zu results\n",
              or_result.topk.size());
  if (!or_result.topk.empty()) {
    std::printf("\nBest OR query:\n%s\n",
                or_result.topk[0].query.ToSql((*s4)->db()).c_str());
  }

  // --- Fuzzy matching via the n-gram index -----------------------------
  IndexBuildOptions ngram_opts;
  ngram_opts.tokenizer.mode = TokenizerMode::kNGram;
  auto fuzzy = S4System::Create(*db, ngram_opts);
  if (!fuzzy.ok()) return 1;

  // Misspell the actor's name: word-level search would find nothing for
  // this cell, but shared character 3-grams still match.
  std::string typo;
  if (some_actor.size() > 3) {
    const size_t mid = some_actor.size() / 2;
    typo = some_actor.substr(0, mid) + "x" + some_actor.substr(mid);
  } else {
    typo = some_actor;
  }
  auto fuzzy_sheet = (*fuzzy)->MakeSpreadsheet({{typo}});
  if (!fuzzy_sheet.ok()) return 1;

  SearchOptions fuzzy_options;
  fuzzy_options.k = 3;
  SearchResult fuzzy_result = (*fuzzy)->Search(*fuzzy_sheet, fuzzy_options);
  std::printf(
      "\nFuzzy search for misspelled \"%s\" (n-gram index, App A.2):\n",
      typo.c_str());
  for (const ScoredQuery& sq : fuzzy_result.topk) {
    std::printf("  score=%.2f  %s\n", sq.score,
                sq.query.ToString((*fuzzy)->db()).c_str());
  }

  // Alternative A.2 mechanism: keep the word index but expand query
  // terms within edit distance 1 (union of posting lists).
  auto typo_sheet = (*s4)->MakeSpreadsheet({{typo}});
  if (typo_sheet.ok()) {
    SearchOptions spell_options;
    spell_options.k = 3;
    spell_options.score.spelling_edits = 1;
    SearchResult spell_result = (*s4)->Search(*typo_sheet, spell_options);
    std::printf("\nSame search via edit-distance term expansion:\n");
    for (const ScoredQuery& sq : spell_result.topk) {
      std::printf("  score=%.2f  %s\n", sq.score,
                  sq.query.ToString((*s4)->db()).c_str());
    }
  }
  return 0;
}
