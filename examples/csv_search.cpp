// Bring-your-own-data example: load a database from CSV files, declare
// foreign keys, and search it with an example spreadsheet — the path a
// downstream user takes to run S4 over their own exports.
//
// Usage:
//   csv_search                          # runs the built-in demo data
//   csv_search <dir> <schema.txt> A B  # load CSVs and search two cells
//
// <schema.txt> lines:
//   table <name> <csv-file> <pk-column>
//   fk <table>.<column> -> <table>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "s4/s4.h"
#include "storage/csv.h"
#include "storage/csv_database.h"

namespace {

using namespace s4;

// Tiny self-contained dataset so the example runs with no arguments.
const char* kAlbumsCsv =
    "AlbumId,Title,ArtistId\n"
    "1,Abbey Road,1\n"
    "2,Let It Be,1\n"
    "3,Kind of Blue,2\n"
    "4,A Love Supreme,3\n";
const char* kArtistsCsv =
    "ArtistId,Name,CountryId\n"
    "1,The Beatles,1\n"
    "2,Miles Davis,2\n"
    "3,John Coltrane,2\n";
const char* kCountriesCsv =
    "CountryId,Country\n"
    "1,England\n"
    "2,USA\n";

StatusOr<Database> BuildDemoDb() {
  Database db;
  struct Spec {
    const char* name;
    const char* csv;
    std::vector<std::pair<const char*, ColumnType>> cols;
  };
  const std::vector<Spec> specs{
      {"Album",
       kAlbumsCsv,
       {{"AlbumId", ColumnType::kInt64},
        {"Title", ColumnType::kText},
        {"ArtistId", ColumnType::kInt64}}},
      {"Artist",
       kArtistsCsv,
       {{"ArtistId", ColumnType::kInt64},
        {"Name", ColumnType::kText},
        {"CountryId", ColumnType::kInt64}}},
      {"Country",
       kCountriesCsv,
       {{"CountryId", ColumnType::kInt64},
        {"Country", ColumnType::kText}}},
  };
  for (const Spec& spec : specs) {
    auto t = db.AddTable(spec.name);
    if (!t.ok()) return t.status();
    for (const auto& [col, type] : spec.cols) {
      S4_RETURN_IF_ERROR((*t)->AddColumn(col, type).status());
    }
    S4_RETURN_IF_ERROR((*t)->SetPrimaryKey(0));
    S4_RETURN_IF_ERROR(LoadCsvInto(spec.csv, *t));
  }
  S4_RETURN_IF_ERROR(db.AddForeignKey("Album", "ArtistId", "Artist"));
  S4_RETURN_IF_ERROR(db.AddForeignKey("Artist", "CountryId", "Country"));
  S4_RETURN_IF_ERROR(db.Finalize());
  return db;
}


}  // namespace

int main(int argc, char** argv) {
  StatusOr<Database> db =
      argc >= 3 ? LoadCsvDatabaseFromFile(argv[1], argv[2]) : BuildDemoDb();
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  auto s4 = S4System::Create(*db);
  if (!s4.ok()) {
    std::fprintf(stderr, "%s\n", s4.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> cells;
  for (int i = 3; i < argc; ++i) cells.push_back(argv[i]);
  if (cells.empty()) cells = {"Beatles", "England"};

  std::printf("Searching %d relations for: ", db->NumTables());
  for (const std::string& c : cells) std::printf("[%s] ", c.c_str());
  std::printf("\n\n");

  SearchOptions options;
  options.k = 3;
  auto result = (*s4)->Search({cells}, options);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", (*s4)->FormatResults(*result).c_str());
  return 0;
}
