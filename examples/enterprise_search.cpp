// Enterprise query discovery over a synthetic customer-support warehouse
// (the paper's motivating scenario, Sec 1): an information worker
// remembers fragments of a few support tickets — a customer name, a
// product, an agent — and wants the project-join query that produces
// them, without knowing the 11-relation schema.
//
// Demonstrates:
//   * building indexes over a generated CSUPP-like database,
//   * error tolerance (one of the typed cells is wrong on purpose),
//   * the three strategies returning identical top-k with very
//     different amounts of work.
#include <cstdio>

#include "datagen/es_gen.h"
#include "datagen/synthetic.h"
#include "s4/s4.h"

int main() {
  using namespace s4;

  datagen::CsuppSimOptions gen_opts;
  gen_opts.scale = 1;
  auto db = datagen::MakeCsuppSim(gen_opts);
  if (!db.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  auto s4 = S4System::Create(*db);
  if (!s4.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 s4.status().ToString().c_str());
    return 1;
  }
  std::printf("Indexed a %d-relation support warehouse (%lld tickets).\n\n",
              db->NumTables(),
              static_cast<long long>(db->FindTable("Ticket")->NumRows()));

  // Pull a realistic example spreadsheet out of the warehouse itself:
  // three remembered (customer, ticket subject, product) combinations,
  // two of which contain a relationship error — values that exist but
  // belong to a different ticket (Sec 2.3's error model).
  datagen::EsGenerator gen((*s4)->index(), (*s4)->graph(), /*seed=*/7);
  if (Status st = gen.Init(/*min_text_columns=*/6, /*max_tree_size=*/4);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  datagen::EsGenOptions es_opts;
  es_opts.relationship_errors = 2;
  auto es = gen.Generate(es_opts);
  if (!es.ok()) {
    std::fprintf(stderr, "%s\n", es.status().ToString().c_str());
    return 1;
  }
  std::printf("What the user typed (2 cells are wrong on purpose):\n%s\n",
              es->sheet.ToString().c_str());

  SearchOptions options;
  options.k = 5;
  options.enumeration.max_tree_size = 4;

  SearchResult fast = (*s4)->Search(es->sheet, options);
  std::printf("%s", (*s4)->FormatResults(fast, /*max_sql=*/1).c_str());

  std::printf("\nSame answer, different work:\n");
  SearchResult naive =
      (*s4)->Search(es->sheet, options, S4System::Strategy::kNaive);
  SearchResult baseline =
      (*s4)->Search(es->sheet, options, S4System::Strategy::kBaseline);
  std::printf(
      "  NAIVE     evaluated %4lld queries in %6.1f ms\n"
      "  BASELINE  evaluated %4lld queries in %6.1f ms\n"
      "  FASTTOPK  evaluated %4lld queries in %6.1f ms"
      " (%lld cache hits, %lld critical sub-PJs)\n",
      static_cast<long long>(naive.stats.queries_evaluated),
      1e3 * (naive.stats.enum_seconds + naive.stats.eval_seconds),
      static_cast<long long>(baseline.stats.queries_evaluated),
      1e3 * (baseline.stats.enum_seconds + baseline.stats.eval_seconds),
      static_cast<long long>(fast.stats.queries_evaluated),
      1e3 * (fast.stats.enum_seconds + fast.stats.eval_seconds),
      static_cast<long long>(fast.stats.cache.hits),
      static_cast<long long>(fast.stats.critical_subs_cached));

  if (!fast.topk.empty() &&
      fast.topk[0].query.signature() == es->source_query.signature()) {
    std::printf("\nThe top result is exactly the query the spreadsheet was"
                " sampled from.\n");
  }
  return 0;
}
