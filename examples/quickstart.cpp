// Quickstart: reproduces the paper's running example (Figures 1-2).
//
// Builds the TPC-H subschema sample database of Figure 1, types the
// example spreadsheet of Figure 2(a) —
//     Rick  | USA    | Xbox
//     Julie |        | iPhone
//     Kevin | Canada |
// — and prints the top-k project-join queries S4 discovers, including
// the SQL for the winning query of Figure 2(b)-(i).
#include <cstdio>

#include "datagen/tpch_mini.h"
#include "s4/s4.h"

int main() {
  auto db = s4::datagen::MakeTpchMini();
  if (!db.ok()) {
    std::fprintf(stderr, "failed to build database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  auto system = s4::S4System::Create(*db);
  if (!system.ok()) {
    std::fprintf(stderr, "failed to build indexes: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  s4::IndexStats stats = (*system)->index_stats();
  std::printf("Indexed %d relations, %lld text columns, %lld tokens\n\n",
              db->NumTables(), static_cast<long long>(db->NumTextColumns()),
              static_cast<long long>(stats.num_tokens));

  s4::SearchOptions options;
  options.k = 5;

  auto result = (*system)->Search(
      {
          {"Rick", "USA", "Xbox"},
          {"Julie", "", "iPhone"},
          {"Kevin", "Canada", ""},
      },
      options);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", (*system)->FormatResults(*result).c_str());

  // Show the winning query's output relation with the example tuples
  // marked — the Figure 2(b) view.
  if (!result->topk.empty()) {
    auto sheet = (*system)->MakeSpreadsheet({
        {"Rick", "USA", "Xbox"},
        {"Julie", "", "iPhone"},
        {"Kevin", "Canada", ""},
    });
    auto preview = (*system)->Preview(result->topk[0].query, *sheet);
    if (preview.ok()) {
      std::printf("Output of the winning query (best match per example"
                  " tuple marked):\n%s", preview->ToString().c_str());
    }
  }
  return 0;
}
