// Service server: one long-lived S4Service shared by many concurrent
// "users" of the Figure-1 database — the deployment shape of a real S4
// installation (one index, many spreadsheets in flight).
//
// Demonstrates the full service surface:
//   * concurrent one-shot searches sharing the evaluation pool and the
//     cross-query sub-PJ cache (the second wave of identical requests
//     hits relations the first wave built);
//   * priorities and admission control (a burst beyond the queue bound
//     is rejected with ResourceExhausted, not buffered);
//   * deadlines and cancellation (a doomed request fails fast with
//     DeadlineExceeded and never corrupts shared state);
//   * an incremental session surviving across requests while the
//     one-shot traffic runs.
#include <cstdio>
#include <thread>
#include <vector>

#include "datagen/tpch_mini.h"
#include "service/s4_service.h"

int main() {
  using namespace s4;

  auto db = datagen::MakeTpchMini();
  if (!db.ok()) {
    std::fprintf(stderr, "failed to build database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  auto system = S4System::Create(*db);
  if (!system.ok()) {
    std::fprintf(stderr, "failed to build indexes: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.max_queue = 32;
  S4Service service(**system, sopts);

  const std::vector<std::vector<std::vector<std::string>>> sheets = {
      {{"Rick", "USA", "Xbox"}, {"Julie", "", "iPhone"}, {"Kevin", "Canada", ""}},
      {{"Rick", "USA"}, {"Kevin", "Canada"}},
      {{"Julie", "iPhone"}, {"Rick", "Xbox"}},
  };

  // --- many users, one service ----------------------------------------
  constexpr int kClients = 6;
  constexpr int kRounds = 2;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t s = 0; s < sheets.size(); ++s) {
          ServiceRequest req;
          req.cells = sheets[(s + static_cast<size_t>(c)) % sheets.size()];
          req.priority = c % 2;  // alternate users get priority
          if (service.Search(std::move(req)).ok()) ++ok_counts[c];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  int total_ok = 0;
  for (int n : ok_counts) total_ok += n;

  ServiceStats stats = service.stats();
  std::printf("served %d searches from %d concurrent clients\n", total_ok,
              kClients);
  std::printf("cross-query cache: %lld hits / %lld misses (%.0f%% hit rate)\n",
              static_cast<long long>(stats.shared_cache.hits),
              static_cast<long long>(stats.shared_cache.misses),
              100.0 * static_cast<double>(stats.shared_cache.hits) /
                  static_cast<double>(stats.shared_cache.hits +
                                      stats.shared_cache.misses));
  LatencyHistogram::Snapshot lat = service.latency();
  std::printf("latency: p50=%.2fms p95=%.2fms p99=%.2fms\n\n",
              1e3 * lat.PercentileSeconds(0.50),
              1e3 * lat.PercentileSeconds(0.95),
              1e3 * lat.PercentileSeconds(0.99));

  // --- deadlines fail fast, cleanly ------------------------------------
  ServiceRequest doomed;
  doomed.cells = sheets[0];
  doomed.deadline_seconds = 1e-9;
  auto missed = service.Search(std::move(doomed));
  std::printf("1ns-deadline request: %s\n",
              missed.status().ToString().c_str());

  // --- cancellation via the ticket -------------------------------------
  service.Pause();  // hold the queue so the cancel provably wins the race
  ServiceRequest abandoned;
  abandoned.cells = sheets[0];
  auto ticket = service.Submit(std::move(abandoned));
  if (ticket.ok()) {
    ticket->stop->Cancel();
    service.Resume();
    std::printf("cancelled request:    %s\n",
                ticket->result.get().status().ToString().c_str());
  }

  // --- an incremental session among the one-shot traffic ---------------
  auto session = service.OpenSession();
  if (session.ok()) {
    auto first = service.SessionSearch(*session, {{"Rick", "USA"}});
    auto second =
        service.SessionSearch(*session, {{"Rick", "USA"}, {"Kevin", "Canada"}});
    if (first.ok() && second.ok()) {
      std::printf("session: %zu then %zu results as the user kept typing\n",
                  first->topk.size(), second->topk.size());
    }
    (void)service.CloseSession(*session);
  }

  stats = service.stats();
  std::printf(
      "\nfinal counters: accepted=%lld completed=%lld deadline_misses=%lld"
      " cancelled=%lld rejected=%lld\n",
      static_cast<long long>(stats.accepted),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.deadline_misses),
      static_cast<long long>(stats.cancelled),
      static_cast<long long>(stats.rejected));
  return 0;
}
