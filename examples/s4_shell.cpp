// Interactive S4 shell: load or generate a database, type an example
// spreadsheet cell by cell, and watch the discovered queries update —
// the command-line equivalent of the paper's spreadsheet interface.
//
//   $ ./s4_shell
//   s4> load tpch
//   s4> set 0 0 Rick
//   s4> set 0 1 USA
//   s4> search
//   s4> sql 1
//   s4> preview 1
//   s4> explain 1
//
// Reads commands from stdin (scriptable: `echo ... | s4_shell`).
#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "datagen/tpch_mini.h"
#include "exec/explain.h"
#include "s4/s4.h"
#include "storage/serialize.h"

namespace {

using namespace s4;

constexpr const char* kHelp =
    "commands:\n"
    "  load tpch|csupp|advw|imdb   generate a sample database\n"
    "  open <file.s4db>            load a database snapshot\n"
    "  save <file.s4db>            save the current database\n"
    "  set <row> <col> <text...>   fill a spreadsheet cell\n"
    "  del <row> <col>             clear a cell\n"
    "  show                        print the spreadsheet\n"
    "  search [k]                  discover top-k PJ queries\n"
    "  sql <rank>                  SQL of a result\n"
    "  preview <rank>              output relation of a result\n"
    "  explain <rank>              execution plan of a result\n"
    "  stats                       database and index statistics\n"
    "  help | quit\n";

class Shell {
 public:
  int Run() {
    std::printf("S4 shell — type 'help' for commands.\n");
    std::string line;
    while (std::printf("s4> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
    std::printf("\n");
    return 0;
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf("%s", kHelp);
    } else if (cmd == "load") {
      std::string which;
      in >> which;
      Load(which);
    } else if (cmd == "open") {
      std::string path;
      in >> path;
      auto db = LoadDatabase(path);
      if (!db.ok()) {
        std::printf("error: %s\n", db.status().ToString().c_str());
      } else {
        Adopt(std::move(db).value(), "snapshot " + path);
      }
    } else if (cmd == "save") {
      std::string path;
      in >> path;
      if (!Ready()) return true;
      Status st = SaveDatabase(system_->db(), path);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else if (cmd == "set" || cmd == "del") {
      int row = -1, col = -1;
      in >> row >> col;
      std::string text;
      std::getline(in, text);
      while (!text.empty() && text.front() == ' ') text.erase(0, 1);
      if (row < 0 || col < 0 || row > 15 || col > 15) {
        std::printf("error: bad cell\n");
        return true;
      }
      if (static_cast<size_t>(row) >= cells_.size()) {
        cells_.resize(row + 1);
      }
      size_t width = 0;
      for (const auto& r : cells_) width = std::max(width, r.size());
      width = std::max(width, static_cast<size_t>(col + 1));
      for (auto& r : cells_) r.resize(width);
      cells_[row].resize(width);
      cells_[row][col] = cmd == "set" ? text : std::string();
      Show();
    } else if (cmd == "show") {
      Show();
    } else if (cmd == "search") {
      int k = 5;
      in >> k;
      Search(k);
    } else if (cmd == "sql" || cmd == "preview" || cmd == "explain") {
      size_t rank = 0;
      in >> rank;
      Inspect(cmd, rank);
    } else if (cmd == "stats") {
      Stats();
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
    return true;
  }

  bool Ready() {
    if (system_ == nullptr) {
      std::printf("error: no database loaded ('load tpch' to start)\n");
      return false;
    }
    return true;
  }

  void Adopt(Database db, const std::string& what) {
    db_ = std::move(db);
    auto system = S4System::Create(db_);
    if (!system.ok()) {
      std::printf("error: %s\n", system.status().ToString().c_str());
      return;
    }
    system_ = std::move(system).value();
    last_.reset();
    std::printf("loaded %s: %d relations, %lld text columns\n",
                what.c_str(), db_.NumTables(),
                static_cast<long long>(db_.NumTextColumns()));
  }

  void Load(const std::string& which) {
    StatusOr<Database> db = Status::InvalidArgument(
        "unknown dataset '" + which + "' (tpch|csupp|advw|imdb)");
    if (which == "tpch") db = datagen::MakeTpchMini();
    if (which == "csupp") db = datagen::MakeCsuppSim({});
    if (which == "advw") db = datagen::MakeAdvwSim({});
    if (which == "imdb") db = datagen::MakeImdbSim({});
    if (!db.ok()) {
      std::printf("error: %s\n", db.status().ToString().c_str());
      return;
    }
    Adopt(std::move(db).value(), which);
  }

  void Show() {
    if (cells_.empty()) {
      std::printf("(empty spreadsheet — use 'set <row> <col> <text>')\n");
      return;
    }
    for (const auto& row : cells_) {
      std::printf("  |");
      for (const auto& cell : row) std::printf(" %-12s |", cell.c_str());
      std::printf("\n");
    }
  }

  void Search(int k) {
    if (!Ready()) return;
    auto sheet = system_->MakeSpreadsheet(cells_);
    if (!sheet.ok() || !sheet->Validate().ok()) {
      std::printf("error: spreadsheet needs a term in every row/column\n");
      return;
    }
    sheet_ = std::move(sheet).value();
    SearchOptions options;
    options.k = k;
    last_ = system_->Search(*sheet_, options);
    std::printf("%s", system_->FormatResults(*last_, /*max_sql=*/0).c_str());
  }

  void Inspect(const std::string& cmd, size_t rank) {
    if (!Ready()) return;
    if (!last_.has_value() || rank < 1 || rank > last_->topk.size()) {
      std::printf("error: run 'search' first and pick 1..%zu\n",
                  last_.has_value() ? last_->topk.size() : 0);
      return;
    }
    const PJQuery& q = last_->topk[rank - 1].query;
    if (cmd == "sql") {
      std::printf("%s\n", q.ToSql(system_->db()).c_str());
    } else if (cmd == "preview") {
      auto out = system_->Preview(q, *sheet_);
      if (out.ok()) std::printf("%s", out->ToString().c_str());
    } else {
      ScoreContext ctx(system_->index(), *sheet_, ScoreParams{});
      std::printf("%s", ExplainPlan(q, ctx).c_str());
    }
  }

  void Stats() {
    if (!Ready()) return;
    IndexStats s = system_->index_stats();
    std::printf(
        "relations: %d, fk edges: %zu, tokens: %lld,\n"
        "inverted indexes: %.2f MiB, (key,fk) snapshot: %.2f MiB\n",
        db_.NumTables(), db_.foreign_keys().size(),
        static_cast<long long>(s.num_tokens),
        static_cast<double>(s.inverted_index_bytes) / (1 << 20),
        static_cast<double>(s.kfk_snapshot_bytes) / (1 << 20));
  }

  Database db_;
  std::unique_ptr<S4System> system_;
  std::vector<std::vector<std::string>> cells_;
  std::optional<ExampleSpreadsheet> sheet_;
  std::optional<SearchResult> last_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
