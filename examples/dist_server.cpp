// Distributed scatter-gather serving demo: boots N shard servers in one
// process — each an S4Service over the same movie database, owning one
// candidate-space slice — plus an S4Coordinator fanning searches out
// over them and merging the streamed partials (DESIGN.md "Distributed
// serving").
//
//   ./dist_server --shards 4            # serve until stdin closes
//   ./dist_server --self-test           # boot 3 shards, prove the
//                                       # merged top-k matches a
//                                       # single-node search, exit
//
// The self-test mode is what ctest runs: it crosses the whole dist
// stack (shard frames, per-shard services, partial streaming, merge,
// early stop) and cross-checks the coordinator's answer against an
// in-process S4System::Search over the same cells.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "dist/coordinator.h"
#include "net/server.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;

  int shards = 3;
  bool self_test = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    }
  }
  if (shards < 1 || shards > 64) {
    std::fprintf(stderr, "--shards must be in [1, 64]\n");
    return 1;
  }

  std::printf("building the movie database + indexes...\n");
  auto db = datagen::MakeImdbSim();
  if (!db.ok()) {
    std::fprintf(stderr, "dataset: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto system = S4System::Create(*db);
  if (!system.ok()) {
    std::fprintf(stderr, "indexes: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  // One service + server per shard, every one owning slice i of N. In a
  // real deployment these live on separate machines; the wiring is
  // identical because everything crosses real loopback sockets here.
  std::vector<std::unique_ptr<S4Service>> services;
  std::vector<std::unique_ptr<net::S4Server>> servers;
  dist::CoordinatorOptions copts;
  for (int i = 0; i < shards; ++i) {
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.max_queue = 32;
    sopts.shard_count = shards;
    sopts.shard_index = i;
    services.push_back(std::make_unique<S4Service>(**system, sopts));
    net::ServerOptions nopts;
    nopts.port = 0;  // kernel-assigned
    nopts.verbose = verbose;
    servers.push_back(
        std::make_unique<net::S4Server>(services.back().get(), nopts));
    if (Status st = servers.back()->Start(); !st.ok()) {
      std::fprintf(stderr, "shard %d: %s\n", i, st.ToString().c_str());
      return 1;
    }
    copts.shards.push_back({"127.0.0.1", servers.back()->port()});
    std::printf("shard %d/%d serving on 127.0.0.1:%u\n", i, shards,
                servers.back()->port());
  }
  copts.enable_tracing = self_test;
  dist::S4Coordinator coordinator(copts);

  // Borrow a movie title and an actor the database is known to hold.
  const Table* movie = db->FindTable("Movie");
  const Table* person = db->FindTable("Person");
  const std::string title = movie->GetText(0, 1);
  const std::string actor = person->GetText(3, 1);

  auto run_once = [&](int k) -> int {
    SearchOptions options;
    options.k = k;
    auto request = net::NetSearchRequest::From(
        {{title, actor}}, options, S4System::Strategy::kFastTopK);
    request.want_profile = self_test;
    auto dist_result = coordinator.Search(request);
    if (!dist_result.ok()) {
      std::fprintf(stderr, "dist search: %s\n",
                   dist_result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "merged %zu queries over %d shards in %.1f ms (complete=%s, "
        "partials=%lld, early_stops=%lld)\n",
        dist_result->topk.size(), shards, 1e3 * dist_result->wall_seconds,
        dist_result->complete ? "true" : "false",
        static_cast<long long>(dist_result->partials_received),
        static_cast<long long>(dist_result->early_stops_sent));
    if (!dist_result->topk.empty()) {
      std::printf("best: %s (score %.4f)\n",
                  dist_result->topk[0].sql.empty()
                      ? dist_result->topk[0].signature.c_str()
                      : dist_result->topk[0].sql.c_str(),
                  dist_result->topk[0].score);
    }
    if (!self_test) return 0;

    // Cross-check: the merged distributed answer must be bit-identical
    // (signatures AND scores) to one in-process search over the full
    // candidate space.
    auto local = (*system)->Search({{title, actor}}, options,
                                   S4System::Strategy::kFastTopK);
    if (!local.ok()) {
      std::fprintf(stderr, "local search: %s\n",
                   local.status().ToString().c_str());
      return 1;
    }
    if (local->topk.size() != dist_result->topk.size()) {
      std::fprintf(stderr, "size mismatch: local %zu vs dist %zu\n",
                   local->topk.size(), dist_result->topk.size());
      return 1;
    }
    for (size_t i = 0; i < local->topk.size(); ++i) {
      if (local->topk[i].query.signature() !=
              dist_result->topk[i].signature ||
          local->topk[i].score != dist_result->topk[i].score) {
        std::fprintf(stderr,
                     "rank %zu mismatch: local %s %.17g vs dist %s %.17g\n",
                     i, local->topk[i].query.signature().c_str(),
                     local->topk[i].score,
                     dist_result->topk[i].signature.c_str(),
                     dist_result->topk[i].score);
        return 1;
      }
    }
    std::printf("self-test: dist top-%d bit-identical to single-node\n", k);

    // Per-shard enumeration must cover the space exactly once.
    int64_t slices = 0;
    for (const auto& s : dist_result->shards) {
      slices += s.queries_enumerated;
    }
    if (slices != local->stats.queries_enumerated) {
      std::fprintf(stderr,
                   "slice sizes sum to %lld but single-node enumerated "
                   "%lld candidates\n",
                   static_cast<long long>(slices),
                   static_cast<long long>(local->stats.queries_enumerated));
      return 1;
    }
    std::printf("self-test: %d slices cover all %lld candidates\n", shards,
                static_cast<long long>(slices));
    // Cluster-wide profile: one ShardProfile row per shard, work
    // counters reconciling with the merged response counters.
    if (dist_result->profile.shards.size() !=
            static_cast<size_t>(shards) ||
        dist_result->profile.candidates_evaluated !=
            dist_result->queries_evaluated ||
        dist_result->profile.total_seconds <= 0.0) {
      std::fprintf(stderr,
                   "merged profile wrong: %zu shard rows, evaluated %lld "
                   "vs %lld\n",
                   dist_result->profile.shards.size(),
                   static_cast<long long>(
                       dist_result->profile.candidates_evaluated),
                   static_cast<long long>(dist_result->queries_evaluated));
      return 1;
    }
    std::printf("self-test: merged profile has %d shard rows\n", shards);

    // Stitched timeline: one trace holding the coordinator's own spans
    // plus every shard's segment as its own process (pid 2+i), all on
    // the coordinator's normalized clock.
    auto trace = coordinator.last_trace();
    if (trace == nullptr || !trace->HasSpan("merge") ||
        !trace->HasSpan("shard_exchange")) {
      std::fprintf(stderr, "coordinator trace is missing dist spans\n");
      return 1;
    }
    for (int i = 0; i < shards; ++i) {
      if (trace->NumSpansForPid(2 + static_cast<uint32_t>(i)) == 0) {
        std::fprintf(stderr,
                     "stitched trace has no spans for shard %d\n", i);
        return 1;
      }
    }
    const std::string stitched = trace->ToChromeJson();
    if (stitched.find("\"shard 0\"") == std::string::npos ||
        stitched.find("frame_decode") == std::string::npos ||
        stitched.find("\"ts\":-") != std::string::npos) {
      std::fprintf(stderr,
                   "stitched Chrome JSON is missing shard processes or "
                   "has unnormalized timestamps\n");
      return 1;
    }
    std::printf(
        "self-test: stitched trace has %zu spans across %d processes "
        "(%zu bytes of Chrome JSON)\n",
        trace->NumSpans(), shards + 1, stitched.size());
    return 0;
  };

  if (self_test) {
    const int rc = run_once(/*k=*/5);
    for (auto& server : servers) server->Stop();
    return rc;
  }

  if (run_once(/*k=*/3) != 0) return 1;
  std::printf("serving until stdin closes...\n");
  while (std::getchar() != EOF) {
  }
  for (auto& server : servers) server->Stop();
  return 0;
}
