// Live spreadsheet typing (Sec 5.4): the user fills the Figure 2(a)
// example spreadsheet one cell at a time, and S4 refreshes the top
// queries after every keystroke-commit, reusing the evaluation results
// of unchanged rows (FASTTOPK-INC).
#include <cstdio>

#include "datagen/tpch_mini.h"
#include "s4/s4.h"

int main() {
  using namespace s4;

  auto db = datagen::MakeTpchMini();
  if (!db.ok()) return 1;
  auto s4 = S4System::Create(*db);
  if (!s4.ok()) return 1;

  SearchOptions options;
  options.k = 3;
  SearchSession session = (*s4)->NewSession(options);

  const std::vector<std::vector<std::string>> full{
      {"Rick", "USA", "Xbox"},
      {"Julie", "", "iPhone"},
      {"Kevin", "Canada", ""},
  };

  std::vector<std::vector<std::string>> typed;
  for (size_t row = 0; row < full.size(); ++row) {
    typed.push_back({"", "", ""});
    for (size_t col = 0; col < full[row].size(); ++col) {
      if (full[row][col].empty()) continue;
      typed[row][col] = full[row][col];

      auto sheet = (*s4)->MakeSpreadsheet(typed);
      if (!sheet.ok() || !sheet->Validate().ok()) continue;

      SearchResult r = session.Search(*sheet);
      std::printf(
          "typed [%zu,%zu] = %-8s -> top query (%.2f, %lld row-evals): %s\n",
          row, col, full[row][col].c_str(),
          r.topk.empty() ? 0.0 : r.topk[0].score,
          static_cast<long long>(r.stats.query_row_evals),
          r.topk.empty()
              ? "(none)"
              : r.topk[0].query.ToString((*s4)->db()).c_str());
    }
  }

  std::printf("\nFinal winning query:\n");
  auto sheet = (*s4)->MakeSpreadsheet(typed);
  if (sheet.ok()) {
    SearchResult r = session.Search(*sheet);
    if (!r.topk.empty()) {
      std::printf("%s\n", r.topk[0].query.ToSql((*s4)->db()).c_str());
    }
  }
  return 0;
}
