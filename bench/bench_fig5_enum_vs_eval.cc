// Reproduces Figure 5: average running time of "query enumeration +
// upper-bound computation" vs. "query evaluation", per PJ query, for the
// low/medium/high term-frequency buckets.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;
  using datagen::EsBucket;

  JsonInit(argc, argv, "fig5_enum_vs_eval");
  PrintHeader("Figure 5: enumeration+upper-bound vs evaluation time",
              "per-PJ-query average microseconds on CSUPP-sim; NAIVE"
              " evaluates every candidate so both phases cover the same"
              " query set");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 24));
  Workload workload = MakeWorkload(*world, es_count);

  SearchOptions options;
  options.enumeration.max_tree_size = 4;

  TablePrinter tp({"bucket", "#ES", "enum+ub (us/query)",
                   "eval (us/query)", "enum share", "eval share"});
  for (EsBucket bucket :
       {EsBucket::kLow, EsBucket::kMedium, EsBucket::kHigh}) {
    double enum_us = 0.0, eval_us = 0.0;
    int64_t queries = 0;
    const std::vector<size_t> members = workload.InBucket(bucket);
    for (size_t i : members) {
      SearchResult r = SearchNaive(*world->index, *world->graph,
                                   workload.es[i].sheet, options);
      if (r.stats.queries_evaluated == 0) continue;
      enum_us += 1e6 * r.stats.enum_seconds;
      eval_us += 1e6 * r.stats.eval_seconds;
      queries += r.stats.queries_evaluated;
    }
    if (queries == 0) continue;
    const double e = enum_us / static_cast<double>(queries);
    const double v = eval_us / static_cast<double>(queries);
    tp.AddRow({datagen::EsBucketName(bucket),
               TablePrinter::Int(static_cast<long long>(members.size())),
               TablePrinter::Num(e, 2), TablePrinter::Num(v, 2),
               TablePrinter::Num(100.0 * e / (e + v), 2) + "%",
               TablePrinter::Num(100.0 * v / (e + v), 2) + "%"});
  }
  tp.Print();
  std::printf(
      "\npaper's shape: evaluation dominates (99%%+ for the high bucket);"
      " enumeration + upper bounds are a negligible fraction.\n");
  return 0;
}
