// Google-benchmark micro-benchmarks of the individual operators the
// cost model (Eq. 12) assumes to be constant-time: tokenization, posting
// scans (Algorithm 1), hash-join evaluation, sub-PJ cache operations,
// candidate enumeration and index building — plus a hand-rolled
// build/probe comparison of the flat-arena SubQueryTable against the
// legacy chained-hash layout it replaced.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_util.h"
#include "cache/subquery_cache.h"
#include "common/simd.h"
#include "common/timer.h"
#include "datagen/tpch_mini.h"
#include "enumerate/enumerator.h"
#include "exec/evaluator.h"

namespace {

using namespace s4;
using namespace s4::bench;

World& SharedWorld() {
  static World& world = *CsuppWorld(1).release();
  return world;
}

const datagen::GeneratedEs& SharedEs() {
  static const datagen::GeneratedEs& es = *[] {
    World& world = SharedWorld();
    datagen::EsGenerator gen(*world.index, *world.graph, 4242);
    Status st = gen.Init(6, 4);
    if (!st.ok()) abort();
    auto generated = gen.Generate();
    if (!generated.ok()) abort();
    return new datagen::GeneratedEs(std::move(generated).value());
  }();
  return es;
}

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tok;
  const std::string text =
      "Quarterly revenue dashboard for the Pacific Northwest region 2015";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_IndexBuildTpchMini(benchmark::State& state) {
  auto db = datagen::MakeTpchMini();
  if (!db.ok()) state.SkipWithError("db build failed");
  for (auto _ : state) {
    auto index = IndexSet::Build(*db);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuildTpchMini);

void BM_ScoreContextBuild(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  for (auto _ : state) {
    ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
    benchmark::DoNotOptimize(ctx);
  }
}
BENCHMARK(BM_ScoreContextBuild);

void BM_Enumerate(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateCandidates(*world.graph, ctx, opts));
  }
}
BENCHMARK(BM_Enumerate);

void BM_EvaluateQuery(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  EnumerationResult r = EnumerateCandidates(*world.graph, ctx, opts);
  if (r.candidates.empty()) state.SkipWithError("no candidates");
  // Use the biggest candidate (join-heavy).
  const CandidateQuery* heaviest = &r.candidates[0];
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() > heaviest->query.tree().size()) {
      heaviest = &c;
    }
  }
  Evaluator ev(ctx);
  for (auto _ : state) {
    EvalCounters counters;
    benchmark::DoNotOptimize(
        ev.RowScores(heaviest->query, nullptr, &counters));
  }
}
BENCHMARK(BM_EvaluateQuery);

void BM_EvaluateQueryWarmCache(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  EnumerationResult r = EnumerateCandidates(*world.graph, ctx, opts);
  if (r.candidates.empty()) state.SkipWithError("no candidates");
  const CandidateQuery* heaviest = &r.candidates[0];
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() > heaviest->query.tree().size()) {
      heaviest = &c;
    }
  }
  Evaluator ev(ctx);
  SubQueryCache cache(64u << 20);
  EvalCounters counters;
  EvalOptions eopts;
  eopts.offer_to_cache = true;
  ev.RowScores(heaviest->query, &cache, &counters, eopts);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ev.RowScores(heaviest->query, &cache, &counters, eopts));
  }
}
BENCHMARK(BM_EvaluateQueryWarmCache);

void BM_CacheAddGet(benchmark::State& state) {
  SubQueryCache cache(64u << 20);
  auto table = std::make_shared<SubQueryTable>();
  table->num_es_rows = 3;
  bool fresh = false;
  for (int i = 0; i < 1000; ++i) {
    double* row = table->UpsertScored(i, &fresh);
    row[0] = 1.0;
    row[1] = 2.0;
    row[2] = 3.0;
  }
  int i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i++ % 64);
    cache.Add(key, table);
    benchmark::DoNotOptimize(cache.Get(key));
  }
}
BENCHMARK(BM_CacheAddGet);

void BM_FullSearchFastTopK(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  SearchOptions options;
  options.enumeration.max_tree_size = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SearchFastTopK(*world.index, *world.graph, es.sheet, options));
  }
}
BENCHMARK(BM_FullSearchFastTopK);

// --- flat-arena vs legacy SubQueryTable layout ------------------------

// The pre-flat SubQueryTable layout, kept here as the comparison
// reference: chained unordered_map with one heap-allocated vector per
// scored key plus a separate zero-key set, with its original ByteSize
// accounting.
struct LegacyTable {
  int32_t num_es_rows = 0;
  std::unordered_map<int64_t, std::vector<double>> scored;
  std::unordered_set<int64_t> zero;

  const std::vector<double>* Find(int64_t key, bool* exists) const {
    auto it = scored.find(key);
    if (it != scored.end()) {
      *exists = true;
      return &it->second;
    }
    *exists = zero.count(key) > 0;
    return nullptr;
  }

  size_t ByteSize() const {
    constexpr size_t kNodeOverhead = 2 * sizeof(void*);
    size_t bytes = sizeof(LegacyTable);
    bytes += scored.bucket_count() * sizeof(void*);
    bytes += scored.size() *
             (kNodeOverhead + sizeof(int64_t) + sizeof(std::vector<double>) +
              sizeof(double) * static_cast<size_t>(num_es_rows));
    bytes += zero.bucket_count() * sizeof(void*);
    bytes += zero.size() * (kNodeOverhead + sizeof(int64_t));
    return bytes;
  }
};

// Build + probe microbenchmark over one (num_es_rows, hit-density)
// configuration. Keys are spread over a 4x-wider space so probes mix
// hits and misses at the requested density, like a join probe stream.
void RunFlatVsLegacyConfig(int32_t num_es_rows, double density,
                           int64_t num_keys, int64_t num_probes,
                           TablePrinter* tp) {
  const int64_t key_space = num_keys * 4;
  std::vector<int64_t> keys(static_cast<size_t>(num_keys));
  uint64_t state = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(num_es_rows);
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int64_t i = 0; i < num_keys; ++i) {
    keys[i] = static_cast<int64_t>(next() % static_cast<uint64_t>(key_space));
  }
  // Probe stream: `density` of the probes target stored keys.
  std::vector<int64_t> probes(static_cast<size_t>(num_probes));
  for (int64_t i = 0; i < num_probes; ++i) {
    if (static_cast<double>(next() % 1000) < density * 1000.0) {
      probes[i] = keys[next() % static_cast<uint64_t>(num_keys)];
    } else {
      probes[i] = key_space + static_cast<int64_t>(
                                  next() % static_cast<uint64_t>(key_space));
    }
  }

  // Build both layouts: every 8th key joins with all-zero scores.
  WallTimer flat_build_timer;
  SubQueryTable flat;
  flat.num_es_rows = num_es_rows;
  bool fresh = false;
  for (int64_t i = 0; i < num_keys; ++i) {
    if ((i & 7) == 0) {
      flat.InsertZero(keys[i]);
    } else {
      double* row = flat.UpsertScored(keys[i], &fresh);
      row[static_cast<size_t>(i) % num_es_rows] += 1.0;
    }
  }
  flat.ShrinkToFit();
  const double flat_build_ns =
      flat_build_timer.ElapsedSeconds() * 1e9 / static_cast<double>(num_keys);

  WallTimer legacy_build_timer;
  LegacyTable legacy;
  legacy.num_es_rows = num_es_rows;
  for (int64_t i = 0; i < num_keys; ++i) {
    if ((i & 7) == 0) {
      if (legacy.scored.find(keys[i]) == legacy.scored.end()) {
        legacy.zero.insert(keys[i]);
      }
    } else {
      auto [it, inserted] = legacy.scored.try_emplace(keys[i]);
      if (inserted) {
        it->second.assign(num_es_rows, 0.0);
        legacy.zero.erase(keys[i]);
      }
      it->second[static_cast<size_t>(i) % num_es_rows] += 1.0;
    }
  }
  const double legacy_build_ns = legacy_build_timer.ElapsedSeconds() * 1e9 /
                                 static_cast<double>(num_keys);

  // Probe both layouts, accumulating a checksum the optimizer cannot
  // drop; assert the layouts agree while at it.
  double flat_sum = 0.0;
  int64_t flat_hits = 0;
  WallTimer flat_probe_timer;
  for (int64_t p : probes) {
    bool exists = false;
    const double* row = flat.Find(p, &exists);
    flat_hits += exists ? 1 : 0;
    if (row != nullptr) flat_sum += row[0];
  }
  const double flat_probe_ns = flat_probe_timer.ElapsedSeconds() * 1e9 /
                               static_cast<double>(num_probes);

  // The batched probe loop the Stage-II evaluator runs: FindBatch hashes
  // a chunk up front, prefetches every key's slot lines, then resolves,
  // so the misses overlap instead of serializing.
  double batch_sum = 0.0;
  int64_t batch_hits = 0;
  constexpr size_t kChunk = 1024;
  std::vector<const double*> batch_rows(kChunk);
  std::vector<char> batch_exists(kChunk);
  WallTimer batch_probe_timer;
  for (size_t lo = 0; lo < probes.size(); lo += kChunk) {
    const size_t m = std::min(kChunk, probes.size() - lo);
    flat.FindBatch(probes.data() + lo, m, batch_rows.data(),
                   reinterpret_cast<bool*>(batch_exists.data()));
    for (size_t j = 0; j < m; ++j) {
      batch_hits += batch_exists[j] ? 1 : 0;
      if (batch_rows[j] != nullptr) batch_sum += batch_rows[j][0];
    }
  }
  const double batch_probe_ns = batch_probe_timer.ElapsedSeconds() * 1e9 /
                                static_cast<double>(num_probes);
  if (batch_hits != flat_hits || batch_sum != flat_sum) {
    std::fprintf(stderr, "FindBatch mismatch: batch %lld/%f find %lld/%f\n",
                 static_cast<long long>(batch_hits), batch_sum,
                 static_cast<long long>(flat_hits), flat_sum);
    std::abort();
  }

  double legacy_sum = 0.0;
  int64_t legacy_hits = 0;
  WallTimer legacy_probe_timer;
  for (int64_t p : probes) {
    bool exists = false;
    const std::vector<double>* row = legacy.Find(p, &exists);
    legacy_hits += exists ? 1 : 0;
    if (row != nullptr) legacy_sum += (*row)[0];
  }
  const double legacy_probe_ns = legacy_probe_timer.ElapsedSeconds() * 1e9 /
                                 static_cast<double>(num_probes);

  if (flat_hits != legacy_hits || flat_sum != legacy_sum) {
    std::fprintf(stderr, "layout mismatch: flat %lld/%f legacy %lld/%f\n",
                 static_cast<long long>(flat_hits), flat_sum,
                 static_cast<long long>(legacy_hits), legacy_sum);
    std::abort();
  }

  const double flat_bpk =
      static_cast<double>(flat.ByteSize()) / static_cast<double>(flat.NumKeys());
  const double legacy_bpk =
      static_cast<double>(legacy.ByteSize()) /
      static_cast<double>(legacy.scored.size() + legacy.zero.size());
  tp->AddRow({std::to_string(num_es_rows), TablePrinter::Num(density, 2),
              TablePrinter::Num(flat_probe_ns, 1),
              TablePrinter::Num(batch_probe_ns, 1),
              TablePrinter::Num(legacy_probe_ns, 1),
              TablePrinter::Num(legacy_probe_ns / flat_probe_ns, 2) + "x",
              TablePrinter::Num(legacy_probe_ns / batch_probe_ns, 2) + "x",
              TablePrinter::Num(flat_build_ns, 1),
              TablePrinter::Num(legacy_build_ns, 1),
              TablePrinter::Num(flat_bpk, 1), TablePrinter::Num(legacy_bpk, 1),
              TablePrinter::Num(100.0 * (1.0 - flat_bpk / legacy_bpk), 1) +
                  "%"});
  const std::string section = "es_rows=" + std::to_string(num_es_rows) +
                              "/density=" + TablePrinter::Num(density, 2);
  JsonMetric(section, "flat_probe_ns", flat_probe_ns);
  JsonMetric(section, "batch_probe_ns", batch_probe_ns);
  JsonMetric(section, "legacy_probe_ns", legacy_probe_ns);
  JsonMetric(section, "probe_speedup", legacy_probe_ns / flat_probe_ns);
  JsonMetric(section, "batch_probe_speedup",
             legacy_probe_ns / batch_probe_ns);
  JsonMetric(section, "flat_build_ns", flat_build_ns);
  JsonMetric(section, "legacy_build_ns", legacy_build_ns);
  JsonMetric(section, "flat_bytes_per_key", flat_bpk);
  JsonMetric(section, "legacy_bytes_per_key", legacy_bpk);
}

void RunFlatVsLegacy(bool smoke) {
  const int64_t num_keys = EnvInt("S4_BENCH_FLAT_KEYS", smoke ? 20000 : 50000);
  const int64_t num_probes =
      EnvInt("S4_BENCH_FLAT_PROBES", smoke ? 200000 : 2000000);
  std::printf(
      "Flat-arena SubQueryTable vs legacy chained-hash layout"
      " (%lld keys, %lld probes per config, simd=%s)\n",
      static_cast<long long>(num_keys), static_cast<long long>(num_probes),
      simd::BackendName());
  TablePrinter tp({"es_rows", "hit density", "flat ns/probe",
                   "batch ns/probe", "legacy ns/probe", "probe speedup",
                   "batch speedup", "flat ns/build", "legacy ns/build",
                   "flat B/key", "legacy B/key", "B/key saved"});
  for (int32_t es_rows : {1, 5, 20}) {
    for (double density : {0.1, 0.5, 0.9}) {
      RunFlatVsLegacyConfig(es_rows, density, num_keys, num_probes, &tp);
    }
  }
  tp.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int remaining = s4::bench::JsonInit(argc, argv, "micro_operators");
  bool smoke = false;
  for (int i = 1; i < remaining; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  s4::bench::JsonMetric("config", "smoke", smoke ? 1.0 : 0.0);
  RunFlatVsLegacy(smoke);
  if (smoke) return 0;  // CI gate: skip the google-benchmark section.
  int bench_argc = remaining;
  benchmark::Initialize(&bench_argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
