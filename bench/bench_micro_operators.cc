// Google-benchmark micro-benchmarks of the individual operators the
// cost model (Eq. 12) assumes to be constant-time: tokenization, posting
// scans (Algorithm 1), hash-join evaluation, sub-PJ cache operations,
// candidate enumeration and index building.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cache/subquery_cache.h"
#include "datagen/tpch_mini.h"
#include "enumerate/enumerator.h"
#include "exec/evaluator.h"

namespace {

using namespace s4;
using namespace s4::bench;

World& SharedWorld() {
  static World& world = *CsuppWorld(1).release();
  return world;
}

const datagen::GeneratedEs& SharedEs() {
  static const datagen::GeneratedEs& es = *[] {
    World& world = SharedWorld();
    datagen::EsGenerator gen(*world.index, *world.graph, 4242);
    Status st = gen.Init(6, 4);
    if (!st.ok()) abort();
    auto generated = gen.Generate();
    if (!generated.ok()) abort();
    return new datagen::GeneratedEs(std::move(generated).value());
  }();
  return es;
}

void BM_Tokenize(benchmark::State& state) {
  Tokenizer tok;
  const std::string text =
      "Quarterly revenue dashboard for the Pacific Northwest region 2015";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_IndexBuildTpchMini(benchmark::State& state) {
  auto db = datagen::MakeTpchMini();
  if (!db.ok()) state.SkipWithError("db build failed");
  for (auto _ : state) {
    auto index = IndexSet::Build(*db);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuildTpchMini);

void BM_ScoreContextBuild(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  for (auto _ : state) {
    ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
    benchmark::DoNotOptimize(ctx);
  }
}
BENCHMARK(BM_ScoreContextBuild);

void BM_Enumerate(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateCandidates(*world.graph, ctx, opts));
  }
}
BENCHMARK(BM_Enumerate);

void BM_EvaluateQuery(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  EnumerationResult r = EnumerateCandidates(*world.graph, ctx, opts);
  if (r.candidates.empty()) state.SkipWithError("no candidates");
  // Use the biggest candidate (join-heavy).
  const CandidateQuery* heaviest = &r.candidates[0];
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() > heaviest->query.tree().size()) {
      heaviest = &c;
    }
  }
  Evaluator ev(ctx);
  for (auto _ : state) {
    EvalCounters counters;
    benchmark::DoNotOptimize(
        ev.RowScores(heaviest->query, nullptr, &counters));
  }
}
BENCHMARK(BM_EvaluateQuery);

void BM_EvaluateQueryWarmCache(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  ScoreContext ctx(*world.index, es.sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  EnumerationResult r = EnumerateCandidates(*world.graph, ctx, opts);
  if (r.candidates.empty()) state.SkipWithError("no candidates");
  const CandidateQuery* heaviest = &r.candidates[0];
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() > heaviest->query.tree().size()) {
      heaviest = &c;
    }
  }
  Evaluator ev(ctx);
  SubQueryCache cache(64u << 20);
  EvalCounters counters;
  EvalOptions eopts;
  eopts.offer_to_cache = true;
  ev.RowScores(heaviest->query, &cache, &counters, eopts);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ev.RowScores(heaviest->query, &cache, &counters, eopts));
  }
}
BENCHMARK(BM_EvaluateQueryWarmCache);

void BM_CacheAddGet(benchmark::State& state) {
  SubQueryCache cache(64u << 20);
  auto table = std::make_shared<SubQueryTable>();
  table->num_es_rows = 3;
  for (int i = 0; i < 1000; ++i) {
    table->scored.emplace(i, std::vector<double>{1.0, 2.0, 3.0});
  }
  int i = 0;
  for (auto _ : state) {
    std::string key = "key" + std::to_string(i++ % 64);
    cache.Add(key, table);
    benchmark::DoNotOptimize(cache.Get(key));
  }
}
BENCHMARK(BM_CacheAddGet);

void BM_FullSearchFastTopK(benchmark::State& state) {
  World& world = SharedWorld();
  const datagen::GeneratedEs& es = SharedEs();
  SearchOptions options;
  options.enumeration.max_tree_size = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SearchFastTopK(*world.index, *world.graph, es.sheet, options));
  }
}
BENCHMARK(BM_FullSearchFastTopK);

}  // namespace

BENCHMARK_MAIN();
