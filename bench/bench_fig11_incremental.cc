// Reproduces Figure 11: incremental input. Starting from a completely
// filled first row, cells of the remaining rows are typed one at a time
// (row-wise, left to right); at each [row, col] step the three
// incremental approaches are timed: FASTTOPK-INC, BASELINE-INC, and
// FASTTOPK-NINC (full restart).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "strategy/incremental.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "fig11_incremental");
  PrintHeader("Figure 11: incremental input (Sec 5.4 / App A.1)",
              "CSUPP-sim 3x3 spreadsheets; 6 cell additions after the"
              " first row, averaged over the workload");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 12));
  Workload workload = MakeWorkload(*world, es_count);

  SearchOptions options;
  options.enumeration.max_tree_size = 4;

  constexpr int kSteps = 6;  // cells [1,0..2] and [2,0..2]
  struct StepAgg {
    double seconds = 0.0;
    int64_t row_evals = 0;
    int64_t runs = 0;
  };
  const IncrementalMode modes[3] = {IncrementalMode::kFastTopKInc,
                                    IncrementalMode::kBaselineInc,
                                    IncrementalMode::kFastTopKNInc};
  StepAgg agg[3][kSteps];

  for (const datagen::GeneratedEs& es : workload.es) {
    for (int m = 0; m < 3; ++m) {
      SearchSession session(*world->index, *world->graph, options);
      // Type the first row completely, then warm the session on it.
      std::vector<std::vector<std::string>> cells{
          {es.sheet.cell(0, 0).raw, es.sheet.cell(0, 1).raw,
           es.sheet.cell(0, 2).raw}};
      auto first =
          ExampleSpreadsheet::FromCells(cells, world->index->tokenizer());
      if (!first.ok() || !first->Validate().ok()) continue;
      session.Search(*first, modes[m]);

      int step = 0;
      for (int32_t row = 1; row < es.sheet.NumRows(); ++row) {
        cells.push_back({"", "", ""});
        for (int32_t col = 0; col < es.sheet.NumColumns(); ++col) {
          cells[row][col] = es.sheet.cell(row, col).raw;
          auto sheet = ExampleSpreadsheet::FromCells(
              cells, world->index->tokenizer());
          if (!sheet.ok() || !sheet->Validate().ok()) {
            ++step;
            continue;
          }
          SearchResult r = session.Search(*sheet, modes[m]);
          agg[m][step].seconds +=
              r.stats.enum_seconds + r.stats.eval_seconds;
          agg[m][step].row_evals += r.stats.query_row_evals;
          ++agg[m][step].runs;
          ++step;
        }
      }
    }
  }

  TablePrinter tp({"[row,col]", "FastTopK-Inc (ms)", "Baseline-Inc (ms)",
                   "FastTopK-NInc (ms)", "row-evals Inc",
                   "row-evals NInc"});
  for (int step = 0; step < kSteps; ++step) {
    const int32_t row = 1 + step / 3;
    const int32_t col = step % 3;
    std::vector<std::string> line{
        s4::StrFormat("[%d,%d]", row, col)};
    for (int m = 0; m < 3; ++m) {
      const StepAgg& a = agg[m][step];
      line.push_back(TablePrinter::Num(
          a.runs == 0 ? 0.0 : 1e3 * a.seconds / a.runs, 3));
    }
    line.push_back(TablePrinter::Num(
        agg[0][step].runs == 0
            ? 0.0
            : static_cast<double>(agg[0][step].row_evals) /
                  static_cast<double>(agg[0][step].runs),
        1));
    line.push_back(TablePrinter::Num(
        agg[2][step].runs == 0
            ? 0.0
            : static_cast<double>(agg[2][step].row_evals) /
                  static_cast<double>(agg[2][step].runs),
        1));
    tp.AddRow(std::move(line));
  }
  tp.Print();
  std::printf(
      "\npaper's shape: FASTTOPK-INC clearly beats both BASELINE-INC"
      " (no sharing) and FASTTOPK-NINC (re-evaluates unchanged rows),"
      " especially on the first cells of a new row.\n");
  return 0;
}
