// Load generator for the concurrent service layer: N client threads
// issue blocking searches against one S4Service over one database, all
// rounds replaying the same ES workload so later requests can reuse
// sub-PJ relations another request already built (the cross-query
// cache). Reports QPS, p50/p95/p99/p99.9/max end-to-end latency,
// deadline-miss rate, and the cross-query cache hit rate.
//
// Two modes, sharing RunLoadGen with bench_net_throughput:
//   * closed loop (default): each client issues as fast as responses
//     return, so offered load self-throttles to capacity;
//   * open loop (S4_BENCH_ARRIVAL_QPS > 0): Poisson arrivals at a fixed
//     aggregate rate, latency measured from the scheduled arrival so
//     queueing delay shows in the tail (no coordinated omission).
//
// Knobs (environment): S4_BENCH_CLIENTS (8), S4_BENCH_ROUNDS (3),
// S4_BENCH_ES_COUNT (10), S4_BENCH_CSUPP_SCALE (1), S4_BENCH_WORKERS
// (= clients), S4_BENCH_EVAL_THREADS (0 = hardware),
// S4_BENCH_ARRIVAL_QPS (0 = closed loop).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "service_throughput");

  const int32_t clients =
      static_cast<int32_t>(EnvInt("S4_BENCH_CLIENTS", 8));
  const int32_t rounds = static_cast<int32_t>(EnvInt("S4_BENCH_ROUNDS", 3));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 10));
  const double arrival_qps =
      static_cast<double>(EnvInt("S4_BENCH_ARRIVAL_QPS", 0));
  const bool open_loop = arrival_qps > 0.0;

  PrintHeader("Service throughput: concurrent clients, one S4Service",
              open_loop ? "CSUPP-sim; open loop (Poisson arrivals), "
                          "repeated workload"
                        : "CSUPP-sim; closed loop, repeated workload");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 1)));
  Workload workload = MakeWorkload(*world, es_count);

  auto system = S4System::Create(world->db);
  if (!system.ok()) {
    std::fprintf(stderr, "S4System::Create failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  // Raw cells per ES, as a client would submit them.
  std::vector<std::vector<std::vector<std::string>>> requests;
  for (const datagen::GeneratedEs& es : workload.es) {
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(es.sheet.NumRows()));
    for (int32_t r = 0; r < es.sheet.NumRows(); ++r) {
      for (int32_t c = 0; c < es.sheet.NumColumns(); ++c) {
        cells[static_cast<size_t>(r)].push_back(es.sheet.cell(r, c).raw);
      }
    }
    requests.push_back(std::move(cells));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  ServiceOptions sopts;
  sopts.num_workers =
      static_cast<int32_t>(EnvInt("S4_BENCH_WORKERS", clients));
  sopts.eval_threads =
      static_cast<int32_t>(EnvInt("S4_BENCH_EVAL_THREADS", 0));
  sopts.max_queue = static_cast<size_t>(4 * clients);
  sopts.shared_cache_bytes = 64u << 20;
  S4Service service(**system, sopts);

  SearchOptions search_options;
  search_options.enumeration.max_tree_size = 4;

  LoadGenOptions gen;
  gen.clients = clients;
  gen.requests_per_client =
      rounds * static_cast<int32_t>(requests.size());
  gen.arrival_rate_qps = arrival_qps;
  const LoadGenResult run = RunLoadGen(gen, [&](int32_t c, int32_t i) {
    // Clients start at staggered offsets so distinct spreadsheets are in
    // flight together, like distinct users would be.
    ServiceRequest req;
    req.cells = requests[(static_cast<size_t>(i) + static_cast<size_t>(c)) %
                         requests.size()];
    req.options = search_options;
    return service.Search(std::move(req)).status();
  });
  const LatencyHistogram::Snapshot lat = service.latency();

  // Deadline probe: a handful of requests with a deadline no search can
  // meet, exercising the miss path (expired-while-queued or stopped at a
  // batch boundary) against the warm shared cache.
  int64_t probe_misses = 0;
  for (int32_t t = 0; t < clients; ++t) {
    ServiceRequest req;
    req.cells = requests[static_cast<size_t>(t) % requests.size()];
    req.options = search_options;
    req.deadline_seconds = 1e-6;
    auto result = service.Search(std::move(req));
    if (!result.ok() &&
        result.status().code() == StatusCode::kDeadlineExceeded) {
      ++probe_misses;
    }
  }

  const ServiceStats stats = service.stats();
  const int64_t total = run.ok + run.errors;
  const int64_t shared_lookups =
      stats.shared_cache.hits + stats.shared_cache.misses;
  const double hit_rate =
      shared_lookups > 0
          ? static_cast<double>(stats.shared_cache.hits) /
                static_cast<double>(shared_lookups)
          : 0.0;
  const double miss_rate =
      stats.accepted > 0 ? static_cast<double>(stats.deadline_misses) /
                               static_cast<double>(stats.accepted)
                         : 0.0;

  TablePrinter tp({"metric", "value"});
  tp.AddRow({"mode", open_loop ? "open loop" : "closed loop"});
  tp.AddRow({"clients", TablePrinter::Int(clients)});
  if (open_loop) {
    tp.AddRow({"arrival rate (QPS)", TablePrinter::Num(arrival_qps, 1)});
  }
  tp.AddRow({"requests", TablePrinter::Int(static_cast<long long>(total))});
  tp.AddRow({"errors", TablePrinter::Int(static_cast<long long>(run.errors))});
  tp.AddRow({"elapsed (s)", TablePrinter::Num(run.elapsed_seconds, 3)});
  tp.AddRow({"QPS", TablePrinter::Num(run.Qps(), 1)});
  tp.AddRow({"p50 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.50), 3)});
  tp.AddRow({"p95 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.95), 3)});
  tp.AddRow({"p99 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.99), 3)});
  tp.AddRow({"p99.9 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.999), 3)});
  tp.AddRow({"max (ms)", TablePrinter::Num(1e3 * run.latency.max_seconds, 3)});
  tp.AddRow({"mean (ms)", TablePrinter::Num(1e3 * run.latency.MeanSeconds(), 3)});
  tp.AddRow({"deadline misses",
             TablePrinter::Int(static_cast<long long>(stats.deadline_misses))});
  tp.AddRow({"deadline-miss rate", TablePrinter::Num(miss_rate, 4)});
  tp.AddRow({"cross-query hits",
             TablePrinter::Int(static_cast<long long>(stats.shared_cache.hits))});
  tp.AddRow({"cross-query hit rate", TablePrinter::Num(hit_rate, 4)});
  tp.AddRow({"shared cache peak (KiB)",
             TablePrinter::Int(static_cast<long long>(
                 stats.shared_cache.peak_bytes >> 10))});
  tp.Print();

  JsonMetric("service", "open_loop", open_loop ? 1.0 : 0.0);
  JsonMetric("service", "clients", static_cast<double>(clients));
  JsonMetric("service", "rounds", static_cast<double>(rounds));
  JsonMetric("service", "arrival_rate_qps", arrival_qps);
  JsonMetric("service", "es_count", static_cast<double>(requests.size()));
  JsonMetric("service", "requests", static_cast<double>(total));
  JsonMetric("service", "errors", static_cast<double>(run.errors));
  JsonMetric("service", "elapsed_s", run.elapsed_seconds);
  JsonMetric("service", "qps", run.Qps());
  // Client-observed latency (includes open-loop schedule slip) ...
  JsonLatency("service", run.latency);
  // ... and the service's own admission-to-completion view.
  JsonLatency("service_internal", lat);
  JsonMetric("service", "accepted", static_cast<double>(stats.accepted));
  JsonMetric("service", "rejected", static_cast<double>(stats.rejected));
  JsonMetric("service", "deadline_misses",
             static_cast<double>(stats.deadline_misses));
  JsonMetric("service", "deadline_miss_rate", miss_rate);
  JsonMetric("service", "deadline_probe_misses",
             static_cast<double>(probe_misses));
  JsonMetric("service", "cross_query_cache_hits",
             static_cast<double>(stats.shared_cache.hits));
  JsonMetric("service", "cross_query_cache_misses",
             static_cast<double>(stats.shared_cache.misses));
  JsonMetric("service", "cross_query_hit_rate", hit_rate);
  JsonMetric("service", "shared_cache_evictions",
             static_cast<double>(stats.shared_cache.evictions));
  JsonMetric("service", "shared_cache_peak_bytes",
             static_cast<double>(stats.shared_cache.peak_bytes));
  // Full registry snapshot (additive; the names above are unchanged).
  JsonMetricsSnapshot("registry", obs::MetricsRegistry::Global().Snapshot());

  std::printf(
      "\nexpected shape: hit rate grows with rounds (every spreadsheet"
      " after its first visit reuses shared sub-PJ relations); p99 stays"
      " bounded because admission control rejects rather than buffers."
      " Open loop additionally exposes queueing delay: past saturation"
      " the tail grows with offered rate instead of QPS.\n");
  return run.errors == 0 ? 0 : 1;
}
