// Reproduces Exp-I: Figure 6 (average execution time of NAIVE vs
// BASELINE vs FASTTOPK, split into enumeration+upper-bound and
// evaluation, per term-frequency bucket) and Figure 7 (number of PJ
// query-row evaluations per strategy and bucket).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/thread_pool.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;
  using datagen::EsBucket;

  JsonInit(argc, argv, "fig6_fig7_strategies");
  PrintHeader("Figures 6-7: strategy comparison (Exp-I)",
              "CSUPP-sim, Table-2 defaults: k=10, alpha=0.8, eps=0.6,"
              " 2 relationship errors");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 24));
  Workload workload = MakeWorkload(*world, es_count);

  SearchOptions options;
  options.enumeration.max_tree_size = 4;

  struct Cell {
    Agg agg;
  };
  const char* strategy_names[3] = {"Naive", "Baseline", "FastTopK"};
  Cell cells[3][3];

  for (size_t i = 0; i < workload.es.size(); ++i) {
    const int b = static_cast<int>(workload.buckets[i]);
    PreparedSearch prep(*world->index, *world->graph, workload.es[i].sheet,
                        options);
    cells[0][b].agg.Add(RunNaive(prep, options).stats);
    cells[1][b].agg.Add(RunBaseline(prep, options).stats);
    cells[2][b].agg.Add(RunFastTopK(prep, options).stats);
  }

  std::printf("Figure 6: average execution time (ms)\n");
  TablePrinter t6({"bucket", "strategy", "enum+ub (ms)", "eval (ms)",
                   "total (ms)", "speedup vs naive"});
  for (int b = 0; b < 3; ++b) {
    const double naive_total = cells[0][b].agg.AvgTotalMs();
    for (int s = 0; s < 3; ++s) {
      const Agg& a = cells[s][b].agg;
      if (a.runs == 0) continue;
      t6.AddRow({datagen::EsBucketName(static_cast<EsBucket>(b)),
                 strategy_names[s], TablePrinter::Num(a.AvgEnumMs(), 3),
                 TablePrinter::Num(a.AvgEvalMs(), 3),
                 TablePrinter::Num(a.AvgTotalMs(), 3),
                 TablePrinter::Num(naive_total / a.AvgTotalMs(), 2) + "x"});
      JsonAgg(std::string("bucket=") +
                  datagen::EsBucketName(static_cast<EsBucket>(b)) +
                  "/strategy=" + strategy_names[s],
              a);
    }
  }
  t6.Print();

  std::printf(
      "\nFigure 7: PJ query-row evaluations (avg per ES; NAIVE has no"
      " upper-bound pruning)\n");
  TablePrinter t7({"bucket", "Naive", "Baseline", "FastTopK",
                   "enumerated"});
  for (int b = 0; b < 3; ++b) {
    if (cells[0][b].agg.runs == 0) continue;
    t7.AddRow({datagen::EsBucketName(static_cast<EsBucket>(b)),
               TablePrinter::Num(cells[0][b].agg.AvgRowEvals(), 1),
               TablePrinter::Num(cells[1][b].agg.AvgRowEvals(), 1),
               TablePrinter::Num(cells[2][b].agg.AvgRowEvals(), 1),
               TablePrinter::Num(
                   static_cast<double>(cells[0][b].agg.queries_enumerated) /
                       static_cast<double>(cells[0][b].agg.runs),
                   1)});
  }
  t7.Print();
  std::printf(
      "\npaper's shape: FASTTOPK beats NAIVE by ~5-11x and BASELINE by"
      " ~1.5-5x; BASELINE/FASTTOPK evaluate far fewer queries than"
      " NAIVE.\n");

  // Thread-count sweep over the Stage-II evaluation path: FASTTOPK on
  // the whole workload at 1/2/4/8 evaluation threads. The top-k score
  // checksum must be identical at every thread count (Thm 3 preserved
  // by the batch-boundary merge); the speedup column is only meaningful
  // on a machine with that many hardware threads.
  const int32_t max_threads =
      static_cast<int32_t>(EnvInt("S4_BENCH_THREADS_MAX", 8));
  std::printf("\nThread sweep: FASTTOPK evaluation (whole workload)\n");
  TablePrinter tt({"threads", "eval (ms)", "speedup vs 1T",
                   "topk score checksum"});
  double serial_eval_ms = 0.0;
  for (int32_t threads = 1; threads <= max_threads; threads *= 2) {
    SearchOptions topt = options;
    topt.num_threads = threads;
    double eval_ms = 0.0;
    double checksum = 0.0;
    for (size_t i = 0; i < workload.es.size(); ++i) {
      PreparedSearch prep(*world->index, *world->graph,
                          workload.es[i].sheet, topt);
      SearchResult r = RunFastTopK(prep, topt);
      eval_ms += r.stats.eval_seconds * 1e3;
      for (const ScoredQuery& sq : r.topk) checksum += sq.score;
    }
    if (threads == 1) serial_eval_ms = eval_ms;
    tt.AddRow({std::to_string(threads), TablePrinter::Num(eval_ms, 3),
               TablePrinter::Num(serial_eval_ms / eval_ms, 2) + "x",
               TablePrinter::Num(checksum, 6)});
    const std::string section =
        "thread_sweep/threads=" + std::to_string(threads);
    JsonMetric(section, "eval_ms", eval_ms);
    JsonMetric(section, "topk_score_checksum", checksum);
  }
  tt.Print();

  // Process-wide counters the strategies published while the tables
  // above ran — additive fields, per-section metrics unchanged.
  JsonMetricsSnapshot("registry", obs::MetricsRegistry::Global().Snapshot());

  std::printf(
      "\nhardware threads on this machine: %d (speedups flatten beyond"
      " that)\n",
      ThreadPool::DefaultThreads());
  return 0;
}
