#include "bench/bench_util.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "common/timer.h"

namespace s4::bench {

namespace {

struct JsonRecord {
  std::string section;
  std::string name;
  double value;
};

struct JsonState {
  std::string path;
  std::string bench_name;
  std::vector<JsonRecord> records;
  bool written = false;
};

JsonState& State() {
  static JsonState* state = new JsonState();
  return *state;
}

// Escapes the characters JSON strings cannot hold verbatim; the metric
// labels are ASCII identifiers, so this only has to be correct, not fast.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

int JsonInit(int argc, char** argv, const std::string& bench_name) {
  JsonState& state = State();
  state.bench_name = bench_name;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      state.path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      state.path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  if (!state.path.empty()) std::atexit(JsonWrite);
  return out;
}

bool JsonEnabled() { return !State().path.empty(); }

void JsonMetric(const std::string& section, const std::string& name,
                double value) {
  if (!JsonEnabled()) return;
  State().records.push_back(JsonRecord{section, name, value});
}

void JsonAgg(const std::string& section, const Agg& agg) {
  JsonMetric(section, "runs", static_cast<double>(agg.runs));
  JsonMetric(section, "total_ms", agg.AvgTotalMs());
  JsonMetric(section, "enum_ms", agg.AvgEnumMs());
  JsonMetric(section, "eval_ms", agg.AvgEvalMs());
  JsonMetric(section, "queries_evaluated", agg.AvgEvaluated());
  JsonMetric(section, "query_row_evals", agg.AvgRowEvals());
  JsonCacheStats(section, agg.CacheTotals());
}

void JsonLatency(const std::string& section,
                 const LatencyHistogram::Snapshot& snapshot) {
  JsonMetric(section, "latency_samples", static_cast<double>(snapshot.total));
  JsonMetric(section, "p50_ms", 1e3 * snapshot.PercentileSeconds(0.50));
  JsonMetric(section, "p95_ms", 1e3 * snapshot.PercentileSeconds(0.95));
  JsonMetric(section, "p99_ms", 1e3 * snapshot.PercentileSeconds(0.99));
  JsonMetric(section, "p999_ms", 1e3 * snapshot.PercentileSeconds(0.999));
  JsonMetric(section, "max_ms", 1e3 * snapshot.max_seconds);
  JsonMetric(section, "mean_ms", 1e3 * snapshot.MeanSeconds());
}

void JsonCacheStats(const std::string& section, const CacheStats& stats) {
  JsonMetric(section, "cache_hits", static_cast<double>(stats.hits));
  JsonMetric(section, "cache_misses", static_cast<double>(stats.misses));
  JsonMetric(section, "cache_insertions",
             static_cast<double>(stats.insertions));
  JsonMetric(section, "cache_evictions",
             static_cast<double>(stats.evictions));
  JsonMetric(section, "cache_peak_bytes",
             static_cast<double>(stats.peak_bytes));
}

void JsonMetricsSnapshot(const std::string& section,
                         const obs::MetricsSnapshot& snapshot) {
  for (const obs::MetricsSnapshot::Entry& e : snapshot.entries) {
    if (e.kind == obs::MetricsSnapshot::Kind::kHistogram) {
      JsonMetric(section, e.name + "_count",
                 static_cast<double>(e.histogram.total));
      JsonMetric(section, e.name + "_sum_seconds", e.histogram.sum_seconds);
      JsonMetric(section, e.name + "_max_seconds", e.histogram.max_seconds);
      JsonMetric(section, e.name + "_p50_seconds",
                 e.histogram.PercentileSeconds(0.5));
      JsonMetric(section, e.name + "_p99_seconds",
                 e.histogram.PercentileSeconds(0.99));
    } else {
      JsonMetric(section, e.name, static_cast<double>(e.value));
    }
  }
}

void JsonWrite() {
  JsonState& state = State();
  if (state.path.empty() || state.written) return;
  std::FILE* f = std::fopen(state.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write --json file %s\n",
                 state.path.c_str());
    return;
  }
  state.written = true;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": [",
               JsonEscape(state.bench_name).c_str());
  for (size_t i = 0; i < state.records.size(); ++i) {
    const JsonRecord& r = state.records[i];
    std::fprintf(f, "%s\n    {\"section\": \"%s\", \"name\": \"%s\", \"value\": %.17g}",
                 i == 0 ? "" : ",", JsonEscape(r.section).c_str(),
                 JsonEscape(r.name).c_str(), r.value);
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("json metrics written to %s (%zu records)\n",
              state.path.c_str(), state.records.size());
}

std::unique_ptr<World> MakeWorld(StatusOr<Database> db) {
  if (!db.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  auto w = std::make_unique<World>();
  w->db = std::move(db).value();
  WallTimer timer;
  auto index = IndexSet::Build(w->db);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  w->index = std::move(index).value();
  w->index_build_seconds = timer.ElapsedSeconds();
  w->graph = std::make_unique<SchemaGraph>(w->db);
  return w;
}

std::unique_ptr<World> CsuppWorld(int32_t scale, uint64_t seed) {
  datagen::CsuppSimOptions opts;
  opts.seed = seed;
  opts.scale = scale;
  return MakeWorld(datagen::MakeCsuppSim(opts));
}

std::unique_ptr<World> AdvwWorld(int32_t dim_scale, int32_t fact_scale) {
  datagen::AdvwSimOptions opts;
  opts.dim_scale = dim_scale;
  opts.fact_scale = fact_scale;
  return MakeWorld(datagen::MakeAdvwSim(opts));
}

std::unique_ptr<World> ImdbWorld() {
  return MakeWorld(datagen::MakeImdbSim({}));
}

std::vector<size_t> Workload::InBucket(datagen::EsBucket bucket) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == bucket) out.push_back(i);
  }
  return out;
}

Workload MakeWorkload(const World& world, int32_t count,
                      const datagen::EsGenOptions& options, uint64_t seed,
                      int32_t min_text_columns, int32_t max_tree_size) {
  datagen::EsGenerator gen(*world.index, *world.graph, seed);
  Status st = gen.Init(min_text_columns, max_tree_size);
  if (!st.ok()) {
    std::fprintf(stderr, "ES generator init failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  auto many = gen.GenerateMany(count, options);
  if (!many.ok()) {
    std::fprintf(stderr, "ES generation failed: %s\n",
                 many.status().ToString().c_str());
    std::exit(1);
  }
  Workload w;
  w.es = std::move(many).value();
  w.buckets = datagen::EsGenerator::AssignBuckets(w.es);
  return w;
}

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::atoll(v);
}

LoadGenResult RunLoadGen(
    const LoadGenOptions& options,
    const std::function<Status(int32_t client, int32_t seq)>& issue) {
  const int32_t clients = options.clients < 1 ? 1 : options.clients;
  const int32_t per_client =
      options.requests_per_client < 0 ? 0 : options.requests_per_client;
  const bool open_loop = options.arrival_rate_qps > 0.0;
  // Deterministic per-client Poisson schedule, precomputed before any
  // thread starts so the arrival process is independent of service time.
  std::vector<std::vector<double>> schedule(static_cast<size_t>(clients));
  if (open_loop) {
    const double per_client_rate =
        options.arrival_rate_qps / static_cast<double>(clients);
    for (int32_t c = 0; c < clients; ++c) {
      Rng rng(options.seed + static_cast<uint64_t>(c) * 0x9e3779b9ULL);
      double t = 0.0;
      auto& s = schedule[static_cast<size_t>(c)];
      s.reserve(static_cast<size_t>(per_client));
      for (int32_t i = 0; i < per_client; ++i) {
        // Exponential interarrival; 1 - U keeps log() away from 0.
        t += -std::log(1.0 - rng.NextDouble()) / per_client_rate;
        s.push_back(t);
      }
    }
  }

  LatencyHistogram latency;
  std::atomic<int64_t> ok{0}, errors{0};
  WallTimer timer;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int32_t i = 0; i < per_client; ++i) {
        std::chrono::steady_clock::time_point issued_from;
        if (open_loop) {
          const auto scheduled =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              schedule[static_cast<size_t>(c)]
                                      [static_cast<size_t>(i)]));
          std::this_thread::sleep_until(scheduled);
          // Latency anchors at the *scheduled* arrival: if the previous
          // request overran its slot, the slip counts against us.
          issued_from = scheduled;
        } else {
          issued_from = std::chrono::steady_clock::now();
        }
        const Status st = issue(c, i);
        latency.Record(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - issued_from)
                           .count());
        if (st.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadGenResult result;
  result.ok = ok.load();
  result.errors = errors.load();
  result.elapsed_seconds = timer.ElapsedSeconds();
  result.latency = latency.snapshot();
  return result;
}

void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("=== %s ===\n%s\n", title.c_str(), what.c_str());
  std::printf(
      "note: synthetic stand-ins for the paper's datasets (see DESIGN.md);"
      " absolute numbers differ from the paper's testbed, trends are the"
      " target.\n\n");
}

}  // namespace s4::bench
