#include "bench/bench_util.h"

#include <cstdio>

#include "common/timer.h"

namespace s4::bench {

std::unique_ptr<World> MakeWorld(StatusOr<Database> db) {
  if (!db.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  auto w = std::make_unique<World>();
  w->db = std::move(db).value();
  WallTimer timer;
  auto index = IndexSet::Build(w->db);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    std::exit(1);
  }
  w->index = std::move(index).value();
  w->index_build_seconds = timer.ElapsedSeconds();
  w->graph = std::make_unique<SchemaGraph>(w->db);
  return w;
}

std::unique_ptr<World> CsuppWorld(int32_t scale, uint64_t seed) {
  datagen::CsuppSimOptions opts;
  opts.seed = seed;
  opts.scale = scale;
  return MakeWorld(datagen::MakeCsuppSim(opts));
}

std::unique_ptr<World> AdvwWorld(int32_t dim_scale, int32_t fact_scale) {
  datagen::AdvwSimOptions opts;
  opts.dim_scale = dim_scale;
  opts.fact_scale = fact_scale;
  return MakeWorld(datagen::MakeAdvwSim(opts));
}

std::unique_ptr<World> ImdbWorld() {
  return MakeWorld(datagen::MakeImdbSim({}));
}

std::vector<size_t> Workload::InBucket(datagen::EsBucket bucket) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == bucket) out.push_back(i);
  }
  return out;
}

Workload MakeWorkload(const World& world, int32_t count,
                      const datagen::EsGenOptions& options, uint64_t seed,
                      int32_t min_text_columns, int32_t max_tree_size) {
  datagen::EsGenerator gen(*world.index, *world.graph, seed);
  Status st = gen.Init(min_text_columns, max_tree_size);
  if (!st.ok()) {
    std::fprintf(stderr, "ES generator init failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  auto many = gen.GenerateMany(count, options);
  if (!many.ok()) {
    std::fprintf(stderr, "ES generation failed: %s\n",
                 many.status().ToString().c_str());
    std::exit(1);
  }
  Workload w;
  w.es = std::move(many).value();
  w.buckets = datagen::EsGenerator::AssignBuckets(w.es);
  return w;
}

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::atoll(v);
}

void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("=== %s ===\n%s\n", title.c_str(), what.c_str());
  std::printf(
      "note: synthetic stand-ins for the paper's datasets (see DESIGN.md);"
      " absolute numbers differ from the paper's testbed, trends are the"
      " target.\n\n");
}

}  // namespace s4::bench
