// Anytime approximate search quality/latency tradeoff: sweeps the
// relative slack (approx_epsilon) and the per-candidate sample budget
// over the Exp-I workload (CSUPP-sim, the Figure 6/7 setup) and reports,
// per configuration, the p50 end-to-end latency, the speedup over the
// exact FASTTOPK run, recall@k against the exact top-k, and the worst
// rank displacement of any hit both runs returned.
//
// `--smoke` runs a reduced workload and enforces the epsilon = 0
// contract — the machinery off, recall exactly 1.0, scores bitwise
// identical to the exact run — exiting non-zero on any violation, so CI
// can gate on it.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "exec/evaluator.h"
#include "score/score_model.h"

namespace {

using namespace s4;
using namespace s4::bench;

struct QualityAgg {
  std::vector<double> latencies_ms;  // one per ES
  double recall_sum = 0.0;
  double tie_recall_sum = 0.0;
  int64_t recall_runs = 0;
  int64_t max_displacement = 0;
  int64_t approx_sampled = 0;
  int64_t approx_skipped = 0;
  int64_t approx_escalated = 0;
  int64_t approx_samples = 0;
  int64_t queries_evaluated = 0;
  double eval_seconds = 0.0;

  double P50Ms() {
    if (latencies_ms.empty()) return 0.0;
    std::sort(latencies_ms.begin(), latencies_ms.end());
    return latencies_ms[latencies_ms.size() / 2];
  }
  double Recall() const {
    return recall_runs == 0 ? 1.0
                            : recall_sum / static_cast<double>(recall_runs);
  }
  double TieRecall() const {
    return recall_runs == 0
               ? 1.0
               : tie_recall_sum / static_cast<double>(recall_runs);
  }
};

// True score of a returned hit, recomputed through the exact evaluator
// (a sampling-resolved entry carries its interval lower bound as
// `score`, and an entry outside the exact top-k has no reference row).
double TrueScore(const ScoreContext& ctx, double alpha,
                 const ScoredQuery& sq) {
  Evaluator ev(ctx);
  EvalCounters counters;
  double row_score = 0.0;
  for (double s : ev.RowScores(sq.query, nullptr, &counters)) row_score += s;
  return CombineScore(row_score, sq.column_score, alpha,
                      sq.query.tree().size());
}

// Recall@k and rank displacement of `got` against the exact `ref`. Two
// recall flavors: signature recall (strict set intersection) and
// tie-aware recall (a returned entry counts when its true score matches
// or beats the exact k-th score). The workload's scores are quantized —
// integer term matches scaled by the size penalty — so the k-th
// boundary usually sits inside a large tie class; signature recall
// punishes picking a different member of that class even though the
// answers are equivalent, which is exactly what tie-aware recall
// corrects for.
void ScoreAgainstExact(const ScoreContext& ctx, double alpha,
                       const std::vector<ScoredQuery>& ref,
                       const std::vector<ScoredQuery>& got, QualityAgg* agg) {
  if (ref.empty()) return;
  std::unordered_map<std::string, int64_t> ref_rank;
  for (size_t i = 0; i < ref.size(); ++i) {
    ref_rank.emplace(ref[i].query.signature(), static_cast<int64_t>(i));
  }
  const double kth = ref.back().score;
  int64_t hits = 0;
  int64_t tie_hits = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    auto it = ref_rank.find(got[i].query.signature());
    if (it != ref_rank.end()) {
      ++hits;
      const int64_t displacement =
          std::abs(static_cast<int64_t>(i) - it->second);
      agg->max_displacement = std::max(agg->max_displacement, displacement);
      if (ref[static_cast<size_t>(it->second)].score >= kth - 1e-9) {
        ++tie_hits;
      }
    } else if (TrueScore(ctx, alpha, got[i]) >= kth - 1e-9) {
      ++tie_hits;
    }
  }
  agg->recall_sum +=
      static_cast<double>(hits) / static_cast<double>(ref.size());
  agg->tie_recall_sum +=
      static_cast<double>(tie_hits) / static_cast<double>(ref.size());
  ++agg->recall_runs;
}

}  // namespace

int main(int argc, char** argv) {
  argc = JsonInit(argc, argv, "approx_quality");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  PrintHeader("Approximate search: quality vs latency",
              smoke ? "CSUPP-sim (smoke scale); epsilon=0 bit-identity gate"
                    : "CSUPP-sim, k=10, epsilon x sample-budget sweep vs"
                      " exact FASTTOPK");

  std::unique_ptr<World> world = CsuppWorld(static_cast<int32_t>(
      EnvInt("S4_BENCH_CSUPP_SCALE", smoke ? 1 : 2)));
  const int32_t es_count = static_cast<int32_t>(
      EnvInt("S4_BENCH_ES_COUNT", smoke ? 6 : 24));
  Workload workload = MakeWorkload(*world, es_count);

  SearchOptions base;
  base.k = 10;
  base.enumeration.max_tree_size = 4;

  // Per-ES latency is the minimum over a few repetitions: the runs are
  // deterministic, so the spread between reps is scheduler/cache noise,
  // and the minimum is the least contaminated observation.
  const int64_t reps = EnvInt("S4_BENCH_REPS", smoke ? 1 : 3);

  // Exact reference: FASTTOPK with the approximate machinery off.
  std::vector<SearchResult> exact(workload.es.size());
  QualityAgg exact_agg;
  for (size_t i = 0; i < workload.es.size(); ++i) {
    double best_ms = 0.0;
    for (int64_t rep = 0; rep < reps; ++rep) {
      WallTimer timer;
      PreparedSearch prep(*world->index, *world->graph, workload.es[i].sheet,
                          base);
      SearchResult r = RunFastTopK(prep, base);
      const double ms = 1e3 * timer.ElapsedSeconds();
      if (rep == 0) {
        best_ms = ms;
        exact_agg.queries_evaluated += r.stats.queries_evaluated;
        exact_agg.eval_seconds += r.stats.eval_seconds;
        exact[i] = std::move(r);
      } else {
        best_ms = std::min(best_ms, ms);
      }
    }
    exact_agg.latencies_ms.push_back(best_ms);
  }
  const double exact_p50 = exact_agg.P50Ms();
  JsonMetric("exact", "p50_ms", exact_p50);
  JsonMetric("exact", "queries_evaluated",
             static_cast<double>(exact_agg.queries_evaluated));
  JsonMetric("exact", "eval_ms_total", 1e3 * exact_agg.eval_seconds);

  struct Config {
    double epsilon;
    int64_t budget;
  };
  std::vector<Config> configs;
  if (smoke) {
    // The gate: epsilon = 0 with aggressive values in the other knobs
    // must leave the run untouched. One relaxed config rides along to
    // exercise the sampling path end to end.
    configs = {{0.0, 3}, {0.05, 4096}};
  } else {
    for (double eps : {0.0, 0.02, 0.05, 0.1}) {
      for (int64_t budget : {int64_t{512}, int64_t{4096}}) {
        if (eps == 0.0 && budget != int64_t{4096}) continue;
        configs.push_back({eps, budget});
      }
    }
  }

  bool smoke_ok = true;
  TablePrinter table({"epsilon", "budget", "p50 (ms)", "speedup vs exact",
                      "recall@k", "tie recall@k", "max rank displ",
                      "sampled", "skipped", "escalated"});
  for (const Config& cfg : configs) {
    SearchOptions options = base;
    options.approx_epsilon = cfg.epsilon;
    options.approx_confidence = 0.95;
    options.sample_budget = cfg.budget;
    if (cfg.epsilon == 0.0) {
      // Prove the knobs are inert when the slack is zero.
      options.approx_confidence = 0.31;
      options.rng_seed = 0xDEADBEEFull;
    }

    QualityAgg agg;
    for (size_t i = 0; i < workload.es.size(); ++i) {
      double best_ms = 0.0;
      SearchResult r;
      std::unique_ptr<PreparedSearch> prep;
      for (int64_t rep = 0; rep < reps; ++rep) {
        WallTimer timer;
        prep = std::make_unique<PreparedSearch>(
            *world->index, *world->graph, workload.es[i].sheet, options);
        SearchResult rr = RunFastTopK(*prep, options);
        const double ms = 1e3 * timer.ElapsedSeconds();
        if (rep == 0) {
          best_ms = ms;
          r = std::move(rr);
        } else {
          best_ms = std::min(best_ms, ms);
        }
      }
      agg.latencies_ms.push_back(best_ms);
      agg.approx_sampled += r.stats.approx_sampled;
      agg.approx_skipped += r.stats.approx_skipped;
      agg.approx_escalated += r.stats.approx_escalated;
      agg.approx_samples += r.stats.approx_samples;
      agg.queries_evaluated += r.stats.queries_evaluated;
      agg.eval_seconds += r.stats.eval_seconds;
      ScoreAgainstExact(prep->ctx, options.score.alpha, exact[i].topk,
                        r.topk, &agg);
      if (std::getenv("S4_BENCH_APPROX_DIAG") != nullptr &&
          cfg.epsilon == 0.05 && cfg.budget == 4096) {
        std::unordered_map<std::string, double> got_sigs;
        for (const ScoredQuery& sq : r.topk) {
          got_sigs.emplace(sq.query.signature(), sq.score);
        }
        const double kth = exact[i].topk.empty()
                               ? 0.0
                               : exact[i].topk.back().score;
        for (size_t j = 0; j < exact[i].topk.size(); ++j) {
          const ScoredQuery& e = exact[i].topk[j];
          if (got_sigs.count(e.query.signature()) == 0) {
            std::printf("MISS es=%zu rank=%zu score=%.6f kth=%.6f"
                        " ratio=%.4f\n",
                        i, j, e.score, kth, e.score / kth);
          }
        }
      }

      if (smoke && cfg.epsilon == 0.0) {
        if (r.approximate || r.topk.size() != exact[i].topk.size()) {
          smoke_ok = false;
        } else {
          for (size_t j = 0; j < r.topk.size(); ++j) {
            // Bitwise equality on purpose: epsilon = 0 must be the
            // exact code path, not merely close to it.
            if (r.topk[j].score != exact[i].topk[j].score ||
                r.topk[j].query.signature() !=
                    exact[i].topk[j].query.signature()) {
              smoke_ok = false;
            }
          }
        }
      }
    }

    const double p50 = agg.P50Ms();
    table.AddRow({TablePrinter::Num(cfg.epsilon, 2),
                  std::to_string(cfg.budget), TablePrinter::Num(p50, 3),
                  TablePrinter::Num(p50 > 0.0 ? exact_p50 / p50 : 0.0, 2) +
                      "x",
                  TablePrinter::Num(agg.Recall(), 3),
                  TablePrinter::Num(agg.TieRecall(), 3),
                  std::to_string(agg.max_displacement),
                  std::to_string(agg.approx_sampled),
                  std::to_string(agg.approx_skipped),
                  std::to_string(agg.approx_escalated)});

    const std::string section =
        "eps=" + TablePrinter::Num(cfg.epsilon, 2) +
        "/budget=" + std::to_string(cfg.budget);
    JsonMetric(section, "p50_ms", p50);
    JsonMetric(section, "speedup_vs_exact",
               p50 > 0.0 ? exact_p50 / p50 : 0.0);
    JsonMetric(section, "recall_at_k", agg.Recall());
    JsonMetric(section, "tie_recall_at_k", agg.TieRecall());
    JsonMetric(section, "max_rank_displacement",
               static_cast<double>(agg.max_displacement));
    JsonMetric(section, "approx_sampled",
               static_cast<double>(agg.approx_sampled));
    JsonMetric(section, "approx_skipped",
               static_cast<double>(agg.approx_skipped));
    JsonMetric(section, "approx_escalated",
               static_cast<double>(agg.approx_escalated));
    JsonMetric(section, "approx_samples",
               static_cast<double>(agg.approx_samples));
    JsonMetric(section, "queries_evaluated",
               static_cast<double>(agg.queries_evaluated));
    JsonMetric(section, "eval_ms_total", 1e3 * agg.eval_seconds);

    if (smoke && cfg.epsilon == 0.0 && agg.Recall() != 1.0) {
      smoke_ok = false;
    }
  }
  table.Print();
  std::printf(
      "\nexact FASTTOPK p50: %.3f ms; expected shape: higher epsilon /"
      " lower budget trade recall for latency, epsilon=0 is bit-exact.\n",
      exact_p50);

  JsonMetricsSnapshot("registry", obs::MetricsRegistry::Global().Snapshot());

  if (smoke) {
    if (!smoke_ok) {
      std::printf("\nSMOKE FAIL: epsilon=0 run diverged from the exact"
                  " run\n");
      return 1;
    }
    std::printf("\nSMOKE PASS: epsilon=0 bit-identical, recall@k = 1.0\n");
  }
  return 0;
}
