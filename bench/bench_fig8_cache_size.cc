// Reproduces Exp-II / Figure 8: execution time of BASELINE vs FASTTOPK
// as the cache budget B varies, for the low and high term-frequency
// buckets. The paper sweeps 100..2000 MiB on a 95 GB database; the
// synthetic stand-in sweeps budgets proportional to its own sub-PJ
// table sizes so the same saturation shape appears.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;
  using datagen::EsBucket;

  JsonInit(argc, argv, "fig8_cache_size");
  PrintHeader("Figure 8: varying cache size B (Exp-II)",
              "CSUPP-sim; BASELINE is cache-independent (flat line)");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 36));
  Workload workload = MakeWorkload(*world, es_count);

  const std::vector<size_t> budgets_kib = {16, 64, 256, 1024, 4096};

  for (EsBucket bucket : {EsBucket::kLow, EsBucket::kHigh}) {
    std::printf("bucket: %s\n", datagen::EsBucketName(bucket));
    TablePrinter tp({"B (KiB)", "Baseline (ms)", "FastTopK (ms)",
                     "speedup", "cache hits/ES", "critical subs/ES"});
    const std::vector<size_t> members = workload.InBucket(bucket);
    for (size_t kib : budgets_kib) {
      SearchOptions options;
      options.enumeration.max_tree_size = 4;
      options.cache_budget_bytes = kib << 10;
      Agg base_agg, fast_agg;
      for (size_t i : members) {
        PreparedSearch prep(*world->index, *world->graph,
                            workload.es[i].sheet, options);
        base_agg.Add(RunBaseline(prep, options).stats);
        fast_agg.Add(RunFastTopK(prep, options).stats);
      }
      if (fast_agg.runs == 0) continue;
      tp.AddRow(
          {TablePrinter::Int(static_cast<long long>(kib)),
           TablePrinter::Num(base_agg.AvgTotalMs(), 3),
           TablePrinter::Num(fast_agg.AvgTotalMs(), 3),
           TablePrinter::Num(base_agg.AvgTotalMs() / fast_agg.AvgTotalMs(),
                             2) +
               "x",
           TablePrinter::Num(static_cast<double>(fast_agg.cache_hits) /
                                 static_cast<double>(fast_agg.runs),
                             1),
           TablePrinter::Num(static_cast<double>(fast_agg.critical_subs) /
                                 static_cast<double>(fast_agg.runs),
                             1)});
      const std::string section = std::string("bucket=") +
                                  datagen::EsBucketName(bucket) +
                                  "/B_kib=" + std::to_string(kib);
      JsonMetric(section, "baseline_ms", base_agg.AvgTotalMs());
      JsonMetric(section, "fasttopk_ms", fast_agg.AvgTotalMs());
      JsonMetric(section, "cache_hits_per_es",
                 static_cast<double>(fast_agg.cache_hits) /
                     static_cast<double>(fast_agg.runs));
      JsonCacheStats(section, fast_agg.CacheTotals());
    }
    tp.Print();
    std::printf("\n");
  }
  // Process-wide view of the same work, from the metrics registry the
  // strategies publish into (additive fields; the per-section metrics
  // above are unchanged).
  JsonMetricsSnapshot("registry", obs::MetricsRegistry::Global().Snapshot());

  std::printf(
      "paper's shape: FASTTOPK beats BASELINE at every budget; the gap"
      " widens with B until the shared sub-PJ outputs all fit.\n");
  return 0;
}
