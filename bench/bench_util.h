#ifndef S4_BENCH_BENCH_UTIL_H_
#define S4_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/subquery_cache.h"
#include "common/latency_histogram.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "datagen/es_gen.h"
#include "datagen/synthetic.h"
#include "index/index_set.h"
#include "obs/metrics.h"
#include "schema/schema_graph.h"
#include "strategy/strategy.h"

namespace s4::bench {

// A database with its offline indexes and schema graph, ready to search.
struct World {
  Database db;
  std::unique_ptr<IndexSet> index;
  std::unique_ptr<SchemaGraph> graph;
  double index_build_seconds = 0.0;
};

// Builds a World from any generated database.
std::unique_ptr<World> MakeWorld(StatusOr<Database> db);

// The standard benchmark datasets. `scale` multiplies base row counts;
// the default sizes are tuned so every bench binary finishes in tens of
// seconds on one core while keeping the paper's relative trends visible.
std::unique_ptr<World> CsuppWorld(int32_t scale = 1, uint64_t seed = 42);
std::unique_ptr<World> AdvwWorld(int32_t dim_scale = 1,
                                 int32_t fact_scale = 1);
std::unique_ptr<World> ImdbWorld();

// A bucketed example-spreadsheet workload per Sec 6.1.
struct Workload {
  std::vector<datagen::GeneratedEs> es;
  std::vector<datagen::EsBucket> buckets;

  // Indexes of the ESs in `bucket`.
  std::vector<size_t> InBucket(datagen::EsBucket bucket) const;
};

Workload MakeWorkload(const World& world, int32_t count,
                      const datagen::EsGenOptions& options = {},
                      uint64_t seed = 1234, int32_t min_text_columns = 6,
                      int32_t max_tree_size = 4);

// Accumulates per-run statistics for averaged reporting.
struct Agg {
  double enum_seconds = 0.0;
  double eval_seconds = 0.0;
  int64_t queries_enumerated = 0;
  int64_t queries_evaluated = 0;
  int64_t query_row_evals = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_insertions = 0;
  int64_t cache_evictions = 0;
  size_t cache_peak_bytes = 0;  // max over runs, not a sum
  int64_t critical_subs = 0;
  int64_t skipped = 0;
  int64_t model_cost = 0;
  int64_t runs = 0;

  void Add(const RunStats& s) {
    enum_seconds += s.enum_seconds;
    eval_seconds += s.eval_seconds;
    queries_enumerated += s.queries_enumerated;
    queries_evaluated += s.queries_evaluated;
    query_row_evals += s.query_row_evals;
    cache_hits += s.cache.hits;
    cache_misses += s.cache.misses;
    cache_insertions += s.cache.insertions;
    cache_evictions += s.cache.evictions;
    if (s.cache.peak_bytes > cache_peak_bytes) {
      cache_peak_bytes = s.cache.peak_bytes;
    }
    critical_subs += s.critical_subs_cached;
    skipped += s.skipped_by_condition;
    model_cost += s.model_cost;
    ++runs;
  }
  double AvgTotalMs() const {
    return runs == 0 ? 0.0
                     : 1e3 * (enum_seconds + eval_seconds) /
                           static_cast<double>(runs);
  }
  double AvgEnumMs() const {
    return runs == 0 ? 0.0 : 1e3 * enum_seconds / static_cast<double>(runs);
  }
  double AvgEvalMs() const {
    return runs == 0 ? 0.0 : 1e3 * eval_seconds / static_cast<double>(runs);
  }
  double AvgEvaluated() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(queries_evaluated) /
                           static_cast<double>(runs);
  }
  double AvgRowEvals() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(query_row_evals) /
                           static_cast<double>(runs);
  }
  // The cache-counter subset as a CacheStats, for JsonCacheStats.
  CacheStats CacheTotals() const {
    CacheStats s;
    s.hits = cache_hits;
    s.misses = cache_misses;
    s.insertions = cache_insertions;
    s.evictions = cache_evictions;
    s.peak_bytes = cache_peak_bytes;
    return s;
  }
};

// Reads an integer knob from the environment (e.g. S4_BENCH_ES_COUNT) so
// users can scale benchmarks up without recompiling.
int64_t EnvInt(const char* name, int64_t def);

// --- load generation ---------------------------------------------------
//
// Shared by the service- and network-throughput benches so both report
// comparable numbers from the same arrival process.

struct LoadGenOptions {
  int32_t clients = 8;
  int32_t requests_per_client = 30;
  // 0 = closed loop: each client issues its next request the moment the
  // previous one returns, so offered load self-throttles to capacity.
  // > 0 = open loop: arrivals follow a Poisson process at this aggregate
  // rate (split evenly across clients), each request's latency measured
  // from its *scheduled* arrival time. A slow server cannot slow the
  // arrival schedule down, so queueing delay lands in the tail instead
  // of being absorbed by client back-off (coordinated omission).
  double arrival_rate_qps = 0.0;
  uint64_t seed = 7;
};

struct LoadGenResult {
  int64_t ok = 0;
  int64_t errors = 0;
  double elapsed_seconds = 0.0;
  // Per-request latency: completion minus scheduled arrival (open loop)
  // or minus issue time (closed loop).
  LatencyHistogram::Snapshot latency;

  double Qps() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(ok + errors) / elapsed_seconds
               : 0.0;
  }
};

// Runs `issue(client, seq)` from `clients` threads per `options`. The
// interarrival schedule is precomputed (deterministic per seed); open
// loop sleeps each client to its next scheduled arrival even when the
// previous request has not returned yet... which it cannot express with
// one blocking issue() per client, so late requests are issued
// back-to-back and their measured latency includes the schedule slip —
// the standard single-threaded open-loop approximation.
LoadGenResult RunLoadGen(
    const LoadGenOptions& options,
    const std::function<Status(int32_t client, int32_t seq)>& issue);

// Prints the standard bench banner (dataset + substitution note).
void PrintHeader(const std::string& title, const std::string& what);

// --- machine-readable output ------------------------------------------
//
// Every bench binary accepts `--json <path>` (or `--json=<path>`): the
// metrics recorded through JsonMetric are written to `path` on exit as
//
//   {"bench": "<name>", "metrics": [
//     {"section": "...", "name": "...", "value": ...}, ...]}
//
// so perf trajectories can be tracked across commits without parsing the
// human-readable tables. Without the flag, recording is a no-op.

// Parses `--json` out of argv (call first in main). Returns the new argc
// with the flag removed, so binaries that forward argv elsewhere (e.g.
// google-benchmark) can pass the remainder along.
int JsonInit(int argc, char** argv, const std::string& bench_name);

// True when `--json` was given.
bool JsonEnabled();

// Records one numeric metric under a section label (e.g. the table cell
// coordinates: "bucket=low/strategy=FastTopK").
void JsonMetric(const std::string& section, const std::string& name,
                double value);

// Records the standard Agg averages under `section`.
void JsonAgg(const std::string& section, const Agg& agg);

// Records the standard latency metrics (p50/p95/p99/p99.9/max/mean, in
// milliseconds, plus the sample count) under `section`.
void JsonLatency(const std::string& section,
                 const LatencyHistogram::Snapshot& snapshot);

// Records the canonical cache-counter fields (cache_hits, cache_misses,
// cache_insertions, cache_evictions, cache_peak_bytes) under `section`.
// The single serializer behind every bench that reports cache stats, so
// the field names can never drift between binaries.
void JsonCacheStats(const std::string& section, const CacheStats& stats);

// Records every entry of a metrics-registry snapshot under `section`:
// counters/gauges as {name, value}; histograms expand to name_count,
// name_sum_seconds, name_max_seconds, name_p50_seconds, name_p99_seconds.
void JsonMetricsSnapshot(const std::string& section,
                         const obs::MetricsSnapshot& snapshot);

// Writes the JSON file now (also runs automatically at exit).
void JsonWrite();

}  // namespace s4::bench

#endif  // S4_BENCH_BENCH_UTIL_H_
