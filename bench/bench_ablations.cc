// Ablations of the implementation's design choices (DESIGN.md):
//   (a) exact inner-join semantics vs the paper's drop-zero-rows Stage II
//       shortcut (speed vs score fidelity);
//   (b) FASTTOPK with a degenerate 1-byte cache budget vs the default
//       (isolates the benefit of sub-PJ caching from batching/skipping);
//   (c) cost-aware rooting (root join trees at the smallest relation)
//       vs pure signature rooting (how much sharing the rooting buys).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "ablations");
  PrintHeader("Ablations of design choices",
              "CSUPP-sim, Table-2 defaults unless stated");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 20));
  Workload workload = MakeWorkload(*world, es_count);

  // (a) drop-zero-rows shortcut.
  {
    SearchOptions exact_opts;
    exact_opts.enumeration.max_tree_size = 4;
    SearchOptions drop_opts = exact_opts;
    drop_opts.drop_zero_rows = true;

    Agg exact_agg, drop_agg;
    double max_score_delta = 0.0;
    int64_t changed_results = 0;
    for (const datagen::GeneratedEs& es : workload.es) {
      SearchResult exact =
          SearchFastTopK(*world->index, *world->graph, es.sheet, exact_opts);
      SearchResult drop =
          SearchFastTopK(*world->index, *world->graph, es.sheet, drop_opts);
      exact_agg.Add(exact.stats);
      drop_agg.Add(drop.stats);
      const size_t n = std::min(exact.topk.size(), drop.topk.size());
      for (size_t i = 0; i < n; ++i) {
        max_score_delta =
            std::max(max_score_delta,
                     std::fabs(exact.topk[i].score - drop.topk[i].score));
        if (exact.topk[i].query.signature() !=
            drop.topk[i].query.signature()) {
          ++changed_results;
        }
      }
    }
    std::printf("(a) exact join semantics vs drop-zero-rows shortcut\n");
    TablePrinter tp({"variant", "FastTopK (ms)", "model cost/ES"});
    tp.AddRow({"exact (default)",
               TablePrinter::Num(exact_agg.AvgTotalMs(), 3),
               TablePrinter::Int(exact_agg.runs == 0
                                     ? 0
                                     : exact_agg.model_cost /
                                           exact_agg.runs)});
    tp.AddRow({"drop-zero-rows",
               TablePrinter::Num(drop_agg.AvgTotalMs(), 3),
               TablePrinter::Int(drop_agg.runs == 0
                                     ? 0
                                     : drop_agg.model_cost /
                                           drop_agg.runs)});
    tp.Print();
    std::printf("max |score delta| across top-k: %.4f;"
                " result swaps: %lld\n\n",
                max_score_delta, static_cast<long long>(changed_results));
  }

  // (b) cache budget.
  {
    SearchOptions with_cache;
    with_cache.enumeration.max_tree_size = 4;
    SearchOptions no_cache = with_cache;
    no_cache.cache_budget_bytes = 1;  // nothing fits

    Agg with_agg, without_agg;
    for (const datagen::GeneratedEs& es : workload.es) {
      with_agg.Add(SearchFastTopK(*world->index, *world->graph, es.sheet,
                                  with_cache)
                       .stats);
      without_agg.Add(SearchFastTopK(*world->index, *world->graph, es.sheet,
                                     no_cache)
                          .stats);
    }
    std::printf("(b) FASTTOPK with vs without a usable cache\n");
    TablePrinter tp({"variant", "FastTopK (ms)", "cache hits/ES",
                     "critical subs/ES"});
    auto row = [&](const char* name, const Agg& a) {
      tp.AddRow({name, TablePrinter::Num(a.AvgTotalMs(), 3),
                 TablePrinter::Num(static_cast<double>(a.cache_hits) /
                                       static_cast<double>(a.runs),
                                   1),
                 TablePrinter::Num(static_cast<double>(a.critical_subs) /
                                       static_cast<double>(a.runs),
                                   1)});
    };
    row("B = 500 MiB (default)", with_agg);
    row("B = 1 byte", without_agg);
    tp.Print();
    std::printf("\n");
  }

  // (c) rooting policy.
  {
    SearchOptions cheap_root;
    cheap_root.enumeration.max_tree_size = 4;
    SearchOptions sig_root = cheap_root;
    sig_root.enumeration.cost_aware_rooting = false;

    Agg cheap_agg, sig_agg;
    for (const datagen::GeneratedEs& es : workload.es) {
      cheap_agg.Add(SearchFastTopK(*world->index, *world->graph, es.sheet,
                                   cheap_root)
                        .stats);
      sig_agg.Add(SearchFastTopK(*world->index, *world->graph, es.sheet,
                                 sig_root)
                      .stats);
    }
    std::printf("(c) join-tree rooting policy (affects sub-PJ sharing)\n");
    TablePrinter tp({"variant", "FastTopK (ms)", "cache hits/ES"});
    tp.AddRow({"cost-aware rooting (default)",
               TablePrinter::Num(cheap_agg.AvgTotalMs(), 3),
               TablePrinter::Num(static_cast<double>(cheap_agg.cache_hits) /
                                     static_cast<double>(cheap_agg.runs),
                                 1)});
    tp.AddRow({"signature rooting",
               TablePrinter::Num(sig_agg.AvgTotalMs(), 3),
               TablePrinter::Num(static_cast<double>(sig_agg.cache_hits) /
                                     static_cast<double>(sig_agg.runs),
                                 1)});
    tp.Print();
  }
  return 0;
}
