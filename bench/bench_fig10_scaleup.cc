// Reproduces Exp-IIV / Figure 10: FASTTOPK execution time on ADVW-sim
// while (a) scaling up dimension tables with unreferenced copies and
// (b) scaling up fact tables with copies referencing the same dimension
// rows. (a) should grow slowly (only posting lists lengthen); (b) grows
// superlinearly (join/hash work dominates).
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "fig10_scaleup");
  PrintHeader("Figure 10: ADVW-sim scale-up (Exp-IIV)",
              "per-point: rebuild database+indexes, run FASTTOPK over a"
              " fresh ES workload, report averages");

  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 12));

  std::printf("Figure 10(a): scaling up dimension tables\n");
  TablePrinter ta({"dim scale", "dim rows", "fact rows", "FastTopK (ms)",
                   "postings read/ES"});
  for (int32_t scale : {1, 4, 16, 64, 256}) {
    std::unique_ptr<World> world = AdvwWorld(scale, 1);
    Agg agg;
    datagen::EsGenOptions es_opts;
    Workload workload = MakeWorkload(*world, es_count, es_opts, 777, 5, 4);
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    int64_t postings = 0;
    for (const datagen::GeneratedEs& es : workload.es) {
      PreparedSearch prep(*world->index, *world->graph, es.sheet, options);
      SearchResult r = RunFastTopK(prep, options);
      agg.Add(r.stats);
      postings += r.stats.counters.postings_scanned;
    }
    ta.AddRow({TablePrinter::Int(scale),
               TablePrinter::Int(world->db.FindTable("DimProduct")
                                     ->NumRows()),
               TablePrinter::Int(world->db.FindTable("FactSales")
                                     ->NumRows()),
               TablePrinter::Num(agg.AvgTotalMs(), 3),
               TablePrinter::Num(static_cast<double>(postings) /
                                     static_cast<double>(agg.runs),
                                 0)});
  }
  ta.Print();
  std::printf(
      "paper's shape: slow growth — only inverted-index retrieval grows;"
      " join cost is unchanged because facts reference only base rows.\n\n");

  std::printf("Figure 10(b): scaling up fact tables\n");
  TablePrinter tb({"fact scale", "dim rows", "fact rows", "FastTopK (ms)",
                   "hash ops/ES"});
  for (int32_t scale : {1, 2, 4, 8, 16}) {
    std::unique_ptr<World> world = AdvwWorld(1, scale);
    datagen::EsGenOptions es_opts;
    Workload workload = MakeWorkload(*world, es_count, es_opts, 777, 5, 4);
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    Agg agg;
    int64_t hash_ops = 0;
    for (const datagen::GeneratedEs& es : workload.es) {
      PreparedSearch prep(*world->index, *world->graph, es.sheet, options);
      SearchResult r = RunFastTopK(prep, options);
      agg.Add(r.stats);
      hash_ops +=
          r.stats.counters.hash_lookups + r.stats.counters.hash_inserts;
    }
    tb.AddRow({TablePrinter::Int(scale),
               TablePrinter::Int(world->db.FindTable("DimProduct")
                                     ->NumRows()),
               TablePrinter::Int(world->db.FindTable("FactSales")
                                     ->NumRows()),
               TablePrinter::Num(agg.AvgTotalMs(), 3),
               TablePrinter::Num(static_cast<double>(hash_ops) /
                                     static_cast<double>(agg.runs),
                                 0)});
  }
  tb.Print();
  std::printf(
      "paper's shape: much faster (superlinear) growth — hash-join work"
      " over the fact table dominates query processing.\n");
  return 0;
}
