// Reproduces Exp-V: varying the number of relationship errors injected
// into the example spreadsheets (0..5). More errors lower the top-k
// scores, delay termination condition (7), and increase evaluations.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "expv_errors");
  PrintHeader("Exp-V: varying #relationship errors",
              "CSUPP-sim; fresh ES set per error count, other parameters"
              " at Table-2 defaults");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 16));

  TablePrinter tp({"#errors", "Baseline (ms)", "FastTopK (ms)", "speedup",
                   "row-evals Baseline", "row-evals FastTopK",
                   "avg top-1 score"});
  for (int32_t errors = 0; errors <= 5; ++errors) {
    datagen::EsGenOptions es_opts;
    es_opts.relationship_errors = errors;
    Workload workload =
        MakeWorkload(*world, es_count, es_opts, /*seed=*/5000 + errors);

    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    Agg base_agg, fast_agg;
    double top1 = 0.0;
    int64_t top1_n = 0;
    for (const datagen::GeneratedEs& es : workload.es) {
      PreparedSearch prep(*world->index, *world->graph, es.sheet, options);
      base_agg.Add(RunBaseline(prep, options).stats);
      SearchResult fast = RunFastTopK(prep, options);
      fast_agg.Add(fast.stats);
      if (!fast.topk.empty()) {
        top1 += fast.topk[0].score;
        ++top1_n;
      }
    }
    tp.AddRow({TablePrinter::Int(errors),
               TablePrinter::Num(base_agg.AvgTotalMs(), 3),
               TablePrinter::Num(fast_agg.AvgTotalMs(), 3),
               TablePrinter::Num(
                   base_agg.AvgTotalMs() / fast_agg.AvgTotalMs(), 2) +
                   "x",
               TablePrinter::Num(base_agg.AvgRowEvals(), 1),
               TablePrinter::Num(fast_agg.AvgRowEvals(), 1),
               TablePrinter::Num(top1_n ? top1 / top1_n : 0.0, 2)});
  }
  tp.Print();
  std::printf(
      "\npaper's shape: evaluations grow significantly with errors (lower"
      " k-th score delays termination); FASTTOPK stays 2-6x ahead.\n");
  return 0;
}
