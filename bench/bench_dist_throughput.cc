// Scatter-gather serving throughput: closed-loop QPS of an
// S4Coordinator over N in-process shard servers (N = 1, 2, 4) against a
// directly-connected single-node S4Client baseline, all on loopback.
// The delta between baseline and N=1 is the coordinator's own overhead
// (one extra hop, streamed partials, merge); the N=2/N=4 rows show what
// candidate-space sharding buys when Stage-II evaluation dominates.
//
// `--smoke` shrinks everything to a seconds-long CI gate that still
// crosses coordinator, wire protocol, shard admission, and merge.
//
// Knobs (environment): S4_BENCH_CLIENTS (4), S4_BENCH_ROUNDS (2),
// S4_BENCH_ES_COUNT (8), S4_BENCH_CSUPP_SCALE (1),
// S4_BENCH_SHARD_WORKERS (2).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dist/coordinator.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  argc = JsonInit(argc, argv, "dist_throughput");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int32_t clients =
      static_cast<int32_t>(EnvInt("S4_BENCH_CLIENTS", smoke ? 2 : 4));
  const int32_t rounds =
      static_cast<int32_t>(EnvInt("S4_BENCH_ROUNDS", smoke ? 1 : 2));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", smoke ? 3 : 8));
  const int32_t shard_workers =
      static_cast<int32_t>(EnvInt("S4_BENCH_SHARD_WORKERS", 2));

  PrintHeader("Distributed scatter-gather throughput",
              "CSUPP-sim; closed loop: direct single node vs coordinator "
              "over 1/2/4 shard servers on loopback");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 1)));
  Workload workload = MakeWorkload(*world, es_count);

  auto system = S4System::Create(world->db);
  if (!system.ok()) {
    std::fprintf(stderr, "S4System::Create failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<std::vector<std::string>>> requests;
  for (const datagen::GeneratedEs& es : workload.es) {
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(es.sheet.NumRows()));
    for (int32_t r = 0; r < es.sheet.NumRows(); ++r) {
      for (int32_t c = 0; c < es.sheet.NumColumns(); ++c) {
        cells[static_cast<size_t>(r)].push_back(es.sheet.cell(r, c).raw);
      }
    }
    requests.push_back(std::move(cells));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  SearchOptions search_options;
  search_options.enumeration.max_tree_size = 4;

  LoadGenOptions gen;
  gen.clients = clients;
  gen.requests_per_client = rounds * static_cast<int32_t>(requests.size());

  TablePrinter tp({"deployment", "QPS", "p50 (ms)", "p99 (ms)", "errors"});

  // Baseline: one unsharded server, pooled client, no coordinator.
  {
    ServiceOptions sopts;
    sopts.num_workers = shard_workers;
    sopts.max_queue = static_cast<size_t>(4 * clients);
    S4Service service(**system, sopts);
    net::S4Server server(&service);
    if (Status st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    net::ClientOptions copts;
    copts.port = server.port();
    copts.request_timeout_seconds = 120.0;
    copts.max_pool_connections = static_cast<size_t>(clients);
    net::S4Client client(copts);
    const LoadGenResult run = RunLoadGen(gen, [&](int32_t c, int32_t i) {
      net::NetSearchRequest req = net::NetSearchRequest::From(
          requests[(static_cast<size_t>(i) + static_cast<size_t>(c)) %
                   requests.size()],
          search_options, S4System::Strategy::kFastTopK);
      return client.Search(req).status();
    });
    tp.AddRow({"single node (direct)", TablePrinter::Num(run.Qps(), 1),
               TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.50), 3),
               TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.99), 3),
               TablePrinter::Int(static_cast<long long>(run.errors))});
    JsonMetric("dist", "single_node_qps", run.Qps());
    JsonMetric("dist", "single_node_errors",
               static_cast<double>(run.errors));
    JsonLatency("dist_single_node", run.latency);
  }

  for (int32_t shard_count : {1, 2, 4}) {
    std::vector<std::unique_ptr<S4Service>> services;
    std::vector<std::unique_ptr<net::S4Server>> servers;
    dist::CoordinatorOptions copts;
    copts.request_timeout_seconds = 120.0;
    for (int32_t i = 0; i < shard_count; ++i) {
      ServiceOptions sopts;
      sopts.num_workers = shard_workers;
      sopts.max_queue = static_cast<size_t>(4 * clients);
      sopts.shard_count = shard_count;
      sopts.shard_index = i;
      services.push_back(std::make_unique<S4Service>(**system, sopts));
      servers.push_back(std::make_unique<net::S4Server>(services.back().get()));
      if (Status st = servers.back()->Start(); !st.ok()) {
        std::fprintf(stderr, "shard %d start failed: %s\n", i,
                     st.ToString().c_str());
        return 1;
      }
      copts.shards.push_back({"127.0.0.1", servers.back()->port()});
    }
    dist::S4Coordinator coordinator(std::move(copts));

    int64_t incomplete = 0;
    const LoadGenResult run = RunLoadGen(gen, [&](int32_t c, int32_t i) {
      net::NetSearchRequest req = net::NetSearchRequest::From(
          requests[(static_cast<size_t>(i) + static_cast<size_t>(c)) %
                   requests.size()],
          search_options, S4System::Strategy::kFastTopK);
      auto r = coordinator.Search(req);
      if (!r.ok()) return r.status();
      if (!r->complete) ++incomplete;
      return Status::OK();
    });

    const std::string label =
        "coordinator, " + std::to_string(shard_count) +
        (shard_count == 1 ? " shard" : " shards");
    tp.AddRow({label, TablePrinter::Num(run.Qps(), 1),
               TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.50), 3),
               TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.99), 3),
               TablePrinter::Int(
                   static_cast<long long>(run.errors + incomplete))});
    const std::string prefix = "shards_" + std::to_string(shard_count);
    JsonMetric("dist", prefix + "_qps", run.Qps());
    JsonMetric("dist", prefix + "_errors", static_cast<double>(run.errors));
    JsonMetric("dist", prefix + "_incomplete",
               static_cast<double>(incomplete));
    JsonLatency("dist_" + prefix, run.latency);
    if (run.errors > 0 || incomplete > 0) {
      std::fprintf(stderr,
                   "dist bench: %lld errors, %lld incomplete at %d shards\n",
                   static_cast<long long>(run.errors),
                   static_cast<long long>(incomplete), shard_count);
      return 1;
    }
  }

  tp.Print();
  JsonMetric("dist", "smoke", smoke ? 1.0 : 0.0);
  JsonMetric("dist", "clients", static_cast<double>(clients));
  JsonMetricsSnapshot("registry", obs::MetricsRegistry::Global().Snapshot());
  return 0;
}
