// Load generator for the live mutation subsystem: N client threads
// issue blocking searches against one S4Service while a configurable
// fraction of requests are mutation batches (insert / update / delete
// against the fact tables), measuring what writes cost readers. Three
// write mixes (0%, 1%, 10%) run against a LiveS4System-backed service,
// next to an immutable-S4System baseline service over the same
// database — the 0% column vs the baseline is the price of the epoch
// indirection alone (the acceptance gate: search p50 within noise),
// the 1%/10% columns show reader latency under concurrent
// copy-on-publish epoch churn.
//
// Every service starts with a cold cross-query cache so the mixes are
// comparable. Searches and writes are timed into separate histograms;
// the headline number is the search p50 per mix.
//
// Knobs (environment): S4_BENCH_CLIENTS (8), S4_BENCH_ROUNDS (3),
// S4_BENCH_ES_COUNT (10), S4_BENCH_CSUPP_SCALE (1). `--smoke` shrinks
// the workload to a CI-sized gate; `--json <path>` records metrics.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/latency_histogram.h"
#include "live/live_s4.h"
#include "service/s4_service.h"

namespace {

using namespace s4;
using namespace s4::bench;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Writes target the largest relation (the fact table): the worst case
// for incremental maintenance — longest posting lists, biggest (key,fk)
// snapshot columns.
const Table* FactTable(const Database& db) {
  const Table* best = &db.table(0);
  for (TableId t = 1; t < db.NumTables(); ++t) {
    if (db.table(t).NumRows() > best->NumRows()) best = &db.table(t);
  }
  return best;
}

// Generic insert against any schema: fresh pk, recognizable text,
// NULL for every other attribute (FKs included — a dangling fact row
// joins nothing, which is valid and cheap to reason about).
Mutation MakeInsert(const Table& t, int64_t pk) {
  std::vector<Value> values;
  for (int32_t c = 0; c < t.NumColumns(); ++c) {
    if (c == t.primary_key_column()) {
      values.push_back(Value::Int(pk));
    } else if (t.column(c).type == ColumnType::kText) {
      values.push_back(Value::Text("livebench row " + std::to_string(pk)));
    } else {
      values.push_back(Value::Null());
    }
  }
  return Mutation::Insert(t.name(), std::move(values));
}

// First text column that is not the pk (every CSUPP table has one).
int32_t TextColumn(const Table& t) {
  for (int32_t c = 0; c < t.NumColumns(); ++c) {
    if (t.column(c).type == ColumnType::kText) return c;
  }
  return -1;
}

struct MixResult {
  double elapsed_seconds = 0.0;
  int64_t searches = 0;
  int64_t writes = 0;
  int64_t errors = 0;
  LatencyHistogram::Snapshot search_lat;
  LatencyHistogram::Snapshot write_lat;
  uint64_t epochs = 0;
};

struct MixConfig {
  // One write per this many requests (0 = search-only).
  int32_t write_every = 0;
  int32_t clients = 8;
  int32_t requests_per_client = 30;
};

// Runs one closed-loop mix against `service`. `live` enables the write
// slots; a null live with write_every > 0 is a configuration bug.
MixResult RunMix(S4Service& service, LiveS4System* live,
                 const std::vector<std::vector<std::vector<std::string>>>&
                     requests,
                 const SearchOptions& search_options, const MixConfig& cfg,
                 std::atomic<int64_t>& next_pk) {
  const Table* fact = live != nullptr ? FactTable(live->db()) : nullptr;
  LatencyHistogram search_lat;
  LatencyHistogram write_lat;
  std::atomic<int64_t> searches{0};
  std::atomic<int64_t> writes{0};
  // Write cadence over the GLOBAL request sequence, so a 1% mix fires
  // even when each client issues fewer than 100 requests.
  std::atomic<int64_t> issued{0};
  // Per-client last inserted pk, so updates/deletes hit live rows.
  std::vector<int64_t> last_pk(static_cast<size_t>(cfg.clients), -1);

  LoadGenOptions gen;
  gen.clients = cfg.clients;
  gen.requests_per_client = cfg.requests_per_client;
  const LoadGenResult run = RunLoadGen(gen, [&](int32_t c, int32_t i) {
    const bool write =
        cfg.write_every > 0 &&
        (issued.fetch_add(1) % cfg.write_every) == cfg.write_every - 1;
    const double start = Now();
    if (write) {
      // Rotate insert / update / delete so the index sees every
      // maintenance path; inserts dominate (grow-mostly workload).
      std::vector<Mutation> batch;
      int64_t& mine = last_pk[static_cast<size_t>(c)];
      const int64_t slot = writes.fetch_add(1) % 10;
      if (mine >= 0 && (slot == 7 || slot == 8)) {
        batch.push_back(Mutation::Update(
            fact->name(), mine, fact->column(TextColumn(*fact)).name,
            Value::Text("livebench updated " + std::to_string(mine))));
      } else if (mine >= 0 && slot == 9) {
        batch.push_back(Mutation::Delete(fact->name(), mine));
        mine = -1;
      } else {
        const int64_t pk = next_pk.fetch_add(1);
        batch.push_back(MakeInsert(*fact, pk));
        mine = pk;
      }
      auto result = service.Mutate(batch);
      write_lat.Record(Now() - start);
      return result.status();
    }
    ServiceRequest req;
    req.cells = requests[(static_cast<size_t>(i) + static_cast<size_t>(c)) %
                         requests.size()];
    req.options = search_options;
    auto result = service.Search(std::move(req));
    search_lat.Record(Now() - start);
    searches.fetch_add(1);
    return result.status();
  });

  MixResult out;
  out.elapsed_seconds = run.elapsed_seconds;
  out.searches = searches.load();
  out.writes = writes.load() > 0 ? write_lat.count() : 0;
  out.errors = run.errors;
  out.search_lat = search_lat.snapshot();
  out.write_lat = write_lat.snapshot();
  out.epochs = live != nullptr ? live->epoch() : 0;
  return out;
}

void Report(const char* label, const MixResult& r, TablePrinter& tp) {
  tp.AddRow({label,
             TablePrinter::Int(static_cast<long long>(r.searches)),
             TablePrinter::Int(static_cast<long long>(r.writes)),
             TablePrinter::Num(1e3 * r.search_lat.PercentileSeconds(0.50), 3),
             TablePrinter::Num(1e3 * r.search_lat.PercentileSeconds(0.95), 3),
             TablePrinter::Num(1e3 * r.write_lat.PercentileSeconds(0.50), 3),
             TablePrinter::Num(r.elapsed_seconds > 0.0
                                   ? static_cast<double>(r.searches +
                                                         r.writes) /
                                         r.elapsed_seconds
                                   : 0.0,
                               1),
             TablePrinter::Int(static_cast<long long>(r.errors))});
}

void JsonMix(const std::string& section, const MixResult& r) {
  JsonMetric(section, "searches", static_cast<double>(r.searches));
  JsonMetric(section, "writes", static_cast<double>(r.writes));
  JsonMetric(section, "errors", static_cast<double>(r.errors));
  JsonMetric(section, "elapsed_s", r.elapsed_seconds);
  JsonMetric(section, "search_p50_ms",
             1e3 * r.search_lat.PercentileSeconds(0.50));
  JsonMetric(section, "search_p95_ms",
             1e3 * r.search_lat.PercentileSeconds(0.95));
  JsonMetric(section, "search_p99_ms",
             1e3 * r.search_lat.PercentileSeconds(0.99));
  JsonMetric(section, "search_mean_ms", 1e3 * r.search_lat.MeanSeconds());
  JsonMetric(section, "write_p50_ms",
             1e3 * r.write_lat.PercentileSeconds(0.50));
  JsonMetric(section, "write_p95_ms",
             1e3 * r.write_lat.PercentileSeconds(0.95));
  JsonMetric(section, "epochs", static_cast<double>(r.epochs));
}

}  // namespace

int main(int argc, char** argv) {
  argc = JsonInit(argc, argv, "live_mutations");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int32_t clients =
      static_cast<int32_t>(EnvInt("S4_BENCH_CLIENTS", smoke ? 4 : 8));
  const int32_t rounds =
      static_cast<int32_t>(EnvInt("S4_BENCH_ROUNDS", smoke ? 2 : 3));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", smoke ? 4 : 10));
  const int32_t scale =
      static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 1));

  PrintHeader("Live mutations: search latency under write mixes",
              "CSUPP-sim; closed loop; LiveS4System epochs vs immutable"
              " baseline, cold caches per mix");

  // The workload world (spreadsheet generation) and the served
  // databases are built from the same generator options, so every
  // service answers the same requests over the same initial data.
  datagen::CsuppSimOptions dopts;
  dopts.scale = scale;
  std::unique_ptr<World> world = CsuppWorld(scale);
  Workload workload = MakeWorkload(*world, es_count);
  std::vector<std::vector<std::vector<std::string>>> requests;
  for (const datagen::GeneratedEs& es : workload.es) {
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(es.sheet.NumRows()));
    for (int32_t r = 0; r < es.sheet.NumRows(); ++r) {
      for (int32_t c = 0; c < es.sheet.NumColumns(); ++c) {
        cells[static_cast<size_t>(r)].push_back(es.sheet.cell(r, c).raw);
      }
    }
    requests.push_back(std::move(cells));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  SearchOptions search_options;
  search_options.enumeration.max_tree_size = 4;

  ServiceOptions sopts;
  sopts.num_workers = clients;
  sopts.max_queue = static_cast<size_t>(4 * clients);
  sopts.shared_cache_bytes = 64u << 20;

  MixConfig cfg;
  cfg.clients = clients;
  // Floor of ~200 total requests so the rarest cadence (1 write per
  // 100 requests) still lands a couple of batches per mix.
  cfg.requests_per_client =
      std::max(rounds * static_cast<int32_t>(requests.size()),
               (200 + clients - 1) / clients);

  std::atomic<int64_t> next_pk{1'000'000'000};

  // Immutable baseline: the pre-live serving stack.
  auto baseline_system = S4System::Create(world->db);
  if (!baseline_system.ok()) {
    std::fprintf(stderr, "S4System::Create failed: %s\n",
                 baseline_system.status().ToString().c_str());
    return 1;
  }
  MixResult immutable;
  {
    S4Service service(**baseline_system, sopts);
    immutable = RunMix(service, nullptr, requests, search_options, cfg,
                       next_pk);
  }

  // Live system: one epoch-publishing instance shared by all mixes (the
  // database grows slightly across mixes; the fact table dwarfs the few
  // hundred bench rows), a fresh service (cold cache) per mix.
  auto live_db = datagen::MakeCsuppSim(dopts);
  if (!live_db.ok()) {
    std::fprintf(stderr, "MakeCsuppSim failed: %s\n",
                 live_db.status().ToString().c_str());
    return 1;
  }
  auto live = LiveS4System::Create(std::move(*live_db));
  if (!live.ok()) {
    std::fprintf(stderr, "LiveS4System::Create failed: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }

  const struct {
    const char* label;
    const char* section;
    int32_t write_every;
  } mixes[] = {
      {"live 0% writes", "mix_0", 0},
      {"live 1% writes", "mix_1", 100},
      {"live 10% writes", "mix_10", 10},
  };
  MixResult results[3];
  for (int m = 0; m < 3; ++m) {
    S4Service service(**live, sopts);
    MixConfig mix_cfg = cfg;
    mix_cfg.write_every = mixes[m].write_every;
    results[m] = RunMix(service, live->get(), requests, search_options,
                        mix_cfg, next_pk);
  }

  TablePrinter tp({"mix", "searches", "writes", "search p50 (ms)",
                   "search p95 (ms)", "write p50 (ms)", "QPS", "errors"});
  Report("immutable baseline", immutable, tp);
  Report(mixes[0].label, results[0], tp);
  Report(mixes[1].label, results[1], tp);
  Report(mixes[2].label, results[2], tp);
  tp.Print();

  const double base_p50 = immutable.search_lat.PercentileSeconds(0.50);
  const double live0_p50 = results[0].search_lat.PercentileSeconds(0.50);
  const double ratio = base_p50 > 0.0 ? live0_p50 / base_p50 : 0.0;
  std::printf("\nlive 0%%-writes p50 / immutable p50 = %.4f\n", ratio);

  JsonMix("immutable", immutable);
  for (int m = 0; m < 3; ++m) JsonMix(mixes[m].section, results[m]);
  JsonMetric("gate", "live0_vs_immutable_p50_ratio", ratio);
  JsonMetricsSnapshot("registry",
                      obs::MetricsRegistry::Global().Snapshot());

  std::printf(
      "\nexpected shape: the 0%% column tracks the immutable baseline"
      " (the epoch pin is one shared_ptr load); write mixes trade a"
      " little reader latency for copy-on-publish epoch churn, and the"
      " write p50 stays in single-digit milliseconds because each batch"
      " rebuilds only the structures it dirtied.\n");

  const int64_t errors =
      immutable.errors + results[0].errors + results[1].errors +
      results[2].errors;
  return errors == 0 ? 0 : 1;
}
