// End-to-end throughput of the network serving layer: an in-process
// S4Server on loopback, N S4Client threads driving it through the wire
// protocol, same RunLoadGen arrival process as bench_service_throughput
// so the delta between the two tables is the cost of the network layer
// itself (framing + epoll + loopback TCP).
//
// Modes: closed loop (default) or open loop (S4_BENCH_ARRIVAL_QPS > 0).
// `--smoke` shrinks everything to a seconds-long CI gate that still
// crosses the full stack.
//
// Knobs (environment): S4_BENCH_CLIENTS (8), S4_BENCH_ROUNDS (3),
// S4_BENCH_ES_COUNT (10), S4_BENCH_CSUPP_SCALE (1), S4_BENCH_WORKERS
// (= clients), S4_BENCH_EVAL_THREADS (0 = hardware),
// S4_BENCH_EVENT_LOOPS (2), S4_BENCH_ARRIVAL_QPS (0 = closed loop).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "service/s4_service.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  argc = JsonInit(argc, argv, "net_throughput");
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int32_t clients =
      static_cast<int32_t>(EnvInt("S4_BENCH_CLIENTS", smoke ? 4 : 8));
  const int32_t rounds =
      static_cast<int32_t>(EnvInt("S4_BENCH_ROUNDS", smoke ? 1 : 3));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", smoke ? 4 : 10));
  const double arrival_qps =
      static_cast<double>(EnvInt("S4_BENCH_ARRIVAL_QPS", 0));
  const bool open_loop = arrival_qps > 0.0;

  PrintHeader("Network throughput: S4Client fleet over loopback TCP",
              open_loop ? "CSUPP-sim; open loop (Poisson arrivals) through"
                          " the wire protocol"
                        : "CSUPP-sim; closed loop through the wire protocol");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 1)));
  Workload workload = MakeWorkload(*world, es_count);

  auto system = S4System::Create(world->db);
  if (!system.ok()) {
    std::fprintf(stderr, "S4System::Create failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<std::vector<std::string>>> requests;
  for (const datagen::GeneratedEs& es : workload.es) {
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(es.sheet.NumRows()));
    for (int32_t r = 0; r < es.sheet.NumRows(); ++r) {
      for (int32_t c = 0; c < es.sheet.NumColumns(); ++c) {
        cells[static_cast<size_t>(r)].push_back(es.sheet.cell(r, c).raw);
      }
    }
    requests.push_back(std::move(cells));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "empty workload\n");
    return 1;
  }

  ServiceOptions sopts;
  sopts.num_workers =
      static_cast<int32_t>(EnvInt("S4_BENCH_WORKERS", clients));
  sopts.eval_threads =
      static_cast<int32_t>(EnvInt("S4_BENCH_EVAL_THREADS", 0));
  sopts.max_queue = static_cast<size_t>(4 * clients);
  sopts.shared_cache_bytes = 64u << 20;
  S4Service service(**system, sopts);

  net::ServerOptions server_opts;
  server_opts.num_event_loops =
      static_cast<int32_t>(EnvInt("S4_BENCH_EVENT_LOOPS", 2));
  net::S4Server server(&service, server_opts);
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  net::ClientOptions copts;
  copts.port = server.port();
  copts.request_timeout_seconds = 120.0;
  copts.max_pool_connections = static_cast<size_t>(clients);
  net::S4Client client(copts);
  if (Status st = client.Ping(); !st.ok()) {
    std::fprintf(stderr, "ping failed: %s\n", st.ToString().c_str());
    return 1;
  }

  SearchOptions search_options;
  search_options.enumeration.max_tree_size = 4;

  LoadGenOptions gen;
  gen.clients = clients;
  gen.requests_per_client =
      rounds * static_cast<int32_t>(requests.size());
  gen.arrival_rate_qps = arrival_qps;
  const LoadGenResult run = RunLoadGen(gen, [&](int32_t c, int32_t i) {
    net::NetSearchRequest req = net::NetSearchRequest::From(
        requests[(static_cast<size_t>(i) + static_cast<size_t>(c)) %
                 requests.size()],
        search_options, S4System::Strategy::kFastTopK);
    return client.Search(req).status();
  });

  const LatencyHistogram::Snapshot server_lat = server.latency();
  const net::NetServerCounters& nc = server.counters();
  const ServiceStats stats = service.stats();
  const int64_t total = run.ok + run.errors;

  TablePrinter tp({"metric", "value"});
  tp.AddRow({"mode", open_loop ? "open loop" : "closed loop"});
  tp.AddRow({"clients", TablePrinter::Int(clients)});
  if (open_loop) {
    tp.AddRow({"arrival rate (QPS)", TablePrinter::Num(arrival_qps, 1)});
  }
  tp.AddRow({"requests", TablePrinter::Int(static_cast<long long>(total))});
  tp.AddRow({"errors", TablePrinter::Int(static_cast<long long>(run.errors))});
  tp.AddRow({"elapsed (s)", TablePrinter::Num(run.elapsed_seconds, 3)});
  tp.AddRow({"QPS", TablePrinter::Num(run.Qps(), 1)});
  tp.AddRow({"client p50 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.50), 3)});
  tp.AddRow({"client p99 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.99), 3)});
  tp.AddRow({"client p99.9 (ms)",
             TablePrinter::Num(1e3 * run.latency.PercentileSeconds(0.999), 3)});
  tp.AddRow({"client max (ms)",
             TablePrinter::Num(1e3 * run.latency.max_seconds, 3)});
  tp.AddRow({"server p50 (ms)",
             TablePrinter::Num(1e3 * server_lat.PercentileSeconds(0.50), 3)});
  tp.AddRow({"server p99 (ms)",
             TablePrinter::Num(1e3 * server_lat.PercentileSeconds(0.99), 3)});
  tp.AddRow({"frames received",
             TablePrinter::Int(static_cast<long long>(
                 nc.frames_received.load()))});
  tp.AddRow({"responses sent",
             TablePrinter::Int(static_cast<long long>(
                 nc.responses_sent.load()))});
  tp.AddRow({"errors sent",
             TablePrinter::Int(static_cast<long long>(nc.errors_sent.load()))});
  tp.AddRow({"bytes sent (KiB)",
             TablePrinter::Int(static_cast<long long>(
                 nc.bytes_sent.load() >> 10))});
  tp.AddRow({"cross-query hits",
             TablePrinter::Int(static_cast<long long>(stats.shared_cache.hits))});
  tp.Print();

  JsonMetric("net", "smoke", smoke ? 1.0 : 0.0);
  JsonMetric("net", "open_loop", open_loop ? 1.0 : 0.0);
  JsonMetric("net", "clients", static_cast<double>(clients));
  JsonMetric("net", "arrival_rate_qps", arrival_qps);
  JsonMetric("net", "requests", static_cast<double>(total));
  JsonMetric("net", "errors", static_cast<double>(run.errors));
  JsonMetric("net", "elapsed_s", run.elapsed_seconds);
  JsonMetric("net", "qps", run.Qps());
  JsonLatency("net", run.latency);
  JsonLatency("net_server", server_lat);
  JsonMetric("net", "connections_accepted",
             static_cast<double>(nc.connections_accepted.load()));
  JsonMetric("net", "frames_received",
             static_cast<double>(nc.frames_received.load()));
  JsonMetric("net", "responses_sent",
             static_cast<double>(nc.responses_sent.load()));
  JsonMetric("net", "errors_sent",
             static_cast<double>(nc.errors_sent.load()));
  JsonMetric("net", "protocol_errors",
             static_cast<double>(nc.protocol_errors.load()));
  JsonMetric("net", "bytes_received",
             static_cast<double>(nc.bytes_received.load()));
  JsonMetric("net", "bytes_sent",
             static_cast<double>(nc.bytes_sent.load()));
  JsonMetric("net", "cross_query_cache_hits",
             static_cast<double>(stats.shared_cache.hits));
  // Full registry snapshot (search counters, service gauges, latency
  // histograms) — the CI smoke gate checks this section is non-empty.
  JsonMetricsSnapshot("registry", obs::MetricsRegistry::Global().Snapshot());

  server.Stop();
  std::printf(
      "\nexpected shape: QPS within a small constant factor of"
      " bench_service_throughput at the same knobs (the search dominates;"
      " framing + loopback adds microseconds), responses_sent =="
      " requests, zero protocol errors.\n");
  return run.errors == 0 ? 0 : 1;
}
