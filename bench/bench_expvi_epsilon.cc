// Reproduces Exp-VI: FASTTOPK's robustness to the batch growth factor
// epsilon. The paper reports negligible change across 0.2..2.0 thanks to
// caching-evaluation scheduling and the skipping condition.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "expvi_epsilon");
  PrintHeader("Exp-VI: varying batch factor epsilon",
              "CSUPP-sim; FASTTOPK only (epsilon does not affect"
              " BASELINE)");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 24));
  Workload workload = MakeWorkload(*world, es_count);

  TablePrinter tp({"epsilon", "FastTopK (ms)", "batches/ES",
                   "evaluated/ES", "skipped/ES"});
  for (double eps : {0.2, 0.4, 0.6, 0.8, 1.0, 2.0}) {
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    options.epsilon = eps;
    Agg agg;
    int64_t batches = 0;
    for (const datagen::GeneratedEs& es : workload.es) {
      PreparedSearch prep(*world->index, *world->graph, es.sheet, options);
      SearchResult r = RunFastTopK(prep, options);
      agg.Add(r.stats);
      batches += r.stats.batches;
    }
    tp.AddRow({TablePrinter::Num(eps, 1),
               TablePrinter::Num(agg.AvgTotalMs(), 3),
               TablePrinter::Num(static_cast<double>(batches) /
                                     static_cast<double>(agg.runs),
                                 2),
               TablePrinter::Num(agg.AvgEvaluated(), 1),
               TablePrinter::Num(static_cast<double>(agg.skipped) /
                                     static_cast<double>(agg.runs),
                                 1)});
  }
  tp.Print();
  std::printf(
      "\npaper's shape: execution time is flat in epsilon — larger"
      " batches admit extra candidates, but the skipping condition"
      " prevents evaluating them.\n");
  return 0;
}
