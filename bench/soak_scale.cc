// Scale stress: CSUPP-sim at growing scale factors, verifying that
// end-to-end latency and strategy ordering stay sane as the data grows
// (the paper's corpus is ~3 orders of magnitude larger than our default).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "soak_scale");
  PrintHeader("Scale stress: CSUPP-sim growth",
              "per scale: regenerate + reindex, then average strategies"
              " over a fresh workload");

  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 6));
  TablePrinter tp({"scale", "fact rows", "index (MiB)", "build (s)",
                   "Baseline (ms)", "FastTopK (ms)", "speedup"});
  for (int32_t scale : {1, 4, 10}) {
    WallTimer timer;
    std::unique_ptr<World> world = CsuppWorld(scale);
    const double build_s = timer.ElapsedSeconds();
    Workload workload = MakeWorkload(*world, es_count);
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    Agg base, fast;
    for (const datagen::GeneratedEs& es : workload.es) {
      PreparedSearch prep(*world->index, *world->graph, es.sheet, options);
      base.Add(RunBaseline(prep, options).stats);
      fast.Add(RunFastTopK(prep, options).stats);
    }
    IndexStats s = world->index->stats();
    tp.AddRow({TablePrinter::Int(scale),
               TablePrinter::Int(world->db.FindTable("Ticket")->NumRows()),
               TablePrinter::Num(
                   static_cast<double>(s.inverted_index_bytes +
                                       s.kfk_snapshot_bytes) /
                       (1 << 20),
                   1),
               TablePrinter::Num(build_s, 2),
               TablePrinter::Num(base.AvgTotalMs(), 1),
               TablePrinter::Num(fast.AvgTotalMs(), 1),
               TablePrinter::Num(base.AvgTotalMs() / fast.AvgTotalMs(), 2) +
                   "x"});
  }
  tp.Print();
  std::printf(
      "\nLatency grows roughly linearly with the fact tables; FASTTOPK's"
      " advantage persists at every scale.\n");
  return 0;
}
