// Reproduces Table 1 (index sizes) plus the schema statistics table of
// Sec 6.1 for the two synthetic stand-in datasets.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;

  JsonInit(argc, argv, "table1_index_sizes");
  PrintHeader("Table 1: index sizes",
              "CSUPP-sim and ADVW-sim schema statistics and offline index"
              " footprints");

  const int32_t csupp_scale =
      static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2));
  std::unique_ptr<World> csupp = CsuppWorld(csupp_scale);
  std::unique_ptr<World> advw = AdvwWorld();

  {
    TablePrinter tp({"dataset", "#Relations", "#Columns", "#TextColumns",
                     "#Edges"});
    auto add = [&](const char* name, const World& w) {
      int64_t cols = 0;
      for (TableId t = 0; t < w.db.NumTables(); ++t) {
        cols += w.db.table(t).NumColumns();
      }
      tp.AddRow({name, TablePrinter::Int(w.db.NumTables()),
                 TablePrinter::Int(cols),
                 TablePrinter::Int(w.db.NumTextColumns()),
                 TablePrinter::Int(w.graph->NumEdges())});
    };
    add("CSUPP-sim", *csupp);
    add("ADVW-sim", *advw);
    std::printf("Schema statistics (paper: CSUPP 105/1721/821/63, ADVW"
                " 71/650/104/93):\n");
    tp.Print();
  }

  {
    TablePrinter tp({"dataset", "data (MiB)", "inv. index (MiB)",
                     "(key,fk) snap. (MiB)", "tokens", "index/data"});
    auto add = [&](const char* name, const World& w) {
      IndexStats s = w.index->stats();
      const double data_mb =
          static_cast<double>(w.db.ByteSize()) / (1 << 20);
      const double inv_mb =
          static_cast<double>(s.inverted_index_bytes) / (1 << 20);
      const double snap_mb =
          static_cast<double>(s.kfk_snapshot_bytes) / (1 << 20);
      tp.AddRow({name, TablePrinter::Num(data_mb, 2),
                 TablePrinter::Num(inv_mb, 2),
                 TablePrinter::Num(snap_mb, 2),
                 TablePrinter::Int(s.num_tokens),
                 TablePrinter::Num((inv_mb + snap_mb) / data_mb, 2)});
    };
    add("CSUPP-sim", *csupp);
    add("ADVW-sim", *advw);
    std::printf("\nIndex sizes (paper reports ~7%% of database size;"
                " small synthetic rows carry more key overhead):\n");
    tp.Print();
  }

  std::printf("\nindex build: CSUPP-sim %.2fs, ADVW-sim %.2fs\n",
              csupp->index_build_seconds, advw->index_build_seconds);
  return 0;
}
