// Reproduces Exp-III / Figure 9(a) (varying the score weight alpha) and
// Exp-IV / Figure 9(b) (varying k), BASELINE vs FASTTOPK on the medium
// term-frequency bucket.
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;
  using datagen::EsBucket;

  JsonInit(argc, argv, "fig9_alpha_k");
  PrintHeader("Figure 9: varying alpha (Exp-III) and k (Exp-IV)",
              "CSUPP-sim, medium bucket; other parameters at Table-2"
              " defaults");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 2)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 24));
  Workload workload = MakeWorkload(*world, es_count);
  const std::vector<size_t> members =
      workload.InBucket(EsBucket::kMedium);

  auto run_point = [&](const SearchOptions& options, Agg* base_agg,
                       Agg* fast_agg) {
    for (size_t i : members) {
      PreparedSearch prep(*world->index, *world->graph,
                          workload.es[i].sheet, options);
      base_agg->Add(RunBaseline(prep, options).stats);
      fast_agg->Add(RunFastTopK(prep, options).stats);
    }
  };

  std::printf("Figure 9(a): varying alpha\n");
  TablePrinter ta({"alpha", "Baseline (ms)", "FastTopK (ms)", "speedup",
                   "row-evals Baseline", "row-evals FastTopK"});
  for (double alpha : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    options.score.alpha = alpha;
    Agg base_agg, fast_agg;
    run_point(options, &base_agg, &fast_agg);
    if (fast_agg.runs == 0) continue;
    ta.AddRow({TablePrinter::Num(alpha, 1),
               TablePrinter::Num(base_agg.AvgTotalMs(), 3),
               TablePrinter::Num(fast_agg.AvgTotalMs(), 3),
               TablePrinter::Num(
                   base_agg.AvgTotalMs() / fast_agg.AvgTotalMs(), 2) +
                   "x",
               TablePrinter::Num(base_agg.AvgRowEvals(), 1),
               TablePrinter::Num(fast_agg.AvgRowEvals(), 1)});
  }
  ta.Print();
  std::printf(
      "paper's shape: larger alpha loosens the upper bound (it is"
      " proportional to score_col), so both strategies evaluate more and"
      " slow down; FASTTOPK stays ahead at every alpha.\n\n");

  std::printf("Figure 9(b): varying k\n");
  TablePrinter tk({"k", "Baseline (ms)", "FastTopK (ms)", "speedup",
                   "row-evals Baseline", "row-evals FastTopK"});
  for (int32_t k : {5, 10, 20, 50, 100}) {
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    options.k = k;
    Agg base_agg, fast_agg;
    run_point(options, &base_agg, &fast_agg);
    if (fast_agg.runs == 0) continue;
    tk.AddRow({TablePrinter::Int(k),
               TablePrinter::Num(base_agg.AvgTotalMs(), 3),
               TablePrinter::Num(fast_agg.AvgTotalMs(), 3),
               TablePrinter::Num(
                   base_agg.AvgTotalMs() / fast_agg.AvgTotalMs(), 2) +
                   "x",
               TablePrinter::Num(base_agg.AvgRowEvals(), 1),
               TablePrinter::Num(fast_agg.AvgRowEvals(), 1)});
  }
  tk.Print();
  std::printf(
      "paper's shape: both strategies evaluate more queries as k grows;"
      " shared evaluation keeps FASTTOPK ~3-4x ahead.\n");
  return 0;
}
