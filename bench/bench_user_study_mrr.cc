// Reproduces the Sec 6.3 user study with a synthetic judge. The paper
// had three humans mark top-10 results for 52 ESs over IMDB (MRR 0.79
// overall; 0.87/0.78/0.71 for high/medium/low buckets, ~2.3 relevant
// results per ES). Here each ES is sampled (with injected errors) from a
// known generating PJ query; a returned query counts as relevant iff it
// maps every spreadsheet column onto the same database column as that
// source query (human judges accept any join path that produces the
// intended output columns), and MRR is the mean reciprocal rank of the
// first relevant hit.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;
  using datagen::EsBucket;

  JsonInit(argc, argv, "user_study_mrr");
  PrintHeader("Sec 6.3 user study (synthetic judge)",
              "IMDB-sim, 52 ESs from web-table-like noisy samples;"
              " relevance = matches the generating query");

  std::unique_ptr<World> world = ImdbWorld();
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 52));
  datagen::EsGenOptions es_opts;
  es_opts.relationship_errors = 2;
  Workload workload = MakeWorkload(*world, es_count, es_opts,
                                   /*seed=*/2026, /*min_text_columns=*/4,
                                   /*max_tree_size=*/4);

  SearchOptions options;
  options.k = 10;
  options.enumeration.max_tree_size = 4;

  // The (es_column -> table.column) mapping multiset of a query, the
  // judge's notion of "produces the intended output columns".
  auto mapping_of = [](const PJQuery& q) {
    std::vector<std::tuple<int32_t, TableId, int32_t>> m;
    for (const ProjectionBinding& b : q.bindings()) {
      m.emplace_back(b.es_column, q.tree().node(b.node).table, b.column);
    }
    std::sort(m.begin(), m.end());
    return m;
  };

  // Two judges bracketing the humans: "strict" accepts only the exact
  // generating query; "lenient" accepts any query producing the same
  // output columns. The paper's human MRR (0.79) lies between.
  double strict_sum[4] = {0, 0, 0, 0};
  double lenient_sum[4] = {0, 0, 0, 0};
  int64_t count[4] = {0, 0, 0, 0};
  int64_t hits_at_1 = 0, misses = 0;

  for (size_t i = 0; i < workload.es.size(); ++i) {
    const datagen::GeneratedEs& es = workload.es[i];
    SearchResult r =
        SearchFastTopK(*world->index, *world->graph, es.sheet, options);
    const auto want = mapping_of(es.source_query);
    double strict_rr = 0.0, lenient_rr = 0.0;
    for (size_t rank = 0; rank < r.topk.size(); ++rank) {
      if (strict_rr == 0.0 &&
          r.topk[rank].query.signature() == es.source_query.signature()) {
        strict_rr = 1.0 / static_cast<double>(rank + 1);
      }
      if (lenient_rr == 0.0 && mapping_of(r.topk[rank].query) == want) {
        lenient_rr = 1.0 / static_cast<double>(rank + 1);
      }
      if (strict_rr > 0.0 && lenient_rr > 0.0) break;
    }
    if (lenient_rr == 1.0) ++hits_at_1;
    if (lenient_rr == 0.0) ++misses;
    const int b = 1 + static_cast<int>(workload.buckets[i]);
    strict_sum[0] += strict_rr;
    lenient_sum[0] += lenient_rr;
    ++count[0];
    strict_sum[b] += strict_rr;
    lenient_sum[b] += lenient_rr;
    ++count[b];
  }

  TablePrinter tp({"bucket", "#ES", "MRR (strict judge)",
                   "MRR (lenient judge)", "paper MRR (humans)"});
  const char* paper[4] = {"0.79", "0.71", "0.78", "0.87"};
  const char* names[4] = {"overall", "low", "medium", "high"};
  for (int b = 0; b < 4; ++b) {
    if (count[b] == 0) continue;
    tp.AddRow({names[b], TablePrinter::Int(count[b]),
               TablePrinter::Num(strict_sum[b] / count[b], 2),
               TablePrinter::Num(lenient_sum[b] / count[b], 2), paper[b]});
  }
  tp.Print();
  std::printf(
      "\nlenient first-rank hits: %lld/%lld, no-hit: %lld\n"
      "paper's shape: relevant results typically appear at the top;"
      " the human MRR sits between the strict and lenient judges.\n",
      static_cast<long long>(hits_at_1),
      static_cast<long long>(count[0]), static_cast<long long>(misses));
  return 0;
}
